"""The seed (pre-vectorization) fluid simulator, retained verbatim as a
performance and correctness oracle.

``repro.network.flowsim`` was rewritten around a precomputed sparse
link×flow incidence matrix with an incremental event loop (see
``docs/PERFORMANCE.md``).  This module keeps the original per-event
implementation so the benchmark suite can (a) assert the vectorized
exact mode is no slower even at small flow counts and (b) cross-check
exact-mode results.  Do not import it from library code.

Model
-----
Concurrent transfers are *fluid flows*.  At any instant, the rate vector
over active flows is the **max-min fair allocation** subject to

* every directed link's capacity (flows traversing a link share it), and
* a per-flow single-stream ceiling (``stream_cap``, the protocol limit a
  single message stream can reach on BG/Q — modelled as a private virtual
  link per flow).

Rates are recomputed at every event (flow activation or completion) by
progressive filling: all unfrozen flows grow uniformly until some link
saturates, flows crossing it freeze, and the process repeats.  Between
events, flows drain linearly, so the simulation is exact for the fluid
model.

Dependencies (``Flow.deps``) implement store-and-forward: a dependent
flow becomes *ready* when all its predecessors complete, then waits
``delay`` seconds (endpoint/forwarding overhead) before consuming
bandwidth.

Scale
-----
``batch_tol > 0`` enables *batched completions*: when the earliest
completion is ``dt`` away, all flows finishing within ``dt * (1 +
batch_tol)`` complete together (each is granted at most ``batch_tol``
extra relative time).  This collapses near-ties and cuts rate
recomputations by orders of magnitude at 4K–8K nodes, with error bounded
by ``batch_tol``; tests cross-validate against exact mode.
"""

from __future__ import annotations

import heapq
from typing import Callable, Mapping, Sequence

import numpy as np

from dataclasses import dataclass

from repro.network.flow import Flow, FlowId, FlowResult
from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.obs.metrics import TimeSeriesProbe, get_registry
from repro.obs.trace import get_tracer
from repro.util.validation import ConfigError, LinkDownError, SimulationError

_EPS_BYTES = 1e-3  # sub-byte residue counts as complete (float rounding guard)
_REL_TOL = 1e-12

CapacityFn = Callable[[int], float]


@dataclass(frozen=True, order=True)
class CapacityEvent:
    """A scheduled capacity change: at ``time``, directed link ``link``'s
    capacity becomes ``capacity`` bytes/second (absolute, not a factor).

    ``capacity == 0`` takes the link hard down; any flow still routed
    across it stalls, which the simulator reports as a
    :class:`~repro.util.validation.LinkDownError` rather than spinning on
    a transfer that can never finish.  Fault layers build these from
    :class:`repro.machine.faults.FaultTrace` schedules.
    """

    time: float
    link: int
    capacity: float

    def __post_init__(self):
        if self.time < 0:
            raise ConfigError(f"event time must be >= 0, got {self.time}")
        if self.capacity < 0:
            raise ConfigError(
                f"link {self.link}: event capacity must be >= 0, got {self.capacity}"
            )


def uniform_capacities(link_bw: float) -> CapacityFn:
    """A capacity function giving every link the same bandwidth.

    Suitable for torus-only experiments; the machine model in
    :mod:`repro.machine` supplies heterogeneous capacities (torus links
    vs. 2 GB/s ION links vs. the ION→storage fabric).
    """
    if link_bw <= 0:
        raise ConfigError(f"link_bw must be > 0, got {link_bw}")
    return lambda link_id: link_bw


class FlowSimResult:
    """Results of one :class:`FlowSim` run."""

    def __init__(
        self,
        results: dict[FlowId, FlowResult],
        makespan: float,
        link_bytes: dict[int, float],
        n_rate_updates: int,
    ):
        self.results = results
        self.makespan = makespan
        self.link_bytes = link_bytes
        self.n_rate_updates = n_rate_updates

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, fid: FlowId) -> FlowResult:
        return self.results[fid]

    def finish(self, fid: FlowId) -> float:
        """Completion time of one flow."""
        return self.results[fid].finish

    def total_bytes(self) -> float:
        """Sum of all flow payloads."""
        return float(sum(r.size for r in self.results.values()))

    def aggregate_throughput(self) -> float:
        """Total payload divided by makespan (the paper's 'total throughput')."""
        if self.makespan <= 0:
            return float("inf") if self.total_bytes() > 0 else 0.0
        return self.total_bytes() / self.makespan

    def by_tag(self, tag) -> list[FlowResult]:
        """All flow results carrying ``tag``."""
        return [r for r in self.results.values() if r.tag == tag]


class FlowSim:
    """Max-min fair fluid simulator over an arbitrary link set.

    Args:
        capacities: mapping or callable giving each directed link id its
            capacity in bytes/second.
        params: machine constants (only ``stream_cap``/``mem_bw`` are used
            here; overhead constants are applied by the layers that build
            flows, as ``Flow.delay``).
        batch_tol: relative completion-batching tolerance (0 = exact).
        fair_tol: waterfill near-tie grouping tolerance (0 = exact
            max-min fairness; small values like 0.02 speed up very large
            active sets with a bounded relative rate error).
        lazy_frac: lazy rate-update threshold (0 = recompute at every
            event).  With ``lazy_frac > 0``, surviving flows keep their
            frozen (still capacity-feasible) rates after completions
            until the freed bandwidth exceeds this fraction of the last
            allocation — a *conservative* approximation (rates are never
            overestimated) that collapses thousands of rate updates on
            very large homogeneous phases.
    """

    def __init__(
        self,
        capacities: "Mapping[int, float] | CapacityFn",
        params: NetworkParams = MIRA_PARAMS,
        *,
        batch_tol: float = 0.0,
        fair_tol: float = 0.0,
        lazy_frac: float = 0.0,
    ):
        if isinstance(capacities, Mapping):
            self._cap_of: CapacityFn = capacities.__getitem__
        elif callable(capacities):
            self._cap_of = capacities
        else:
            raise ConfigError("capacities must be a mapping or callable")
        if batch_tol < 0:
            raise ConfigError(f"batch_tol must be >= 0, got {batch_tol}")
        if fair_tol < 0:
            raise ConfigError(f"fair_tol must be >= 0, got {fair_tol}")
        if lazy_frac < 0:
            raise ConfigError(f"lazy_frac must be >= 0, got {lazy_frac}")
        self.params = params
        self.batch_tol = float(batch_tol)
        self.fair_tol = float(fair_tol)
        self.lazy_frac = float(lazy_frac)
        self._default_cap = min(params.stream_cap, params.mem_bw)

    # ------------------------------------------------------------------ setup

    def _index_flows(self, flows: Sequence[Flow]):
        fid_to_idx: dict[FlowId, int] = {}
        for i, f in enumerate(flows):
            if f.fid in fid_to_idx:
                raise ConfigError(f"duplicate flow id {f.fid!r}")
            fid_to_idx[f.fid] = i
        return fid_to_idx

    def _compact_links(self, flows: Sequence[Flow]):
        """Map global link ids to dense indices; fetch capacities once."""
        link_index: dict[int, int] = {}
        caps: list[float] = []
        flow_links: list[np.ndarray] = []
        for f in flows:
            idxs = np.empty(len(f.path), dtype=np.int64)
            for j, g in enumerate(f.path):
                k = link_index.get(g)
                if k is None:
                    k = len(link_index)
                    link_index[g] = k
                    cap = float(self._cap_of(g))
                    if cap <= 0:
                        raise ConfigError(
                            f"flow {f.fid!r}: route crosses link {g} with "
                            f"non-positive capacity {cap} (link is down); "
                            f"exclude the path or heal the link before submitting"
                        )
                    caps.append(cap)
                idxs[j] = k
            flow_links.append(idxs)
        return link_index, np.asarray(caps, dtype=np.float64), flow_links

    # ------------------------------------------------------------------ fairness

    def _waterfill(
        self,
        caps_full: np.ndarray,
        rows: list[np.ndarray],
    ) -> np.ndarray:
        """Max-min fair rates for one active set (progressive filling).

        ``caps_full`` holds capacities indexed by *global* dense link id —
        real links first, then one virtual per-flow cap link per flow
        (appended by :meth:`run`).  ``rows[i]`` is active flow i's link
        row including its virtual link, so every row is non-empty and the
        filling always terminates.
        """
        nf = len(rows)
        lens = np.fromiter((len(r) for r in rows), dtype=np.int64, count=nf)
        concat_g = np.concatenate(rows)
        flow_of_entry = np.repeat(np.arange(nf), lens)

        # Compact to the links this active set actually touches.
        links, concat = np.unique(concat_g, return_inverse=True)
        cap_rem = caps_full[links].astype(np.float64, copy=True)
        cap0 = cap_rem.copy()
        nfl = np.bincount(concat, minlength=len(links)).astype(np.float64)
        entry_alive = np.ones(len(concat), dtype=bool)
        rate = np.zeros(nf)
        frozen = np.zeros(nf, dtype=bool)
        n_frozen = 0

        ftol = self.fair_tol
        for _ in range(nf + 1):
            if n_frozen == nf:
                break
            live = nfl > 0
            if not live.any():  # pragma: no cover - virtual links prevent this
                raise SimulationError("waterfill: no live links but unfrozen flows remain")
            shares = np.where(live, cap_rem / np.where(live, nfl, 1.0), np.inf)
            inc = shares.min()
            if inc < 0:
                inc = 0.0
            rate[~frozen] += inc
            cap_rem[live] -= inc * nfl[live]
            # Saturated links freeze every unfrozen flow crossing them.
            # fair_tol > 0 groups near-ties: links whose fair share is
            # within (1 + fair_tol) of the bottleneck freeze together,
            # trading <= fair_tol relative rate error for far fewer
            # filling iterations on large active sets.
            if ftol > 0:
                sat = live & (shares <= inc * (1 + ftol))
                cap_rem[sat] = 0.0
            else:
                sat = live & (cap_rem <= cap0 * 1e-9)
            hit = entry_alive & sat[concat]
            if not hit.any():  # pragma: no cover - progressive filling invariant
                raise SimulationError("waterfill: no flow froze in an iteration")
            newly = np.unique(flow_of_entry[hit])
            frozen[newly] = True
            n_frozen += len(newly)
            # Retire every still-alive entry of every frozen flow at once.
            dead = entry_alive & frozen[flow_of_entry]
            np.subtract.at(nfl, concat[dead], 1.0)
            entry_alive[dead] = False
        else:  # pragma: no cover - loop bound is nf freezes
            raise SimulationError("waterfill did not converge")
        return rate

    # ------------------------------------------------------------------ run

    def run(
        self,
        flows: Sequence[Flow],
        capacity_events: "Sequence[CapacityEvent] | None" = None,
        *,
        probe: "TimeSeriesProbe | None" = None,
        t_base: float = 0.0,
    ) -> FlowSimResult:
        """Simulate all flows to completion and return per-flow results.

        ``capacity_events`` schedules mid-run capacity changes (link
        degradation, failure, or recovery); each triggers an exact rate
        recomputation at its fire time.  Events on links no submitted
        flow traverses are ignored.

        ``probe`` samples per-link rate/utilisation, per-link queue
        depth and delivered bytes on a fixed simulated-time grid inside
        this loop (see :class:`~repro.obs.metrics.TimeSeriesProbe`);
        ``t_base`` is this run's absolute simulated start time, used to
        keep probe samples and recorded spans monotone when a caller
        (the resilience executor) chains several runs on one timeline.
        """
        flows = list(flows)
        if not flows:
            return FlowSimResult({}, 0.0, {}, 0)
        if t_base < 0:
            raise ConfigError(f"t_base must be >= 0, got {t_base}")
        if probe is not None:
            probe.rebase(t_base)
        fid_to_idx = self._index_flows(flows)
        link_index, caps, flow_links = self._compact_links(flows)
        inv_link = {v: k for k, v in link_index.items()}
        n = len(flows)
        events = sorted(capacity_events or ())
        for e in events:
            if not isinstance(e, CapacityEvent):
                raise ConfigError(
                    f"capacity_events must contain CapacityEvent records, got {e!r}"
                )

        children: list[list[int]] = [[] for _ in range(n)]
        dep_count = np.zeros(n, dtype=np.int64)
        for i, f in enumerate(flows):
            for dep in f.deps:
                j = fid_to_idx.get(dep)
                if j is None:
                    raise ConfigError(f"flow {f.fid!r} depends on unknown flow {dep!r}")
                if j == i:
                    raise ConfigError(f"flow {f.fid!r} depends on itself")
                children[j].append(i)
                dep_count[i] += 1

        remaining = np.array([f.size for f in flows], dtype=np.float64)
        rate_caps_all = np.array(
            [f.rate_cap if f.rate_cap is not None else self._default_cap for f in flows]
        )
        # Global dense link space: real links, then one virtual cap link
        # per flow.  Rows are prebuilt once; the waterfill slices them.
        nl = len(caps)
        caps_full = np.concatenate([caps, rate_caps_all])
        rows_all = [
            np.concatenate([flow_links[i], np.array([nl + i], dtype=np.int64)])
            for i in range(n)
        ]
        ready_time = np.zeros(n)  # max(dep finishes), running
        start_rec = np.full(n, np.nan)
        finish_rec = np.full(n, np.nan)
        done = np.zeros(n, dtype=bool)
        link_bytes: dict[int, float] = {}

        pending: list[tuple[float, int]] = []  # (activation time, idx)
        for i, f in enumerate(flows):
            if dep_count[i] == 0:
                heapq.heappush(pending, (f.start_time + f.delay, i))

        active: list[int] = []
        T = 0.0
        n_updates = 0
        delivered = 0.0

        def complete(i: int, t: float):
            nonlocal delivered
            done[i] = True
            finish_rec[i] = t
            delivered += flows[i].size
            if np.isnan(start_rec[i]):
                start_rec[i] = t
            for g in flows[i].path:
                link_bytes[g] = link_bytes.get(g, 0.0) + flows[i].size
            for c in children[i]:
                ready_time[c] = max(ready_time[c], t)
                dep_count[c] -= 1
                if dep_count[c] == 0:
                    t_act = max(ready_time[c], flows[c].start_time) + flows[c].delay
                    heapq.heappush(pending, (t_act, c))

        def activate_due(t: float):
            """Move pending flows whose activation time has arrived."""
            moved = False
            while pending and pending[0][0] <= t + 1e-18:
                t_act, i = heapq.heappop(pending)
                start_rec[i] = t_act
                if remaining[i] <= _EPS_BYTES:
                    complete(i, t_act)
                else:
                    active.append(i)
                moved = True
            return moved

        ep = 0  # next unapplied capacity event

        def apply_events_due(t: float):
            """Apply capacity events whose fire time has arrived."""
            nonlocal ep
            changed = False
            while ep < len(events) and events[ep].time <= t + 1e-18:
                e = events[ep]
                k = link_index.get(e.link)
                if k is not None:
                    caps_full[k] = e.capacity
                    changed = True
                ep += 1
            return changed

        rates: "np.ndarray | None" = None  # aligned with `active`
        freed_rate = 0.0
        total_rate_at_fill = 0.0
        nl_real = len(caps)

        def probe_window(t0: float, t1: float, act_arr, rate_arr) -> None:
            """Feed one constant-rate window [t0, t1) to the probe.

            Aggregation runs once per window containing a grid tick —
            rates are frozen between events, so the samples are exact.
            """
            if t1 <= t0 or not probe.due(t1):
                return
            link_rate: dict[int, float] = {}
            link_util: dict[int, float] = {}
            depth: dict[int, int] = {}
            if act_arr is not None and len(act_arr):
                agg = np.zeros(nl_real)
                cnt = np.zeros(nl_real, dtype=np.int64)
                for pos, i in enumerate(act_arr):
                    row = flow_links[int(i)]
                    np.add.at(agg, row, rate_arr[pos])
                    np.add.at(cnt, row, 1)
                for k in np.nonzero(cnt)[0]:
                    g = inv_link[int(k)]
                    cap = float(caps_full[int(k)])
                    link_rate[g] = float(agg[k])
                    link_util[g] = float(agg[k]) / cap if cap > 0 else 0.0
                    depth[g] = int(cnt[k])
            probe.record_window(
                t0, t1, link_rate, link_util, depth,
                0 if act_arr is None else len(act_arr), delivered,
            )

        while pending or active:
            if not active:
                # Jump to the next activation.
                T_new = max(T, pending[0][0])
                if probe is not None:
                    probe_window(T, T_new, None, None)
                T = T_new
                apply_events_due(T)
                if activate_due(T):
                    rates = None
                continue

            if rates is None:
                act = np.asarray(active, dtype=np.int64)
                rates = self._waterfill(caps_full, [rows_all[i] for i in act])
                n_updates += 1
                if np.any(rates <= 0):
                    bad = act[np.asarray(rates) <= 0]
                    fids = [flows[int(i)].fid for i in bad]
                    down = sorted(
                        {
                            inv_link[int(k)]
                            for i in bad
                            for k in flow_links[int(i)]
                            if caps_full[int(k)] <= 0
                        }
                    )
                    if down:
                        raise LinkDownError(
                            f"flows {fids} stalled: their routes cross "
                            f"zero-capacity link(s) {down} (link down); the "
                            f"transfers can never complete",
                            links=tuple(down),
                        )
                    raise SimulationError(f"flows starved (zero rate): {fids}")
                total_rate_at_fill = float(rates.sum())
                freed_rate = 0.0
            else:
                act = np.asarray(active, dtype=np.int64)

            next_evt = events[ep].time if ep < len(events) else np.inf
            ttf = remaining[act] / rates
            dt_complete = float(ttf.min())
            dt_act = (pending[0][0] - T) if pending else np.inf
            dt_int = min(dt_act, next_evt - T)
            if dt_int < dt_complete * (1 - _REL_TOL):
                # An activation or a capacity change interrupts before any
                # completion; drain linearly, then recompute rates.
                dt = max(dt_int, 0.0)
                if probe is not None:
                    probe_window(T, T + dt, act, rates)
                remaining[act] = np.maximum(remaining[act] - rates * dt, 0.0)
                T += dt
                activate_due(T)
                apply_events_due(T)
                rates = None
                continue

            dt = dt_complete
            if self.batch_tol > 0:
                dt = min(dt_complete * (1 + self.batch_tol), dt_act, next_evt - T)
            if probe is not None:
                probe_window(T, T + dt, act, rates)
            remaining[act] = np.maximum(remaining[act] - rates * dt, 0.0)
            T += dt

            finished_mask = remaining[act] <= _EPS_BYTES
            if not finished_mask.any():  # pragma: no cover - dt covers the min
                raise SimulationError("no flow completed at a completion event")
            for i in act[finished_mask]:
                complete(int(i), T)
            active = [int(i) for i in act[~finished_mask]]
            # Lazy rate updates: survivors keep their (still feasible)
            # rates until enough bandwidth has been freed to matter.
            freed_rate += float(rates[finished_mask].sum())
            rates = rates[~finished_mask]
            if (
                self.lazy_frac <= 0
                or freed_rate > self.lazy_frac * max(total_rate_at_fill, 1e-30)
                or not len(rates)
            ):
                rates = None
            if activate_due(T):
                rates = None
            if apply_events_due(T):
                rates = None

        if not done.all():
            stuck = [flows[i].fid for i in range(n) if not done[i]]
            raise SimulationError(f"dependency cycle or stuck flows: {stuck}")

        results = {
            f.fid: FlowResult(
                fid=f.fid,
                size=f.size,
                start=float(start_rec[i]),
                finish=float(finish_rec[i]),
                tag=f.tag,
            )
            for i, f in enumerate(flows)
        }
        makespan = float(np.max(finish_rec)) if n else 0.0
        if probe is not None:
            probe.record_final(makespan, delivered)
        tracer = get_tracer()
        if tracer.enabled:
            run_span = tracer.record(
                "flowsim.run",
                t_base,
                t_base + makespan,
                cat="flowsim",
                n_flows=n,
                n_rate_updates=n_updates,
                capacity_events=ep,
                delivered_bytes=delivered,
            )
            if run_span is not None:
                for i, f in enumerate(flows):
                    if i >= tracer.max_flow_spans:
                        tracer.n_dropped += n - i
                        break
                    if f.size <= 0:
                        continue
                    tracer.record(
                        f"flow:{f.fid}",
                        t_base + float(start_rec[i]),
                        t_base + float(finish_rec[i]),
                        cat="flow",
                        parent=run_span,
                        bytes=f.size,
                        hops=len(f.path),
                        tag=None if f.tag is None else str(f.tag),
                    )
        reg = get_registry()
        reg.counter("flowsim.runs").inc()
        reg.counter("flowsim.flows_completed").inc(n)
        reg.counter("flowsim.rate_updates").inc(n_updates)
        reg.counter("flowsim.capacity_events_applied").inc(ep)
        reg.counter("flowsim.delivered_bytes").inc(delivered)
        return FlowSimResult(results, makespan, link_bytes, n_updates)
