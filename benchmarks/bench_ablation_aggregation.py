"""Ablations — which parts of Algorithm 2 (and of the baseline's
weakness) carry the Figure-10 gap?

Three single-knob comparisons on the Pattern-1 workload at 512 nodes:

1. **Adaptive vs fixed aggregator count** — force one aggregator per
   pset regardless of volume (``max_aggregators_per_pset=1``) against
   the volume-scaled choice.
2. **Baseline round structure** — the real lockstep global rounds vs an
   idealised per-aggregator pipeline (``global_rounds=False``).
3. **Baseline aggregator placement** — bridge-node aggregators (the
   BG/Q ``ad_bg`` default) vs generic rank-strided selection.
"""

import pytest

from repro.bench.harness import FigureResult, Series
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.core import AggregatorConfig, run_io_movement
from repro.machine import mira_system
from repro.mpi import CollectiveIOConfig
from repro.torus.mapping import RankMapping
from repro.util.units import MiB
from repro.workloads import uniform_pattern

log = get_logger(__name__)


def run_ablation(seed: int = 2014):
    system = mira_system(nnodes=512)
    mapping = RankMapping(system.topology, ranks_per_node=16)
    sizes = uniform_pattern(mapping.nranks, max_size=8 * MiB, seed=seed)
    kw = dict(mapping=mapping, batch_tol=0.05, fair_tol=0.02)

    ours = run_io_movement(system, sizes, method="topology_aware", **kw)
    ours_fixed1 = run_io_movement(
        system,
        sizes,
        method="topology_aware",
        agg_config=AggregatorConfig(max_aggregators_per_pset=1),
        **kw,
    )
    base = run_io_movement(system, sizes, method="collective", **kw)
    base_pipelined = run_io_movement(
        system,
        sizes,
        method="collective",
        cb_config=CollectiveIOConfig(global_rounds=False),
        **kw,
    )
    base_strided = run_io_movement(
        system,
        sizes,
        method="collective",
        cb_config=CollectiveIOConfig(
            aggregators_on_bridges=False, aggregators_per_pset=8
        ),
        **kw,
    )

    names = [
        "ours (adaptive)",
        "ours (1 agg/pset)",
        "baseline (ad_bg)",
        "baseline (pipelined rounds)",
        "baseline (rank-strided cb)",
    ]
    values = [
        o.throughput
        for o in (ours, ours_fixed1, base, base_pipelined, base_strided)
    ]
    return FigureResult(
        figure="ablation_aggregation",
        title="Aggregation design ablations (Pattern 1, 512 nodes)",
        xlabel="configuration",
        ylabel="total throughput [B/s]",
        series=[Series(n, [0], [v]) for n, v in zip(names, values)],
        notes={"ours_over_baseline": values[0] / values[2]},
    )


def test_ablation_aggregation(benchmark, save_figure):
    fig = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    at = lambda name: fig.get(name).y[0]
    # Adaptive sizing is essential: a single aggregator per pset can only
    # drive one of the two bridge->ION links and loses ~half the I/O
    # bandwidth even with perfect balance.
    assert at("ours (adaptive)") > 1.4 * at("ours (1 agg/pset)")
    # Un-ablated comparison reproduces Fig. 10's gap.
    assert at("ours (adaptive)") > 1.5 * at("baseline (ad_bg)")
    # The lockstep rounds and the bridge-bound placement each cost the
    # baseline real throughput (removing either knob helps it).
    assert at("baseline (pipelined rounds)") > at("baseline (ad_bg)")
    assert at("baseline (rank-strided cb)") > at("baseline (ad_bg)")
    # Even the improved baselines stay below the full Algorithm 2.
    assert at("ours (adaptive)") > at("baseline (pipelined rounds)")
    assert at("ours (adaptive)") > at("baseline (rank-strided cb)")
