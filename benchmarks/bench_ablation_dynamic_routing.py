"""Ablation — BG/Q dynamic (zone) routing vs user-space multipath.

The paper's §II distinguishes its contribution from adaptive/dynamic
routing: dynamic zones spray packets over alternative dimension orders,
relieving *link hotspots*, but every message remains one stream under
the per-stream ceiling, and only structured multipath (proxies) can gang
streams.  This ablation runs both regimes to show the boundary honestly:

* **Structured group coupling** (the paper's Figure-6 geometry): the
  pairwise deterministic routes are already link-disjoint, so dynamic
  routing has no hotspots to fix and stays at the ~1.6 GB/s ceiling —
  while proxies exceed it by the k/2 law.  *This is the paper's use
  case, and proxies win.*

* **Unstructured random sparse pairs**: deterministic routes collide;
  dynamic spraying removes the hotspots and reaches the ceiling, while
  Algorithm 1's per-source disjointness cannot prevent cross-pair
  collisions and its store-and-forward halves each path.  *Here dynamic
  routing is the better tool* — matching the paper's scoping to
  contiguous coupled regions.
"""

import numpy as np

from repro.bench.harness import FigureResult, Series
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.core import TransferSpec, run_transfer
from repro.core.dynroute import run_dynamic_transfer
from repro.machine import mira_system
from repro.util.units import MiB
from repro.workloads import corner_groups, pairwise_transfers

log = get_logger(__name__)


def run_ablation(nbytes: int = 16 * MiB, seed: int = 2014):
    system = mira_system(nnodes=512)

    # Regime 1: the paper's structured coupling (32 v 32 corner groups).
    layout = corner_groups(system.topology, 32)
    coupled = pairwise_transfers(layout, nbytes)
    c_det = run_transfer(system, coupled, mode="direct", batch_tol=0.02)
    c_dyn = run_dynamic_transfer(system, coupled, seed=seed, batch_tol=0.02)
    c_prox = run_transfer(system, coupled, mode="proxy", batch_tol=0.02)

    # Regime 2: unstructured random sparse pairs.
    rng = np.random.default_rng(seed)
    nodes = rng.choice(system.nnodes, size=48, replace=False)
    random_specs = [
        TransferSpec(int(nodes[2 * i]), int(nodes[2 * i + 1]), nbytes)
        for i in range(24)
    ]
    r_det = run_transfer(system, random_specs, mode="direct", batch_tol=0.02)
    r_dyn = run_dynamic_transfer(system, random_specs, seed=seed, batch_tol=0.02)
    r_prox = run_transfer(system, random_specs, mode="proxy", batch_tol=0.02)

    regimes = ["coupled groups", "random pairs"]
    return FigureResult(
        figure="ablation_dynamic_routing",
        title="Routing policy vs user-space multipath (16 MiB messages)",
        xlabel="scenario",
        ylabel="total throughput [B/s]",
        series=[
            Series("deterministic", regimes, [c_det.throughput, r_det.throughput]),
            Series("dynamic zone-1", regimes, [c_dyn.throughput, r_dyn.throughput]),
            Series(
                "proxies (Algorithm 1)",
                regimes,
                [c_prox.throughput, r_prox.throughput],
            ),
        ],
        notes={
            "coupled_proxy_over_dynamic": c_prox.throughput / c_dyn.throughput,
            "random_dynamic_over_det": r_dyn.throughput / r_det.throughput,
        },
    )


def test_ablation_dynamic_routing(benchmark, save_figure):
    fig = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    det = fig.get("deterministic")
    dyn = fig.get("dynamic zone-1")
    prox = fig.get("proxies (Algorithm 1)")

    # Paper regime: no hotspots, so dynamic ~ deterministic; proxies win.
    assert dyn.y_at("coupled groups") < 1.1 * det.y_at("coupled groups")
    assert prox.y_at("coupled groups") > 1.5 * dyn.y_at("coupled groups")
    # Unstructured regime: dynamic routing is the right tool.
    assert dyn.y_at("random pairs") > 1.3 * det.y_at("random pairs")
    assert dyn.y_at("random pairs") > 0.95 * prox.y_at("random pairs")
