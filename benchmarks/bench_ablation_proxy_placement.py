"""Ablation — does Algorithm 1's *placement* matter, or just the split?

The paper's claim is not merely "use k paths" but "place proxies so the
deterministic routes share no links".  This ablation compares, at k = 4
and the paper's Figure-5 geometry:

* topology-aware proxies (Algorithm 1's disjoint search), vs
* randomly chosen proxy nodes (same k, no disjointness check).

Random placements collide on links (and with the phase-2 convergence at
the destination), so their throughput should sit clearly below the
disjoint placement's k/2 law.
"""

import numpy as np
import pytest

from repro.bench.harness import FigureResult, Series
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.core import (
    TransferSpec,
    find_proxies_for_pair,
    forced_assignment,
    run_transfer,
)
from repro.machine import mira_system
from repro.util.units import MiB

log = get_logger(__name__)


def run_ablation(nbytes: int = 32 * MiB, ntrials: int = 8, seed: int = 2014):
    system = mira_system(nnodes=128)
    src, dst = 0, system.nnodes - 1
    spec = TransferSpec(src, dst, nbytes)

    aware = find_proxies_for_pair(system, src, dst, max_proxies=4)
    aware_tp = run_transfer(
        system, [spec], mode="proxy", assignments={(src, dst): aware}
    ).throughput

    rng = np.random.default_rng(seed)
    candidates = [n for n in range(system.nnodes) if n not in (src, dst)]
    random_tps = []
    for _ in range(ntrials):
        proxies = list(rng.choice(candidates, size=4, replace=False))
        asg = forced_assignment(system, src, dst, proxies)
        random_tps.append(
            run_transfer(
                system, [spec], mode="proxy", assignments={(src, dst): asg}
            ).throughput
        )
    direct_tp = run_transfer(system, [spec], mode="direct").throughput

    return FigureResult(
        figure="ablation_proxy_placement",
        title="Proxy placement: Algorithm 1 vs random (k=4, 32 MiB)",
        xlabel="trial",
        ylabel="throughput [B/s]",
        series=[
            Series("topology-aware", list(range(ntrials)), [aware_tp] * ntrials),
            Series("random placement", list(range(ntrials)), random_tps),
            Series("direct", list(range(ntrials)), [direct_tp] * ntrials),
        ],
        notes={
            "aware_over_random_mean": aware_tp / float(np.mean(random_tps)),
            "random_worst": float(np.min(random_tps)),
        },
    )


def test_ablation_proxy_placement(benchmark, save_figure):
    fig = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    aware = fig.get("topology-aware").y[0]
    randoms = fig.get("random placement").y
    assert aware >= max(randoms) * 0.999
    assert aware > 1.15 * float(np.mean(randoms))
