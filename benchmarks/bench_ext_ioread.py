"""Extension benchmark — the mirrored collective-read path.

Not a paper figure (the paper measures writes): verifies that Algorithm
2's balance and adaptivity pay off identically on restart/read traffic,
using the full-duplex 11th links' inbound direction.  Pattern-1 reads at
8,192 cores, ours vs the lockstep two-phase read baseline.
"""

from repro.bench.harness import FigureResult, Series
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.core.ioread import run_io_read
from repro.machine import mira_system
from repro.torus.mapping import RankMapping
from repro.torus.partition import CORES_PER_NODE
from repro.util.units import MiB
from repro.workloads import uniform_pattern

log = get_logger(__name__)


def run_extension(cores=(2048, 8192), seed: int = 2014):
    xs, ours_y, base_y = [], [], []
    for ncores in cores:
        system = mira_system(ncores=ncores)
        mapping = RankMapping(system.topology, ranks_per_node=CORES_PER_NODE)
        sizes = uniform_pattern(mapping.nranks, max_size=8 * MiB, seed=seed)
        xs.append(ncores)
        ours_y.append(
            run_io_read(
                system, sizes, method="topology_aware", mapping=mapping,
                batch_tol=0.1, fair_tol=0.05, lazy_frac=0.05,
            ).throughput
        )
        base_y.append(
            run_io_read(
                system, sizes, method="collective", mapping=mapping,
                batch_tol=0.1, fair_tol=0.05, lazy_frac=0.05,
            ).throughput
        )
    fig = FigureResult(
        figure="ext_ioread",
        title="Collective read from the IONs (extension: restart path)",
        xlabel="cores",
        ylabel="total throughput [B/s]",
        series=[
            Series("topology-aware read", xs, ours_y),
            Series("two-phase read", xs, base_y),
        ],
    )
    fig.notes["gain"] = fig.get("topology-aware read").ratio_to(
        fig.get("two-phase read")
    )
    return fig


def test_ext_ioread(benchmark, save_figure):
    fig = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))
    assert all(g > 1.2 for g in fig.notes["gain"])
