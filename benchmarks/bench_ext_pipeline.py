"""Extension benchmark — pipelined relays (the paper's §VII proposal).

The paper's conclusion predicts that splitting data into small pipelined
messages removes one of the two store-and-forward hops from the critical
path, so *2* proxies suffice for a benefit.  This benchmark sweeps
message sizes for direct, store-and-forward (k = 4, the paper's best)
and pipelined k = 2 / k = 4 transfers on the Figure-5 geometry, and
asserts the prediction.
"""

from repro.bench.harness import FigureResult, Series, sweep_sizes
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.core import (
    TransferSpec,
    find_proxies_for_pair,
    run_pipelined_transfer,
    run_transfer,
)
from repro.machine import mira_system
from repro.util.units import GB, KiB

log = get_logger(__name__)


def run_extension():
    system = mira_system(nnodes=128)
    src, dst = 0, system.nnodes - 1
    asg2 = find_proxies_for_pair(system, src, dst, max_proxies=2)
    asg4 = find_proxies_for_pair(
        system, src, dst, max_proxies=4, reserved=set(asg2.proxies)
    )
    asg4_full = find_proxies_for_pair(system, src, dst, max_proxies=4)

    sizes = sweep_sizes(64 * KiB, 64 * 1024 * KiB)
    series = {
        "direct": [],
        "store&forward k=4": [],
        "pipelined k=2": [],
        "pipelined k=4": [],
    }
    for nbytes in sizes:
        spec = TransferSpec(src, dst, nbytes)
        series["direct"].append(
            run_transfer(system, [spec], mode="direct").throughput
        )
        series["store&forward k=4"].append(
            run_transfer(
                system, [spec], mode="proxy", assignments={(src, dst): asg4_full}
            ).throughput
        )
        series["pipelined k=2"].append(
            run_pipelined_transfer(
                system, [spec], assignments={(src, dst): asg2}
            ).throughput
        )
        series["pipelined k=4"].append(
            run_pipelined_transfer(
                system, [spec], assignments={(src, dst): asg4_full}
            ).throughput
        )
    fig = FigureResult(
        figure="ext_pipeline",
        title="Pipelined relays vs store-and-forward (future work, §VII)",
        xlabel="message size [B]",
        ylabel="throughput [B/s]",
        series=[Series(n, sizes, ys) for n, ys in series.items()],
    )
    fig.notes["crossover_pipelined_k2"] = fig.crossover("pipelined k=2", "direct")
    fig.notes["crossover_sf_k4"] = fig.crossover("store&forward k=4", "direct")
    return fig


def test_ext_pipeline(benchmark, save_figure):
    fig = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    big = fig.series[0].x[-1]
    direct = fig.get("direct").y_at(big)
    # The paper's prediction: 2 pipelined proxies already beat direct...
    assert fig.get("pipelined k=2").y_at(big) > 1.7 * direct
    # ...roughly matching 4 store-and-forward proxies...
    assert fig.get("pipelined k=2").y_at(big) > 0.9 * fig.get(
        "store&forward k=4"
    ).y_at(big)
    # ...and 4 pipelined proxies approach 4x (k, not k/2).
    assert fig.get("pipelined k=4").y_at(big) > 5.5 * GB
