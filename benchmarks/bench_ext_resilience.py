"""Extension benchmark — fault injection and resilient execution.

The paper assumes "the absence of congestion and network failures"
(§IV-A).  This extension drops that assumption on the Figure-5 geometry
(128 nodes, corner-to-corner): a hidden fault schedule degrades 2 of the
4 link-disjoint proxy paths to 25% of nominal, and we compare

* the **fault-blind** executor (plans and splits as if pristine, runs on
  the degraded machine — the whole transfer is gated by the slowest
  path), against
* the **resilient** executor (detects the missed per-path deadlines,
  cordons the degraded carriers through the health monitor, and re-sends
  the failed shares over the surviving paths plus the direct route).

Acceptance: resilient ≥ 1.3× fault-blind under the seeded schedule, and
≤ 2% overhead when there are no faults at all (round 0 is byte-identical
to the fault-blind flow program, so the overhead is zero by
construction).
"""

from repro.bench.harness import FigureResult, Series, sweep_sizes
from repro.core import TransferSpec, TransferPlanner, run_transfer
from repro.machine import mira_system
from repro.machine.faults import FaultEvent, FaultTrace
from repro.resilience import ResilientPlanner, run_resilient_transfer
from repro.util.log import get_logger
from repro.util.units import MiB

log = get_logger(__name__)


def degraded_trace(asg, carriers=(0, 1), factor=0.25) -> FaultTrace:
    """Degrade whole two-hop routes of the chosen carriers, permanently."""
    links = set()
    for j in carriers:
        links.update(asg.phase1[j].links)
        links.update(asg.phase2[j].links)
    return FaultTrace(
        tuple(FaultEvent(link=l, factor=factor) for l in sorted(links))
    )


def run_extension():
    system = mira_system(nnodes=128)
    src, dst = 0, system.nnodes - 1
    plan = TransferPlanner(system, max_proxies=4).find_plan([(src, dst)])
    asg = plan.assignments[(src, dst)]
    trace = degraded_trace(asg)
    snap = trace.snapshot(0.0)

    sizes = sweep_sizes(4 * MiB, 64 * MiB)
    series = {
        "fault-free (k=4)": [],
        "fault-blind (2 paths at 25%)": [],
        "resilient (2 paths at 25%)": [],
    }
    telemetry = None
    for nbytes in sizes:
        spec = TransferSpec(src, dst, nbytes)
        series["fault-free (k=4)"].append(
            run_transfer(
                system, [spec], mode="proxy", assignments={(src, dst): asg}
            ).throughput
        )
        series["fault-blind (2 paths at 25%)"].append(
            run_transfer(
                system,
                [spec],
                mode="proxy",
                assignments={(src, dst): asg},
                capacity_fn=snap.capacity_fn(system.capacity),
            ).throughput
        )
        out = run_resilient_transfer(
            system,
            [spec],
            trace=trace,
            planner=ResilientPlanner(system, max_proxies=4),
        )
        assert out.delivered_bytes == nbytes
        series["resilient (2 paths at 25%)"].append(out.throughput)
        telemetry = out.telemetry

    fig = FigureResult(
        figure="ext_resilience",
        title="Resilient vs fault-blind execution, 2 of 4 paths degraded to 25%",
        xlabel="message size [B]",
        ylabel="throughput [B/s]",
        series=[Series(n, sizes, ys) for n, ys in series.items()],
    )
    big = sizes[-1]
    fig.notes["speedup_vs_blind"] = (
        fig.get("resilient (2 paths at 25%)").y_at(big)
        / fig.get("fault-blind (2 paths at 25%)").y_at(big)
    )
    fig.notes["retries"] = telemetry.retries
    fig.notes["failovers"] = telemetry.failovers
    fig.notes["bytes_resent"] = telemetry.bytes_resent

    # Fault-free overhead check: resilient == fault-blind to the byte.
    spec = TransferSpec(src, dst, big)
    base = run_transfer(system, [spec], mode="auto")
    clean = run_resilient_transfer(system, [spec])
    fig.notes["fault_free_overhead"] = 1.0 - clean.throughput / base.throughput
    return fig


def test_ext_resilience(benchmark, save_figure):
    from repro.bench.report import render_figure

    fig = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    blind = fig.get("fault-blind (2 paths at 25%)")
    resil = fig.get("resilient (2 paths at 25%)")
    # The acceptance bar: ≥ 1.3× fault-blind on every proxy-regime size.
    for x, b in zip(blind.x, blind.y):
        assert resil.y_at(x) >= 1.3 * b
    # Failover actually happened and was recorded.
    assert fig.notes["retries"] >= 1
    assert fig.notes["failovers"] >= 2
    assert fig.notes["bytes_resent"] > 0
    # Zero faults: within 2% of the fault-blind executor (it is exact).
    assert abs(fig.notes["fault_free_overhead"]) <= 0.02
