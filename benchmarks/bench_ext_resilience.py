"""Extension benchmark — fault injection and resilient execution.

The paper assumes "the absence of congestion and network failures"
(§IV-A).  This extension drops that assumption on the Figure-5 geometry
(128 nodes, corner-to-corner): a hidden fault schedule degrades 2 of the
4 link-disjoint proxy paths to 25% of nominal, and we compare

* the **fault-blind** executor (plans and splits as if pristine, runs on
  the degraded machine — the whole transfer is gated by the slowest
  path), against
* the **resilient** executor (detects the missed per-path deadlines,
  cordons the degraded carriers through the health monitor, and re-sends
  the failed shares over the surviving paths plus the direct route).

Acceptance: resilient ≥ 1.3× fault-blind under the seeded schedule, and
≤ 2% overhead when there are no faults at all (round 0 is byte-identical
to the fault-blind flow program, so the overhead is zero by
construction).
"""

from repro.bench.harness import FigureResult, Series, sweep_sizes
from repro.core import TransferSpec, TransferPlanner, run_transfer
from repro.machine import mira_system
from repro.machine.faults import FaultEvent, FaultTrace
from repro.resilience import ResilientPlanner, run_resilient_transfer
from repro.util.log import get_logger
from repro.util.units import MiB

log = get_logger(__name__)


def degraded_trace(asg, carriers=(0, 1), factor=0.25) -> FaultTrace:
    """Degrade whole two-hop routes of the chosen carriers, permanently."""
    links = set()
    for j in carriers:
        links.update(asg.phase1[j].links)
        links.update(asg.phase2[j].links)
    return FaultTrace(
        tuple(FaultEvent(link=l, factor=factor) for l in sorted(links))
    )


def run_extension():
    system = mira_system(nnodes=128)
    src, dst = 0, system.nnodes - 1
    plan = TransferPlanner(system, max_proxies=4).find_plan([(src, dst)])
    asg = plan.assignments[(src, dst)]
    trace = degraded_trace(asg)
    snap = trace.snapshot(0.0)

    sizes = sweep_sizes(4 * MiB, 64 * MiB)
    series = {
        "fault-free (k=4)": [],
        "fault-blind (2 paths at 25%)": [],
        "resilient (2 paths at 25%)": [],
    }
    telemetry = None
    for nbytes in sizes:
        spec = TransferSpec(src, dst, nbytes)
        series["fault-free (k=4)"].append(
            run_transfer(
                system, [spec], mode="proxy", assignments={(src, dst): asg}
            ).throughput
        )
        series["fault-blind (2 paths at 25%)"].append(
            run_transfer(
                system,
                [spec],
                mode="proxy",
                assignments={(src, dst): asg},
                capacity_fn=snap.capacity_fn(system.capacity),
            ).throughput
        )
        out = run_resilient_transfer(
            system,
            [spec],
            trace=trace,
            planner=ResilientPlanner(system, max_proxies=4),
        )
        assert out.delivered_bytes == nbytes
        series["resilient (2 paths at 25%)"].append(out.throughput)
        telemetry = out.telemetry

    fig = FigureResult(
        figure="ext_resilience",
        title="Resilient vs fault-blind execution, 2 of 4 paths degraded to 25%",
        xlabel="message size [B]",
        ylabel="throughput [B/s]",
        series=[Series(n, sizes, ys) for n, ys in series.items()],
    )
    big = sizes[-1]
    fig.notes["speedup_vs_blind"] = (
        fig.get("resilient (2 paths at 25%)").y_at(big)
        / fig.get("fault-blind (2 paths at 25%)").y_at(big)
    )
    fig.notes["retries"] = telemetry.retries
    fig.notes["failovers"] = telemetry.failovers
    fig.notes["bytes_resent"] = telemetry.bytes_resent

    # Fault-free overhead check: resilient == fault-blind to the byte.
    spec = TransferSpec(src, dst, big)
    base = run_transfer(system, [spec], mode="auto")
    clean = run_resilient_transfer(system, [spec])
    fig.notes["fault_free_overhead"] = 1.0 - clean.throughput / base.throughput
    return fig


def test_ext_resilience(benchmark, save_figure):
    from repro.bench.report import render_figure

    fig = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    blind = fig.get("fault-blind (2 paths at 25%)")
    resil = fig.get("resilient (2 paths at 25%)")
    # The acceptance bar: ≥ 1.3× fault-blind on every proxy-regime size.
    for x, b in zip(blind.x, blind.y):
        assert resil.y_at(x) >= 1.3 * b
    # Failover actually happened and was recorded.
    assert fig.notes["retries"] >= 1
    assert fig.notes["failovers"] >= 2
    assert fig.notes["bytes_resent"] > 0
    # Zero faults: within 2% of the fault-blind executor (it is exact).
    assert abs(fig.notes["fault_free_overhead"]) <= 0.02


def hard_down_trace(asg, start, carriers=(0, 1)) -> FaultTrace:
    """Kill whole two-hop routes of the chosen carriers at ``start``."""
    links = set()
    for j in carriers:
        links.update(asg.phase1[j].links)
        links.update(asg.phase2[j].links)
    return FaultTrace(
        tuple(FaultEvent(link=l, factor=0.0, start=start) for l in sorted(links))
    )


def run_partial_progress():
    """Partial-progress (ledger) recovery vs full-share retransmit.

    Mid-transfer hard-down of 2 of 4 proxy paths, timed to land after
    phase 2 starts so the failed carriers have already banked a prefix
    at the destination.  The ledger re-sends only the outstanding
    extents; the fault-blind retry re-sends both full shares.
    """
    from repro.resilience import RetryPolicy

    system = mira_system(nnodes=128)
    src, dst = 0, system.nnodes - 1
    planner = TransferPlanner(system, max_proxies=4)
    plan = planner.find_plan([(src, dst)])
    asg = plan.assignments[(src, dst)]

    sizes = sweep_sizes(8 * MiB, 64 * MiB)
    series = {"full retransmit": [], "partial progress (ledger)": []}
    goodput = {"full retransmit": [], "partial progress (ledger)": []}
    for nbytes in sizes:
        spec = TransferSpec(src, dst, nbytes)
        predicted = planner.plan([spec])[0].predicted_time
        trace = hard_down_trace(asg, start=0.75 * predicted)
        for name, partial in (
            ("full retransmit", False),
            ("partial progress (ledger)", True),
        ):
            out = run_resilient_transfer(
                system,
                [spec],
                trace=trace,
                policy=RetryPolicy(partial_progress=partial),
                planner=ResilientPlanner(system, max_proxies=4),
            )
            assert out.delivered_bytes == nbytes
            assert all(r.complete and not r.duplicates for r in out.integrity)
            series[name].append(out.telemetry.bytes_resent)
            goodput[name].append(out.throughput)

    fig = FigureResult(
        figure="ext_resilience_partial",
        title="Retransmitted bytes after a mid-transfer hard-down, 2 of 4 paths",
        xlabel="message size [B]",
        ylabel="bytes retransmitted [B]",
        series=[Series(n, sizes, ys) for n, ys in series.items()],
    )
    big = sizes[-1]
    full = fig.get("full retransmit").y_at(big)
    part = fig.get("partial progress (ledger)").y_at(big)
    fig.notes["retransmit_savings_frac"] = 1.0 - part / full
    fig.notes["goodput_gain_at_big"] = (
        goodput["partial progress (ledger)"][-1] / goodput["full retransmit"][-1]
    )
    return fig


def test_ext_resilience_partial_progress(benchmark, save_figure):
    from repro.bench.report import render_figure

    fig = benchmark.pedantic(run_partial_progress, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    full = fig.get("full retransmit")
    part = fig.get("partial progress (ledger)")
    # The acceptance bar: the ledger measurably cuts retransmitted
    # bytes on every size once the kill lands mid-flight.
    for x, fy in zip(full.x, full.y):
        assert part.y_at(x) < fy
    assert fig.notes["retransmit_savings_frac"] >= 0.2
    assert fig.notes["goodput_gain_at_big"] >= 1.0
