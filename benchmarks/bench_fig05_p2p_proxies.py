"""Figure 5 — point-to-point PUT with and without 4 proxies.

Paper configuration: first and last node of a 128-node ``2x2x4x4x2``
partition, message sizes 1 KB – 128 MB doubling, proxies in four
directions.  Expected shape: direct saturates at ~1.6 GB/s, proxied
transfers cross over at 256 KB (~1.4–1.5 GB/s) and reach ~3.2 GB/s.
"""

from repro.bench.figures import fig5_p2p_proxies
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.util.units import GB, KiB

log = get_logger(__name__)


def test_fig5_p2p_proxies(benchmark, save_figure):
    fig = benchmark.pedantic(fig5_p2p_proxies, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    direct = fig.get("direct")
    proxied = fig.series[1]
    assert direct.y[-1] > 1.55 * GB
    assert proxied.y[-1] > 3.0 * GB
    assert fig.notes["crossover"] == fig.notes["paper_crossover"] == 256 * KiB
