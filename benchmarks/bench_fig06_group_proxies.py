"""Figure 6 — group-to-group PUT (256 v 256 nodes in a 2K-node torus).

Paper configuration: two 256-node groups at opposite ends of the
``4x4x4x16x2`` partition, 3 groups of proxies.  Expected shape: direct
saturates at ~1.6 GB/s per pair, crossover at 512 KB, proxied transfers
reach ~2.4 GB/s per pair (the k/2 law with k = 3).
"""

from repro.bench.figures import fig6_group_proxies
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.util.units import GB, KiB

log = get_logger(__name__)


def test_fig6_group_proxies(benchmark, save_figure):
    fig = benchmark.pedantic(fig6_group_proxies, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    direct = fig.get("direct")
    proxied = fig.series[1]
    k = int(proxied.name.split(":")[1])
    assert k >= 3
    assert direct.y[-1] > 1.5 * GB
    assert proxied.y[-1] > 0.9 * (k / 2) * 1.6 * GB
    assert fig.notes["crossover"] == fig.notes["paper_crossover"] == 512 * KiB
