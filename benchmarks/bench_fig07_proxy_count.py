"""Figure 7 — throughput vs number of proxy groups (32 v 32 in 512 nodes).

Paper findings reproduced as assertions: 2 proxy groups buy nothing,
3 groups give ~1.5x, 4 groups ~2x, and a 5th carrier (the source itself)
*degrades* throughput because its direct path interferes with the proxy
paths.
"""

import pytest

from repro.bench.figures import fig7_proxy_count
from repro.bench.report import render_figure
from repro.util.log import get_logger

log = get_logger(__name__)


def test_fig7_proxy_count(benchmark, save_figure):
    fig = benchmark.pedantic(fig7_proxy_count, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    speedups = fig.notes["speedup_at_max"]
    assert speedups["2 proxy groups"] == pytest.approx(1.0, abs=0.05)
    assert speedups["3 proxy groups"] == pytest.approx(1.5, rel=0.08)
    assert speedups["4 proxy groups"] == pytest.approx(2.0, rel=0.08)
    assert speedups["5 proxy groups"] < speedups["4 proxy groups"]
