"""Figures 8–9 — the sparse data-size distributions.

Figure 8: Pattern 1, per-rank sizes uniform on [0, 8 MB] for 1,024
processes (total ≈ 50% of dense).  Figure 9: Pattern 2, Pareto sizes —
most ranks near zero, a few near 8 MB (total ≈ 20% of dense).
"""

import pytest

from repro.bench.figures import fig8_pattern1_histogram, fig9_pattern2_histogram
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.util.units import MiB

log = get_logger(__name__)


def test_fig8_pattern1_histogram(benchmark, save_figure):
    fig = benchmark.pedantic(fig8_pattern1_histogram, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))
    counts = fig.series[0].y
    mean = sum(counts) / len(counts)
    assert max(counts) < 2 * mean  # flat histogram
    assert fig.notes["total_bytes"] == pytest.approx(
        0.5 * 1024 * 8 * MiB, rel=0.1
    )


def test_fig9_pattern2_histogram(benchmark, save_figure):
    fig = benchmark.pedantic(fig9_pattern2_histogram, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))
    counts = fig.series[0].y
    assert counts[0] == max(counts)  # mass at zero
    assert fig.notes["total_bytes"] == pytest.approx(
        0.2 * 1024 * 8 * MiB, rel=0.1
    )
