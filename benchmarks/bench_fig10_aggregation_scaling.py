"""Figure 10 — aggregation throughput to the I/O nodes, weak scaling.

Paper configuration: Patterns 1 and 2, 2,048 → 131,072 cores, our
topology-aware aggregation vs default MPI collective I/O, writing to
``/dev/null`` on the IONs.  Expected shape: ours wins at every scale;
Pattern-1 gain ≈ 2x at 2,048 cores growing toward 3x, Pattern-2 gain
≈ 1.5–2x.

Runs a reduced core grid by default; ``REPRO_FULL=1`` sweeps the paper's
full range (the 8,192-node points take several minutes each).
"""

from repro.bench.figures import fig10_aggregation_scaling
from repro.bench.report import render_figure
from repro.util.log import get_logger

log = get_logger(__name__)


def test_fig10_aggregation_scaling(benchmark, save_figure, io_cores):
    fig = benchmark.pedantic(
        fig10_aggregation_scaling, kwargs={"cores": io_cores}, rounds=1, iterations=1
    )
    log.info("\n" + save_figure(fig, render_figure(fig)))

    assert all(g > 1.4 for g in fig.notes["gain_P1"])
    assert all(g > 1.3 for g in fig.notes["gain_P2"])
    # Weak scaling: our throughput grows with the machine.
    ours = fig.get("ours P1")
    assert ours.y[-1] > ours.y[0]
