"""Figure 11 — HACC I/O write throughput to the I/O nodes.

Paper configuration: 8,192 → 131,072 cores; 10% of the checkpoint volume
written by the ranks in [0.4 N, 0.5 N); customized (topology-aware)
aggregator selection vs default MPI collective I/O.  Expected shape:
customized aggregators win by up to ~50%.
"""

from repro.bench.figures import fig11_hacc_io
from repro.bench.report import render_figure
from repro.util.log import get_logger

log = get_logger(__name__)


def test_fig11_hacc_io(benchmark, save_figure, hacc_cores):
    fig = benchmark.pedantic(
        fig11_hacc_io, kwargs={"cores": hacc_cores}, rounds=1, iterations=1
    )
    log.info("\n" + save_figure(fig, render_figure(fig)))

    gains = fig.notes["gain"]
    assert all(g > 1.1 for g in gains)
    assert max(gains) > 1.3
