"""Extra check — analytic thresholds (Eqs. 1–5) vs simulated crossovers.

Not a paper figure per se: validates that the closed-form threshold
``d*(k) = r (o_msg + o_fwd) k / (k - 2)`` predicts where the simulator's
direct/proxy curves actually cross, for k = 3 and k = 4.
"""

from repro.bench.figures import model_threshold_check
from repro.bench.report import render_figure
from repro.util.log import get_logger

log = get_logger(__name__)


def test_model_threshold(benchmark, save_figure):
    fig = benchmark.pedantic(model_threshold_check, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))

    analytic = fig.get("analytic")
    simulated = fig.get("simulated")
    for a, s in zip(analytic.y, simulated.y):
        # Simulated crossover = first doubling grid point >= analytic.
        assert a <= s <= 2 * a
