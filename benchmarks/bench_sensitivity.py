"""Calibration sensitivity — do the conclusions depend on the constants?

The reproduction calibrates two endpoint constants against the paper's
measurements (``stream_cap`` and ``o_msg + o_fwd``).  This benchmark
sweeps both and checks that only the *positions* of the paper's features
move, never their existence or direction:

* the crossover threshold tracks ``d*(k) = r (o_msg+o_fwd) k/(k-2)`` as
  the relay overhead is varied 4x in both directions, and
* the direct/proxy plateaus track ``r`` and ``(k/2) r`` as the stream
  ceiling is varied.
"""

import pytest

from repro.bench.harness import FigureResult, Series
from repro.bench.report import render_figure
from repro.util.log import get_logger
from repro.core import TransferModel, TransferSpec, find_proxies_for_pair, run_transfer
from repro.machine import mira_system
from repro.network.params import MIRA_PARAMS
from repro.util.units import GB, KiB

log = get_logger(__name__)


def _simulated_crossover(params) -> "int | None":
    system = mira_system(nnodes=128, params=params)
    asg = find_proxies_for_pair(system, 0, 127, max_proxies=4)
    size = 1 * KiB
    while size <= 128 * 1024 * KiB:
        spec = TransferSpec(0, 127, size)
        d = run_transfer(system, [spec], mode="direct")
        p = run_transfer(
            system, [spec], mode="proxy", assignments={(0, 127): asg}
        )
        if p.throughput >= d.throughput * (1 - 1e-9):
            return size
        size *= 2
    return None


def run_overhead_sweep():
    factors = [0.25, 0.5, 1.0, 2.0, 4.0]
    analytic, simulated = [], []
    for f in factors:
        params = MIRA_PARAMS.with_(o_fwd=MIRA_PARAMS.o_fwd * f, o_msg=MIRA_PARAMS.o_msg * f)
        analytic.append(TransferModel(params).threshold(4))
        simulated.append(_simulated_crossover(params))
    return FigureResult(
        figure="sensitivity_overhead",
        title="Crossover threshold vs relay overhead (k=4)",
        xlabel="overhead scale factor",
        ylabel="crossover size [B]",
        series=[
            Series("analytic d*(4)", factors, analytic),
            Series("simulated crossover", factors, simulated),
        ],
    )


def run_stream_cap_sweep():
    caps = [0.8 * GB, 1.6 * GB, 3.2 * GB]
    direct_y, proxy_y = [], []
    for cap in caps:
        params = MIRA_PARAMS.with_(stream_cap=cap, link_bw=max(cap * 1.125, MIRA_PARAMS.link_bw))
        system = mira_system(nnodes=128, params=params)
        spec = TransferSpec(0, 127, 128 * 1024 * KiB)
        direct_y.append(run_transfer(system, [spec], mode="direct").throughput)
        proxy_y.append(
            run_transfer(system, [spec], mode="proxy", max_proxies=4).throughput
        )
    return FigureResult(
        figure="sensitivity_stream_cap",
        title="Plateaus vs single-stream ceiling (k=4, 128 MiB)",
        xlabel="stream_cap [B/s]",
        ylabel="throughput [B/s]",
        series=[Series("direct", caps, direct_y), Series("proxies:4", caps, proxy_y)],
    )


def test_sensitivity_overhead(benchmark, save_figure):
    fig = benchmark.pedantic(run_overhead_sweep, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))
    for a, s in zip(fig.get("analytic d*(4)").y, fig.get("simulated crossover").y):
        assert s is not None
        assert a / 2 <= s <= 2 * a  # doubling-grid quantisation only

    # Threshold is monotone in the overheads.
    ys = fig.get("simulated crossover").y
    assert ys == sorted(ys)


def test_sensitivity_stream_cap(benchmark, save_figure):
    fig = benchmark.pedantic(run_stream_cap_sweep, rounds=1, iterations=1)
    log.info("\n" + save_figure(fig, render_figure(fig)))
    for cap, d, p in zip(
        fig.get("direct").x, fig.get("direct").y, fig.get("proxies:4").y
    ):
        assert d == pytest.approx(cap, rel=0.05)
        assert p == pytest.approx(2 * cap, rel=0.10)  # the k/2 law scales
