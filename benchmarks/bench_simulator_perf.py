"""Simulator performance microbenchmarks (pytest-benchmark timing loops).

These measure the library itself rather than the paper's systems: the
max-min waterfill, deterministic routing, and proxy search — the hot
paths that bound how large a machine the figure benchmarks can sweep.
Results land in the metrics registry (``bench.*`` gauges) so a metrics
dump from a benchmark run carries the measured timings.
"""

import time

import numpy as np

from repro.core.proxy_select import find_proxies_for_pair
from repro.machine import mira_system
from repro.network.flow import Flow
from repro.network.flowsim import FlowSim, uniform_capacities
from repro.network.params import MIRA_PARAMS
from repro.obs import TimeSeriesProbe, Tracer, get_registry, use_tracer
from repro.routing.deterministic import route
from repro.util.log import get_logger
from repro.util.units import MiB

log = get_logger(__name__)


def _record(name: str, benchmark) -> None:
    """Mirror a benchmark's mean/stddev into the ``bench.*`` gauges.

    ``benchmarks/record.py`` reads these gauges back to assemble
    ``BENCH_simulator.json`` — keep the gauge names stable.
    """
    stats = getattr(benchmark, "stats", None)
    if stats is not None and getattr(stats, "stats", None) is not None:
        get_registry().gauge(f"bench.{name}.mean_s").set(stats.stats.mean)
        get_registry().gauge(f"bench.{name}.stddev_s").set(stats.stats.stddev)


def _thousand_flows():
    rng = np.random.default_rng(0)
    system = mira_system(nnodes=512)
    nodes = rng.integers(0, 512, size=(1000, 2))
    return [
        Flow(
            fid=i,
            size=float(rng.integers(1, 8 * MiB)),
            path=system.compute_path(int(a), int(b)).links,
        )
        for i, (a, b) in enumerate(nodes)
        if a != b
    ], system


def test_waterfill_1k_flows(benchmark):
    """One rate computation over 1,000 contending flows."""
    flows, system = _thousand_flows()
    sim = FlowSim(system.capacity, MIRA_PARAMS, batch_tol=0.5)

    benchmark(sim.run, flows)
    _record("waterfill_1k_flows", benchmark)


def test_eventloop_1k_exact(benchmark):
    """Exact-mode (``fair_tol=0``) event loop over 1,000 flows.

    The hardest configuration: no completion batching, so every flow
    finish triggers a full waterfill over the incidence matrix.  This is
    the headline number the vectorized kernel is measured on (see
    ``benchmarks/record.py`` for the seed-relative speedup).
    """
    flows, system = _thousand_flows()
    sim = FlowSim(system.capacity, MIRA_PARAMS)

    benchmark(sim.run, flows)
    _record("eventloop_1k_exact", benchmark)


def test_exact_mode_not_slower_than_seed():
    """Vectorized exact mode is no slower than the seed at 100 flows.

    The incidence-matrix kernel wins big on large active sets; this
    guards the other end — per-run setup (CSR build, transpose, remap)
    must not regress small simulations.  Compares best-of-7 against the
    retained pre-vectorization simulator with a 15% timer-noise margin.
    """
    from _seed_flowsim import FlowSim as SeedFlowSim

    rng = np.random.default_rng(0)
    system = mira_system(nnodes=512)
    nodes = rng.integers(0, 512, size=(100, 2))
    flows = [
        Flow(
            fid=i,
            size=float(rng.integers(1, 8 * MiB)),
            path=system.compute_path(int(a), int(b)).links,
        )
        for i, (a, b) in enumerate(nodes)
        if a != b
    ]

    def best(sim, reps=7):
        sim.run(flows)  # warm caches out of the measurement
        b = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            sim.run(flows)
            b = min(b, time.perf_counter() - t0)
        return b

    new = best(FlowSim(system.capacity, MIRA_PARAMS))
    old = best(SeedFlowSim(system.capacity, MIRA_PARAMS))
    reg = get_registry()
    reg.gauge("bench.exact_100flows_new.best_s").set(new)
    reg.gauge("bench.exact_100flows_seed.best_s").set(old)
    log.info(
        f"100-flow exact: vectorized {new * 1e3:.2f} ms, "
        f"seed {old * 1e3:.2f} ms ({old / new:.2f}x)"
    )
    assert new <= old * 1.15, (
        f"vectorized exact mode slower than seed at 100 flows: "
        f"{new * 1e3:.2f} ms vs {old * 1e3:.2f} ms"
    )


def test_tracer_overhead():
    """Null-tracer (disabled) path stays within 2% of the enabled gap.

    The observability hooks in the simulator's event loop are a
    ``probe is None`` check plus a ``get_tracer()`` hit on the shared
    null object per run; this compares the 1,000-flow simulation with
    tracing disabled vs fully enabled (tracer + probe) and records
    both, asserting the *disabled* path is not the slow one.
    """
    flows, system = _thousand_flows()
    sim = FlowSim(system.capacity, MIRA_PARAMS, batch_tol=0.5)
    reps = 5

    def timed(fn):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    sim.run(flows)  # warm route/JIT-free caches out of the measurement
    disabled = timed(lambda: sim.run(flows))

    def enabled_run():
        probe = TimeSeriesProbe(interval=1e-4, max_samples=2000)
        with use_tracer(Tracer()):
            sim.run(flows, probe=probe)

    enabled = timed(enabled_run)
    overhead = disabled / enabled - 1.0
    reg = get_registry()
    reg.gauge("bench.flowsim_disabled_tracer.best_s").set(disabled)
    reg.gauge("bench.flowsim_enabled_tracer.best_s").set(enabled)
    reg.gauge("bench.null_tracer_overhead_frac").set(overhead)
    log.info(
        f"flowsim 1k flows: disabled {disabled * 1e3:.2f} ms, "
        f"enabled {enabled * 1e3:.2f} ms ({overhead:+.1%} disabled vs enabled)"
    )
    # Disabled must not cost more than 2% over the fully-enabled run —
    # i.e. the hooks themselves are free when observability is off.
    assert disabled <= enabled * 1.02


def test_deterministic_routing(benchmark, system512):
    """Routing cost for one cross-machine pair (uncached)."""
    t = system512.topology

    def _route():
        return route(t, 0, t.nnodes - 1)

    benchmark(_route)
    _record("deterministic_routing", benchmark)


def test_proxy_search(benchmark, system512):
    """Algorithm 1 candidate search for one pair."""
    benchmark(
        lambda: find_proxies_for_pair(system512, 0, system512.nnodes - 1)
    )
    _record("proxy_search", benchmark)


def test_flowsim_small_exact(benchmark):
    """Exact-mode simulation of a 100-flow single-bottleneck scenario."""
    flows = [
        Flow(fid=i, size=float(1 + i), path=(0,)) for i in range(100)
    ]
    sim = FlowSim(uniform_capacities(MIRA_PARAMS.link_bw), MIRA_PARAMS)
    benchmark(sim.run, flows)
    _record("flowsim_small_exact", benchmark)
