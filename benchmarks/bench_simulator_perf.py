"""Simulator performance microbenchmarks (pytest-benchmark timing loops).

These measure the library itself rather than the paper's systems: the
max-min waterfill, deterministic routing, and proxy search — the hot
paths that bound how large a machine the figure benchmarks can sweep.
"""

import numpy as np

from repro.core.proxy_select import find_proxies_for_pair
from repro.machine import mira_system
from repro.network.flow import Flow
from repro.network.flowsim import FlowSim, uniform_capacities
from repro.network.params import MIRA_PARAMS
from repro.routing.deterministic import route
from repro.util.units import MiB


def test_waterfill_1k_flows(benchmark):
    """One rate computation over 1,000 contending flows."""
    rng = np.random.default_rng(0)
    system = mira_system(nnodes=512)
    nodes = rng.integers(0, 512, size=(1000, 2))
    flows = [
        Flow(
            fid=i,
            size=float(rng.integers(1, 8 * MiB)),
            path=system.compute_path(int(a), int(b)).links,
        )
        for i, (a, b) in enumerate(nodes)
        if a != b
    ]
    sim = FlowSim(system.capacity, MIRA_PARAMS, batch_tol=0.5)

    benchmark(sim.run, flows)


def test_deterministic_routing(benchmark, system512):
    """Routing cost for one cross-machine pair (uncached)."""
    t = system512.topology

    def _route():
        return route(t, 0, t.nnodes - 1)

    benchmark(_route)


def test_proxy_search(benchmark, system512):
    """Algorithm 1 candidate search for one pair."""
    benchmark(
        lambda: find_proxies_for_pair(system512, 0, system512.nnodes - 1)
    )


def test_flowsim_small_exact(benchmark):
    """Exact-mode simulation of a 100-flow single-bottleneck scenario."""
    flows = [
        Flow(fid=i, size=float(1 + i), path=(0,)) for i in range(100)
    ]
    sim = FlowSim(uniform_capacities(MIRA_PARAMS.link_bw), MIRA_PARAMS)
    benchmark(sim.run, flows)
