"""Benchmark-suite configuration.

Each ``bench_figXX`` file regenerates one paper figure.  By default the
two I/O scaling studies (Figures 10–11) run a reduced core grid so the
whole suite finishes in minutes; set ``REPRO_FULL=1`` to sweep the
paper's full 2,048 → 131,072-core range (tens of minutes — the 8,192-node
fluid simulations dominate).

Every benchmark writes its rendered figure (the text table recorded in
EXPERIMENTS.md) to ``benchmarks/out/<figure>.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session", autouse=True)
def _bench_logging():
    """Route benchmark figure output through the ``repro`` logger.

    ``REPRO_LOG_LEVEL=warning`` silences the figure tables without
    touching pytest's own capture settings.
    """
    from repro.util.log import setup_cli_logging

    setup_cli_logging(os.environ.get("REPRO_LOG_LEVEL", "info"))


def full_scale() -> bool:
    """True when the paper's full core grid was requested."""
    return os.environ.get("REPRO_FULL", "") == "1"


@pytest.fixture(scope="session")
def save_figure():
    """Writer: persist a rendered figure for EXPERIMENTS.md."""
    OUT_DIR.mkdir(exist_ok=True)

    def _save(fig, rendered: str):
        (OUT_DIR / f"{fig.figure}.txt").write_text(rendered + "\n")
        return rendered

    return _save


@pytest.fixture(scope="session")
def system512():
    """512-node Mira partition shared by the simulator microbenchmarks."""
    from repro.machine import mira_system

    return mira_system(nnodes=512)


@pytest.fixture(scope="session")
def io_cores():
    """Core grid for Figure 10."""
    if full_scale():
        return (2048, 4096, 8192, 16384, 32768, 65536, 131072)
    return (2048, 8192, 32768, 65536)


@pytest.fixture(scope="session")
def hacc_cores():
    """Core grid for Figure 11."""
    if full_scale():
        return (8192, 16384, 32768, 65536, 131072)
    return (8192, 32768, 65536)
