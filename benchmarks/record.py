"""Record simulator performance numbers into ``BENCH_simulator.json``.

Runs the microbenchmarks from :mod:`bench_simulator_perf` through a
small stand-in for the pytest-benchmark fixture (fixed warmup + reps,
``stats.stats.mean``/``.stddev`` attributes), harvests the ``bench.*``
gauges they record, measures the vectorized simulator against the
retained seed implementation *within the same process with interleaved
repetitions* (so machine-load drift hits both sides equally), measures
campaign throughput (scenarios/sec) serial vs batched
(:class:`~repro.network.batchsim.BatchFlowSim`), and dumps everything
as ``BENCH_simulator.json`` at the repository root.

``--service`` additionally runs the adaptive-vs-static service overload
soak (:func:`repro.loadgen.bench.service_benchmark`) and writes its
``bench-service/1`` report to ``BENCH_service.json`` — CI's
``load-smoke`` job records only that (``--skip-perf --service``);
``docs/LOAD_TESTING.md`` explains how to read it.

Usage (no pytest required)::

    python benchmarks/record.py [--out PATH] [--reps N]

CI's ``perf-smoke`` job runs this on every push and uploads the JSON as
an artifact; ``docs/PERFORMANCE.md`` explains how to read the file.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from types import SimpleNamespace

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import bench_simulator_perf as bench  # noqa: E402
from _seed_flowsim import FlowSim as SeedFlowSim  # noqa: E402

from repro.machine import mira_system  # noqa: E402
from repro.network.flowsim import FlowSim  # noqa: E402
from repro.network.params import MIRA_PARAMS  # noqa: E402
from repro.obs import get_registry  # noqa: E402
from repro.util.atomicio import atomic_write_text  # noqa: E402
from repro.util.log import get_logger, setup_cli_logging  # noqa: E402

log = get_logger(__name__)

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_simulator.json"


class BenchmarkShim:
    """Minimal pytest-benchmark fixture stand-in.

    Calls the function ``warmup`` times unmeasured, then ``reps`` times
    measured, and exposes the timings as ``stats.stats.mean`` /
    ``stats.stats.stddev`` — the attributes ``bench_simulator_perf``'s
    ``_record`` helper reads to populate the ``bench.*`` gauges.
    """

    def __init__(self, reps: int = 5, warmup: int = 1):
        self.reps = reps
        self.warmup = warmup
        self.stats = None

    def __call__(self, fn, *args, **kwargs):
        result = None
        for _ in range(self.warmup):
            result = fn(*args, **kwargs)
        times = []
        for _ in range(self.reps):
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            times.append(time.perf_counter() - t0)
        self.stats = SimpleNamespace(
            stats=SimpleNamespace(
                mean=statistics.fmean(times),
                stddev=statistics.stdev(times) if len(times) > 1 else 0.0,
            )
        )
        return result


def _torus_thousand_flows(n_flows: int = 1000, seed: int = 0):
    """1,000 random flows on a bare 8x8x8 torus (512 nodes)."""
    import numpy as np

    from repro.network.flow import Flow
    from repro.routing.deterministic import DimOrderRouter
    from repro.torus.topology import TorusTopology

    topo = TorusTopology((8, 8, 8))
    router = DimOrderRouter(topo)
    rng = np.random.default_rng(seed)
    flows = []
    for i in range(n_flows):
        src, dst = rng.choice(topo.nnodes, size=2, replace=False)
        path = router.path(int(src), int(dst))
        size = float(rng.integers(1, 8) * 1024 * 1024)
        flows.append(Flow(fid=f"f{i}", size=size, path=path.links))
    return flows


def _campaign_scenarios(n: int = 200, seed: int = 0):
    """``n`` small independent transfer scenarios (campaign-shaped).

    Mirrors what ``repro batch`` / the loadgen transfer mix feed the
    simulator: 3-9 flows each on a small torus, with staggered starts,
    delays and a few cross-flow dependencies.
    """
    import numpy as np

    from repro.network.flow import Flow
    from repro.routing.deterministic import DimOrderRouter
    from repro.torus.topology import TorusTopology

    topo = TorusTopology((4, 4, 4))
    router = DimOrderRouter(topo)
    cap = 2.0e9
    scenarios = []
    for s in range(n):
        rng = np.random.default_rng([seed, s])
        flows = []
        for i in range(3 + s % 7):
            src, dst = rng.choice(topo.nnodes, size=2, replace=False)
            path = router.path(int(src), int(dst))
            size = float(rng.integers(1, 64)) * 65536.0
            deps = (f"f{i - 2}",) if i >= 2 and rng.random() < 0.3 else ()
            flows.append(
                Flow(
                    fid=f"f{i}", size=size, path=path.links,
                    start_time=float(rng.uniform(0, 0.002)),
                    delay=float(rng.uniform(0, 1e-4)), deps=deps,
                )
            )
        scenarios.append(((lambda link: cap), flows))
    return scenarios


def _campaign_throughput(n_scenarios: int, reps: int) -> dict:
    """Scenarios/sec, serial loop vs one batched pass, reps interleaved.

    Serial runs each scenario through its own :class:`FlowSim` (the
    pre-PR-8 campaign execution model); batched stacks all of them into
    one :class:`~repro.network.batchsim.BatchFlowSim` block-diagonal
    solve.  Results are byte-identical either way, so this is a pure
    dispatch-overhead measurement.
    """
    from repro.network.batchsim import BatchFlowSim

    scenarios = _campaign_scenarios(n_scenarios)
    batcher = BatchFlowSim(MIRA_PARAMS)

    def run_batched():
        return batcher.simulate_many(scenarios)

    def run_serial():
        return [FlowSim(c, MIRA_PARAMS).run(f) for c, f in scenarios]

    run_batched()  # warm both out of the measurement
    run_serial()
    t_b, t_s = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_batched()
        t_b.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_serial()
        t_s.append(time.perf_counter() - t0)
    b_mean, s_mean = statistics.fmean(t_b), statistics.fmean(t_s)
    return {
        "scenarios": n_scenarios,
        "serial_mean_s": s_mean,
        "batched_mean_s": b_mean,
        "serial_scen_per_s": n_scenarios / s_mean,
        "batched_scen_per_s": n_scenarios / b_mean,
        "speedup_mean": s_mean / b_mean,
        "speedup_best": min(t_s) / min(t_b),
        "reps": reps,
    }


def _faulted_campaign_throughput(
    n_scenarios: int,
    reps: int,
    *,
    nnodes: int = 64,
    nbytes: int = 1 << 20,
    fault_frac: float = 0.10,
    seed: int = 0,
) -> dict:
    """Fault-tolerant campaign throughput, batched vs forced-serial.

    ``fault_frac`` of the scenarios carry a seeded link-fault trace
    (capacity drops and hard link-down events mid-transfer); all run
    through the resilience executor.  Forced-serial executes one
    :func:`run_resilient_transfer` per scenario (the pre-PR-9 model);
    batched hands the whole campaign to
    :func:`run_resilient_transfer_many`, which solves each wave's flow
    simulations in one block-diagonal pass.  Outcomes are required to
    be byte-identical, the batched path must stay engaged (zero
    ``resilience.batch.fallback`` growth), and the recorded speedup is
    CI's regression gate.
    """
    import numpy as np

    from repro.machine.faults import random_fault_trace
    from repro.resilience import run_resilient_transfer
    from repro.resilience.chaos import geometry_specs
    from repro.resilience.executor import run_resilient_transfer_many

    system = mira_system(nnodes=nnodes)
    geometries = ("p2p", "group", "fanin")
    spec_sets, traces = [], []
    for i in range(n_scenarios):
        rng = np.random.default_rng([seed, i])
        geometry = geometries[i % len(geometries)]
        size = float(nbytes) * float(rng.integers(1, 4))
        spec_sets.append(geometry_specs(system, geometry, size))
        traces.append(
            random_fault_trace(
                system.topology, 3, hard_fraction=0.5, seed=[seed, i]
            )
            if rng.random() < fault_frac
            else None
        )

    def run_batched():
        return run_resilient_transfer_many(system, spec_sets, traces=traces)

    def run_serial():
        return [
            run_resilient_transfer(system, specs, trace=trace)
            for specs, trace in zip(spec_sets, traces)
        ]

    fallback_before = (
        get_registry().snapshot()["counters"].get("resilience.batch.fallback", 0)
    )
    batched_out = run_batched()  # warm both out of the measurement
    serial_out = run_serial()
    fallback_after = (
        get_registry().snapshot()["counters"].get("resilience.batch.fallback", 0)
    )

    parity = 0.0
    for b, s in zip(batched_out, serial_out):
        parity = max(
            parity,
            abs(b.makespan - s.makespan),
            abs(b.delivered_bytes - s.delivered_bytes),
            abs(b.residue_bytes - s.residue_bytes),
        )

    t_b, t_s = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_batched()
        t_b.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_serial()
        t_s.append(time.perf_counter() - t0)
    b_mean, s_mean = statistics.fmean(t_b), statistics.fmean(t_s)
    return {
        "scenarios": n_scenarios,
        "nnodes": nnodes,
        "fault_frac": fault_frac,
        "n_faulted": sum(1 for t in traces if t is not None),
        "serial_mean_s": s_mean,
        "batched_mean_s": b_mean,
        "serial_scen_per_s": n_scenarios / s_mean,
        "batched_scen_per_s": n_scenarios / b_mean,
        "speedup_mean": s_mean / b_mean,
        "speedup_best": min(t_s) / min(t_b),
        "parity_max_abs": parity,
        "batched_fallbacks": fallback_after - fallback_before,
        "reps": reps,
    }


def _verification_overhead(
    n_scenarios: int,
    reps: int,
    *,
    nnodes: int = 64,
    nbytes: int = 1 << 20,
    seed: int = 0,
) -> dict:
    """Fault-free cost of end-to-end extent verification, interleaved.

    Runs the same fault-free campaign twice per rep: once with no SDC
    model (verification dormant — the pre-PR behaviour) and once with a
    *null but active* :class:`~repro.machine.faults.SDCModel` (every
    delivered extent's checksum is recomputed and compared, nothing is
    ever corrupted).  Verification is pure observation, so the outcomes
    must be byte-identical; the recorded overhead fraction is the CI
    gate (must stay <= 3%).
    """
    import numpy as np

    from repro.machine.faults import SDCModel
    from repro.resilience.chaos import geometry_specs
    from repro.resilience.executor import run_resilient_transfer_many

    system = mira_system(nnodes=nnodes)
    geometries = ("p2p", "group", "fanin")
    spec_sets = []
    for i in range(n_scenarios):
        rng = np.random.default_rng([seed, i])
        size = float(nbytes) * float(rng.integers(1, 4))
        spec_sets.append(geometry_specs(system, geometries[i % 3], size))
    null_sdc = [SDCModel(seed=seed)] * n_scenarios

    def run_plain():
        return run_resilient_transfer_many(system, spec_sets)

    def run_verified():
        return run_resilient_transfer_many(system, spec_sets, sdc=null_sdc)

    plain_out = run_plain()  # warm both out of the measurement
    verified_out = run_verified()
    parity = 0.0
    for p, v in zip(plain_out, verified_out):
        parity = max(
            parity,
            abs(p.makespan - v.makespan),
            abs(p.delivered_bytes - v.delivered_bytes),
        )
    t_p, t_v = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        run_plain()
        t_p.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_verified()
        t_v.append(time.perf_counter() - t0)
    p_mean, v_mean = statistics.fmean(t_p), statistics.fmean(t_v)
    return {
        "scenarios": n_scenarios,
        "nnodes": nnodes,
        "plain_mean_s": p_mean,
        "verified_mean_s": v_mean,
        "overhead_frac_mean": (v_mean - p_mean) / p_mean,
        "overhead_frac_best": (min(t_v) - min(t_p)) / min(t_p),
        "parity_max_abs": parity,
        "reps": reps,
    }


def _recovered_goodput(
    *, nnodes: int = 128, nbytes: int = 4 << 20, seeds=(0, 1)
) -> dict:
    """Goodput retained while detecting and re-driving silent corruption.

    Runs the corruption chaos scenarios and reports delivered goodput
    as a fraction of each geometry's fault-free baseline, plus the
    detection/quarantine totals.  ``corrupted_acknowledged_bytes`` must
    be zero across every run — that is the tentpole invariant, gated
    here as well as in the campaign itself.
    """
    from repro.resilience.chaos import CampaignConfig, run_campaign

    report = run_campaign(
        CampaignConfig(
            nnodes=nnodes,
            nbytes=nbytes,
            seeds=tuple(seeds),
            scenarios=("silent-corruption", "corrupting-proxy"),
        )
    )
    runs = report["runs"]
    baselines = report["baseline_throughput_Bps"]
    fracs = [
        r["goodput_Bps"] / baselines[r["geometry"]]
        for r in runs
        if baselines.get(r["geometry"])
    ]
    return {
        "campaign_passed": report["passed"],
        "n_runs": report["n_runs"],
        "corrupt_extents_detected": sum(
            r["corrupt_extents_detected"] for r in runs
        ),
        "corrupt_bytes_redriven": sum(r["corrupt_bytes_redriven"] for r in runs),
        "stale_drops": sum(r["stale_drops"] for r in runs),
        "corrupted_acknowledged_bytes": sum(
            r["corrupted_acknowledged_bytes"] for r in runs
        ),
        "quarantined_carriers": sum(
            r["quarantined_links"] + r["quarantined_proxies"] for r in runs
        ),
        "recovered_goodput_frac_mean": statistics.fmean(fracs) if fracs else 0.0,
        "recovered_goodput_frac_min": min(fracs) if fracs else 0.0,
    }


def _interleaved_speedup(make_new, make_seed, run, reps: int) -> dict:
    """Mean times and speedup of ``new`` vs ``seed``, reps interleaved.

    Alternating new/seed repetitions decorrelates the ratio from slow
    drift in machine load — the recorded speedup is a same-conditions
    comparison, unlike two back-to-back timing blocks.
    """
    sim_new, sim_seed = make_new(), make_seed()
    run(sim_new)  # warm both out of the measurement
    run(sim_seed)
    t_new, t_seed = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        run(sim_new)
        t_new.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run(sim_seed)
        t_seed.append(time.perf_counter() - t0)
    new_mean, seed_mean = statistics.fmean(t_new), statistics.fmean(t_seed)
    return {
        "new_mean_s": new_mean,
        "seed_mean_s": seed_mean,
        "new_best_s": min(t_new),
        "seed_best_s": min(t_seed),
        "speedup_mean": seed_mean / new_mean,
        "speedup_best": min(t_seed) / min(t_new),
        "reps": reps,
    }


def main(argv: "list[str] | None" = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--reps", type=int, default=5, help="timed reps per benchmark")
    ap.add_argument(
        "--seed-reps",
        type=int,
        default=3,
        help="interleaved reps for the seed-relative speedup measurements",
    )
    ap.add_argument(
        "--resilience",
        action="store_true",
        help="also run the partial-progress retransmit benchmark and "
        "record its savings under the 'resilience' key",
    )
    ap.add_argument(
        "--skip-perf",
        action="store_true",
        help="skip the simulator microbenchmarks and seed speedups "
        "(CI's chaos-smoke job records only the resilience numbers)",
    )
    ap.add_argument(
        "--service",
        action="store_true",
        help="also run the adaptive-vs-static service overload soak and "
        "write its bench-service/1 report to --service-out",
    )
    ap.add_argument(
        "--service-out",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="destination of the --service report",
    )
    ap.add_argument(
        "--service-duration",
        type=float,
        default=8.0,
        help="ramp length [s] of each --service run",
    )
    ap.add_argument(
        "--chaos-service",
        action="store_true",
        help="also measure faulted-campaign throughput (batched vs "
        "forced-serial under link-fault traces), fault-free "
        "verification overhead (gated <= 3%%), recovered goodput under "
        "silent corruption, and run a seeded service chaos campaign; "
        "writes a bench-resilience/1 report to --resilience-out",
    )
    ap.add_argument(
        "--resilience-out",
        type=Path,
        default=REPO_ROOT / "BENCH_resilience.json",
        help="destination of the --chaos-service report",
    )
    ap.add_argument(
        "--chaos-requests",
        type=int,
        default=200,
        help="requests in the --chaos-service campaign",
    )
    args = ap.parse_args(argv)
    setup_cli_logging("info")
    if args.skip_perf and not (
        args.resilience or args.service or args.chaos_service
    ):
        ap.error(
            "--skip-perf leaves nothing to record without "
            "--resilience/--service/--chaos-service"
        )

    resilience_ok = True
    if args.chaos_service:
        import tempfile

        from repro.resilience.service_chaos import (
            ServiceCampaignConfig,
            run_service_campaign,
        )

        log.info(
            "measuring faulted campaign throughput (batched vs forced-serial) ..."
        )
        faulted = _faulted_campaign_throughput(128, max(args.seed_reps, 3))
        log.info(
            f"faulted_campaign: batched {faulted['batched_scen_per_s']:.0f} "
            f"scen/s vs serial {faulted['serial_scen_per_s']:.0f} scen/s -> "
            f"{faulted['speedup_mean']:.2f}x mean "
            f"({faulted['speedup_best']:.2f}x best), parity "
            f"{faulted['parity_max_abs']:.1e}, "
            f"fallbacks {faulted['batched_fallbacks']}"
        )
        log.info(
            "measuring fault-free verification overhead (plain vs null-SDC) ..."
        )
        verification = _verification_overhead(96, max(args.seed_reps, 5))
        log.info(
            f"verification_overhead: plain "
            f"{verification['plain_mean_s'] * 1e3:.1f} ms, verified "
            f"{verification['verified_mean_s'] * 1e3:.1f} ms -> "
            f"{verification['overhead_frac_mean']:+.2%} mean "
            f"({verification['overhead_frac_best']:+.2%} best), parity "
            f"{verification['parity_max_abs']:.1e}"
        )
        log.info("measuring recovered goodput under silent corruption ...")
        recovered = _recovered_goodput()
        log.info(
            f"recovered_goodput: {recovered['recovered_goodput_frac_mean']:.1%} "
            f"of fault-free baseline (min "
            f"{recovered['recovered_goodput_frac_min']:.1%}) across "
            f"{recovered['n_runs']} corruption runs; "
            f"{recovered['corrupt_extents_detected']} corrupt arrivals "
            f"detected, {recovered['corrupted_acknowledged_bytes']} corrupt "
            f"bytes acknowledged, "
            f"{recovered['quarantined_carriers']} carriers quarantined"
        )
        log.info(
            f"running seeded service chaos campaign "
            f"({args.chaos_requests} requests) ..."
        )
        with tempfile.TemporaryDirectory() as td:
            chaos_summary = run_service_campaign(
                ServiceCampaignConfig(n_requests=args.chaos_requests),
                out_path=Path(td) / "campaign.json",
                progress=log.info,
            )
        res_doc = {
            "schema": "bench-resilience/1",
            "python": sys.version.split()[0],
            "faulted_campaign": faulted,
            "verification_overhead": verification,
            "recovered_goodput": recovered,
            "chaos_service": chaos_summary,
        }
        atomic_write_text(
            args.resilience_out,
            json.dumps(res_doc, indent=2, sort_keys=True) + "\n",
        )
        log.info(f"wrote {args.resilience_out}")
        if faulted["parity_max_abs"] > 1e-12:
            log.warning(
                f"batched/serial outcome parity violated "
                f"({faulted['parity_max_abs']:.3e} > 1e-12)"
            )
            resilience_ok = False
        if faulted["batched_fallbacks"] != 0:
            log.warning(
                f"batched path fell back to serial "
                f"{faulted['batched_fallbacks']} time(s) during the campaign"
            )
            resilience_ok = False
        if faulted["speedup_mean"] < 2.0:
            log.warning(
                f"faulted campaign speedup below the 2x gate "
                f"({faulted['speedup_mean']:.2f}x)"
            )
            resilience_ok = False
        if verification["overhead_frac_mean"] > 0.03:
            log.warning(
                f"fault-free verification overhead above the 3% gate "
                f"({verification['overhead_frac_mean']:.2%})"
            )
            resilience_ok = False
        if verification["parity_max_abs"] > 0.0:
            log.warning(
                f"verification changed a fault-free outcome "
                f"({verification['parity_max_abs']:.3e} != 0) — it must be "
                f"pure observation"
            )
            resilience_ok = False
        if not recovered["campaign_passed"]:
            log.warning("corruption chaos campaign failed its invariants")
            resilience_ok = False
        if recovered["corrupted_acknowledged_bytes"] != 0:
            log.warning(
                f"corrupted bytes were acknowledged "
                f"({recovered['corrupted_acknowledged_bytes']})"
            )
            resilience_ok = False
        if not chaos_summary["passed"]:
            log.warning(
                f"service chaos campaign failed its invariants: "
                f"{chaos_summary['failures']}"
            )
            resilience_ok = False
        if args.skip_perf and not (args.resilience or args.service):
            return 0 if resilience_ok else 1

    service_ok = True
    if args.service:
        from repro.loadgen import service_benchmark

        log.info("running adaptive-vs-static service overload soak ...")
        svc_doc = service_benchmark(
            duration_s=args.service_duration, progress=log.info
        )
        atomic_write_text(
            args.service_out, json.dumps(svc_doc, indent=2, sort_keys=True) + "\n"
        )
        verdict = svc_doc["comparison"]
        log.info(
            f"wrote {args.service_out}: goodput gain "
            f"{verdict['goodput_gain']:+.1%}, CI separated: "
            f"{verdict['goodput_ci_separated']}"
        )
        service_ok = (
            verdict["goodput_gain"] >= 0 and verdict["goodput_ci_separated"]
        )
        if not service_ok:
            log.warning("adaptive admission did not separate from static")
        if args.skip_perf and not args.resilience:
            return 0 if (service_ok and resilience_ok) else 1

    resilience = None
    if args.resilience:
        import bench_ext_resilience as bench_res

        log.info("running partial-progress retransmit benchmark ...")
        fig = bench_res.run_partial_progress()
        full = fig.get("full retransmit")
        part = fig.get("partial progress (ledger)")
        resilience = {
            "figure": fig.figure,
            "sizes": list(full.x),
            "bytes_resent_full": list(full.y),
            "bytes_resent_partial": list(part.y),
            **fig.notes,
        }
        log.info(
            f"retransmit savings {fig.notes['retransmit_savings_frac']:.1%}, "
            f"goodput gain {fig.notes['goodput_gain_at_big']:.2f}x"
        )

    if args.skip_perf:
        doc = {
            "schema": "bench-simulator/1",
            "python": sys.version.split()[0],
            "resilience": resilience,
        }
        atomic_write_text(args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n")
        log.info(f"wrote {args.out}")
        return 0 if (service_ok and resilience_ok) else 1

    system512 = mira_system(nnodes=512)

    log.info("running simulator microbenchmarks ...")
    bench.test_waterfill_1k_flows(BenchmarkShim(reps=args.reps))
    bench.test_eventloop_1k_exact(BenchmarkShim(reps=args.reps))
    bench.test_flowsim_small_exact(BenchmarkShim(reps=args.reps))
    # Sub-millisecond paths: more reps for a stable mean.
    bench.test_deterministic_routing(BenchmarkShim(reps=50), system512)
    bench.test_proxy_search(BenchmarkShim(reps=20), system512)
    bench.test_tracer_overhead()
    bench.test_exact_mode_not_slower_than_seed()

    log.info("measuring seed-relative speedups (interleaved) ...")
    flows, system = bench._thousand_flows()
    torus_flows = _torus_thousand_flows()
    torus_cap = 2.0e9
    speedups = {
        "eventloop_1k_exact": _interleaved_speedup(
            lambda: FlowSim(system.capacity, MIRA_PARAMS),
            lambda: SeedFlowSim(system.capacity, MIRA_PARAMS),
            lambda sim: sim.run(flows),
            args.seed_reps,
        ),
        "waterfill_1k_batched": _interleaved_speedup(
            lambda: FlowSim(system.capacity, MIRA_PARAMS, batch_tol=0.5),
            lambda: SeedFlowSim(system.capacity, MIRA_PARAMS, batch_tol=0.5),
            lambda sim: sim.run(flows),
            args.seed_reps,
        ),
        # Uniform-capacity 8x8x8 torus (512 nodes), exact mode: no rate
        # caps bind, so every freeze goes through the real-link incidence
        # kernel — the purest waterfill stressor.
        "waterfill_1k_torus_exact": _interleaved_speedup(
            lambda: FlowSim(lambda link: torus_cap),
            lambda: SeedFlowSim(lambda link: torus_cap),
            lambda sim: sim.run(torus_flows),
            args.seed_reps,
        ),
    }
    for name, rec in speedups.items():
        log.info(
            f"{name}: new {rec['new_mean_s'] * 1e3:.1f} ms, "
            f"seed {rec['seed_mean_s'] * 1e3:.1f} ms "
            f"-> {rec['speedup_mean']:.2f}x mean ({rec['speedup_best']:.2f}x best)"
        )

    log.info("measuring campaign throughput (serial vs batched) ...")
    campaign = _campaign_throughput(200, max(args.seed_reps, 3))
    log.info(
        f"campaign_throughput: batched {campaign['batched_scen_per_s']:.0f} "
        f"scen/s vs serial {campaign['serial_scen_per_s']:.0f} scen/s "
        f"-> {campaign['speedup_mean']:.2f}x mean "
        f"({campaign['speedup_best']:.2f}x best)"
    )

    # Fold the bench.* gauges into {benchmark: {mean_s, stddev_s, ...}}.
    gauges = get_registry().snapshot()["gauges"]
    benchmarks: dict[str, dict] = {}
    for name, value in gauges.items():
        if not name.startswith("bench."):
            continue
        stem, _, field = name[len("bench.") :].rpartition(".")
        if not stem:  # bare gauge such as bench.null_tracer_overhead_frac
            stem, field = field, "value"
        benchmarks.setdefault(stem, {})[field] = value

    doc = {
        "schema": "bench-simulator/1",
        "python": sys.version.split()[0],
        "benchmarks": benchmarks,
        "speedup_vs_seed": speedups,
        "campaign_throughput": campaign,
        "reps": args.reps,
    }
    if resilience is not None:
        doc["resilience"] = resilience
    atomic_write_text(args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    log.info(f"wrote {args.out}")

    headline = speedups["eventloop_1k_exact"]["speedup_mean"]
    if headline < 1.0:
        log.warning(f"vectorized event loop slower than seed ({headline:.2f}x)")
        return 1
    if campaign["speedup_mean"] < 1.0:
        log.warning(
            f"batched campaign simulation slower than serial "
            f"({campaign['speedup_mean']:.2f}x)"
        )
        return 1
    return 0 if (service_ok and resilience_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
