#!/usr/bin/env python3
"""Time-to-solution of a coupled simulation under four movement policies.

The end-user metric behind the paper's microbenchmarks: a coupled code
alternates compute (50 ms/step here) with a boundary exchange between
its two modules.  Better data movement shrinks the exchange share of
every step.

Run:  python examples/coupled_time_to_solution.py
"""

from repro import mira_system
from repro.util.units import MiB, format_time
from repro.workloads import corner_groups
from repro.workloads.coupled_app import simulate_coupled_run


def main() -> None:
    system = mira_system(nnodes=512)
    layout = corner_groups(system.topology, 32)
    steps, nbytes = 200, 16 * MiB
    print(
        f"coupled run: {steps} steps, {nbytes >> 20} MiB/pair exchanged "
        f"between two {layout.group_size}-node modules on {system}\n"
    )
    print(f"{'policy':>10} {'exchange/step':>14} {'of step':>8} {'total':>10}")
    baseline = None
    for policy in ("direct", "proxy", "auto", "pipeline"):
        run = simulate_coupled_run(
            system,
            layout,
            exchange_bytes=nbytes,
            steps=steps,
            policy=policy,
        )
        if baseline is None:
            baseline = run.total_seconds
        print(
            f"{policy:>10} {format_time(run.exchange_seconds):>14} "
            f"{run.exchange_fraction:>7.0%} {format_time(run.total_seconds):>10} "
            f"({baseline / run.total_seconds:.2f}x)"
        )


if __name__ == "__main__":
    main()
