#!/usr/bin/env python3
"""HACC checkpoint I/O (the paper's §VI application benchmark).

HACC writes 10% of its particle data from the ranks in the window
[0.4 N, 0.5 N) — a contiguous sparse band.  Default collective I/O
funnels that band through the few aggregators owning its file range;
Algorithm 2 spreads it over every I/O node of the partition.

Run:  python examples/hacc_checkpoint.py
"""

from repro import hacc_io_sizes, mira_system, run_io_movement
from repro.torus.mapping import RankMapping
from repro.torus.partition import CORES_PER_NODE
from repro.util.units import GiB, format_rate
from repro.workloads.hacc import HACCConfig


def main() -> None:
    cfg = HACCConfig()
    for ncores in (8192, 16384):
        system = mira_system(ncores=ncores)
        mapping = RankMapping(system.topology, ranks_per_node=CORES_PER_NODE)
        sizes = hacc_io_sizes(mapping.nranks, cfg)
        writers = int((sizes > 0).sum())
        print(
            f"\n{ncores} cores: checkpointing {sizes.sum() / GiB:.1f} GiB "
            f"from {writers}/{mapping.nranks} ranks"
        )
        ours = run_io_movement(
            system,
            sizes,
            method="topology_aware",
            mapping=mapping,
            batch_tol=0.05,
            fair_tol=0.02,
        )
        base = run_io_movement(
            system,
            sizes,
            method="collective",
            mapping=mapping,
            batch_tol=0.05,
            fair_tol=0.02,
        )
        print(f"  customized aggregators:     {format_rate(ours.throughput)}")
        print(f"  default MPI collective I/O: {format_rate(base.throughput)}")
        print(f"  speedup: {ours.throughput / base.throughput:.2f}x")


if __name__ == "__main__":
    main()
