#!/usr/bin/env python3
"""In-situ analysis output: sparse writes through Algorithm 2.

An in-situ feature detector leaves each rank with a different amount of
reduced data (regions of turbulence, query hits...).  This script writes
both of the paper's sparse patterns to the I/O nodes of a 1,024-node
partition with topology-aware aggregation and with default MPI
collective I/O, and reports the throughput and per-ION load balance that
drive Figure 10.

Run:  python examples/insitu_io_aggregation.py
"""

from repro import mira_system, run_io_movement
from repro.torus.mapping import RankMapping
from repro.torus.partition import CORES_PER_NODE
from repro.util.units import GiB, MiB, format_rate
from repro.workloads import pareto_pattern, uniform_pattern


def report(name: str, outcome) -> None:
    print(
        f"  {name:<28} {format_rate(outcome.throughput):>11}   "
        f"IONs used: {outcome.active_ions:>2}   "
        f"ION imbalance (max/mean): {outcome.ion_imbalance:.2f}"
    )


def main() -> None:
    system = mira_system(nnodes=1024)
    mapping = RankMapping(system.topology, ranks_per_node=CORES_PER_NODE)
    print(f"machine: {system} ({mapping.nranks} ranks)")

    patterns = {
        "Pattern 1 (uniform sparse)": uniform_pattern(
            mapping.nranks, max_size=8 * MiB, seed=7
        ),
        "Pattern 2 (Pareto sparse)": pareto_pattern(
            mapping.nranks, max_size=8 * MiB, seed=7
        ),
    }
    for name, sizes in patterns.items():
        print(f"\n{name}: {sizes.sum() / GiB:.1f} GiB across {mapping.nranks} ranks")
        ours = run_io_movement(
            system,
            sizes,
            method="topology_aware",
            mapping=mapping,
            batch_tol=0.05,
            fair_tol=0.02,
        )
        base = run_io_movement(
            system,
            sizes,
            method="collective",
            mapping=mapping,
            batch_tol=0.05,
            fair_tol=0.02,
        )
        report("topology-aware (Algorithm 2)", ours)
        report("default MPI collective I/O", base)
        print(f"  -> speedup {ours.throughput / base.throughput:.2f}x")


if __name__ == "__main__":
    main()
