#!/usr/bin/env python3
"""Multiphysics data coupling with automatic direct/proxy planning.

Models the paper's motivating scenario (§I): two physics modules on
disjoint contiguous regions of a 2,048-node partition exchange boundary
data every coupling step while the rest of the machine is
communication-free.  The :class:`repro.TransferPlanner` applies the full
Algorithm 1 — proxy search, the Eq. 4/5 size threshold, multipath
execution — and this script sweeps the exchanged volume to show the
planner switching strategies at the threshold.

Run:  python examples/multiphysics_coupling.py
"""

from repro import TransferPlanner, mira_system
from repro.bench.harness import sweep_sizes
from repro.util.units import KiB, format_bytes, format_rate
from repro.workloads import corner_groups, pairwise_transfers


def main() -> None:
    system = mira_system(nnodes=2048)  # the paper's Figure-6 machine
    layout = corner_groups(system.topology, group_size=256)
    print(
        f"coupling {layout.group_size} nodes of module S with "
        f"{layout.group_size} nodes of module T on {system}"
    )

    planner = TransferPlanner(system)
    plan = planner.find_plan(layout.pairs())
    print(
        f"proxy search: every source found >= {plan.k_min} link-disjoint "
        f"proxies (feasible: {plan.feasible})\n"
    )

    print(f"{'boundary size':>14} {'strategy':>10} {'throughput/pair':>16} {'vs direct':>10}")
    for nbytes in sweep_sizes(64 * KiB, 16 * 1024 * KiB, factor=4):
        specs = pairwise_transfers(layout, nbytes)
        auto = planner.execute(specs, batch_tol=0.02)
        from repro.core import run_transfer

        direct = run_transfer(system, specs, mode="direct", batch_tol=0.02)
        strategy = auto.mode_used[layout.pairs()[0]]
        per_pair = auto.throughput / layout.group_size
        gain = auto.throughput / direct.throughput
        print(
            f"{format_bytes(nbytes):>14} {strategy:>10} "
            f"{format_rate(per_pair):>16} {gain:>9.2f}x"
        )

    print(
        "\nThe planner goes direct below the Eq. 4/5 threshold and splits "
        "across proxies above it — the Figure 6 behaviour."
    )


if __name__ == "__main__":
    main()
