#!/usr/bin/env python3
"""Quickstart: the paper's two mechanisms in ~40 lines.

Builds the 128-node Mira partition from the paper's Figure 5, then:

1. moves 8 MiB between the first and last node directly (single
   deterministic path) and via Algorithm-1 proxies, and
2. writes a sparse in-situ dataset to the I/O nodes with Algorithm 2 and
   with default MPI collective I/O.

Run:  python examples/quickstart.py
"""

from repro import (
    TransferSpec,
    mira_system,
    run_io_movement,
    run_transfer,
    uniform_pattern,
)
from repro.util.units import MiB, format_rate


def main() -> None:
    system = mira_system(nnodes=128)  # 2x2x4x4x2 torus, 1 pset, 2 bridges
    print(f"machine: {system}")

    # --- multipath proxies (paper §IV-C, Figure 5) -------------------------
    spec = TransferSpec(src=0, dst=system.nnodes - 1, nbytes=8 * MiB)
    direct = run_transfer(system, [spec], mode="direct")
    proxied = run_transfer(system, [spec], mode="proxy", max_proxies=4)
    k = proxied.mode_used[(spec.src, spec.dst)]
    print(f"\n8 MiB node {spec.src} -> node {spec.dst}:")
    print(f"  direct (single deterministic path): {format_rate(direct.throughput)}")
    print(f"  multipath ({k}):                 {format_rate(proxied.throughput)}")
    print(f"  speedup: {proxied.throughput / direct.throughput:.2f}x")

    # --- topology-aware I/O aggregation (paper §IV-D, Figure 10) -----------
    sizes = uniform_pattern(system.nnodes, max_size=8 * MiB, seed=42)
    ours = run_io_movement(system, sizes, method="topology_aware")
    base = run_io_movement(system, sizes, method="collective")
    print(f"\nsparse write of {sizes.sum() / MiB:.0f} MiB to the I/O nodes:")
    print(f"  topology-aware aggregation: {format_rate(ours.throughput)}")
    print(f"  default MPI collective I/O: {format_rate(base.throughput)}")
    print(f"  speedup: {ours.throughput / base.throughput:.2f}x")


if __name__ == "__main__":
    main()
