#!/usr/bin/env python3
"""Under the hood: deterministic routing, zones and proxy geometry.

Shows the machinery the paper's placement heuristics rest on: the
longest-to-shortest dimension order, zone-dependent routes, why a single
deterministic path leaves 9 of a node's 10 links idle, and how Algorithm
1 finds link-disjoint two-hop detours.

Run:  python examples/routing_and_proxies.py
"""

from repro import ZoneId, mira_system, route
from repro.core import find_proxies_for_pair
from repro.routing.zones import zone_dim_order
from repro.routing.paths import count_link_loads


def main() -> None:
    system = mira_system(nnodes=128)
    t = system.topology
    src, dst = 0, t.nnodes - 1
    print(f"torus {t}; routing node {src} {t.coord(src)} -> {dst} {t.coord(dst)}")

    path = route(t, src, dst)
    print(f"\ndeterministic path ({path.nhops} hops):")
    print("  " + " -> ".join(t.describe_link(l) for l in path.links))
    print(
        f"  links used: {path.nhops} of the {2 * t.ndims} directions the "
        "source could drive — the underutilisation the paper attacks."
    )

    print("\nzone-dependent dimension orders for this pair:")
    for zone in ZoneId:
        order = zone_dim_order(zone, t.coord(src), t.coord(dst), t.shape)
        letters = "".join(t.dim_name(d) for d in order)
        print(f"  zone {int(zone)} ({zone.name}): {letters}")

    asg = find_proxies_for_pair(system, src, dst, max_proxies=4)
    print(f"\nAlgorithm 1 found {asg.k} link-disjoint proxies:")
    for proxy, p1, p2 in zip(asg.proxies, asg.phase1, asg.phase2):
        print(
            f"  proxy {proxy} {t.coord(proxy)}: "
            f"{p1.nhops} hops in, {p2.nhops} hops out"
        )
    loads = count_link_loads(asg.phase1)
    print(
        f"\nphase-1 paths touch {len(loads)} distinct links, "
        f"max load {max(loads.values())} (1 = fully disjoint, as Algorithm 1 guarantees)"
    )
    with_direct = count_link_loads(list(asg.phase1) + [path])
    print(
        f"adding the direct path raises the max load to "
        f"{max(with_direct.values())} — why the paper's 5th 'proxy' "
        "(the source itself) degrades throughput in Figure 7."
    )


if __name__ == "__main__":
    main()
