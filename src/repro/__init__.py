"""repro — Improving Data Movement Performance for Sparse Data Patterns
on the Blue Gene/Q Supercomputer (Bui, Leigh, Jung, Vishwanath, Papka;
ICPP 2014): a faithful, laptop-scale reproduction.

The package simulates a Blue Gene/Q partition — 5-D torus, deterministic
zone routing, Messaging-Unit endpoint costs, psets with bridge and I/O
nodes — and implements the paper's two mechanisms on top:

* **multipath proxy data movement** (Algorithm 1) for sparse transfers
  between compute-node groups, and
* **topology-aware dynamic I/O aggregation** (Algorithm 2) for sparse
  writes to the I/O nodes,

together with the baselines they are measured against (single-path
deterministic routing; ROMIO-style collective buffering).

Quick start::

    from repro import mira_system, TransferSpec, run_transfer

    system = mira_system(nnodes=128)          # the paper's 2x2x4x4x2 torus
    spec = TransferSpec(src=0, dst=127, nbytes=8 << 20)
    direct = run_transfer(system, [spec], mode="direct")
    proxied = run_transfer(system, [spec], mode="proxy")
    print(direct.throughput, proxied.throughput)   # ~1.6 GB/s vs ~3+ GB/s

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced figure.
"""

from repro.machine import BGQSystem, mira_system
from repro.network import (
    Flow,
    FlowSim,
    MIRA_PARAMS,
    NetworkParams,
    PacketSim,
    EndpointModel,
)
from repro.routing import DimOrderRouter, Path, ZoneId, route
from repro.torus import RankMapping, TorusTopology, partition_shape
from repro.core import (
    AggregationPlan,
    AggregatorConfig,
    IOOutcome,
    ProxyPlan,
    TransferModel,
    TransferOutcome,
    TransferPlanner,
    TransferSpec,
    find_proxies,
    plan_aggregation,
    run_io_movement,
    run_pipelined_transfer,
    run_transfer,
    run_transfer_many,
)
from repro.mpi import CollectiveIOConfig, FlowProgram, SimComm
from repro.resilience import (
    HealthMonitor,
    ResilientOutcome,
    ResilientPlanner,
    RetryPolicy,
    TransferAbortedError,
    run_resilient_transfer,
)
from repro.workloads import (
    corner_groups,
    hacc_io_sizes,
    pairwise_transfers,
    pareto_pattern,
    uniform_pattern,
)

__version__ = "1.0.0"

__all__ = [
    "BGQSystem",
    "mira_system",
    "Flow",
    "FlowSim",
    "MIRA_PARAMS",
    "NetworkParams",
    "PacketSim",
    "EndpointModel",
    "DimOrderRouter",
    "Path",
    "ZoneId",
    "route",
    "RankMapping",
    "TorusTopology",
    "partition_shape",
    "AggregationPlan",
    "AggregatorConfig",
    "IOOutcome",
    "ProxyPlan",
    "TransferModel",
    "TransferOutcome",
    "TransferPlanner",
    "TransferSpec",
    "find_proxies",
    "plan_aggregation",
    "run_io_movement",
    "run_pipelined_transfer",
    "run_transfer",
    "run_transfer_many",
    "CollectiveIOConfig",
    "FlowProgram",
    "SimComm",
    "HealthMonitor",
    "ResilientOutcome",
    "ResilientPlanner",
    "RetryPolicy",
    "TransferAbortedError",
    "run_resilient_transfer",
    "corner_groups",
    "hacc_io_sizes",
    "pairwise_transfers",
    "pareto_pattern",
    "uniform_pattern",
    "__version__",
]
