"""Graph-theoretic analysis of data movement — the paper's future work.

The conclusion of the paper proposes "an analytical model for the
achievable throughput and ... graph models for data movement in
different network topologies and with different shapes of partitions".
This package provides both:

* :mod:`repro.analysis.graphmodel` — the torus as a capacitated digraph
  (networkx): max-flow throughput bounds between nodes and node groups,
  edge-disjoint path counts, and the efficiency of Algorithm 1's proxy
  plans against those bounds.
* :mod:`repro.analysis.linkload` — per-dimension link-load summaries and
  ASCII heat reports of simulation results.
"""

from repro.analysis.graphmodel import (
    torus_digraph,
    max_flow_bound,
    group_max_flow_bound,
    edge_disjoint_path_count,
    proxy_plan_efficiency,
)
from repro.analysis.linkload import dimension_loads, link_load_report

__all__ = [
    "torus_digraph",
    "max_flow_bound",
    "group_max_flow_bound",
    "edge_disjoint_path_count",
    "proxy_plan_efficiency",
    "dimension_loads",
    "link_load_report",
]
