"""Max-flow throughput bounds on the torus digraph.

These bounds answer "how much better could *any* multipath scheme do?":

* :func:`max_flow_bound` — the min-cut capacity between two nodes: no
  routing scheme, proxied or otherwise, can exceed it.
* :func:`edge_disjoint_path_count` — the number of link-disjoint paths
  (max-flow with unit capacities): an upper bound on the number of
  carriers Algorithm 1 could ever place.
* :func:`proxy_plan_efficiency` — how close a concrete proxy assignment
  gets to the disjoint-path bound.

The paper's 10-link BG/Q node has min-cut 10·link_bw between far-apart
nodes; the measured 3.2 GB/s for k = 4 store-and-forward proxies is
``k/2 · stream_cap``, i.e. well below the topological bound — headroom
the pipelined extension (:mod:`repro.core.pipeline`) then exploits.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.core.proxy_select import ProxyAssignment
from repro.machine.system import BGQSystem
from repro.torus.topology import TorusTopology
from repro.util.validation import ConfigError


def torus_digraph(
    topology: TorusTopology,
    link_bw: float = 1.0,
) -> "nx.DiGraph":
    """The torus as a capacitated directed graph.

    Every directed torus link becomes one edge with ``capacity=link_bw``
    (parallel +/- links between the same node pair in size-2 rings merge
    into one edge of doubled capacity, matching the hardware's two
    cables).
    """
    if link_bw <= 0:
        raise ConfigError(f"link_bw must be > 0, got {link_bw}")
    g = nx.DiGraph()
    g.add_nodes_from(topology.all_nodes())
    for node in topology.all_nodes():
        for dim in range(topology.ndims):
            for sign in (+1, -1):
                if topology.shape[dim] == 1:
                    continue
                dst = topology.neighbor(node, dim, sign)
                if dst == node:
                    continue
                if g.has_edge(node, dst):
                    g[node][dst]["capacity"] += link_bw
                else:
                    g.add_edge(node, dst, capacity=link_bw)
    return g


def max_flow_bound(
    system: "BGQSystem | TorusTopology",
    src: int,
    dst: int,
) -> float:
    """Min-cut capacity between two nodes [bytes/s].

    An absolute upper bound on any (multi)path transfer between them.
    """
    topo, link_bw = _unpack(system)
    if src == dst:
        raise ConfigError("src and dst must differ")
    g = torus_digraph(topo, link_bw)
    value, _ = nx.maximum_flow(g, src, dst)
    return float(value)


def group_max_flow_bound(
    system: "BGQSystem | TorusTopology",
    sources: Sequence[int],
    dests: Sequence[int],
) -> float:
    """Min-cut capacity between two node groups [bytes/s].

    Super-source/super-sink max flow: bounds the aggregate rate of any
    group-to-group coupling exchange, whatever the pairing.
    """
    topo, link_bw = _unpack(system)
    sources = list(sources)
    dests = list(dests)
    if not sources or not dests:
        raise ConfigError("groups must be non-empty")
    if set(sources) & set(dests):
        raise ConfigError("groups must be disjoint")
    g = torus_digraph(topo, link_bw)
    ssrc, ssnk = "SRC", "SNK"
    for s in sources:
        g.add_edge(ssrc, s, capacity=float("inf"))
    for d in dests:
        g.add_edge(d, ssnk, capacity=float("inf"))
    value, _ = nx.maximum_flow(g, ssrc, ssnk)
    return float(value)


def edge_disjoint_path_count(
    system: "BGQSystem | TorusTopology",
    src: int,
    dst: int,
) -> int:
    """Number of pairwise link-disjoint src→dst paths.

    Upper-bounds the carrier count any placement algorithm can reach
    (equals the min of out-degree and in-degree on a torus by Menger's
    theorem, but computed exactly).
    """
    topo, _ = _unpack(system)
    if src == dst:
        raise ConfigError("src and dst must differ")
    g = torus_digraph(topo, 1.0)
    # Size-2 rings merged two unit links into capacity 2; max-flow with
    # these capacities counts disjoint *links*, which is what contention
    # is about.
    value, _ = nx.maximum_flow(g, src, dst)
    return int(round(value))


def proxy_plan_efficiency(
    system: BGQSystem,
    assignment: ProxyAssignment,
) -> dict:
    """How much of the topological path diversity a proxy plan captures.

    Returns a dict with the achieved carrier count, the edge-disjoint
    bound, their ratio, and the max-flow rate bound between the
    endpoints.
    """
    bound = edge_disjoint_path_count(system, assignment.source, assignment.dest)
    rate_bound = max_flow_bound(system, assignment.source, assignment.dest)
    return {
        "carriers": assignment.k,
        "disjoint_path_bound": bound,
        "path_efficiency": assignment.k / bound if bound else 0.0,
        "max_flow_rate": rate_bound,
    }


def _unpack(system: "BGQSystem | TorusTopology") -> tuple[TorusTopology, float]:
    if isinstance(system, BGQSystem):
        return system.topology, system.params.link_bw
    if isinstance(system, TorusTopology):
        return system, 1.0
    raise ConfigError("system must be a BGQSystem or TorusTopology")
