"""Link-load summaries and ASCII heat reports.

Turns a :class:`~repro.network.flowsim.FlowSimResult`'s per-link byte
counts into the per-dimension utilisation picture the paper argues from:
single-path transfers light up one thin trail of links; proxied
transfers recruit whole extra dimensions.
"""

from __future__ import annotations

from repro.machine.system import BGQSystem
from repro.network.flowsim import FlowSimResult
from repro.torus.links import link_id_parts
from repro.util.units import format_bytes

_BLOCKS = " .:-=+*#%@"


def dimension_loads(result: FlowSimResult, system: BGQSystem) -> dict[str, float]:
    """Bytes carried per torus dimension-direction (e.g. ``"+B"``), plus
    the I/O and storage link totals under ``"ION"`` / ``"STORAGE"``."""
    ndims = system.topology.ndims
    out: dict[str, float] = {}
    for link, nbytes in result.link_bytes.items():
        if link < system.topology.nlinks:
            _, dim, sign = link_id_parts(link, ndims)
            key = ("+" if sign > 0 else "-") + system.topology.dim_name(dim)
        elif link < system._storage_link_base:
            key = "ION"
        else:
            key = "STORAGE"
        out[key] = out.get(key, 0.0) + nbytes
    return out


def link_load_report(result: FlowSimResult, system: BGQSystem, *, width: int = 40) -> str:
    """An ASCII bar chart of bytes per dimension-direction."""
    loads = dimension_loads(result, system)
    if not loads:
        return "(no link traffic)"
    peak = max(loads.values())
    lines = []
    order = sorted(
        loads,
        key=lambda k: (k in ("ION", "STORAGE"), k.lstrip("+-"), k[0] == "-"),
    )
    for key in order:
        nbytes = loads[key]
        bar = "#" * max(1, int(width * nbytes / peak)) if nbytes else ""
        lines.append(f"{key:>8} {format_bytes(nbytes):>10} |{bar}")
    busy = len(result.link_bytes)
    lines.append(f"{busy} directed links carried traffic")
    return "\n".join(lines)
