"""Benchmark harness: one experiment per paper figure.

:mod:`repro.bench.figures` defines every evaluation artefact of the paper
(Figures 5–11) as a parameterised experiment returning a
:class:`repro.bench.harness.FigureResult`; :mod:`repro.bench.report`
renders those as the text tables/series recorded in EXPERIMENTS.md.  The
``benchmarks/`` directory wraps each experiment in pytest-benchmark.
"""

from repro.bench.harness import Series, FigureResult, sweep_sizes
from repro.bench.figures import (
    fig5_p2p_proxies,
    fig6_group_proxies,
    fig7_proxy_count,
    fig8_pattern1_histogram,
    fig9_pattern2_histogram,
    fig10_aggregation_scaling,
    fig11_hacc_io,
    model_threshold_check,
)
from repro.bench.report import render_figure, render_all

__all__ = [
    "Series",
    "FigureResult",
    "sweep_sizes",
    "fig5_p2p_proxies",
    "fig6_group_proxies",
    "fig7_proxy_count",
    "fig8_pattern1_histogram",
    "fig9_pattern2_histogram",
    "fig10_aggregation_scaling",
    "fig11_hacc_io",
    "model_threshold_check",
    "render_figure",
    "render_all",
]
