"""The paper's evaluation figures as runnable experiments.

Every function reproduces one artefact of the paper's evaluation
(§V microbenchmarks, §VI application benchmark) on the simulated Mira
and returns a :class:`~repro.bench.harness.FigureResult` whose series
carry the same quantities the paper plots.  Figures 1–4 are architecture
diagrams, not measurements, and have no experiment.

All experiments accept scaling knobs so the test suite can run reduced
versions; the defaults match the paper's configurations.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import FigureResult, Series, sweep_sizes
from repro.core import (
    AggregatorConfig,
    TransferModel,
    find_proxies,
    find_proxies_for_pair,
    forced_assignment,
    run_io_movement,
    run_transfer,
)
from repro.machine import mira_system
from repro.mpi import CollectiveIOConfig
from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.torus.mapping import RankMapping
from repro.torus.partition import CORES_PER_NODE, nodes_for_cores
from repro.util.units import GB, KiB, MiB
from repro.workloads import (
    corner_groups,
    hacc_io_sizes,
    pairwise_transfers,
    pareto_pattern,
    uniform_pattern,
)
from repro.workloads.sparse import size_histogram

#: Default x-grids matching the paper.
P2P_SIZES = sweep_sizes(1 * KiB, 128 * 1024 * KiB)
FIG10_CORES = (2048, 4096, 8192, 16384, 32768, 65536, 131072)
FIG11_CORES = (8192, 16384, 32768, 65536, 131072)


# --------------------------------------------------------------------- fig 5


def fig5_p2p_proxies(
    *,
    sizes: "Sequence[int] | None" = None,
    params: NetworkParams = MIRA_PARAMS,
    batch_tol: float = 0.0,
) -> FigureResult:
    """Figure 5: point-to-point PUT with and without 4 proxies.

    First and last node of a 128-node ``2x2x4x4x2`` partition; the paper
    reports a 256 KB crossover at ~1.4 GB/s, direct saturating near
    1.6 GB/s and the proxied transfer reaching ~3.2 GB/s.
    """
    sizes = list(sizes) if sizes is not None else P2P_SIZES
    system = mira_system(nnodes=128, params=params)
    src, dst = 0, system.nnodes - 1
    assignment = find_proxies_for_pair(system, src, dst, max_proxies=4)

    direct_y, proxy_y = [], []
    for nbytes in sizes:
        spec = _spec(src, dst, nbytes)
        direct_y.append(
            run_transfer(system, [spec], mode="direct", batch_tol=batch_tol).throughput
        )
        proxy_y.append(
            run_transfer(
                system,
                [spec],
                mode="proxy",
                assignments={(src, dst): assignment},
                batch_tol=batch_tol,
            ).throughput
        )
    fig = FigureResult(
        figure="fig5",
        title="P2P PUT throughput with and without proxies (2x2x4x4x2)",
        xlabel="message size [B]",
        ylabel="throughput [B/s]",
        series=[
            Series("direct", sizes, direct_y, {"paper_peak": 1.6 * GB}),
            Series(
                f"proxies:{assignment.k}",
                sizes,
                proxy_y,
                {"proxies": assignment.proxies, "paper_peak": 3.2 * GB},
            ),
        ],
    )
    fig.notes["crossover"] = fig.crossover(f"proxies:{assignment.k}", "direct")
    fig.notes["paper_crossover"] = 256 * KiB
    return fig


# --------------------------------------------------------------------- fig 6


def fig6_group_proxies(
    *,
    sizes: "Sequence[int] | None" = None,
    nnodes: int = 2048,
    group_size: int = 256,
    params: NetworkParams = MIRA_PARAMS,
    batch_tol: float = 0.02,
) -> FigureResult:
    """Figure 6: transfers between two groups of 256 nodes in a 2K-node
    ``4x4x4x16x2`` partition, with and without (3 groups of) proxies.

    Paper: crossover at 512 KB (~1.58 GB/s), direct saturating at
    ~1.6 GB/s per pair, proxied reaching ~2.4 GB/s per pair (1.5x).
    """
    sizes = list(sizes) if sizes is not None else P2P_SIZES
    system = mira_system(nnodes=nnodes, params=params)
    layout = corner_groups(system.topology, group_size)
    plan = find_proxies(system, layout.pairs())

    direct_y, proxy_y = [], []
    for nbytes in sizes:
        specs = pairwise_transfers(layout, nbytes)
        d = run_transfer(system, specs, mode="direct", batch_tol=batch_tol)
        p = run_transfer(
            system, specs, mode="proxy", assignments=plan.assignments, batch_tol=batch_tol
        )
        direct_y.append(d.throughput / layout.group_size)
        proxy_y.append(p.throughput / layout.group_size)
    kmin = plan.k_min
    fig = FigureResult(
        figure="fig6",
        title=f"Group-to-group PUT, {group_size} v {group_size} nodes in {nnodes}",
        xlabel="message size [B]",
        ylabel="per-pair throughput [B/s]",
        series=[
            Series("direct", sizes, direct_y, {"paper_peak": 1.6 * GB}),
            Series(
                f"proxies:{kmin}",
                sizes,
                proxy_y,
                {"k_min": kmin, "paper_peak": 2.4 * GB},
            ),
        ],
    )
    fig.notes["crossover"] = fig.crossover(f"proxies:{kmin}", "direct")
    fig.notes["paper_crossover"] = 512 * KiB
    return fig


# --------------------------------------------------------------------- fig 7


def fig7_proxy_count(
    *,
    sizes: "Sequence[int] | None" = None,
    nnodes: int = 512,
    group_size: int = 32,
    proxy_counts: Sequence[int] = (0, 2, 3, 4, 5),
    params: NetworkParams = MIRA_PARAMS,
    batch_tol: float = 0.02,
) -> FigureResult:
    """Figure 7: throughput vs number of proxy groups (2 groups of 32
    nodes, 512-node ``4x4x4x4x2`` partition).

    Paper: 2 groups → no improvement, 3 → 1.5x, 4 → 2x, 5 (the source
    itself as the 5th carrier) → performance drops from interference.
    """
    sizes = list(sizes) if sizes is not None else P2P_SIZES
    system = mira_system(nnodes=nnodes, params=params)
    layout = corner_groups(system.topology, group_size)
    plan = find_proxies(system, layout.pairs(), max_proxies=4)
    if plan.k_min < 4:
        raise RuntimeError(
            f"figure 7 geometry should admit 4 proxies, found {plan.k_min}"
        )

    series = []
    for k in proxy_counts:
        ys = []
        if k == 0:
            for nbytes in sizes:
                specs = pairwise_transfers(layout, nbytes)
                out = run_transfer(system, specs, mode="direct", batch_tol=batch_tol)
                ys.append(out.throughput / layout.group_size)
            series.append(Series("no proxies", sizes, ys))
            continue
        forced = {}
        for (s, d), a in plan.assignments.items():
            carriers = list(a.proxies[: min(k, 4)])
            if k == 5:
                carriers.append(s)  # the paper's "5th proxy is the source"
            forced[(s, d)] = forced_assignment(system, s, d, carriers)
        for nbytes in sizes:
            specs = pairwise_transfers(layout, nbytes)
            out = run_transfer(
                system,
                specs,
                mode="proxy",
                assignments=forced,
                min_proxies=2,
                batch_tol=batch_tol,
            )
            ys.append(out.throughput / layout.group_size)
        series.append(Series(f"{k} proxy groups", sizes, ys))
    fig = FigureResult(
        figure="fig7",
        title="Throughput vs number of proxy groups (32 v 32 in 512 nodes)",
        xlabel="message size [B]",
        ylabel="per-pair throughput [B/s]",
        series=series,
    )
    big = sizes[-1]
    base = fig.get("no proxies").y_at(big)
    fig.notes["speedup_at_max"] = {
        s.name: s.y_at(big) / base for s in series if s.name != "no proxies"
    }
    return fig


# ----------------------------------------------------------------- figs 8, 9


def fig8_pattern1_histogram(
    *, nranks: int = 1024, max_size: int = 8 * MiB, nbins: int = 32, seed: int = 2014
) -> FigureResult:
    """Figure 8: histogram of Pattern-1 (uniform) sizes for 1,024 ranks."""
    sizes = uniform_pattern(nranks, max_size=max_size, seed=seed)
    edges, counts = size_histogram(sizes, nbins=nbins, max_size=max_size)
    return FigureResult(
        figure="fig8",
        title="Pattern 1: uniform sparse size distribution",
        xlabel="data size per rank [B]",
        ylabel="frequency",
        series=[Series("pattern1", [float(e) for e in edges[:-1]], counts.tolist())],
        notes={"total_bytes": int(sizes.sum()), "dense_fraction_expected": 0.5},
    )


def fig9_pattern2_histogram(
    *, nranks: int = 1024, max_size: int = 8 * MiB, nbins: int = 32, seed: int = 2014
) -> FigureResult:
    """Figure 9: histogram of Pattern-2 (Pareto) sizes for 1,024 ranks."""
    sizes = pareto_pattern(nranks, max_size=max_size, seed=seed)
    edges, counts = size_histogram(sizes, nbins=nbins, max_size=max_size)
    return FigureResult(
        figure="fig9",
        title="Pattern 2: Pareto sparse size distribution",
        xlabel="data size per rank [B]",
        ylabel="frequency",
        series=[Series("pattern2", [float(e) for e in edges[:-1]], counts.tolist())],
        notes={"total_bytes": int(sizes.sum()), "dense_fraction_expected": 0.2},
    )


# -------------------------------------------------------------------- fig 10


def fig10_aggregation_scaling(
    *,
    cores: Sequence[int] = FIG10_CORES,
    max_size: int = 8 * MiB,
    params: NetworkParams = MIRA_PARAMS,
    agg_config: AggregatorConfig = AggregatorConfig(),
    cb_config: CollectiveIOConfig = CollectiveIOConfig(),
    batch_tol: float = 0.1,
    fair_tol: float = 0.05,
    lazy_frac: float = 0.05,
    seed: int = 2014,
) -> FigureResult:
    """Figure 10: aggregation throughput to the IONs (``/dev/null``),
    weak scaling, our approach vs default MPI collective I/O, for both
    sparse patterns.

    Paper: Pattern 1 gains 2x at 2,048 cores growing to 3x at 131,072;
    Pattern 2 gains 1.5x growing to 2x.
    """
    series = {name: [] for name in ("ours P1", "MPI-IO P1", "ours P2", "MPI-IO P2")}
    xs = []
    for ncores in cores:
        nnodes = nodes_for_cores(ncores)
        system = mira_system(nnodes=nnodes, params=params)
        mapping = RankMapping(system.topology, ranks_per_node=CORES_PER_NODE)
        xs.append(ncores)
        p1 = uniform_pattern(mapping.nranks, max_size=max_size, seed=seed)
        p2 = pareto_pattern(mapping.nranks, max_size=max_size, seed=seed)
        for name, sizes in (("P1", p1), ("P2", p2)):
            ours = run_io_movement(
                system,
                sizes,
                method="topology_aware",
                mapping=mapping,
                agg_config=agg_config,
                batch_tol=batch_tol,
                fair_tol=fair_tol,
                lazy_frac=lazy_frac,
            )
            base = run_io_movement(
                system,
                sizes,
                method="collective",
                mapping=mapping,
                cb_config=cb_config,
                batch_tol=batch_tol,
                fair_tol=fair_tol,
                lazy_frac=lazy_frac,
            )
            series[f"ours {name}"].append(ours.throughput)
            series[f"MPI-IO {name}"].append(base.throughput)
    fig = FigureResult(
        figure="fig10",
        title="Aggregation throughput to ION /dev/null (weak scaling)",
        xlabel="cores",
        ylabel="total throughput [B/s]",
        series=[Series(n, list(xs), ys) for n, ys in series.items()],
    )
    fig.notes["gain_P1"] = fig.get("ours P1").ratio_to(fig.get("MPI-IO P1"))
    fig.notes["gain_P2"] = fig.get("ours P2").ratio_to(fig.get("MPI-IO P2"))
    fig.notes["paper_gain_P1"] = "2x at 2,048 cores -> 3x at 131,072"
    fig.notes["paper_gain_P2"] = "1.5x at 2,048 cores -> 2x at 131,072"
    return fig


# -------------------------------------------------------------------- fig 11


def fig11_hacc_io(
    *,
    cores: Sequence[int] = FIG11_CORES,
    params: NetworkParams = MIRA_PARAMS,
    agg_config: AggregatorConfig = AggregatorConfig(),
    cb_config: CollectiveIOConfig = CollectiveIOConfig(),
    batch_tol: float = 0.1,
    fair_tol: float = 0.05,
    lazy_frac: float = 0.05,
) -> FigureResult:
    """Figure 11: HACC I/O write throughput to the IONs, customized
    (topology-aware) aggregator selection vs default MPI collective I/O.

    Paper: up to ~50% higher throughput, 8,192 → 131,072 cores.
    """
    xs, ours_y, base_y = [], [], []
    for ncores in cores:
        nnodes = nodes_for_cores(ncores)
        system = mira_system(nnodes=nnodes, params=params)
        mapping = RankMapping(system.topology, ranks_per_node=CORES_PER_NODE)
        sizes = hacc_io_sizes(mapping.nranks)
        xs.append(ncores)
        ours_y.append(
            run_io_movement(
                system,
                sizes,
                method="topology_aware",
                mapping=mapping,
                agg_config=agg_config,
                batch_tol=batch_tol,
                fair_tol=fair_tol,
                lazy_frac=lazy_frac,
            ).throughput
        )
        base_y.append(
            run_io_movement(
                system,
                sizes,
                method="collective",
                mapping=mapping,
                cb_config=cb_config,
                batch_tol=batch_tol,
                fair_tol=fair_tol,
                lazy_frac=lazy_frac,
            ).throughput
        )
    fig = FigureResult(
        figure="fig11",
        title="HACC I/O write throughput to ION /dev/null",
        xlabel="cores",
        ylabel="total throughput [B/s]",
        series=[
            Series("customized aggregators", xs, ours_y),
            Series("default MPI collective I/O", xs, base_y),
        ],
    )
    fig.notes["gain"] = fig.get("customized aggregators").ratio_to(
        fig.get("default MPI collective I/O")
    )
    fig.notes["paper_gain"] = "up to ~1.5x"
    return fig


# ------------------------------------------------------------- model checks


def model_threshold_check(
    *,
    params: NetworkParams = MIRA_PARAMS,
) -> FigureResult:
    """Analytic (Eqs. 1–5) vs simulated direct/proxy crossover sizes."""
    model = TransferModel(params)
    system = mira_system(nnodes=128, params=params)
    src, dst = 0, system.nnodes - 1
    xs, analytic, simulated = [], [], []
    for k in (3, 4):
        assignment = find_proxies_for_pair(system, src, dst, max_proxies=k)
        if assignment.k < k:
            continue
        xs.append(k)
        analytic.append(model.threshold(k))
        crossover = None
        for nbytes in sweep_sizes(16 * KiB, 8 * 1024 * KiB):
            spec = _spec(src, dst, nbytes)
            d = run_transfer(system, [spec], mode="direct")
            p = run_transfer(
                system, [spec], mode="proxy", assignments={(src, dst): assignment}
            )
            if p.throughput > d.throughput:
                crossover = nbytes
                break
        simulated.append(float("nan") if crossover is None else crossover)
    return FigureResult(
        figure="model",
        title="Analytic vs simulated proxy thresholds",
        xlabel="proxy count k",
        ylabel="crossover size [B]",
        series=[Series("analytic", xs, analytic), Series("simulated", xs, simulated)],
    )


def _spec(src: int, dst: int, nbytes: int):
    from repro.core import TransferSpec

    return TransferSpec(src=src, dst=dst, nbytes=nbytes)
