"""Result containers and sweep helpers for the figure experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import KiB
from repro.util.validation import ConfigError


@dataclass
class Series:
    """One plotted line: named (x, y) pairs plus free-form metadata."""

    name: str
    x: list
    y: list
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.x) != len(self.y):
            raise ConfigError(
                f"series {self.name!r}: x has {len(self.x)} points, y has {len(self.y)}"
            )

    def y_at(self, x_value) -> float:
        """The y value at an exact x (raises if absent)."""
        try:
            return self.y[self.x.index(x_value)]
        except ValueError:
            raise ConfigError(f"series {self.name!r} has no point x={x_value}") from None

    def ratio_to(self, other: "Series") -> list[float]:
        """Pointwise ``self.y / other.y`` over the common x grid."""
        if self.x != other.x:
            raise ConfigError("series have different x grids")
        return [a / b if b else float("inf") for a, b in zip(self.y, other.y)]


@dataclass
class FigureResult:
    """A reproduced paper figure.

    Attributes:
        figure: paper artefact id, e.g. ``"fig5"``.
        title: what the figure shows.
        xlabel / ylabel: axis semantics of the series.
        series: the plotted lines.
        notes: free-form comparison notes (crossovers, ratios).
    """

    figure: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series]
    notes: dict = field(default_factory=dict)

    def get(self, name: str) -> Series:
        """A series by name."""
        for s in self.series:
            if s.name == name:
                return s
        raise ConfigError(f"{self.figure}: no series named {name!r}")

    def crossover(self, a: str, b: str) -> "float | None":
        """Smallest x where series ``a`` first matches or exceeds ``b``.

        Ties count: the paper reports its thresholds as the grid point
        where the two methods meet (e.g. "(256KB, 1.4GB/s)" in Fig. 5).
        """
        sa, sb = self.get(a), self.get(b)
        for x, ya, yb in zip(sa.x, sa.y, sb.y):
            if ya >= yb * (1 - 1e-9):
                return x
        return None


def sweep_sizes(
    lo: int = 1 * KiB,
    hi: int = 128 * 1024 * KiB,
    *,
    factor: int = 2,
) -> list[int]:
    """The paper's message-size grid: ``lo`` doubling up to ``hi``."""
    if lo < 1 or hi < lo:
        raise ConfigError(f"invalid sweep bounds [{lo}, {hi}]")
    if factor < 2:
        raise ConfigError("factor must be >= 2")
    sizes = []
    s = lo
    while s <= hi:
        sizes.append(s)
        s *= factor
    return sizes
