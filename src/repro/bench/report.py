"""Text rendering of reproduced figures.

The paper's figures are throughput-vs-size or throughput-vs-cores plots;
``render_figure`` prints each as an aligned text table (one row per x,
one column per series) plus the notes (crossovers, gain ratios) used in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.bench.harness import FigureResult
from repro.util.units import GB, format_bytes


def _fmt_x(x, xlabel: str) -> str:
    if isinstance(x, (int, float)) and "size" in xlabel:
        return format_bytes(x)
    return str(x)


def _fmt_y(y, ylabel: str) -> str:
    if isinstance(y, (int, float)) and "B/s" in ylabel:
        return f"{y / GB:.3f}"
    if isinstance(y, float):
        return f"{y:.4g}"
    return str(y)


def render_figure(fig: FigureResult) -> str:
    """One reproduced figure as an aligned text table."""
    lines = [f"== {fig.figure}: {fig.title} =="]
    unit = " [GB/s]" if "B/s" in fig.ylabel else ""
    header = [fig.xlabel] + [s.name + unit for s in fig.series]
    rows = []
    xs = fig.series[0].x
    for i, x in enumerate(xs):
        row = [_fmt_x(x, fig.xlabel)]
        for s in fig.series:
            row.append(_fmt_y(s.y[i], fig.ylabel) if i < len(s.y) else "-")
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    for key, value in fig.notes.items():
        if isinstance(value, (int, float)) and "crossover" in key:
            value = format_bytes(value)
        elif isinstance(value, list) and all(isinstance(v, float) for v in value):
            value = "[" + ", ".join(f"{v:.2f}" for v in value) + "]"
        lines.append(f"  note {key}: {value}")
    return "\n".join(lines)


def render_all(figures: Iterable[FigureResult]) -> str:
    """Render several figures separated by blank lines."""
    return "\n\n".join(render_figure(f) for f in figures)


def run_and_render(experiments: Iterable[Callable[[], FigureResult]]) -> str:
    """Run experiment callables and render their results."""
    return render_all(fn() for fn in experiments)
