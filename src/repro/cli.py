"""Command-line interface.

``python -m repro <command>`` drives the library without writing code:

* ``info``      — describe a Mira partition (torus, psets, bridges);
* ``transfer``  — move data between two nodes, direct/proxy/pipelined;
* ``io``        — run a sparse collective write, ours vs the baseline;
* ``figure``    — regenerate one of the paper's figures;
* ``analyze``   — graph-theoretic bounds and proxy-plan efficiency;
* ``faults``    — inject faults and compare fault-blind vs resilient runs;
* ``trace``     — run a scenario under the observability layer and export
  a Chrome/Perfetto trace with per-link time series (``docs/OBSERVABILITY.md``);
* ``chaos``     — run a seeded fault-injection campaign (``docs/RESILIENCE.md``);
* ``serve``     — long-lived scenario service: JSONL requests on stdin,
  terminal results on stdout, overload-safe (``docs/SERVICE.md``);
* ``batch``     — run a scenario campaign with a crash-safe write-ahead
  journal; ``--resume`` after any crash converges on byte-identical results.

All output goes through the ``repro`` logging hierarchy; ``--log-level``
makes any run quiet (``warning``) or chatty (``debug``) on demand, and
``--metrics-out`` dumps the run's metrics registry as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench import figures as figmod
from repro.bench.report import render_figure
from repro.util.log import LEVELS, get_logger, setup_cli_logging
from repro.util.units import format_bytes, format_rate, parse_size

log = get_logger(__name__)

_FIGURES = {
    "fig5": figmod.fig5_p2p_proxies,
    "fig6": figmod.fig6_group_proxies,
    "fig7": figmod.fig7_proxy_count,
    "fig8": figmod.fig8_pattern1_histogram,
    "fig9": figmod.fig9_pattern2_histogram,
    "fig10": figmod.fig10_aggregation_scaling,
    "fig11": figmod.fig11_hacc_io,
    "model": figmod.model_threshold_check,
}

_TRACE_SCENARIOS = ("p2p", "group", "io", "faults")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Sparse data movement on a simulated Blue Gene/Q (ICPP'14 reproduction)",
    )
    p.add_argument(
        "--log-level",
        choices=LEVELS,
        default="info",
        help="output verbosity (default: info)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a Mira partition")
    info.add_argument("--nodes", type=int, default=128)

    tr = sub.add_parser("transfer", help="run one point-to-point transfer")
    tr.add_argument("--nodes", type=int, default=128)
    tr.add_argument("--src", type=int, default=0)
    tr.add_argument("--dst", type=int, default=-1, help="-1 = last node")
    tr.add_argument("--size", type=str, default="8MiB")
    tr.add_argument(
        "--mode",
        choices=["direct", "proxy", "auto", "pipeline", "all"],
        default="all",
    )
    tr.add_argument("--max-proxies", type=int, default=None)
    tr.add_argument("--links", action="store_true", help="print the link-load report")
    tr.add_argument("--metrics-out", type=str, default=None, metavar="PATH")

    io = sub.add_parser("io", help="run one sparse collective write")
    io.add_argument("--cores", type=int, default=2048)
    io.add_argument("--pattern", choices=["1", "2", "hacc"], default="1")
    io.add_argument(
        "--method", choices=["topology_aware", "collective", "both"], default="both"
    )
    io.add_argument(
        "--read", action="store_true",
        help="run the collective *read* (restart) path instead of a write",
    )
    io.add_argument("--seed", type=int, default=2014)
    io.add_argument("--metrics-out", type=str, default=None, metavar="PATH")

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("name", choices=sorted(_FIGURES))

    an = sub.add_parser("analyze", help="graph bounds for a node pair")
    an.add_argument("--nodes", type=int, default=128)
    an.add_argument("--src", type=int, default=0)
    an.add_argument("--dst", type=int, default=-1)

    fl = sub.add_parser(
        "faults", help="inject faults; compare fault-blind vs resilient transfer"
    )
    fl.add_argument("--nodes", type=int, default=128)
    fl.add_argument("--src", type=int, default=0)
    fl.add_argument("--dst", type=int, default=-1, help="-1 = last node")
    fl.add_argument("--size", type=str, default="32MiB")
    fl.add_argument("--max-proxies", type=int, default=None)
    fl.add_argument(
        "--degraded", type=int, default=8, help="randomly degraded torus links"
    )
    fl.add_argument(
        "--factor", type=float, default=0.25, help="degraded-link capacity factor"
    )
    fl.add_argument(
        "--failed-links", type=int, default=0, help="hard-failed torus links"
    )
    fl.add_argument("--failed-nodes", type=int, default=0, help="cordoned nodes")
    fl.add_argument(
        "--events", type=int, default=0,
        help="random transient fault events (hidden from planning)",
    )
    fl.add_argument(
        "--hard-fraction", type=float, default=0.0,
        help="probability a transient event is a hard failure",
    )
    fl.add_argument(
        "--sdc-links", type=int, default=0,
        help="torus links silently flipping bits in transit (non-fail-stop; "
        "detected only by end-to-end extent verification)",
    )
    fl.add_argument(
        "--sdc-proxies", type=int, default=0,
        help="store-and-forward proxies corrupting relayed extents",
    )
    fl.add_argument(
        "--sdc-rate", type=float, default=0.5,
        help="per-extent corruption probability on an afflicted carrier",
    )
    fl.add_argument(
        "--sdc-stale-rate", type=float, default=0.0,
        help="per-extent probability a delivered extent is replayed stale",
    )
    fl.add_argument("--seed", type=int, default=2014)
    fl.add_argument("--metrics-out", type=str, default=None, metavar="PATH")

    tc = sub.add_parser(
        "trace",
        help="run a scenario under the tracer; export spans + per-link time series",
    )
    tc.add_argument("scenario", choices=_TRACE_SCENARIOS)
    tc.add_argument("--nodes", type=int, default=128)
    tc.add_argument("--cores", type=int, default=2048, help="io scenario size")
    tc.add_argument("--size", type=str, default="8MiB", help="bytes per transfer")
    tc.add_argument("--pairs", type=int, default=4, help="group scenario pair count")
    tc.add_argument(
        "--dip", type=float, default=0.2,
        help="mid-run capacity factor of the injected CapacityEvent dip "
        "(p2p/group scenarios)",
    )
    tc.add_argument("--samples", type=int, default=200, help="probe samples per run")
    tc.add_argument("--seed", type=int, default=2014)
    tc.add_argument("--out", type=str, default="trace.json", metavar="PATH")
    tc.add_argument(
        "--format", choices=["chrome", "jsonl"], default="chrome",
        help="chrome: trace_event JSON for Perfetto/chrome://tracing; "
        "jsonl: one span per line",
    )
    tc.add_argument("--metrics-out", type=str, default=None, metavar="PATH")
    tc.add_argument("--top-links", type=int, default=16)

    ch = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign; verify resilience invariants",
    )
    ch.add_argument("--nodes", type=int, default=128)
    ch.add_argument("--size", type=str, default="8MiB", help="bytes per transfer")
    ch.add_argument("--seeds", type=int, default=1, help="number of seeds (0..N-1)")
    ch.add_argument(
        "--scenarios", type=str, default=None,
        help="comma-separated scenario kinds (default: all)",
    )
    ch.add_argument(
        "--geometries", type=str, default=None,
        help="comma-separated geometries (default: all)",
    )
    ch.add_argument("--max-retries", type=int, default=3)
    ch.add_argument(
        "--budget", type=float, default=0.5,
        help="recovery wall-clock budget per run [simulated s]",
    )
    ch.add_argument(
        "--goodput-floor", type=float, default=0.02,
        help="completed runs must reach this fraction of fault-free throughput",
    )
    ch.add_argument("--out", type=str, default="chaos.json", metavar="PATH")
    ch.add_argument("--metrics-out", type=str, default=None, metavar="PATH")
    ch.add_argument(
        "--list-campaigns", action="store_true",
        help="list scenario kinds and geometries with one-line summaries, "
        "then exit",
    )
    ch.add_argument(
        "--service", action="store_true",
        help="live-service campaign: boot a real ScenarioService, drive "
        "it with the load generator while injecting worker crashes, "
        "hangs, link-fault traces and an overload burst; verify "
        "terminal/exactly-once/replay invariants",
    )
    ch.add_argument(
        "--requests", type=int, default=200,
        help="[--service] scheduled requests in the campaign",
    )
    ch.add_argument(
        "--seed", type=int, default=2014,
        help="[--service] campaign seed (schedule + injections)",
    )
    ch.add_argument(
        "--workers", type=int, default=2, help="[--service] worker processes"
    )
    ch.add_argument(
        "--rate", type=float, default=60.0,
        help="[--service] base offered load [req/s]",
    )
    ch.add_argument(
        "--overload-factor", type=float, default=8.0,
        help="[--service] burst-window multiplier on the base rate",
    )
    ch.add_argument(
        "--fault-frac", type=float, default=0.10,
        help="[--service] fraction of transfers carrying a fault trace",
    )
    ch.add_argument(
        "--crash-frac", type=float, default=0.02,
        help="[--service] fraction of requests injected as worker crashes",
    )
    ch.add_argument(
        "--hang-frac", type=float, default=0.01,
        help="[--service] fraction of requests injected as worker hangs",
    )
    ch.add_argument(
        "--sdc-frac", type=float, default=0.05,
        help="[--service] fraction of transfers carrying a seeded "
        "silent-corruption model",
    )
    ch.add_argument(
        "--hang-timeout", type=float, default=1.5, metavar="S",
        help="[--service] watchdog hard-kill limit for hung workers",
    )
    ch.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="[--service] write-ahead journal path (default: <out>.journal)",
    )
    ch.add_argument(
        "--resume", action="store_true",
        help="[--service] reuse intact journaled records from a killed run",
    )
    ch.add_argument(
        "--summary-out", type=str, default=None, metavar="PATH",
        help="[--service] also write the live summary (goodput, "
        "trajectories) — unlike --out, not byte-stable across runs",
    )

    def _service_args(sp) -> None:
        sp.add_argument("--workers", type=int, default=2, help="worker processes")
        sp.add_argument(
            "--queue-cap", type=int, default=32,
            help="bounded admission-queue depth (load shedding beyond it)",
        )
        sp.add_argument(
            "--deadline", type=float, default=None, metavar="S",
            help="default per-request deadline [s] (none if omitted)",
        )
        sp.add_argument(
            "--max-attempts", type=int, default=3,
            help="worker crashes tolerated before a request is quarantined",
        )
        sp.add_argument(
            "--hang-timeout", type=float, default=60.0, metavar="S",
            help="hard-kill limit for requests without a deadline",
        )
        sp.add_argument(
            "--admission", choices=["static", "adaptive"], default="static",
            help="admission control: static queue bound, or the AIMD "
            "concurrency limiter + degradation ladder",
        )
        sp.add_argument(
            "--latency-target", type=float, default=None, metavar="S",
            help="adaptive limiter latency target [s] (default: derived "
            "from the observed service time)",
        )
        sp.add_argument(
            "--ladder-k", type=int, default=2,
            help="proxy-search cap at the ladder's reduced tier",
        )
        sp.add_argument("--metrics-out", type=str, default=None, metavar="PATH")

    sv = sub.add_parser(
        "serve",
        help="long-lived scenario service: JSONL requests on stdin, "
        "JSONL results on stdout",
    )
    _service_args(sv)

    ba = sub.add_parser(
        "batch",
        help="run a resumable scenario campaign with a crash-safe journal",
    )
    ba.add_argument("--campaign", type=str, required=True, metavar="PATH")
    ba.add_argument("--out", type=str, default="results.json", metavar="PATH")
    ba.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="write-ahead journal path (default: <out>.journal)",
    )
    ba.add_argument(
        "--resume", action="store_true",
        help="reuse intact journaled results; rerun only the remainder",
    )
    ba.add_argument(
        "--serial", action="store_true",
        help="disable the batched-simulate fast path for transfer "
        "scenarios (every request goes through the service)",
    )
    ba.add_argument(
        "--make-demo", type=int, default=None, metavar="N",
        help="write an N-scenario demo campaign to --campaign and exit",
    )
    ba.add_argument(
        "--demo-nodes", type=int, default=32,
        help="partition size used by --make-demo scenarios",
    )
    _service_args(ba)

    ld = sub.add_parser(
        "load",
        help="drive the service with a seeded synthetic load and report "
        "goodput/latency statistics (see docs/LOAD_TESTING.md)",
    )
    ld.add_argument(
        "--arrival", choices=["uniform", "poisson", "burst"], default="poisson",
        help="arrival process",
    )
    ld.add_argument(
        "--profile", choices=["constant", "ramp", "step"], default="constant",
        help="offered-rate profile over the run",
    )
    ld.add_argument("--rate", type=float, default=20.0, help="offered rate [req/s]")
    ld.add_argument(
        "--rate-end", type=float, default=None,
        help="final rate of a ramp profile [req/s]",
    )
    ld.add_argument(
        "--step", action="append", default=None, metavar="DUR:RATE",
        help="one step of a step profile (repeatable), e.g. --step 5:10",
    )
    ld.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="run duration [s] (default 10; 8 in --compare mode)",
    )
    ld.add_argument(
        "--mix", choices=["mixed", "spin", "transfer"], default="spin",
        help="request mix (see repro.loadgen.mix)",
    )
    ld.add_argument("--seed", type=int, default=2014)
    ld.add_argument(
        "--mode", choices=["open", "closed"], default="open",
        help="open loop paces by the schedule; closed loop keeps "
        "--concurrency requests in flight",
    )
    ld.add_argument("--concurrency", type=int, default=8,
                    help="closed-loop client workers")
    ld.add_argument("--burst-size", type=int, default=8)
    ld.add_argument(
        "--client-retries", type=int, default=3, metavar="N",
        help="max client attempts per request (budgeted, full-jitter backoff)",
    )
    ld.add_argument(
        "--transport", choices=["inproc", "serve"], default="inproc",
        help="drive an in-process service or a repro serve subprocess",
    )
    ld.add_argument(
        "--compare", action="store_true",
        help="run the canned adaptive-vs-static overload benchmark and "
        "write the bench-service/1 report to --out",
    )
    ld.add_argument("--out", type=str, default=None, metavar="PATH",
                    help="write the JSON report here")
    ld.add_argument(
        "--outcomes", action="store_true",
        help="include per-request outcomes in the report",
    )
    _service_args(ld)
    return p


def _dump_metrics(args) -> None:
    """Write the run's metrics registry snapshot when requested."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from repro.obs import get_registry
    from repro.util.atomicio import atomic_write_text

    atomic_write_text(path, get_registry().to_json() + "\n", durable=False)
    log.info(f"metrics written to {path}")


def _cmd_info(args) -> int:
    from repro.machine import mira_system

    system = mira_system(nnodes=args.nodes)
    t = system.topology
    log.info(f"{system}")
    log.info(f"  torus shape: {'x'.join(map(str, t.shape))} ({t.nnodes} nodes)")
    log.info(f"  directed torus links: {t.nlinks} at {format_rate(system.params.link_bw)}")
    log.info(f"  diameter: {t.diameter()} hops")
    log.info(
        f"  psets: {system.npsets} x {system.pset_size} nodes, "
        f"bridges per pset: {len(system.psets[0].bridges)} "
        f"({format_rate(system.params.io_link_bw)} each)"
    )
    log.info(
        f"  aggregate ION bandwidth: "
        f"{format_rate(len(system.bridge_nodes) * system.params.io_link_bw)}"
    )
    return 0


def _cmd_transfer(args) -> int:
    from repro.analysis import link_load_report
    from repro.core import TransferSpec, run_transfer
    from repro.core.pipeline import run_pipelined_transfer
    from repro.machine import mira_system

    system = mira_system(nnodes=args.nodes)
    dst = args.dst if args.dst >= 0 else system.nnodes - 1
    spec = TransferSpec(src=args.src, dst=dst, nbytes=parse_size(args.size))
    log.info(
        f"{format_bytes(spec.nbytes)} from node {spec.src} to node {spec.dst} "
        f"on {system}"
    )
    modes = (
        ["direct", "proxy", "pipeline"] if args.mode == "all" else [args.mode]
    )
    last = None
    for mode in modes:
        if mode == "pipeline":
            out = run_pipelined_transfer(
                system, [spec], max_proxies=args.max_proxies
            )
        else:
            out = run_transfer(
                system, [spec], mode=mode, max_proxies=args.max_proxies
            )
        used = out.mode_used[(spec.src, spec.dst)]
        log.info(f"  {mode:>9} ({used}): {format_rate(out.throughput)}")
        last = out
    if args.links and last is not None:
        log.info("")
        log.info(link_load_report(last.result, system))
    _dump_metrics(args)
    return 0


def _cmd_io(args) -> int:
    from repro.core import run_io_movement
    from repro.core.ioread import run_io_read
    from repro.machine import mira_system
    from repro.torus.mapping import RankMapping
    from repro.torus.partition import CORES_PER_NODE
    from repro.workloads import hacc_io_sizes, pareto_pattern, uniform_pattern

    system = mira_system(ncores=args.cores)
    mapping = RankMapping(system.topology, ranks_per_node=CORES_PER_NODE)
    if args.pattern == "1":
        sizes = uniform_pattern(mapping.nranks, seed=args.seed)
    elif args.pattern == "2":
        sizes = pareto_pattern(mapping.nranks, seed=args.seed)
    else:
        sizes = hacc_io_sizes(mapping.nranks)
    log.info(
        f"pattern {args.pattern}: {format_bytes(int(sizes.sum()))} over "
        f"{mapping.nranks} ranks on {system}"
    )
    methods = (
        ["topology_aware", "collective"] if args.method == "both" else [args.method]
    )
    runner = run_io_read if args.read else run_io_movement
    results = {}
    for method in methods:
        out = runner(
            system, sizes, method=method, mapping=mapping,
            batch_tol=0.05, fair_tol=0.02,
        )
        results[method] = out
        log.info(
            f"  {method:>15}: {format_rate(out.throughput)} "
            f"(IONs {out.active_ions}, imbalance {out.ion_imbalance:.2f})"
        )
    if len(results) == 2:
        gain = (
            results["topology_aware"].throughput
            / results["collective"].throughput
        )
        log.info(f"  speedup: {gain:.2f}x")
    _dump_metrics(args)
    return 0


def _cmd_figure(args) -> int:
    fig = _FIGURES[args.name]()
    log.info(render_figure(fig))
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import (
        edge_disjoint_path_count,
        max_flow_bound,
        proxy_plan_efficiency,
    )
    from repro.core import find_proxies_for_pair
    from repro.machine import mira_system

    system = mira_system(nnodes=args.nodes)
    dst = args.dst if args.dst >= 0 else system.nnodes - 1
    log.info(f"bounds for node {args.src} -> node {dst} on {system}:")
    log.info(f"  edge-disjoint paths: {edge_disjoint_path_count(system, args.src, dst)}")
    log.info(f"  max-flow rate bound: {format_rate(max_flow_bound(system, args.src, dst))}")
    asg = find_proxies_for_pair(system, args.src, dst)
    eff = proxy_plan_efficiency(system, asg)
    log.info(
        f"  Algorithm 1 found {eff['carriers']} carriers "
        f"({eff['path_efficiency']:.0%} of the disjoint-path bound)"
    )
    return 0


def _cmd_faults(args) -> int:
    from repro.core import TransferSpec, run_transfer
    from repro.machine import mira_system
    from repro.machine.faults import (
        FaultTrace,
        random_fault_trace,
        random_link_faults,
    )
    from repro.resilience import (
        HealthMonitor,
        ResilientPlanner,
        RetryPolicy,
        TransferAbortedError,
        run_resilient_transfer,
    )
    from repro.util.validation import ConfigError, LinkDownError

    system = mira_system(nnodes=args.nodes)
    dst = args.dst if args.dst >= 0 else system.nnodes - 1
    spec = TransferSpec(src=args.src, dst=dst, nbytes=parse_size(args.size))
    faults = random_link_faults(
        system.topology,
        args.degraded,
        factor=args.factor,
        nfailed_nodes=args.failed_nodes,
        nfailed_links=args.failed_links,
        seed=args.seed,
    )
    trace = (
        random_fault_trace(
            system.topology,
            args.events,
            hard_fraction=args.hard_fraction,
            t_max=0.02,
            seed=args.seed + 1,
        )
        if args.events != 0  # negative counts rejected by random_fault_trace
        else FaultTrace()
    )
    log.info(
        f"{format_bytes(spec.nbytes)} from node {spec.src} to node {spec.dst} "
        f"on {system}"
    )
    log.info(
        f"  known faults: {len(faults.degraded_links)} links at "
        f"{args.factor:.0%}, {len(faults.failed_links)} links down, "
        f"{len(faults.failed_nodes)} nodes cordoned"
    )
    log.info(f"  hidden trace: {len(trace.events)} timed events")

    # Fault-blind baseline: plans as if pristine, runs on the true
    # time-varying state — the trace's boundaries fire as mid-run
    # capacity events, so a hard fault stalls it (LinkDownError).
    from repro.network.flowsim import CapacityEvent

    snap = trace.snapshot(0.0, faults)
    blind_events = [
        CapacityEvent(
            time=b,
            link=link,
            capacity=system.capacity(link)
            * faults.link_factor(link)
            * trace.factor_at(link, b),
        )
        for link in sorted(trace.affected_links)
        for b in trace.boundaries([link])
        if b > 0.0
    ]
    try:
        blind = run_transfer(
            system,
            [spec],
            mode="auto",
            max_proxies=args.max_proxies,
            capacity_fn=snap.capacity_fn(system.capacity),
            events=blind_events or None,
        )
        log.info(f"  fault-blind: {format_rate(blind.throughput)}")
    except (ConfigError, LinkDownError) as e:
        blind = None
        log.info(f"  fault-blind: stalled ({e})")

    policy = RetryPolicy()
    monitor = HealthMonitor(
        system,
        faults=faults,
        suspect_fraction=policy.health_threshold,
        reprobe_interval=policy.reprobe_interval,
    )
    planner = ResilientPlanner(
        system, faults=faults, monitor=monitor, max_proxies=args.max_proxies
    )
    sdc = None
    if args.sdc_links or args.sdc_proxies or args.sdc_stale_rate:
        # Target carriers the plan actually uses — corruption on links
        # and proxies the transfer never crosses exercises nothing
        # (the chaos harness does the same route-targeting).
        import numpy as np

        from repro.machine.faults import SDCModel

        asg = planner.plan([spec])[0].assignment
        rng = np.random.default_rng(args.seed + 2)
        proxies = list(asg.proxies)
        rng.shuffle(proxies)
        route_links = list(system.compute_path(spec.src, spec.dst).links)
        for j in range(asg.k):
            route_links += list(asg.phase1[j].links + asg.phase2[j].links)
        links = sorted(set(route_links))
        rng.shuffle(links)
        sdc = SDCModel(
            flip_links={
                int(l): args.sdc_rate for l in links[: args.sdc_links]
            },
            corrupt_proxies={
                int(p): args.sdc_rate for p in proxies[: args.sdc_proxies]
            },
            stale_rate=args.sdc_stale_rate,
            seed=args.seed + 2,
        )
        log.info(
            f"  silent corruption: {len(sdc.flip_links)} bit-flipping "
            f"route link(s), {len(sdc.corrupt_proxies)} corrupting "
            f"prox(ies) at rate {args.sdc_rate:.0%}, stale-replay rate "
            f"{args.sdc_stale_rate:.0%}"
        )
    try:
        out = run_resilient_transfer(
            system, [spec], faults=faults, trace=trace, sdc=sdc,
            policy=policy, planner=planner, monitor=monitor,
        )
    except TransferAbortedError as e:
        log.error(f"  resilient:   aborted ({e})")
        return 1
    t = out.telemetry
    log.info(f"  resilient:   {format_rate(out.throughput)}")
    log.info(
        f"    rounds {t.rounds}, retries {t.retries}, failovers {t.failovers}, "
        f"resent {format_bytes(t.bytes_resent)}, "
        f"direct fallbacks {t.degraded_to_direct}"
    )
    if sdc is not None:
        log.info(
            f"    corruption: {t.corrupt_extents_detected} extent arrivals "
            f"detected, {format_bytes(t.corrupt_bytes_redriven)} re-driven "
            f"clean, {t.stale_drops} stale replays dropped, "
            f"{format_bytes(out.corrupted_acknowledged_bytes)} corrupt "
            f"acknowledged"
        )
        for link in monitor.quarantined_links():
            state = monitor.link_quarantine(link)
            strikes = monitor.corruption_strikes(link=link)
            log.info(
                f"    link {link}: {state} "
                f"({strikes} corruption strike(s))"
            )
        for p in monitor.quarantined_proxies():
            state = monitor.proxy_quarantine(p)
            strikes = monitor.corruption_strikes(proxy=p)
            log.info(
                f"    proxy {p}: {state} "
                f"({strikes} corruption strike(s))"
            )
    for a in t.failed_attempts:
        carrier = "direct" if a.proxy is None else f"proxy {a.proxy}"
        finish = "stalled" if a.finish > 100 * a.deadline else f"{a.finish:.6f}s"
        log.info(
            f"    round {a.round}: {carrier} missed deadline "
            f"({finish} > {a.deadline:.6f}s), {format_bytes(a.share)} re-sent"
        )
    if blind is not None and blind.throughput > 0:
        log.info(f"  speedup vs fault-blind: {out.throughput / blind.throughput:.2f}x")
    _dump_metrics(args)
    return 0


def _trace_scenario_specs(args, system):
    """The (specs, label) a trace scenario transfers."""
    from repro.core import TransferSpec

    nbytes = parse_size(args.size)
    n = system.nnodes
    if args.scenario == "p2p":
        return [TransferSpec(src=0, dst=n - 1, nbytes=nbytes)]
    pairs = max(1, min(args.pairs, n // 2))
    return [TransferSpec(src=i, dst=n - 1 - i, nbytes=nbytes) for i in range(pairs)]


def _cmd_trace(args) -> int:
    """Run one scenario under tracer + probe and export the timeline."""
    from repro.core import run_io_movement, run_transfer
    from repro.machine import mira_system
    from repro.network.flowsim import CapacityEvent
    from repro.obs import (
        MetricsRegistry,
        TimeSeriesProbe,
        Tracer,
        export_chrome,
        export_jsonl,
        render_report,
        use_registry,
        use_tracer,
    )

    if args.samples < 2:
        log.error("--samples must be >= 2")
        return 2

    tracer = Tracer()
    registry = MetricsRegistry()

    if args.scenario in ("p2p", "group"):
        system = mira_system(nnodes=args.nodes)
        specs = _trace_scenario_specs(args, system)
        # Dry run: learn the makespan (for the probe grid) and the
        # hottest link (where the injected mid-run dip bites hardest).
        est = run_transfer(system, specs, mode="auto")
        mk = est.makespan
        hot_link = max(est.result.link_bytes, key=est.result.link_bytes.get)
        cap = system.capacity(hot_link)
        events = [
            CapacityEvent(time=0.4 * mk, link=hot_link, capacity=cap * args.dip),
            CapacityEvent(time=0.7 * mk, link=hot_link, capacity=cap),
        ]
        probe = TimeSeriesProbe(interval=mk / args.samples)
        log.info(
            f"{args.scenario}: {len(specs)} transfer(s) of "
            f"{format_bytes(specs[0].nbytes)} on {system}; capacity dip to "
            f"{args.dip:.0%} on link {hot_link} during "
            f"[{0.4 * mk:.6f}s, {0.7 * mk:.6f}s]"
        )
        with use_tracer(tracer), use_registry(registry):
            out = run_transfer(system, specs, mode="auto", events=events, probe=probe)
        log.info(f"  throughput: {format_rate(out.throughput)}")
    elif args.scenario == "io":
        from repro.torus.mapping import RankMapping
        from repro.torus.partition import CORES_PER_NODE
        from repro.workloads import pareto_pattern

        system = mira_system(ncores=args.cores)
        mapping = RankMapping(system.topology, ranks_per_node=CORES_PER_NODE)
        sizes = pareto_pattern(mapping.nranks, seed=args.seed)
        est = run_io_movement(
            system, sizes, method="topology_aware", mapping=mapping,
            batch_tol=0.05, fair_tol=0.02,
        )
        probe = TimeSeriesProbe(interval=est.makespan / args.samples)
        log.info(
            f"io: {format_bytes(int(sizes.sum()))} over {mapping.nranks} ranks "
            f"on {system}"
        )
        with use_tracer(tracer), use_registry(registry):
            out = run_io_movement(
                system, sizes, method="topology_aware", mapping=mapping,
                batch_tol=0.05, fair_tol=0.02, probe=probe,
            )
        log.info(f"  throughput: {format_rate(out.throughput)}")
    else:  # faults
        from repro.core import TransferSpec
        from repro.machine.faults import random_fault_trace, random_link_faults
        from repro.resilience import ResilientPlanner, run_resilient_transfer

        system = mira_system(nnodes=args.nodes)
        n = system.nnodes
        spec = TransferSpec(src=0, dst=n - 1, nbytes=parse_size(args.size))
        faults = random_link_faults(
            system.topology, 8, factor=0.25, seed=args.seed
        )
        ftrace = random_fault_trace(
            system.topology, 6, hard_fraction=0.3, t_max=0.02, seed=args.seed + 1
        )
        est = run_transfer(system, [spec], mode="auto")
        probe = TimeSeriesProbe(interval=est.makespan / args.samples)
        planner = ResilientPlanner(system, faults=faults)
        log.info(
            f"faults: {format_bytes(spec.nbytes)} node {spec.src} -> {spec.dst} "
            f"with {len(ftrace.events)} hidden events on {system}"
        )
        with use_tracer(tracer), use_registry(registry):
            out = run_resilient_transfer(
                system, [spec], faults=faults, trace=ftrace,
                planner=planner, probe=probe,
            )
        log.info(
            f"  throughput: {format_rate(out.throughput)} "
            f"(rounds {out.telemetry.rounds}, retries {out.telemetry.retries})"
        )

    if args.format == "chrome":
        export_chrome(tracer, args.out, probe=probe, top_links=args.top_links)
    else:
        export_jsonl(tracer, args.out)
    log.info(f"trace ({args.format}) written to {args.out}")
    if args.metrics_out:
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(args.metrics_out, registry.to_json() + "\n", durable=False)
        log.info(f"metrics written to {args.metrics_out}")
    log.info("")
    log.info(render_report(tracer=tracer, registry=registry, probe=probe))
    return 0


def _cmd_chaos_service(args) -> int:
    """Live-service chaos campaign (``repro chaos --service``)."""
    import json

    from repro.resilience.service_chaos import (
        ServiceCampaignConfig,
        run_service_campaign,
    )
    from repro.util.validation import ConfigError

    try:
        config = ServiceCampaignConfig(
            n_requests=args.requests,
            seed=args.seed,
            workers=args.workers,
            rate=args.rate,
            overload_factor=args.overload_factor,
            fault_frac=args.fault_frac,
            sdc_frac=args.sdc_frac,
            crash_frac=args.crash_frac,
            hang_frac=args.hang_frac,
            hang_timeout_s=args.hang_timeout,
            nnodes=args.nodes,
            nbytes=parse_size(args.size),
        )
        summary = run_service_campaign(
            config,
            out_path=args.out,
            journal_path=args.journal,
            resume=args.resume,
            progress=log.info,
        )
    except ConfigError as exc:
        log.error(str(exc))
        return 2
    for failure in summary["failures"]:
        log.info(f"  FAIL {failure}")
    if args.summary_out:
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(
            args.summary_out, json.dumps(summary, indent=2) + "\n"
        )
        log.info(f"campaign summary written to {args.summary_out}")
    log.info(f"campaign results written to {args.out}")
    _dump_metrics(args)
    return 0 if summary["passed"] else 1


def _cmd_chaos(args) -> int:
    """Run a seeded chaos campaign and write its JSON report."""
    import json

    if args.list_campaigns:
        from repro.resilience.chaos import (
            GEOMETRIES,
            SCENARIO_KINDS,
            SCENARIO_SUMMARIES,
        )

        log.info("scenario kinds (repro chaos --scenarios a,b,...):")
        for kind in SCENARIO_KINDS:
            log.info(f"  {kind:<18} {SCENARIO_SUMMARIES.get(kind, '')}")
        log.info(f"geometries (--geometries): {', '.join(GEOMETRIES)}")
        log.info(
            "service campaigns (--service) additionally inject worker "
            "crashes, hangs and silent corruption from one seeded schedule"
        )
        return 0

    if args.service:
        return _cmd_chaos_service(args)

    from repro.resilience.chaos import (
        GEOMETRIES,
        SCENARIO_KINDS,
        CampaignConfig,
        run_campaign,
    )
    from repro.util.validation import ConfigError

    scenarios = (
        tuple(s.strip() for s in args.scenarios.split(",") if s.strip())
        if args.scenarios
        else SCENARIO_KINDS
    )
    geometries = (
        tuple(g.strip() for g in args.geometries.split(",") if g.strip())
        if args.geometries
        else GEOMETRIES
    )
    if args.seeds < 1:
        log.error("--seeds must be >= 1")
        return 2
    try:
        config = CampaignConfig(
            nnodes=args.nodes,
            nbytes=parse_size(args.size),
            seeds=tuple(range(args.seeds)),
            scenarios=scenarios,
            geometries=geometries,
            max_retries=args.max_retries,
            budget_s=args.budget,
            goodput_floor=args.goodput_floor,
        )
        report = run_campaign(config)
    except ConfigError as exc:
        log.error(str(exc))
        return 2

    log.info(
        f"chaos campaign: {report['n_runs']} runs "
        f"({len(scenarios)} scenarios x {len(geometries)} geometries x "
        f"{args.seeds} seed(s)) on {args.nodes} nodes, "
        f"{format_bytes(config.nbytes)} per transfer"
    )
    for r in report["runs"]:
        mark = "ok  " if r["passed"] else "FAIL"
        log.info(
            f"  [{mark}] {r['scenario']:<14} {r['geometry']:<5} seed={r['seed']} "
            f"rounds={r['rounds']} retries={r['retries']} "
            f"resent={format_bytes(r['bytes_resent'])} "
            f"residue={format_bytes(r['residue_bytes'])}"
        )
        if r.get("corrupt_extents_detected") or r.get("stale_drops"):
            log.info(
                f"         corruption: {r['corrupt_extents_detected']} extents "
                f"detected, {format_bytes(r['corrupt_bytes_redriven'])} "
                f"re-driven clean, {r['stale_drops']} stale replays dropped, "
                f"{format_bytes(r['corrupted_acknowledged_bytes'])} "
                f"corrupt acknowledged; quarantine: "
                f"{r['quarantined_links']} link(s), "
                f"{r['quarantined_proxies']} prox(ies)"
            )
        for f in r["failures"]:
            log.info(f"         {f}")
    log.info(
        f"passed {report['n_passed']}/{report['n_runs']} "
        f"in {report['wall_time_s']:.1f}s"
    )
    from repro.util.atomicio import atomic_write_text

    # Atomic replace: a campaign killed mid-dump can never tear an
    # existing report (CI archives these as artifacts).
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")
    log.info(f"campaign report written to {args.out}")
    _dump_metrics(args)
    return 0 if report["passed"] else 1


def _service_config(args):
    from repro.service import ServiceConfig

    return ServiceConfig(
        workers=args.workers,
        queue_cap=args.queue_cap,
        default_deadline_s=args.deadline,
        max_attempts=args.max_attempts,
        hang_timeout_s=args.hang_timeout,
        admission=getattr(args, "admission", "static"),
        latency_target_s=getattr(args, "latency_target", None),
        ladder_reduced_k=getattr(args, "ladder_k", 2),
    )


def _cmd_serve(args) -> int:
    """Long-lived scenario service over stdin/stdout JSONL.

    One request object per input line; one terminal result record per
    output line (order follows completion, not submission).  Admission
    rejections are answered immediately with ``"status": "rejected"``
    plus the typed error code and its ``retriable`` flag.  EOF on stdin
    drains in-flight work and exits.
    """
    import json
    import threading

    from repro.service import ScenarioRequest, ScenarioService, ServiceError
    from repro.util.validation import ConfigError

    emit_lock = threading.Lock()

    def emit(doc: dict) -> None:
        with emit_lock:
            sys.stdout.write(json.dumps(doc, sort_keys=True) + "\n")
            sys.stdout.flush()

    config = _service_config(args)
    log.info(
        f"serving with {config.workers} worker(s), queue cap {config.queue_cap}; "
        "reading JSONL requests from stdin"
    )
    def emit_result(r) -> None:
        # record() is the journal-stable core; degraded/tier are
        # execution telemetry the load generator reads off the wire.
        emit({**r.record(), "degraded": r.degraded, "tier": r.tier})

    with ScenarioService(config, on_result=emit_result) as svc:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            rid = None
            try:
                doc = json.loads(line)
                rid = doc.get("id") if isinstance(doc, dict) else None
                svc.submit(ScenarioRequest.from_dict(doc))
            except json.JSONDecodeError as exc:
                emit({"id": rid, "status": "rejected", "retriable": False,
                      "error": f"bad-json: {exc}"})
            except ServiceError as exc:
                emit({"id": rid, "status": "rejected", "retriable": exc.retriable,
                      "error": f"{exc.code}: {exc}"})
            except ConfigError as exc:
                emit({"id": rid, "status": "rejected", "retriable": False,
                      "error": f"bad-request: {exc}"})
        svc.wait_all()
    _dump_metrics(args)
    return 0


def _cmd_batch(args) -> int:
    """Run (or resume) a campaign file; see docs/SERVICE.md."""
    import json

    from repro.service import make_demo_campaign, run_batch
    from repro.util.atomicio import atomic_write_json

    if args.make_demo is not None:
        doc = make_demo_campaign(
            args.make_demo, nnodes=args.demo_nodes, deadline_s=args.deadline
        )
        atomic_write_json(args.campaign, doc)
        log.info(
            f"wrote {args.make_demo}-scenario demo campaign to {args.campaign}"
        )
        return 0
    summary = run_batch(
        args.campaign,
        args.out,
        journal_path=args.journal,
        resume=args.resume,
        config=_service_config(args),
        progress=log.info,
        batched=not args.serial,
    )
    _dump_metrics(args)
    counts = summary["counts"]
    log.info(
        f"campaign done: {counts['completed']} completed, "
        f"{counts['failed']} failed, {counts['shed']} shed "
        f"({summary['resumed']} reused from journal)"
    )
    return 0 if counts["completed"] == summary["total"] else 1


def _cmd_load(args) -> int:
    """Synthetic load against the service; see docs/LOAD_TESTING.md."""
    import json

    from repro.loadgen import (
        InProcessTransport,
        LoadConfig,
        ServeTransport,
        run_load,
        service_benchmark,
    )
    from repro.util.atomicio import atomic_write_json
    from repro.util.validation import ConfigError

    # argparse default is None so "user typed 10" and "left it alone"
    # stay distinguishable: each mode resolves its own default.
    duration = (
        args.duration
        if args.duration is not None
        else (8.0 if args.compare else 10.0)
    )
    if args.compare:
        out = args.out or "BENCH_service.json"
        doc = service_benchmark(
            seed=args.seed,
            duration_s=duration,
            workers=args.workers,
            queue_cap=args.queue_cap,
            progress=log.info,
        )
        atomic_write_json(out, doc)
        verdict = doc["comparison"]
        log.info(
            f"wrote {out}: goodput gain "
            f"{verdict['goodput_gain']:+.1%}, CI separated: "
            f"{verdict['goodput_ci_separated']}"
        )
        return 0

    steps = ()
    if args.step:
        try:
            steps = tuple(
                (float(s.split(":")[0]), float(s.split(":")[1])) for s in args.step
            )
        except (ValueError, IndexError):
            raise ConfigError(
                f"--step wants DUR:RATE pairs, got {args.step!r}"
            ) from None
    cfg = LoadConfig(
        arrival=args.arrival,
        profile=args.profile,
        rate=args.rate,
        rate_end=args.rate_end,
        steps=steps,
        duration_s=duration,
        mix=args.mix,
        seed=args.seed,
        mode=args.mode,
        closed_concurrency=args.concurrency,
        burst_size=args.burst_size,
        deadline_s=args.deadline,
        max_attempts=args.client_retries,
    )
    log.info(
        f"load: {args.arrival}/{args.profile} {args.rate} req/s for "
        f"{duration}s, mix {args.mix}, seed {args.seed}, "
        f"{args.transport} transport, {args.admission} admission"
    )
    if args.transport == "serve":
        with ServeTransport(
            workers=args.workers,
            queue_cap=args.queue_cap,
            deadline_s=args.deadline,
            admission=args.admission,
        ) as transport:
            report = run_load(cfg, transport)
    else:
        from repro.service import ScenarioService

        with ScenarioService(_service_config(args)) as svc:
            report = run_load(cfg, InProcessTransport(svc))
            svc.wait_all()
    summary = report.summary(seed=args.seed)
    counts = summary["counts"]
    lat = summary["latency"]
    log.info(
        f"done: {summary['requests']} requests {json.dumps(counts, sort_keys=True)}; "
        f"goodput {summary['goodput_rps']:.1f} req/s, "
        f"shed rate {summary['shed_rate']:.2f}"
    )
    if lat["p50_s"] is not None:
        log.info(
            f"latency p50 {lat['p50_s'] * 1e3:.0f} ms, "
            f"p95 {lat['p95_s'] * 1e3:.0f} ms, p99 {lat['p99_s'] * 1e3:.0f} ms "
            f"(n={lat['n']})"
        )
    if args.out:
        atomic_write_json(
            args.out,
            report.to_dict(include_outcomes=args.outcomes, seed=args.seed),
        )
        log.info(f"wrote report to {args.out}")
    _dump_metrics(args)
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "transfer": _cmd_transfer,
    "io": _cmd_io,
    "figure": _cmd_figure,
    "analyze": _cmd_analyze,
    "faults": _cmd_faults,
    "trace": _cmd_trace,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "batch": _cmd_batch,
    "load": _cmd_load,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 success, 1 the run itself failed (e.g. campaign
    scenarios failed, chaos invariants violated), 2 invalid input —
    argparse errors and any :class:`ConfigError` raised by a command
    both land on 2 with a one-line message, never a traceback.
    """
    from repro.util.validation import ConfigError, ReproError

    args = build_parser().parse_args(argv)
    setup_cli_logging(args.log_level)
    try:
        return _COMMANDS[args.command](args)
    except (ConfigError, ValueError) as exc:
        # Invalid input (bad sizes, unknown partition, malformed
        # campaign, ...): one line on the argparse exit code, no traceback.
        log.error(f"{args.command}: {exc}")
        return 2
    except ReproError as exc:
        log.error(f"{args.command}: {type(exc).__name__}: {exc}")
        return 1
    except KeyboardInterrupt:
        log.error(f"{args.command}: interrupted")
        return 130


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    sys.exit(main())
