"""The paper's contribution: multipath proxy data movement and
topology-aware I/O aggregation.

* :mod:`repro.core.model` — the analytic transfer-time model (paper
  Eqs. 1–5): when do store-and-forward proxies pay off, and by how much.
* :mod:`repro.core.proxy_select` — Algorithm 1: per-source search for
  intermediate nodes whose two-hop deterministic paths share no links.
* :mod:`repro.core.multipath` — executes transfers directly or via the
  selected proxies (phase 1 source→proxies, phase 2 proxies→destination).
* :mod:`repro.core.planner` — the direct-vs-proxy decision combining the
  model threshold with proxy availability.
* :mod:`repro.core.aggregation` — Algorithm 2: dynamically sized,
  uniformly placed I/O aggregators that balance every ION.
* :mod:`repro.core.iomove` — end-to-end sparse I/O movement runner, with
  the ROMIO baseline (:mod:`repro.mpi.mpiio`) as comparator.
"""

from repro.core.model import TransferModel
from repro.core.proxy_select import (
    ProxyAssignment,
    ProxyPlan,
    find_proxies,
    find_proxies_for_pair,
    forced_assignment,
)
from repro.core.multipath import (
    TransferSpec,
    TransferOutcome,
    split_bytes,
    weighted_split,
    path_rate_weights,
    build_direct_flows,
    build_multipath_flows,
    run_transfer,
    run_transfer_many,
)
from repro.core.pipeline import (
    build_pipelined_flows,
    optimal_chunk_bytes,
    predicted_pipeline_time,
    run_pipelined_transfer,
)
from repro.core.planner import TransferPlanner, PlannedTransfer
from repro.core.aggregation import (
    AggregatorConfig,
    AggregationPlan,
    precompute_aggregators,
    choose_num_aggregators,
    plan_aggregation,
    pset_capacity_weights,
    aggregation_flows,
)
from repro.core.iomove import IOOutcome, run_io_movement
from repro.core.ioread import run_io_read

__all__ = [
    "TransferModel",
    "ProxyAssignment",
    "ProxyPlan",
    "find_proxies",
    "find_proxies_for_pair",
    "forced_assignment",
    "TransferSpec",
    "TransferOutcome",
    "split_bytes",
    "weighted_split",
    "path_rate_weights",
    "build_direct_flows",
    "build_multipath_flows",
    "run_transfer",
    "run_transfer_many",
    "build_pipelined_flows",
    "optimal_chunk_bytes",
    "predicted_pipeline_time",
    "run_pipelined_transfer",
    "TransferPlanner",
    "PlannedTransfer",
    "AggregatorConfig",
    "AggregationPlan",
    "precompute_aggregators",
    "choose_num_aggregators",
    "plan_aggregation",
    "pset_capacity_weights",
    "aggregation_flows",
    "IOOutcome",
    "run_io_movement",
    "run_io_read",
]
