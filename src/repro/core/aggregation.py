"""Algorithm 2 — topology-aware, dynamically sized I/O aggregation.

The paper's aggregation mechanism has two parts:

**Init** (run once): every process learns its coordinates, its default
I/O node, and the number of IONs in the partition; then, for every
candidate aggregator count ``num_agg ∈ P = {1, 2, 4, ..., pset_size}``,
the positions of ``num_agg`` uniformly spread aggregators per pset are
precomputed by dividing the pset into equal blocks along the torus
dimensions and taking the first node of each block.

**Redistribute** (per I/O request): the total request volume ``T`` is
obtained by a reduce+broadcast, the needed aggregator count is computed
as ``num_agg = T / S / n_io`` (``S`` = smallest volume worth aggregating
per aggregator), rounded up to the next precomputed count, and every
data-holding node ships its data to aggregators so that **all I/O nodes
receive approximately equal volume** — even IONs whose own compute nodes
hold no data, because aggregators exist in every pset.  Aggregators then
write through their pset's ION.

Relative to the ROMIO baseline this fixes all three sparse-pattern
failure modes: aggregator count adapts to volume, aggregator placement
is uniform over the torus, and ION load is balanced by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.machine.faults import FaultModel
from repro.machine.system import BGQSystem
from repro.mpi.program import FlowProgram
from repro.network.flow import FlowId
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.util.units import MiB
from repro.util.validation import ConfigError


@dataclass(frozen=True)
class AggregatorConfig:
    """Tunables of Algorithm 2.

    Attributes:
        min_bytes_per_aggregator: the paper's ``S`` — the smallest volume
            worth dedicating one aggregator to.  Below the multipath
            threshold regime, more aggregators only add per-message
            overheads.
        max_aggregators_per_pset: upper end of the candidate list ``P``
            (128 in the paper — every node of the pset).
        min_split_bytes: do not fragment one node's shipment below this
            size when balancing, unless a target boundary forces it.
    """

    min_bytes_per_aggregator: int = 4 * MiB
    max_aggregators_per_pset: int = 128
    min_split_bytes: int = 64 * 1024

    def __post_init__(self):
        if self.min_bytes_per_aggregator < 1:
            raise ConfigError("min_bytes_per_aggregator must be >= 1")
        if self.max_aggregators_per_pset < 1:
            raise ConfigError("max_aggregators_per_pset must be >= 1")
        if self.min_split_bytes < 1:
            raise ConfigError("min_split_bytes must be >= 1")

    def candidate_counts(self, pset_size: int) -> tuple[int, ...]:
        """The list ``P`` of precomputable aggregator counts per pset."""
        counts = []
        c = 1
        while c <= min(self.max_aggregators_per_pset, pset_size):
            counts.append(c)
            c *= 2
        return tuple(counts)


@dataclass
class AggregationPlan:
    """Output of Algorithm 2's planning steps.

    Attributes:
        num_agg_per_pset: chosen aggregator count per pset.
        aggregators: aggregator nodes, ordered by (pset, block).
        shipments: ``(source node, aggregator node, bytes)`` triples.
        bytes_per_aggregator: aligned with ``aggregators``.
        bytes_per_ion: write volume through each ION index.
    """

    num_agg_per_pset: int
    aggregators: list[int]
    shipments: list[tuple[int, int, int]]
    bytes_per_aggregator: np.ndarray
    bytes_per_ion: dict[int, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """Total bytes being written."""
        return int(sum(b for _, _, b in self.shipments))

    @property
    def active_ions(self) -> int:
        """IONs carrying any traffic."""
        return sum(1 for b in self.bytes_per_ion.values() if b > 0)

    def ion_imbalance(self) -> float:
        """max/mean ION load over *all* IONs (1.0 = perfectly balanced)."""
        if not self.bytes_per_ion:
            return 1.0
        loads = np.array(list(self.bytes_per_ion.values()), dtype=float)
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0


def precompute_aggregators(
    system: BGQSystem,
    config: AggregatorConfig = AggregatorConfig(),
    *,
    faults: "FaultModel | None" = None,
) -> dict[int, list[int]]:
    """The Init part: aggregator positions for every candidate count.

    Each pset (a contiguous slab of the node index space, i.e. a torus
    sub-box — see :mod:`repro.machine.pset`) is divided into ``num_agg``
    equal blocks and the first node of each block becomes an aggregator,
    the index-space equivalent of the paper's division of the pset along
    the five dimensions by factors ``na * nb * nc * nd * ne = num_agg``.

    With a fault model, cordoned nodes never become aggregators: each
    block's pick slides forward (wrapping within the pset) to the first
    healthy node not already chosen.  When there are more slots than
    healthy nodes, healthy nodes are reused (one node hosts two slots)
    rather than placing a slot on a cordoned node.  A fully cordoned
    pset keeps its nominal picks — the fault-aware quota logic routes no
    bytes there.
    """
    cordoned = faults.failed_nodes if faults is not None else frozenset()
    table: dict[int, list[int]] = {}
    for count in config.candidate_counts(system.pset_size):
        aggs: list[int] = []
        block = system.pset_size // count
        for pset in system.psets:
            lo = pset.nodes.start
            size = len(pset.nodes)
            chosen: list[int] = []
            taken: set[int] = set()
            for i in range(count):
                preferred = lo + i * block
                pick = preferred
                if preferred in cordoned or preferred in taken:
                    fallback = None
                    for off in range(size):
                        cand = lo + (i * block + off) % size
                        if cand in cordoned:
                            continue
                        if cand not in taken:
                            pick = cand
                            break
                        if fallback is None:
                            fallback = cand
                    else:
                        # No unused healthy node left: reuse a healthy one
                        # (or keep the nominal pick if the pset is fully
                        # cordoned).
                        pick = fallback if fallback is not None else preferred
                chosen.append(pick)
                taken.add(pick)
            aggs.extend(chosen)
        table[count] = aggs
    return table


def pset_capacity_weights(system: BGQSystem, faults: FaultModel) -> list[float]:
    """Surviving I/O capacity of each pset, as quota weights.

    A pset's weight is the sum of its bridges' outbound 11th-link fault
    factors (0 = the ION is unreachable), zeroed outright when every
    node of the pset is cordoned (no aggregator can run there).
    """
    weights: list[float] = []
    for pset in system.psets:
        if all(n in faults.failed_nodes for n in pset.nodes):
            weights.append(0.0)
            continue
        w = sum(faults.link_factor(system.io_link_id(b)) for b in pset.bridges)
        weights.append(w)
    return weights


def _apportion(total: int, weights: Sequence[float]) -> list[int]:
    """Largest-remainder split of ``total`` bytes proportional to
    ``weights`` (deterministic; zero-weight entries get zero)."""
    wsum = float(sum(weights))
    if wsum <= 0:
        raise ConfigError(
            "every pset's I/O capacity is zero under the fault model; "
            "no ION can absorb the write"
        )
    raw = [total * w / wsum for w in weights]
    quota = [int(r) for r in raw]
    residue = total - sum(quota)
    order = sorted(
        range(len(weights)), key=lambda p: (quota[p] - raw[p], p)
    )  # biggest fractional part first
    for p in order[:residue]:
        quota[p] += 1
    return quota


def choose_num_aggregators(
    system: BGQSystem,
    total_bytes: int,
    config: AggregatorConfig = AggregatorConfig(),
) -> int:
    """The Redistribute sizing step: ``num_agg = T / S / n_io`` rounded up
    to the next candidate count (at least 1)."""
    if total_bytes < 0:
        raise ConfigError("total_bytes must be >= 0")
    n_io = system.npsets
    need = total_bytes / (config.min_bytes_per_aggregator * n_io)
    counts = config.candidate_counts(system.pset_size)
    for c in counts:
        if c >= need:
            return c
    return counts[-1]


def plan_aggregation(
    system: BGQSystem,
    data_by_node: Sequence[int],
    config: AggregatorConfig = AggregatorConfig(),
    *,
    precomputed: "dict[int, list[int]] | None" = None,
    faults: "FaultModel | None" = None,
) -> AggregationPlan:
    """Build the shipment plan balancing every ION's load.

    ``data_by_node[i]`` is the I/O request volume held by node ``i``.
    The assignment is a deterministic **two-level water-fill**:

    1. every pset's ION gets an equal byte quota (``total / npsets`` up
       to rounding) — the paper's "all I/O nodes receive approximately
       equal amount of data";
    2. each pset's quota is filled *locally first*: its own data-holding
       nodes ship to the pset's uniformly placed aggregators (short,
       intra-slab torus routes — "intermediate nodes are chosen among its
       compute nodes");
    3. surplus data from over-full psets spills to under-full psets'
       aggregators, in index order — the long-haul traffic that buys ION
       balance under skewed (Pattern-2 / HACC) distributions.

    A node's data may split at aggregator slot boundaries, but tiny
    leftovers below ``min_split_bytes`` are absorbed into the current
    slot rather than fragmenting (slight slot overfill beats sub-64K
    message storms).

    With a fault model, aggregators avoid cordoned nodes (see
    :func:`precompute_aggregators`) and the per-ION quotas become
    proportional to each pset's *surviving* I/O capacity
    (:func:`pset_capacity_weights`), so a pset whose 11th link is
    degraded absorbs proportionally less and an unreachable ION absorbs
    nothing.  Without faults the plan is bit-identical to before.
    """
    data = np.asarray(data_by_node, dtype=np.int64)
    if len(data) != system.nnodes:
        raise ConfigError(
            f"data_by_node has {len(data)} entries for {system.nnodes} nodes"
        )
    if (data < 0).any():
        raise ConfigError("data_by_node must be non-negative")
    total = int(data.sum())

    with get_tracer().span(
        "plan-aggregation", cat="plan", total_bytes=total, nnodes=system.nnodes
    ) as _span:
        plan = _plan_aggregation_inner(
            system, data, total, config, precomputed, faults
        )
    _span.set(num_agg_per_pset=plan.num_agg_per_pset, shipments=len(plan.shipments))
    get_registry().counter("aggregation.plans").inc()
    get_registry().counter("aggregation.shipments").inc(len(plan.shipments))
    return plan


def _plan_aggregation_inner(
    system: BGQSystem,
    data: np.ndarray,
    total: int,
    config: AggregatorConfig,
    precomputed: "dict[int, list[int]] | None",
    faults: "FaultModel | None",
) -> AggregationPlan:
    num_agg = choose_num_aggregators(system, total, config)
    if precomputed is None:
        precomputed = precompute_aggregators(system, config, faults=faults)
    aggregators = precomputed[num_agg]
    naggs = len(aggregators)
    npsets = system.npsets
    fault_aware = faults is not None and not faults.is_null

    shipments: list[tuple[int, int, int]] = []
    bytes_per_agg = np.zeros(naggs, dtype=np.int64)
    if total > 0:
        if fault_aware:
            pset_weights = pset_capacity_weights(system, faults)
            quota = _apportion(total, pset_weights)
        else:
            base, extra = divmod(total, npsets)
            quota = [base + (1 if p < extra else 0) for p in range(npsets)]
        slot_target = [-(-q // num_agg) for q in quota]  # ceil per aggregator
        # Per-pset water-fill cursor: (local aggregator index, room left
        # in the current slot).
        cursor = [[0, slot_target[p]] for p in range(npsets)]
        remaining_quota = list(quota)
        spill: list[list[int]] = []  # [node, bytes] surplus shipments

        def pour(pset: int, node: int, amount: int) -> int:
            """Assign up to ``amount`` bytes of ``node`` into ``pset``'s
            aggregators; returns the bytes actually placed."""
            placed = 0
            cur = cursor[pset]
            while amount > 0 and remaining_quota[pset] > 0:
                take = min(amount, cur[1], remaining_quota[pset])
                leftover = amount - take
                if 0 < leftover < config.min_split_bytes:
                    absorb = min(leftover, remaining_quota[pset] - take)
                    take += absorb
                a = pset * num_agg + cur[0]
                shipments.append((int(node), aggregators[a], take))
                bytes_per_agg[a] += take
                remaining_quota[pset] -= take
                placed += take
                amount -= take
                cur[1] -= min(take, cur[1])
                if cur[1] <= 0 and cur[0] < num_agg - 1:
                    cur[0] += 1
                    cur[1] = slot_target[pset]
                elif cur[1] <= 0:
                    cur[1] = slot_target[pset]  # last slot keeps absorbing
            return placed

        # Pass 1: local fill — each pset's data into its own aggregators.
        for p in range(npsets):
            lo, hi = p * system.pset_size, (p + 1) * system.pset_size
            for node in np.nonzero(data[lo:hi])[0] + lo:
                rest = int(data[node]) - pour(p, int(node), int(data[node]))
                if rest > 0:
                    spill.append([int(node), rest])
        # Pass 2: spill surplus into under-quota psets, index order.
        si = 0
        for p in range(npsets):
            while remaining_quota[p] > 0 and si < len(spill):
                node, rest = spill[si]
                placed = pour(p, node, rest)
                if placed < rest:
                    spill[si][1] = rest - placed
                    break  # this pset's quota is exhausted
                si += 1
        # Rounding residue (min_split absorption can shift a few bytes):
        # anything still unplaced goes to the last usable pset's last slot.
        last_pset = npsets - 1
        if fault_aware:
            usable = [p for p in range(npsets) if pset_weights[p] > 0]
            last_pset = usable[-1]
        for node, rest in spill[si:]:
            if rest > 0:
                a = last_pset * num_agg + num_agg - 1
                shipments.append((int(node), aggregators[a], rest))
                bytes_per_agg[a] += rest
    plan = AggregationPlan(
        num_agg_per_pset=num_agg,
        aggregators=aggregators,
        shipments=shipments,
        bytes_per_aggregator=bytes_per_agg,
    )
    for a, agg_node in enumerate(aggregators):
        ion = system.ion_of_node(agg_node).index
        plan.bytes_per_ion[ion] = plan.bytes_per_ion.get(ion, 0.0) + float(
            bytes_per_agg[a]
        )
    return plan


def aggregation_flows(
    prog: FlowProgram,
    plan: AggregationPlan,
    *,
    label: str = "agg",
    metadata_sync: bool = True,
) -> FlowId:
    """Emit Algorithm 2's data movement into ``prog``.

    Phase 1 ships data from the holding nodes to the aggregators; each
    aggregator's ION write (phase 2) starts once all of its inbound
    shipments landed (store-and-forward, as in the multipath engine).
    ``metadata_sync`` models the per-request reduce+broadcast of the
    total size as a log-depth latency event preceding phase 1.

    Returns the join event marking the whole I/O request's completion.
    """
    system = prog.comm.system
    entry: tuple[FlowId, ...] = ()
    if metadata_sync:
        rounds = max(1, int(np.ceil(np.log2(max(2, system.nnodes)))))
        sync = prog.event(
            (), delay=2 * rounds * prog.params.o_msg, label=f"{label}-sync"
        )
        entry = (sync,)

    arrivals: dict[int, list[FlowId]] = {}
    agg_bytes: dict[int, float] = {}
    for src, agg, nbytes in plan.shipments:
        if src == agg:
            fid = prog.local_copy_node(agg, nbytes, after=entry, label=f"{label}-stage")
        else:
            fid = prog.iput_nodes(src, agg, nbytes, after=entry, label=f"{label}-ship")
        arrivals.setdefault(agg, []).append(fid)
        agg_bytes[agg] = agg_bytes.get(agg, 0.0) + nbytes

    writes: list[FlowId] = []
    for agg in sorted(arrivals):
        w = prog.iwrite_ion(
            agg, agg_bytes[agg], after=arrivals[agg], label=f"{label}-write"
        )
        writes.append(w)
    if not writes:
        return prog.event(entry, label=f"{label}-empty")
    return prog.event(writes, label=f"{label}-done")
