"""Transfers under dynamic (zone) routing — the related-work comparator.

The paper positions proxies against BG/Q's own dynamic routing (§II/§III):
dynamic zones relieve *link hotspots* by spraying packets over multiple
dimension orders, but every message remains a single stream bounded by
the per-stream ceiling, and the routing zone is the network's choice —
not a mechanism applications can use to gang multiple streams.

``run_dynamic_transfer`` executes a transfer set under the spray model
of :class:`repro.routing.dynamic.DynamicRouter`, producing the same
:class:`~repro.core.multipath.TransferOutcome` as the direct and proxy
engines, so the three policies are directly comparable (see
``benchmarks/bench_ablation_dynamic_routing.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.multipath import TransferOutcome, TransferSpec, split_bytes
from repro.machine.system import BGQSystem
from repro.mpi.comm import SimComm
from repro.mpi.program import FlowProgram
from repro.network.flow import Flow
from repro.routing.dynamic import DynamicRouter
from repro.routing.zones import ZoneId
from repro.util.validation import ConfigError


def run_dynamic_transfer(
    system: BGQSystem,
    specs: Sequence[TransferSpec],
    *,
    zone: ZoneId = ZoneId.DYNAMIC_UNRESTRICTED,
    nsplits: int = 4,
    seed=2014,
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
) -> TransferOutcome:
    """Execute transfers with zone-0/1 dynamic routing (spray model).

    Each message becomes ``nsplits`` subflows on independently sampled
    zone-conformant paths, jointly capped at the single-stream ceiling.
    """
    specs = list(specs)
    if not specs:
        raise ConfigError("specs must be non-empty")
    if nsplits < 1:
        raise ConfigError(f"nsplits must be >= 1, got {nsplits}")
    router = DynamicRouter(system.topology, zone=zone, seed=seed)
    comm = SimComm(system)
    prog = FlowProgram(comm, batch_tol=batch_tol, fair_tol=fair_tol)
    params = system.params
    sub_cap = min(params.stream_cap, params.mem_bw) / nsplits

    mode_used: dict[tuple[int, int], str] = {}
    for spec in specs:
        k = min(nsplits, spec.nbytes)
        shares = split_bytes(spec.nbytes, k)
        paths = router.sample_spray(spec.src, spec.dst, k)
        exits = []
        for i, (share, path) in enumerate(zip(shares, paths)):
            fid = f"dyn:{spec.src}->{spec.dst}:{i}"
            prog.flows.append(
                Flow(
                    fid=fid,
                    size=float(share),
                    path=path.links,
                    delay=params.o_msg,
                    rate_cap=sub_cap if k > 1 else None,
                    tag=(spec.src, spec.dst),
                )
            )
            exits.append(fid)
        prog.event(exits, label="dyn-done")
        mode_used[(spec.src, spec.dst)] = f"dynamic:z{int(zone)}x{k}"

    result = prog.run()
    total = float(sum(s.nbytes for s in specs))
    return TransferOutcome(
        makespan=result.makespan,
        total_bytes=total,
        mode_used=mode_used,
        result=result,
        plan=None,
    )
