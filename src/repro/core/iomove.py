"""End-to-end sparse I/O data movement runner.

``run_io_movement`` is the single entry point the I/O benchmarks and
examples use: given per-rank request sizes, it executes one collective
write to the I/O nodes (``/dev/null`` sink, as in the paper's
measurements) with either

* ``method="topology_aware"`` — the paper's Algorithm 2
  (:mod:`repro.core.aggregation`), or
* ``method="collective"`` — the default MPI collective I/O baseline
  (:mod:`repro.mpi.mpiio`),

and reports the aggregate throughput ``total bytes / makespan`` that the
paper's Figures 10–11 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.aggregation import (
    AggregationPlan,
    AggregatorConfig,
    aggregation_flows,
    plan_aggregation,
)
from repro.machine.faults import FaultModel, degraded_system_capacity
from repro.machine.system import BGQSystem
from repro.mpi.comm import SimComm
from repro.mpi.mpiio import (
    CollectiveIOConfig,
    TwoPhasePlan,
    collective_write_flows,
    plan_collective_write,
)
from repro.mpi.program import FlowProgram
from repro.network.flowsim import FlowSimResult
from repro.obs.metrics import TimeSeriesProbe, get_registry
from repro.obs.trace import get_tracer
from repro.torus.mapping import RankMapping
from repro.util.validation import ConfigError


@dataclass
class IOOutcome:
    """Measured result of one collective write.

    Attributes:
        method: which engine produced it.
        total_bytes: request volume.
        makespan: completion time of the full write [s].
        throughput: ``total_bytes / makespan`` [B/s].
        active_ions: IONs that carried traffic.
        ion_imbalance: max/mean load over IONs that the plan touches.
        plan: the engine-specific plan object.
        result: the raw flow-level simulation results (per-flow timings
            and per-link byte counts, for link-load analysis).
    """

    method: str
    total_bytes: float
    makespan: float
    throughput: float
    active_ions: int
    ion_imbalance: float
    plan: "AggregationPlan | TwoPhasePlan"
    result: FlowSimResult


def _ion_imbalance(bytes_per_ion: dict[int, float], nions: int) -> float:
    """max/mean over *all* IONs of the partition (idle IONs count)."""
    if nions < 1:
        raise ConfigError("nions must be >= 1")
    loads = np.zeros(nions)
    for ion, b in bytes_per_ion.items():
        loads[ion] = b
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 1.0


def sizes_to_node_data(
    system: BGQSystem, mapping: RankMapping, sizes_by_rank: Sequence[int]
) -> np.ndarray:
    """Sum per-rank request sizes into per-node volumes."""
    sizes = np.asarray(sizes_by_rank, dtype=np.int64)
    if len(sizes) != mapping.nranks:
        raise ConfigError(
            f"sizes_by_rank has {len(sizes)} entries for {mapping.nranks} ranks"
        )
    data = np.zeros(system.nnodes, dtype=np.int64)
    np.add.at(data, mapping.rank_table(), sizes)
    return data


def run_io_movement(
    system: BGQSystem,
    sizes_by_rank: Sequence[int],
    *,
    method: str = "topology_aware",
    mapping: "RankMapping | None" = None,
    agg_config: AggregatorConfig = AggregatorConfig(),
    cb_config: CollectiveIOConfig = CollectiveIOConfig(),
    faults: "FaultModel | None" = None,
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
    lazy_frac: float = 0.0,
    probe: "TimeSeriesProbe | None" = None,
) -> IOOutcome:
    """Run one collective write of ``sizes_by_rank`` bytes to the IONs.

    ``faults`` degrades the physics for *both* methods, but only the
    topology-aware planner adapts to it (aggregators avoid cordoned
    nodes, ION quotas follow surviving capacity); the collective baseline
    stays fault-blind, as ROMIO is.

    ``probe`` samples per-link utilisation (including the ION links) at
    fixed simulated-time intervals during the write.
    """
    if mapping is None:
        mapping = RankMapping(system.topology, ranks_per_node=1)
    comm = SimComm(system, mapping)
    capacity_fn = None
    if faults is not None and not faults.is_null:
        capacity_fn = degraded_system_capacity(system, faults)
    prog = FlowProgram(
        comm,
        batch_tol=batch_tol,
        fair_tol=fair_tol,
        lazy_frac=lazy_frac,
        capacity_fn=capacity_fn,
        probe=probe,
    )
    total = float(np.asarray(sizes_by_rank, dtype=np.int64).sum())

    with get_tracer().span(
        "io-movement", cat="io", method=method, total_bytes=total
    ) as span:
        if method == "topology_aware":
            data = sizes_to_node_data(system, mapping, sizes_by_rank)
            plan: "AggregationPlan | TwoPhasePlan" = plan_aggregation(
                system, data, agg_config, faults=faults
            )
            final = aggregation_flows(prog, plan)
            bytes_per_ion = plan.bytes_per_ion
        elif method == "collective":
            plan = plan_collective_write(comm, sizes_by_rank, cb_config)
            final = collective_write_flows(prog, plan, cb_config)
            bytes_per_ion = plan.bytes_per_ion
        else:
            raise ConfigError(
                f"unknown method {method!r}; use 'topology_aware' or 'collective'"
            )

        result = prog.run()
        makespan = result.finish(final)
        span.set(makespan=makespan, active_ions=plan.active_ions)
    reg = get_registry()
    reg.counter(f"io.runs.{method}").inc()
    reg.counter("io.bytes_written").inc(total)
    return IOOutcome(
        method=method,
        total_bytes=total,
        makespan=makespan,
        throughput=total / makespan if makespan > 0 else 0.0,
        active_ions=plan.active_ions,
        ion_imbalance=_ion_imbalance(bytes_per_ion, system.npsets),
        plan=plan,
        result=result,
    )
