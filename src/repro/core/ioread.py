"""Collective reads — Algorithm 2 mirrored (library extension).

The paper evaluates writes; a library a downstream application would
adopt also needs the restart path: loading a sparse dataset back into
the ranks that want it.  The structure mirrors the write engine:

* **topology-aware** — Algorithm 2's uniformly placed, volume-scaled
  aggregators each *read* an equal share from their own ION (every
  inbound 11th link busy), then scatter to the requesting nodes;
* **collective baseline** — ROMIO-style two-phase read: bridge-bound
  aggregators read their file domains from their IONs in lockstep
  ``cb_buffer_size`` rounds and redistribute by offset.

All the write-side pathologies mirror exactly (ION imbalance, lockstep
rounds), so the same gains appear — asserted in
``tests/test_core_ioread.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aggregation import AggregatorConfig, plan_aggregation
from repro.core.iomove import IOOutcome, _ion_imbalance, sizes_to_node_data
from repro.machine.system import BGQSystem
from repro.mpi.comm import SimComm
from repro.mpi.mpiio import CollectiveIOConfig, plan_collective_write
from repro.mpi.program import FlowProgram
from repro.network.flow import FlowId
from repro.torus.mapping import RankMapping
from repro.util.validation import ConfigError


def _aggregation_read_flows(prog: FlowProgram, plan, *, label: str = "rdagg") -> FlowId:
    """Phase 1: aggregators read their quota from their IONs; phase 2:
    scatter each shipment back to its requesting node."""
    reads: dict[int, FlowId] = {}
    agg_bytes: dict[int, float] = {}
    for src, agg, nbytes in plan.shipments:
        agg_bytes[agg] = agg_bytes.get(agg, 0.0) + nbytes
    for agg in sorted(agg_bytes):
        reads[agg] = prog.iread_ion(agg, agg_bytes[agg], label=f"{label}-read")
    scatters: list[FlowId] = []
    for dst, agg, nbytes in plan.shipments:
        if dst == agg:
            fid = prog.local_copy_node(
                agg, nbytes, after=(reads[agg],), label=f"{label}-stage"
            )
        else:
            fid = prog.iput_nodes(
                agg, dst, nbytes, after=(reads[agg],), relay=True,
                label=f"{label}-scatter",
            )
        scatters.append(fid)
    if not scatters:
        return prog.event((), label=f"{label}-empty")
    return prog.event(scatters, label=f"{label}-done")


def _collective_read_flows(
    prog: FlowProgram,
    plan,
    config: CollectiveIOConfig,
    *,
    label: str = "rdcb",
) -> FlowId:
    """Two-phase read: per lockstep round, aggregators read a cb-buffer
    of their file domain, then scatter the round's pieces by offset."""
    comm = prog.comm
    agg_nodes = [comm.node_of(r) for r in plan.aggregator_ranks]
    cb = config.cb_buffer_size
    ctrl = config.ctrl_cost_per_rank * comm.size + prog.params.o_msg

    # Round volume per aggregator (same geometry as the write planner).
    nrounds = [
        max(1, -(-(hi - lo) // cb)) if hi > lo else 0 for lo, hi in plan.domains
    ]
    # Build (aggregator, round) -> {dst_node: bytes} from rank extents.
    pieces: list[list[dict[int, float]]] = [
        [dict() for _ in range(nr)] for nr in nrounds
    ]
    from repro.mpi.mpiio import _domain_of

    for rank in range(comm.size):
        size = int(plan.sizes[rank])
        if size == 0:
            continue
        node = comm.node_of(rank)
        off = int(plan.offsets[rank])
        end = off + size
        while off < end:
            a = _domain_of(plan, off)
            dom_lo, dom_hi = plan.domains[a]
            r = (off - dom_lo) // cb
            round_hi = min(dom_hi, dom_lo + (r + 1) * cb)
            piece = min(end, round_hi) - off
            bucket = pieces[a][r]
            bucket[node] = bucket.get(node, 0.0) + piece
            off += piece

    gate: FlowId = prog.event((), delay=ctrl, label=f"{label}-calc")
    exits: list[FlowId] = []
    nrounds_global = max(nrounds, default=0)
    for r in range(nrounds_global):
        round_scatters: list[FlowId] = []
        round_gate = prog.event((gate,), delay=ctrl, label=f"{label}-sync")
        for a in range(len(agg_nodes)):
            if r >= nrounds[a] or not pieces[a][r]:
                continue
            round_bytes = float(sum(pieces[a][r].values()))
            read = prog.iread_ion(
                agg_nodes[a], round_bytes, after=(round_gate,), label=f"{label}-read"
            )
            for dst, b in sorted(pieces[a][r].items()):
                round_scatters.append(
                    prog.iput_nodes(
                        agg_nodes[a], dst, b, after=(read,), relay=True,
                        label=f"{label}-scatter",
                    )
                )
        if round_scatters:
            exits.extend(round_scatters)
            gate = prog.event(round_scatters, label=f"{label}-round")
    if not exits:
        return prog.event((gate,), label=f"{label}-empty")
    return prog.event(exits, label=f"{label}-done")


def run_io_read(
    system: BGQSystem,
    sizes_by_rank: Sequence[int],
    *,
    method: str = "topology_aware",
    mapping: "RankMapping | None" = None,
    agg_config: AggregatorConfig = AggregatorConfig(),
    cb_config: CollectiveIOConfig = CollectiveIOConfig(),
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
    lazy_frac: float = 0.0,
) -> IOOutcome:
    """Run one collective read of ``sizes_by_rank`` bytes from the IONs."""
    if mapping is None:
        mapping = RankMapping(system.topology, ranks_per_node=1)
    comm = SimComm(system, mapping)
    prog = FlowProgram(
        comm, batch_tol=batch_tol, fair_tol=fair_tol, lazy_frac=lazy_frac
    )
    total = float(np.asarray(sizes_by_rank, dtype=np.int64).sum())

    if method == "topology_aware":
        data = sizes_to_node_data(system, mapping, sizes_by_rank)
        plan = plan_aggregation(system, data, agg_config)
        final = _aggregation_read_flows(prog, plan)
        bytes_per_ion = plan.bytes_per_ion
    elif method == "collective":
        plan = plan_collective_write(comm, sizes_by_rank, cb_config)
        final = _collective_read_flows(prog, plan, cb_config)
        bytes_per_ion = plan.bytes_per_ion
    else:
        raise ConfigError(
            f"unknown method {method!r}; use 'topology_aware' or 'collective'"
        )

    result = prog.run()
    makespan = result.finish(final)
    return IOOutcome(
        method=method,
        total_bytes=total,
        makespan=makespan,
        throughput=total / makespan if makespan > 0 else 0.0,
        active_ions=plan.active_ions,
        ion_imbalance=_ion_imbalance(bytes_per_ion, system.npsets),
        plan=plan,
        result=result,
    )
