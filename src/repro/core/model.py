"""Analytic transfer-time model — the paper's Eqs. 1–5.

The paper models a direct RDMA transfer of ``d`` bytes as

    t = t_s + t_t + t_r                                   (Eq. 1)

(sender processing/injection + wire transfer + receiver processing), and
a k-path store-and-forward proxy transfer as

    t' = 2 (t'_s + t'_t + t'_r)                           (Eq. 2)

because the data is *completely stored* at the proxies before the second
hop (pipelining is explicitly future work).  Since ``t'_t = t_t / k`` but
``t'_s >= t_s / k`` and ``t'_r >= t_r / k`` (fixed per-message costs do
not shrink with the split, Eq. 4), the limiting ratio is

    t' / t -> 2 / k                                       (Eq. 5)

so at least **3 proxies** are needed for any benefit, and ``k`` proxies
asymptotically buy ``k/2`` higher throughput.

Concretely this library parameterises the fixed costs as ``o_msg`` (per
message) and ``o_fwd`` (store-and-forward turnaround), and the
bandwidth-shaped part as the single-stream rate ``r``:

    direct:  t(d)     = o_msg + d / r
    proxy:   t'(d, k) = 2 o_msg + o_fwd + 2 d / (k r)

giving the crossover threshold

    d*(k) = r (o_msg + o_fwd) * k / (k - 2)    for k > 2.

With the calibrated Mira constants this lands at 256 KB for k = 4 and
512 KB for k = 3 — the paper's measured Figure 5/6 thresholds.
"""

from __future__ import annotations

from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.util.validation import ConfigError, check_non_negative


class TransferModel:
    """Closed-form direct/proxy transfer times and decision thresholds."""

    #: Paper result: fewer than 3 proxies cannot beat a direct transfer.
    MIN_BENEFICIAL_PROXIES = 3

    def __init__(self, params: NetworkParams = MIRA_PARAMS):
        self.params = params
        self.stream_rate = min(params.stream_cap, params.mem_bw)

    # -- Eq. 1 -------------------------------------------------------------------

    def direct_time(self, nbytes: float, *, path_rate: "float | None" = None) -> float:
        """Uncontended direct transfer time (Eq. 1 with calibrated terms)."""
        check_non_negative("nbytes", nbytes)
        r = self.stream_rate if path_rate is None else min(path_rate, self.stream_rate)
        return self.params.o_msg + nbytes / r

    # -- Eq. 2 -------------------------------------------------------------------

    def proxy_time(self, nbytes: float, k: int) -> float:
        """k-proxy store-and-forward transfer time (Eq. 2).

        Assumes an equal split and link-disjoint paths (what Algorithm 1
        constructs); contention effects beyond that are the simulator's
        job.
        """
        check_non_negative("nbytes", nbytes)
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        share = nbytes / k
        return 2 * self.params.o_msg + self.params.o_fwd + 2 * share / self.stream_rate

    # -- Eq. 3 -------------------------------------------------------------------

    def time_ratio(self, nbytes: float, k: int) -> float:
        """``t' / t`` (Eq. 3): < 1 means proxies win."""
        return self.proxy_time(nbytes, k) / self.direct_time(nbytes)

    def speedup(self, nbytes: float, k: int) -> float:
        """Predicted direct/proxy speedup for a given size and proxy count."""
        return 1.0 / self.time_ratio(nbytes, k)

    # -- Eq. 5 -------------------------------------------------------------------

    @staticmethod
    def asymptotic_speedup(k: int) -> float:
        """Large-message limit of the speedup: ``k / 2`` (Eq. 5)."""
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        return k / 2.0

    def threshold(self, k: int) -> float:
        """Message size above which k proxies beat a direct transfer.

        Infinite for ``k <= 2`` (Eq. 5's corollary: at least 3 proxies).
        """
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if k <= 2:
            return float("inf")
        fixed = self.params.o_msg + self.params.o_fwd
        return self.stream_rate * fixed * k / (k - 2)

    def use_proxies(self, nbytes: float, k: int) -> bool:
        """The Algorithm-1 step-0 decision: is proxying worth it here?"""
        return k >= self.MIN_BENEFICIAL_PROXIES and nbytes > self.threshold(k)

    def best_k(self, nbytes: float, k_available: int) -> int:
        """Proxy count minimising predicted time (0 means go direct)."""
        check_non_negative("nbytes", nbytes)
        if k_available < 0:
            raise ConfigError("k_available must be >= 0")
        best, best_t = 0, self.direct_time(nbytes)
        for k in range(self.MIN_BENEFICIAL_PROXIES, k_available + 1):
            t = self.proxy_time(nbytes, k)
            if t < best_t:
                best, best_t = k, t
        return best
