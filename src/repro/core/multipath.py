"""Multipath data movement — Algorithm 1's *Multipath Data Movement* part.

Phase 1 moves each source's data, split near-equally, to its proxies;
phase 2 moves it from the proxies to the destination.  Phases are
store-and-forward (a proxy forwards only once its share fully arrived),
matching the paper's model — pipelining is listed as future work there
and implemented here as an optional extension
(:mod:`repro.core.pipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.model import TransferModel
from repro.core.proxy_select import ProxyAssignment, ProxyPlan, find_proxies
from repro.machine.system import BGQSystem
from repro.mpi.comm import SimComm
from repro.mpi.program import FlowProgram
from repro.network.flow import FlowId
from repro.network.flowsim import FlowSimResult
from repro.obs.metrics import TimeSeriesProbe, get_registry
from repro.obs.trace import get_tracer
from repro.util.validation import ConfigError


@dataclass(frozen=True)
class TransferSpec:
    """One data movement request between compute nodes."""

    src: int
    dst: int
    nbytes: int

    def __post_init__(self):
        if self.src == self.dst:
            raise ConfigError("src and dst must differ")
        if self.nbytes <= 0:
            raise ConfigError(f"nbytes must be > 0, got {self.nbytes}")


@dataclass
class TransferOutcome:
    """Measured result of a set of transfers.

    Attributes:
        makespan: completion time of the slowest transfer [s].
        total_bytes: payload moved.
        mode_used: per-(src, dst) record: ``"direct"`` or ``"proxy:k"``.
        result: the raw flow-level results (round 0 for resilient runs).
        plan: the proxy plan, when one was computed.
        resilience: the full
            :class:`~repro.resilience.executor.ResilientOutcome` when the
            transfer ran through the fault-tolerant executor (retry
            telemetry, ledgers, residue); ``None`` for plain exact runs.
    """

    makespan: float
    total_bytes: float
    mode_used: dict[tuple[int, int], str]
    result: FlowSimResult
    plan: "ProxyPlan | None" = None
    resilience: "object | None" = None

    @property
    def throughput(self) -> float:
        """Total bytes over makespan — the paper's "total throughput"."""
        return self.total_bytes / self.makespan if self.makespan > 0 else float("inf")


def split_bytes(nbytes: int, k: int) -> list[int]:
    """Near-equal integer split of ``nbytes`` into ``k`` positive parts.

    The first ``nbytes % k`` parts get one extra byte.  Requires
    ``nbytes >= k`` so no carrier is idle.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if nbytes < k:
        raise ConfigError(f"cannot split {nbytes} bytes into {k} positive parts")
    base, extra = divmod(nbytes, k)
    return [base + (1 if i < extra else 0) for i in range(k)]


def weighted_split(nbytes: int, weights: Sequence[float]) -> list[int]:
    """Split ``nbytes`` proportionally to ``weights`` (each part >= 1).

    Used for capacity-aware multipath on degraded machines: a path
    through a slow link gets a proportionally smaller share so all paths
    finish together instead of the slowest gating the transfer.
    """
    weights = [float(w) for w in weights]
    if not weights:
        raise ConfigError("weights must be non-empty")
    if any(w <= 0 for w in weights):
        raise ConfigError("weights must be positive")
    if nbytes < len(weights):
        raise ConfigError(
            f"cannot split {nbytes} bytes into {len(weights)} positive parts"
        )
    total_w = sum(weights)
    shares = [max(1, int(nbytes * w / total_w)) for w in weights]
    # Fix rounding drift on the largest share.
    drift = nbytes - sum(shares)
    shares[shares.index(max(shares))] += drift
    if min(shares) < 1:
        raise ConfigError("weights too skewed for this message size")
    return shares


def path_rate_weights(
    assignment: ProxyAssignment,
    capacity_fn,
    stream_cap: float,
) -> list[float]:
    """Achievable-rate weight per carrier: the bottleneck capacity over
    its two-hop route, clipped at the single-stream ceiling.

    Pass ``system.capacity`` for a healthy machine (all weights equal)
    or a :func:`repro.machine.faults.degraded_system_capacity` wrapper
    to adapt the split to degraded links.
    """
    weights = []
    for p1, p2 in zip(assignment.phase1, assignment.phase2):
        links = list(p1.links) + list(p2.links)
        bottleneck = min((capacity_fn(l) for l in links), default=stream_cap)
        weights.append(min(bottleneck, stream_cap))
    return weights


def build_direct_flows(
    prog: FlowProgram,
    spec: TransferSpec,
    *,
    label: str = "direct",
) -> FlowId:
    """Emit a single-path (default-routing) transfer; returns its flow id."""
    return prog.iput_nodes(spec.src, spec.dst, spec.nbytes, label=label, tag=(spec.src, spec.dst))


@dataclass(frozen=True)
class CarrierEmission:
    """Bookkeeping for one emitted carrier of a multipath transfer.

    ``phase1`` is ``None`` for a self-carrier (the source sends its share
    on the direct path, no store-and-forward hop); ``exit`` is the flow
    whose completion delivers the share at the destination.
    """

    proxy: int
    share: int
    phase1: "FlowId | None"
    exit: FlowId


def build_multipath_flows_detailed(
    prog: FlowProgram,
    spec: TransferSpec,
    assignment: ProxyAssignment,
    *,
    weights: "Sequence[float] | None" = None,
    shares: "Sequence[int] | None" = None,
    label: str = "mpath",
) -> tuple[FlowId, list[CarrierEmission]]:
    """Emit the two-phase multipath transfer; returns the join event id
    plus per-carrier flow ids (the resilience executor tracks each
    carrier's deadline individually).

    Self-carriers (``proxy == src``) are direct single-hop shares — how
    forced plans model the paper's "source as 5th proxy" configuration.
    ``weights`` switches from the paper's equal split to a proportional
    one (see :func:`weighted_split` / :func:`path_rate_weights`);
    ``shares`` pins each carrier's byte count exactly (the resilience
    executor re-drives *extent groups* whose sizes are fixed by the
    ledger, so a rounded re-split would corrupt the accounting).
    """
    if (assignment.source, assignment.dest) != (spec.src, spec.dst):
        raise ConfigError("assignment endpoints do not match the transfer spec")
    if assignment.k < 1:
        raise ConfigError("assignment has no carriers")
    if shares is not None:
        if weights is not None:
            raise ConfigError("pass weights or shares, not both")
        if len(shares) != assignment.k:
            raise ConfigError("one share per carrier required")
        if any(s < 1 for s in shares):
            raise ConfigError("explicit shares must be >= 1 byte")
        if sum(shares) != spec.nbytes:
            raise ConfigError(
                f"explicit shares sum to {sum(shares)}, spec moves {spec.nbytes}"
            )
        shares = [int(s) for s in shares]
    elif weights is not None:
        if len(weights) != assignment.k:
            raise ConfigError("one weight per carrier required")
        shares = weighted_split(spec.nbytes, weights)
    else:
        shares = split_bytes(spec.nbytes, assignment.k)
    carriers: list[CarrierEmission] = []
    for share, proxy in zip(shares, assignment.proxies):
        if proxy == spec.src:
            fid = prog.iput_nodes(
                spec.src, spec.dst, share, label=f"{label}-self", tag=(spec.src, spec.dst)
            )
            carriers.append(
                CarrierEmission(proxy=proxy, share=share, phase1=None, exit=fid)
            )
            continue
        f1 = prog.iput_nodes(
            spec.src, proxy, share, label=f"{label}-p1", tag=(spec.src, spec.dst)
        )
        f2 = prog.iput_nodes(
            proxy,
            spec.dst,
            share,
            after=(f1,),
            relay=True,
            label=f"{label}-p2",
            tag=(spec.src, spec.dst),
        )
        carriers.append(
            CarrierEmission(proxy=proxy, share=share, phase1=f1, exit=f2)
        )
    done = prog.event([c.exit for c in carriers], label=f"{label}-done")
    return done, carriers


def build_multipath_flows(
    prog: FlowProgram,
    spec: TransferSpec,
    assignment: ProxyAssignment,
    *,
    weights: "Sequence[float] | None" = None,
    label: str = "mpath",
) -> FlowId:
    """Emit the two-phase multipath transfer; returns the join event id."""
    done, _ = build_multipath_flows_detailed(
        prog, spec, assignment, weights=weights, label=label
    )
    return done


def _emit_spec(
    prog: FlowProgram,
    spec: TransferSpec,
    asg: "ProxyAssignment | None",
    mode: str,
    min_proxies: int,
    model: TransferModel,
) -> str:
    """Emit one spec's flows per the mode policy; returns the mode tag."""
    if mode == "direct" or asg is None or asg.k < 1:
        use_proxy = False
    elif mode == "proxy":
        use_proxy = asg.k >= min_proxies
    else:  # auto: Algorithm 1's size gate
        use_proxy = asg.k >= min_proxies and model.use_proxies(spec.nbytes, asg.k)
    if use_proxy and spec.nbytes < asg.k:
        use_proxy = False  # degenerate tiny message
    if use_proxy:
        build_multipath_flows(prog, spec, asg)
        return f"proxy:{asg.k}"
    build_direct_flows(prog, spec)
    return "direct"


def run_transfer(
    system: BGQSystem,
    specs: Sequence[TransferSpec],
    *,
    mode: str = "auto",
    assignments: "Mapping[tuple[int, int], ProxyAssignment] | None" = None,
    max_proxies: "int | None" = None,
    min_proxies: int = TransferModel.MIN_BENEFICIAL_PROXIES,
    max_offset: int = 3,
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
    capacity_fn=None,
    events=None,
    probe: "TimeSeriesProbe | None" = None,
) -> TransferOutcome:
    """Execute a set of transfers and measure throughput.

    Args:
        mode: ``"direct"`` (single deterministic path — the baseline),
            ``"proxy"`` (always use proxies when at least ``min_proxies``
            exist), or ``"auto"`` (use proxies only above the model
            threshold — the full Algorithm 1 including its size check).
        assignments: pre-built (possibly forced) proxy assignments; when
            given, the search is skipped.
        capacity_fn: override link capacities (e.g. a degraded machine
            via :func:`repro.machine.faults.degraded_system_capacity`) —
            planning stays fault-blind, only the physics change.
        events: mid-run :class:`~repro.network.flowsim.CapacityEvent`
            interrupts (e.g. a fault trace's boundaries) — a flow caught
            on a link that drops to zero raises
            :class:`~repro.util.validation.LinkDownError`.
        probe: a :class:`~repro.obs.metrics.TimeSeriesProbe` sampling
            per-link utilisation inside the simulator's event loop.
    """
    if mode not in ("direct", "proxy", "auto"):
        raise ConfigError(f"unknown mode {mode!r}")
    specs = list(specs)
    if not specs:
        raise ConfigError("specs must be non-empty")

    total = float(sum(s.nbytes for s in specs))
    tracer = get_tracer()
    with tracer.span(
        "transfer", cat="transfer", mode=mode, n_specs=len(specs), total_bytes=total
    ) as span:
        comm = SimComm(system)
        prog = FlowProgram(
            comm,
            batch_tol=batch_tol,
            fair_tol=fair_tol,
            capacity_fn=capacity_fn,
            probe=probe,
        )
        model = TransferModel(system.params)
        mode_used: dict[tuple[int, int], str] = {}
        plan: "ProxyPlan | None" = None

        if mode in ("proxy", "auto") and assignments is None:
            with tracer.span("proxy-select", cat="plan", n_pairs=len(specs)):
                plan = find_proxies(
                    system,
                    [(s.src, s.dst) for s in specs],
                    max_proxies=max_proxies,
                    min_proxies=min_proxies,
                    max_offset=max_offset,
                )
            assignments = plan.assignments

        for spec in specs:
            key = (spec.src, spec.dst)
            asg = assignments.get(key) if assignments else None
            mode_used[key] = _emit_spec(prog, spec, asg, mode, min_proxies, model)

        result = prog.run(events)
        span.set(makespan=result.makespan, n_flows=len(prog.flows))

    reg = get_registry()
    reg.counter("transfer.runs").inc()
    reg.counter("transfer.bytes_requested").inc(total)
    reg.counter("transfer.carriers.proxy").inc(
        sum(1 for m in mode_used.values() if m.startswith("proxy"))
    )
    reg.counter("transfer.carriers.direct").inc(
        sum(1 for m in mode_used.values() if m == "direct")
    )
    return TransferOutcome(
        makespan=result.makespan,
        total_bytes=total,
        mode_used=mode_used,
        result=result,
        plan=plan,
    )


def run_transfer_many(
    system: BGQSystem,
    spec_sets: "Sequence[Sequence[TransferSpec]]",
    *,
    mode: str = "auto",
    assignments: (
        "Sequence[Mapping[tuple[int, int], ProxyAssignment] | None] | None"
    ) = None,
    max_proxies: "int | None" = None,
    min_proxies: int = TransferModel.MIN_BENEFICIAL_PROXIES,
    max_offset: int = 3,
    capacity_fn=None,
    events: "Sequence[Sequence | None] | None" = None,
    faults=None,
    traces=None,
    sdc=None,
    policy=None,
    on_error: str = "raise",
) -> list[TransferOutcome]:
    """Execute many *independent* transfer scenarios in one batched pass.

    Each element of ``spec_sets`` is one scenario — the specs
    :func:`run_transfer` would receive.  Flows are emitted per scenario
    exactly as :func:`run_transfer` emits them, then every scenario is
    simulated together through
    :class:`~repro.network.batchsim.BatchFlowSim`, amortizing the numpy
    dispatch overhead that dominates small runs.  Results match
    per-scenario exact-mode full re-solves byte-for-byte (see
    :mod:`repro.network.batchsim`), so outcomes are interchangeable with
    serial :func:`run_transfer` calls for scenarios below the
    incremental-engine threshold.

    The proxy search is memoised across scenarios with the same pair
    list — a campaign repeating one geometry plans it once.

    Faulted scenarios stay batched: per-scenario ``events`` (mid-run
    :class:`~repro.network.flowsim.CapacityEvent` interrupts) are applied
    to that scenario's own block inside the batched waterfill, and
    ``faults``/``traces``/``policy`` route the whole batch through
    :func:`repro.resilience.executor.run_resilient_transfer_many`, which
    batches the retry rounds of all scenarios wave-by-wave — a faulted
    scenario retries only its outstanding ledger extents without forcing
    the rest serial.  Scope: exact mode only — no
    ``batch_tol``/``fair_tol``, no probes.

    Args:
        assignments: optional per-scenario pre-built proxy assignments
            (aligned with ``spec_sets``; ``None`` entries plan normally).
        events: optional per-scenario capacity-event sequences (aligned
            with ``spec_sets``; ``None`` entries run undisturbed).
            Mutually exclusive with ``traces``.
        faults / traces / sdc: per-scenario
            :class:`~repro.machine.faults.FaultModel` /
            :class:`~repro.machine.faults.FaultTrace` /
            :class:`~repro.machine.faults.SDCModel` sequences (or one
            instance shared by all); when any is set the batch runs
            through the resilience executor with ledger-based
            partial-progress retries and each outcome carries its
            :class:`~repro.resilience.executor.ResilientOutcome` in
            ``.resilience``.
        policy: :class:`~repro.resilience.executor.RetryPolicy` for the
            resilient path (implies it even without faults).
        on_error: ``"raise"`` propagates the first scenario failure;
            ``"capture"`` stores the exception in that scenario's result
            slot and lets the rest finish.
    """
    from repro.network.batchsim import BatchFlowSim

    if mode not in ("direct", "proxy", "auto"):
        raise ConfigError(f"unknown mode {mode!r}")
    if on_error not in ("raise", "capture"):
        raise ConfigError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
    spec_sets = [list(s) for s in spec_sets]
    if not spec_sets:
        return []
    for i, specs in enumerate(spec_sets):
        if not specs:
            raise ConfigError(f"scenario #{i}: specs must be non-empty")
    if assignments is not None and len(assignments) != len(spec_sets):
        raise ConfigError(
            f"assignments must align with spec_sets "
            f"({len(assignments)} != {len(spec_sets)})"
        )

    if (
        faults is not None
        or traces is not None
        or sdc is not None
        or policy is not None
    ):
        if events is not None:
            raise ConfigError("events and traces are mutually exclusive")
        if assignments is not None or capacity_fn is not None:
            raise ConfigError(
                "faults/traces/policy route through the resilience "
                "executor, which plans its own paths — assignments and "
                "capacity_fn are not supported there"
            )
        from repro.resilience.executor import run_resilient_transfer_many

        outcomes = run_resilient_transfer_many(
            system,
            spec_sets,
            faults=faults,
            traces=traces,
            sdc=sdc,
            policy=policy,
            on_error=on_error,
        )
        wrapped: "list[TransferOutcome]" = []
        for o in outcomes:
            if isinstance(o, Exception):
                wrapped.append(o)
                continue
            wrapped.append(
                TransferOutcome(
                    makespan=o.makespan,
                    total_bytes=o.total_bytes,
                    mode_used=o.mode_used,
                    result=o.result,
                    plan=None,
                    resilience=o,
                )
            )
        return wrapped

    if events is not None and len(events) != len(spec_sets):
        raise ConfigError(
            f"events must align with spec_sets "
            f"({len(events)} != {len(spec_sets)})"
        )

    tracer = get_tracer()
    comm = SimComm(system)
    model = TransferModel(system.params)
    cap = capacity_fn if capacity_fn is not None else system.capacity
    plan_cache: "dict[tuple, ProxyPlan]" = {}
    built: "list[tuple[FlowProgram, dict, ProxyPlan | None, float]]" = []
    with tracer.span(
        "transfer-batch", cat="transfer", mode=mode, n_scenarios=len(spec_sets)
    ) as span:
        for i, specs in enumerate(spec_sets):
            plan: "ProxyPlan | None" = None
            asg_map = assignments[i] if assignments is not None else None
            if asg_map is None and mode in ("proxy", "auto"):
                pairs = tuple((s.src, s.dst) for s in specs)
                plan = plan_cache.get(pairs)
                if plan is None:
                    with tracer.span("proxy-select", cat="plan", n_pairs=len(pairs)):
                        plan = find_proxies(
                            system,
                            list(pairs),
                            max_proxies=max_proxies,
                            min_proxies=min_proxies,
                            max_offset=max_offset,
                        )
                    plan_cache[pairs] = plan
                asg_map = plan.assignments
            prog = FlowProgram(comm, capacity_fn=capacity_fn)
            mode_used: "dict[tuple[int, int], str]" = {}
            for spec in specs:
                key = (spec.src, spec.dst)
                asg = asg_map.get(key) if asg_map else None
                mode_used[key] = _emit_spec(prog, spec, asg, mode, min_proxies, model)
            built.append(
                (prog, mode_used, plan, float(sum(s.nbytes for s in specs)))
            )
        results = BatchFlowSim(system.params).simulate_many(
            [(cap, prog.flows) for prog, _, _, _ in built],
            events=events,
            on_error=on_error,
        )
        ok = [r for r in results if not isinstance(r, Exception)]
        span.set(makespan=max((r.makespan for r in ok), default=0.0))

    reg = get_registry()
    reg.counter("transfer.batch_runs").inc()
    reg.counter("transfer.runs").inc(len(built))
    reg.counter("transfer.bytes_requested").inc(sum(t for _, _, _, t in built))
    reg.counter("transfer.carriers.proxy").inc(
        sum(
            1
            for _, mu, _, _ in built
            for m in mu.values()
            if m.startswith("proxy")
        )
    )
    reg.counter("transfer.carriers.direct").inc(
        sum(1 for _, mu, _, _ in built for m in mu.values() if m == "direct")
    )
    return [
        res
        if isinstance(res, Exception)
        else TransferOutcome(
            makespan=res.makespan,
            total_bytes=total,
            mode_used=mu,
            result=res,
            plan=plan,
        )
        for (_, mu, plan, total), res in zip(built, results)
    ]
