"""Pipelined proxy relays — the paper's future-work extension (§VII).

The store-and-forward scheme of :mod:`repro.core.multipath` holds each
share at the proxy until it fully arrives, so a transfer always pays two
sequential hops and needs ``k >= 3`` proxies to win (Eq. 5).  The paper's
conclusion proposes the fix: *"we plan to employ pipeline technique in
which data will be split into small messages... Thus, we will need only
2 proxies at least to get benefit."*

This module implements it.  Each proxy's share is cut into chunks; the
source injects chunks in order (chunk ``c+1``'s first hop follows chunk
``c``'s), and the proxy forwards each chunk as soon as it lands.  First
and second hops of *different* chunks overlap, so a pipelined path's
asymptotic rate is the full single-stream rate, not half of it:

    throughput -> k * r        (pipelined; store-and-forward gives k/2 * r)

The chunk size trades pipelining depth against per-chunk overheads;
minimising

    T(C) ~= share/r + C * o_msg + share/(C * r) + (o_msg + o_fwd)

over the chunk count ``C`` gives ``C* = sqrt(share / (r * o_msg))``,
implemented by :func:`optimal_chunk_bytes`.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.multipath import TransferOutcome, TransferSpec, split_bytes
from repro.core.proxy_select import ProxyAssignment, find_proxies
from repro.machine.system import BGQSystem
from repro.mpi.comm import SimComm
from repro.mpi.program import FlowProgram
from repro.network.flow import FlowId
from repro.network.params import NetworkParams
from repro.util.units import KiB
from repro.util.validation import ConfigError

#: Below this share size pipelining cannot amortise its per-chunk costs.
MIN_PIPELINE_CHUNK = 16 * KiB


def optimal_chunk_bytes(share_bytes: int, params: NetworkParams) -> int:
    """Chunk size minimising the pipelined transfer-time model.

    ``C* = sqrt(share / (r * o_msg))`` chunks, clamped so chunks never
    drop below :data:`MIN_PIPELINE_CHUNK` (overhead domination) nor
    exceed the share itself.
    """
    if share_bytes < 1:
        raise ConfigError(f"share_bytes must be >= 1, got {share_bytes}")
    r = min(params.stream_cap, params.mem_bw)
    if params.o_msg <= 0:
        return max(MIN_PIPELINE_CHUNK, share_bytes // 64)
    c_star = math.sqrt(share_bytes / (r * params.o_msg))
    chunks = max(1, round(c_star))
    chunk = share_bytes // chunks if chunks else share_bytes
    return int(min(share_bytes, max(MIN_PIPELINE_CHUNK, chunk)))


def predicted_pipeline_time(
    nbytes: int, k: int, params: NetworkParams, chunk_bytes: "int | None" = None
) -> float:
    """Closed-form pipelined transfer time (the model minimised above)."""
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    share = max(1, nbytes // k)
    if chunk_bytes is None:
        chunk_bytes = optimal_chunk_bytes(share, params)
    nchunks = max(1, math.ceil(share / chunk_bytes))
    r = min(params.stream_cap, params.mem_bw)
    fill = chunk_bytes / r + params.o_msg + params.o_fwd
    return share / r + nchunks * params.o_msg + fill


def build_pipelined_flows(
    prog: FlowProgram,
    spec: TransferSpec,
    assignment: ProxyAssignment,
    *,
    chunk_bytes: "int | None" = None,
    label: str = "pipe",
) -> FlowId:
    """Emit a chunk-pipelined multipath transfer; returns the join event.

    Per carrier path: chunks inject in order (hop-1 of chunk ``c+1``
    depends on hop-1 of chunk ``c``), and every chunk's hop 2 departs as
    soon as its own hop 1 lands — overlapping the next chunk's hop 1.
    Self-carriers (``proxy == src``) send their whole share directly.
    """
    if (assignment.source, assignment.dest) != (spec.src, spec.dst):
        raise ConfigError("assignment endpoints do not match the transfer spec")
    if assignment.k < 1:
        raise ConfigError("assignment has no carriers")
    shares = split_bytes(spec.nbytes, assignment.k)
    exits: list[FlowId] = []
    for share, proxy in zip(shares, assignment.proxies):
        if proxy == spec.src:
            exits.append(
                prog.iput_nodes(
                    spec.src, spec.dst, share, label=f"{label}-self",
                    tag=(spec.src, spec.dst),
                )
            )
            continue
        chunk = chunk_bytes or optimal_chunk_bytes(share, prog.params)
        sizes = []
        rest = share
        while rest > 0:
            take = min(chunk, rest)
            # Fold a trailing fragment into the final chunk.
            if 0 < rest - take < max(1, chunk // 4):
                take = rest
            sizes.append(take)
            rest -= take
        prev_hop1: "FlowId | None" = None
        hop2s: list[FlowId] = []
        for c, size in enumerate(sizes):
            deps1 = (prev_hop1,) if prev_hop1 else ()
            h1 = prog.iput_nodes(
                spec.src, proxy, size, after=deps1,
                label=f"{label}-h1", tag=(spec.src, spec.dst),
            )
            h2 = prog.iput_nodes(
                proxy, spec.dst, size, after=(h1,), relay=True,
                label=f"{label}-h2", tag=(spec.src, spec.dst),
            )
            prev_hop1 = h1
            hop2s.append(h2)
        exits.append(prog.event(hop2s, label=f"{label}-path"))
    return prog.event(exits, label=f"{label}-done")


def run_pipelined_transfer(
    system: BGQSystem,
    specs: Sequence[TransferSpec],
    *,
    assignments: "Mapping[tuple[int, int], ProxyAssignment] | None" = None,
    max_proxies: "int | None" = None,
    min_proxies: int = 2,
    chunk_bytes: "int | None" = None,
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
) -> TransferOutcome:
    """Run transfers through chunk-pipelined proxies.

    Unlike the store-and-forward engine, ``min_proxies`` defaults to 2 —
    the whole point of the extension.  Transfers whose assignment has
    fewer carriers fall back to direct.
    """
    specs = list(specs)
    if not specs:
        raise ConfigError("specs must be non-empty")
    if min_proxies < 1:
        raise ConfigError("min_proxies must be >= 1")
    if assignments is None:
        plan = find_proxies(
            system,
            [(s.src, s.dst) for s in specs],
            max_proxies=max_proxies,
            min_proxies=min_proxies,
        )
        assignments = plan.assignments
    else:
        plan = None

    comm = SimComm(system)
    prog = FlowProgram(comm, batch_tol=batch_tol, fair_tol=fair_tol)
    mode_used: dict[tuple[int, int], str] = {}
    for spec in specs:
        asg = assignments.get((spec.src, spec.dst))
        if asg is not None and asg.k >= min_proxies and spec.nbytes >= asg.k:
            build_pipelined_flows(prog, spec, asg, chunk_bytes=chunk_bytes)
            mode_used[(spec.src, spec.dst)] = f"pipeline:{asg.k}"
        else:
            prog.iput_nodes(
                spec.src, spec.dst, spec.nbytes, label="direct",
                tag=(spec.src, spec.dst),
            )
            mode_used[(spec.src, spec.dst)] = "direct"
    result = prog.run()
    total = float(sum(s.nbytes for s in specs))
    return TransferOutcome(
        makespan=result.makespan,
        total_bytes=total,
        mode_used=mode_used,
        result=result,
        plan=plan,
    )
