"""Direct-vs-proxy planning.

:class:`TransferPlanner` packages the full Algorithm-1 decision sequence
the paper lists in §IV-B:

1. *"Calculate the message sizes to see if using intermediate nodes
   benefits performance"* — the model threshold (Eqs. 4–5);
2. *"Determine the number and location of intermediate nodes"* — the
   proxy search of :mod:`repro.core.proxy_select`;
3. *"Transfer data using multipaths"* — executed by
   :mod:`repro.core.multipath`.

It exposes the *plan* as a first-class object so applications can plan
once (the paper: "If the set of sources and destinations are known a
priori, an application only needs to run Init once") and execute many
transfers against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.model import TransferModel
from repro.core.multipath import TransferOutcome, TransferSpec, run_transfer
from repro.core.proxy_select import ProxyAssignment, ProxyPlan, find_proxies
from repro.machine.system import BGQSystem
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.util.validation import ConfigError


@dataclass
class PlannedTransfer:
    """One transfer with its planned strategy.

    ``strategy`` is ``"direct"`` or ``"proxy"``; ``assignment`` is the
    proxy assignment when proxying (also kept for direct decisions so
    callers can inspect why the fallback happened).
    """

    spec: TransferSpec
    strategy: str
    assignment: "ProxyAssignment | None"
    predicted_time: float
    predicted_speedup: float


class TransferPlanner:
    """Plans and executes sparse transfers between compute-node groups."""

    def __init__(
        self,
        system: BGQSystem,
        *,
        min_proxies: int = TransferModel.MIN_BENEFICIAL_PROXIES,
        max_proxies: "int | None" = None,
        max_offset: int = 3,
    ):
        self.system = system
        self.model = TransferModel(system.params)
        self.min_proxies = min_proxies
        self.max_proxies = max_proxies
        self.max_offset = max_offset
        self._plan_cache: "ProxyPlan | None" = None
        self._plan_pairs: "tuple[tuple[int, int], ...] | None" = None

    def _search_proxies(self, pairs: tuple[tuple[int, int], ...]) -> ProxyPlan:
        """The proxy search itself (overridden by fault-aware planners)."""
        return find_proxies(
            self.system,
            pairs,
            max_proxies=self.max_proxies,
            min_proxies=self.min_proxies,
            max_offset=self.max_offset,
        )

    def find_plan(self, pairs: Sequence[tuple[int, int]]) -> ProxyPlan:
        """Run (and cache) the proxy search for a set of endpoint pairs."""
        pairs_t = tuple(pairs)
        if self._plan_pairs != pairs_t:
            with get_tracer().span(
                "proxy-select", cat="plan", n_pairs=len(pairs_t)
            ) as span:
                self._plan_cache = self._search_proxies(pairs_t)
                span.set(
                    total_carriers=sum(
                        a.k for a in self._plan_cache.assignments.values()
                    )
                )
            get_registry().counter("planner.proxy_searches").inc()
            self._plan_pairs = pairs_t
        else:
            get_registry().counter("planner.plan_cache_hits").inc()
        assert self._plan_cache is not None
        return self._plan_cache

    def _decide(self, spec: TransferSpec, asg: ProxyAssignment) -> PlannedTransfer:
        """The Algorithm-1 step-0 decision for one transfer (overridable)."""
        direct_t = self.model.direct_time(spec.nbytes)
        if (
            asg.k >= self.min_proxies
            and spec.nbytes >= asg.k
            and self.model.use_proxies(spec.nbytes, asg.k)
        ):
            t = self.model.proxy_time(spec.nbytes, asg.k)
            return PlannedTransfer(
                spec=spec,
                strategy="proxy",
                assignment=asg,
                predicted_time=t,
                predicted_speedup=direct_t / t,
            )
        return PlannedTransfer(
            spec=spec,
            strategy="direct",
            assignment=asg,
            predicted_time=direct_t,
            predicted_speedup=1.0,
        )

    def plan(self, specs: Sequence[TransferSpec]) -> list[PlannedTransfer]:
        """Decide direct vs. proxy for every transfer."""
        specs = list(specs)
        if not specs:
            raise ConfigError("specs must be non-empty")
        with get_tracer().span(
            "plan",
            cat="plan",
            n_specs=len(specs),
            total_bytes=sum(s.nbytes for s in specs),
        ) as span:
            proxy_plan = self.find_plan([(s.src, s.dst) for s in specs])
            planned = [
                self._decide(spec, proxy_plan.assignments[(spec.src, spec.dst)])
                for spec in specs
            ]
            n_proxy = sum(1 for p in planned if p.strategy == "proxy")
            span.set(proxy=n_proxy, direct=len(planned) - n_proxy)
        reg = get_registry()
        reg.counter("planner.decisions.proxy").inc(n_proxy)
        reg.counter("planner.decisions.direct").inc(len(planned) - n_proxy)
        return planned

    def execute(
        self,
        specs: Sequence[TransferSpec],
        *,
        batch_tol: float = 0.0,
    ) -> TransferOutcome:
        """Plan (cached) and run the transfers in the fluid simulator."""
        proxy_plan = self.find_plan([(s.src, s.dst) for s in specs])
        return run_transfer(
            self.system,
            specs,
            mode="auto",
            assignments=proxy_plan.assignments,
            min_proxies=self.min_proxies,
            batch_tol=batch_tol,
        )
