"""Algorithm 1 — proxy search for multipath data movement.

For every source node the paper searches, along each torus dimension in
both directions (``2L`` candidate directions in an ``L``-dimensional
torus), for intermediate nodes ("proxies") such that the two-hop
deterministic routes ``source → proxy → destination`` of all chosen
proxies are pairwise **link-disjoint** — the offsets ε, δ, θ, σ of the
paper's Figure 4 are exactly such displacement choices.  Because BG/Q
routing is deterministic and known a priori (longest-to-shortest
dimension order), disjointness can be *verified*, not hoped for: this
implementation computes the actual paths of every candidate and accepts
it only if

* its phase-1 path (source→proxy) shares no link with any accepted
  phase-1 path of the same source, and
* its phase-2 path (proxy→destination) shares no link with any accepted
  phase-2 path of the same source

(the two phases are sequential in time, so cross-phase sharing is
harmless).  Candidates are anchored both at the source (the paper's
region I/IV proxies) and at the destination (regions II/III), with
offsets swept up to ``max_offset``.

If fewer than ``min_proxies`` (3, per Eq. 5) disjoint proxies exist, the
source is marked infeasible and the planner falls back to the direct
path — the algorithm's "Exit" branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence
from weakref import WeakKeyDictionary

from repro.core.model import TransferModel
from repro.routing.order import routing_dim_order
from repro.routing.paths import Path, paths_overlap
from repro.torus.topology import TorusTopology
from repro.machine.system import BGQSystem
from repro.util.validation import ConfigError

#: Per-system memo of completed pair searches, keyed by the *full*
#: search context (pair, bounds, exclusions, reservations, avoid sets).
#: Campaign workloads re-plan a handful of geometries thousands of
#: times; the search is a pure function of system + context, so a hit
#: returns the identical (frozen) assignment.  Keyed weakly so a
#: discarded system releases its entries.
_PAIR_CACHE: "WeakKeyDictionary[BGQSystem, dict]" = WeakKeyDictionary()
_PAIR_CACHE_MAX = 4096


@dataclass(frozen=True)
class ProxyAssignment:
    """Chosen proxies of one (source, destination) transfer.

    Attributes:
        source: source node.
        dest: destination node.
        proxies: accepted proxy nodes, in acceptance order.  The source
            itself may appear (self-carrier = the direct path), which the
            forced mode uses to reproduce the paper's "5th proxy is the
            source node itself" experiment.
        phase1: source→proxy paths, aligned with ``proxies``.
        phase2: proxy→destination paths, aligned with ``proxies``.
    """

    source: int
    dest: int
    proxies: tuple[int, ...]
    phase1: tuple[Path, ...]
    phase2: tuple[Path, ...]

    @property
    def k(self) -> int:
        """Number of concurrent paths."""
        return len(self.proxies)


@dataclass
class ProxyPlan:
    """Algorithm 1's output over a set of transfers."""

    assignments: dict[tuple[int, int], ProxyAssignment]
    min_proxies: int

    @property
    def feasible(self) -> bool:
        """True when every source found at least ``min_proxies`` proxies."""
        return bool(self.assignments) and all(
            a.k >= self.min_proxies for a in self.assignments.values()
        )

    @property
    def k_min(self) -> int:
        """Smallest proxy count over all transfers (0 when empty)."""
        if not self.assignments:
            return 0
        return min(a.k for a in self.assignments.values())

    def proxy_groups(self) -> list[frozenset[int]]:
        """Proxies grouped by acceptance position — the paper's "groups of
        proxies" (the j-th proxy of every source forms group j)."""
        kmax = max((a.k for a in self.assignments.values()), default=0)
        return [
            frozenset(
                a.proxies[j] for a in self.assignments.values() if j < a.k
            )
            for j in range(kmax)
        ]


def _candidate_coords(
    topology: TorusTopology,
    src: int,
    dst: int,
    max_offset: int,
) -> Iterable[int]:
    """Candidate proxy nodes in the paper's search order.

    Dimensions are scanned in the source→destination routing order
    (longest-to-shortest, as Algorithm 1 prescribes: "Sort the dimensions
    by routing order"), then the remaining dimensions; within a dimension
    the two directions are tried with growing offsets, anchored first at
    the source, then at the destination.
    """
    shape = topology.shape
    src_c = topology.coord(src)
    dst_c = topology.coord(dst)
    order = list(routing_dim_order(src_c, dst_c, shape))
    order += [d for d in range(topology.ndims) if d not in order]
    seen: set[int] = set()
    for offset in range(1, max_offset + 1):
        for dim in order:
            if shape[dim] == 1:
                continue
            for sign in (+1, -1):
                for anchor in (src_c, dst_c):
                    c = list(anchor)
                    c[dim] = (c[dim] + sign * offset) % shape[dim]
                    node = topology.node(tuple(c))
                    if node not in seen:
                        seen.add(node)
                        yield node


def find_proxies_for_pair(
    system: "BGQSystem",
    src: int,
    dst: int,
    *,
    max_proxies: "int | None" = None,
    min_proxies: int = TransferModel.MIN_BENEFICIAL_PROXIES,
    max_offset: int = 3,
    exclude: "Sequence[int] | frozenset[int]" = (),
    reserved: "set[int] | None" = None,
    avoid_links: "frozenset[int] | set[int]" = frozenset(),
    avoid_domains: "frozenset[int] | set[int]" = frozenset(),
) -> ProxyAssignment:
    """Run Algorithm 1's *Find Proxies* part for one (src, dst) pair.

    Args:
        system: the machine (supplies topology and the cached router).
        max_proxies: stop after this many accepted proxies (default
            ``2 * ndims``, all candidate directions).
        min_proxies: required count for feasibility (3 per the model).
        max_offset: how far from the anchors to sweep.
        exclude: nodes that may not serve as proxies (the communicating
            regions S and T, typically).
        reserved: proxies already claimed by other sources; accepted
            proxies are added to it, keeping proxy groups disjoint across
            sources.
        avoid_links: directed link ids a candidate's two-hop route must
            not traverse — the resilience planner passes every link the
            health monitor marks degraded plus the routes of surviving
            carriers, so replacements are disjoint from both.
        avoid_domains: midplane failure-domain indices (see
            :func:`repro.torus.partition.link_failure_domains`) the
            route must not touch — correlated-failure avoidance.
    """
    topo = system.topology
    if src == dst:
        raise ConfigError("source and destination must differ")
    if max_proxies is None:
        max_proxies = 2 * topo.ndims
    if max_proxies < 1:
        raise ConfigError("max_proxies must be >= 1")
    excluded = set(exclude)
    excluded.update((src, dst))
    if reserved is None:
        reserved = set()
    cache = _PAIR_CACHE.setdefault(system, {})
    cache_key = (
        src, dst, max_proxies, min_proxies, max_offset,
        frozenset(excluded), frozenset(reserved),
        frozenset(avoid_links), frozenset(avoid_domains),
    )
    hit = cache.get(cache_key)
    if hit is not None:
        # Replay the search's only side effect: accepted proxies claim
        # their slots in the caller's shared reservation set.
        reserved.update(hit.proxies)
        return hit
    if avoid_domains:
        from repro.torus.partition import link_failure_domains

        shape = topo.shape

        def _touches_bad_domain(links) -> bool:
            return any(
                not avoid_domains.isdisjoint(link_failure_domains(l, shape))
                for l in links
            )
    else:
        _touches_bad_domain = None

    accepted: list[int] = []
    phase1: list[Path] = []
    phase2: list[Path] = []
    for cand in _candidate_coords(topo, src, dst, max_offset):
        if len(accepted) >= max_proxies:
            break
        if cand in excluded or cand in reserved:
            continue
        p1 = system.compute_path(src, cand)
        p2 = system.compute_path(cand, dst)
        if avoid_links and not (
            avoid_links.isdisjoint(p1.links) and avoid_links.isdisjoint(p2.links)
        ):
            continue
        if _touches_bad_domain is not None and (
            _touches_bad_domain(p1.links) or _touches_bad_domain(p2.links)
        ):
            continue
        if any(paths_overlap(p1, q) for q in phase1):
            continue
        if any(paths_overlap(p2, q) for q in phase2):
            continue
        accepted.append(cand)
        phase1.append(p1)
        phase2.append(p2)
        reserved.add(cand)

    assignment = ProxyAssignment(
        source=src,
        dest=dst,
        proxies=tuple(accepted),
        phase1=tuple(phase1),
        phase2=tuple(phase2),
    )
    if len(cache) < _PAIR_CACHE_MAX:
        cache[cache_key] = assignment
    return assignment


def find_proxies(
    system: "BGQSystem",
    transfers: Sequence[tuple[int, int]],
    *,
    max_proxies: "int | None" = None,
    min_proxies: int = TransferModel.MIN_BENEFICIAL_PROXIES,
    max_offset: int = 3,
    exclude_endpoints: bool = True,
    exclude: "Sequence[int] | frozenset[int]" = (),
) -> ProxyPlan:
    """Algorithm 1 over a set of transfers (the group-to-group case).

    Every source searches independently (the algorithm is distributed and
    synchronisation-free after the initial coordinate exchange); proxies
    are kept distinct across sources via a shared reservation set, so the
    per-position unions form the paper's translated "proxy groups".

    Args:
        transfers: (source node, destination node) pairs.
        exclude_endpoints: forbid any communicating node (any source or
            destination) from serving as a proxy, as the paper's regions
            S and T are busy with their own transfers.
        exclude: further nodes that may never serve as proxies — cordoned
            (failed) nodes, or nodes the caller reserves for itself.
    """
    transfers = list(transfers)
    if not transfers:
        raise ConfigError("transfers must be non-empty")
    seen = set()
    for pair in transfers:
        if pair in seen:
            raise ConfigError(f"duplicate transfer {pair}")
        seen.add(pair)
    endpoints: set[int] = set(exclude)
    if exclude_endpoints:
        for s, d in transfers:
            endpoints.add(s)
            endpoints.add(d)
    reserved: set[int] = set()
    assignments: dict[tuple[int, int], ProxyAssignment] = {}
    for s, d in transfers:
        assignments[(s, d)] = find_proxies_for_pair(
            system,
            s,
            d,
            max_proxies=max_proxies,
            min_proxies=min_proxies,
            max_offset=max_offset,
            exclude=frozenset(endpoints),
            reserved=reserved,
        )
    return ProxyPlan(assignments=assignments, min_proxies=min_proxies)


def forced_assignment(
    system: "BGQSystem",
    src: int,
    dst: int,
    proxies: Sequence[int],
) -> ProxyAssignment:
    """A :class:`ProxyAssignment` with explicitly chosen carriers.

    No disjointness checking: this is how the paper's Figure 7 produces
    its 5-group data point (the 5th carrier is the source itself, whose
    direct path *does* collide with proxy paths and degrades throughput).
    """
    if src == dst:
        raise ConfigError("source and destination must differ")
    phase1 = []
    phase2 = []
    for p in proxies:
        if p == src:
            # Self-carrier: a direct transfer; phase 2 carries the path.
            phase1.append(Path(src=src, dst=src, links=(), nodes=(src,)))
            phase2.append(system.compute_path(src, dst))
        else:
            phase1.append(system.compute_path(src, p))
            phase2.append(system.compute_path(p, dst))
    return ProxyAssignment(
        source=src,
        dest=dst,
        proxies=tuple(proxies),
        phase1=tuple(phase1),
        phase2=tuple(phase2),
    )
