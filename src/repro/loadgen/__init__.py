"""Sustained-load generator for the scenario service.

Deterministic arrival schedules (:mod:`repro.loadgen.arrivals`),
weighted request mixes (:mod:`repro.loadgen.mix`), an open/closed-loop
runner with budgeted, jittered client retries
(:mod:`repro.loadgen.runner`), bootstrap-CI statistics
(:mod:`repro.loadgen.stats`) and the canned adaptive-vs-static
overload benchmark (:mod:`repro.loadgen.bench`).

See ``docs/LOAD_TESTING.md`` for the operational guide.
"""

from repro.loadgen.arrivals import (
    ARRIVAL_PROCESSES,
    ConstantProfile,
    RampProfile,
    RateProfile,
    Schedule,
    ScheduledRequest,
    StepProfile,
    arrival_times,
    build_schedule,
    make_profile,
)
from repro.loadgen.bench import SCHEMA as BENCH_SCHEMA
from repro.loadgen.bench import service_benchmark
from repro.loadgen.mix import MIX_NAMES, MIXES, RequestMix, get_mix, mix_reference
from repro.loadgen.retry import RetryBudget, full_jitter_backoff
from repro.loadgen.runner import (
    OUTCOME_STATUSES,
    InProcessTransport,
    LoadConfig,
    LoadReport,
    RequestOutcome,
    ServeTransport,
    run_load,
    run_schedule,
)
from repro.loadgen.stats import (
    PERCENTILES,
    bootstrap_ci,
    cliffs_delta,
    compare,
    percentile,
    summarize,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "BENCH_SCHEMA",
    "MIXES",
    "MIX_NAMES",
    "OUTCOME_STATUSES",
    "PERCENTILES",
    "ConstantProfile",
    "InProcessTransport",
    "LoadConfig",
    "LoadReport",
    "RampProfile",
    "RateProfile",
    "RequestMix",
    "RequestOutcome",
    "RetryBudget",
    "Schedule",
    "ScheduledRequest",
    "ServeTransport",
    "StepProfile",
    "arrival_times",
    "bootstrap_ci",
    "build_schedule",
    "cliffs_delta",
    "compare",
    "full_jitter_backoff",
    "get_mix",
    "mix_reference",
    "make_profile",
    "percentile",
    "run_load",
    "run_schedule",
    "service_benchmark",
    "summarize",
]
