"""Arrival processes and rate profiles of the load generator.

A **rate profile** is the intended offered load over time — a function
``rate_at(t)`` [requests/s] over a finite horizon, with its integral
``cumulative(t)`` (the expected request count by time ``t``) available
in closed form.  An **arrival process** turns a profile into concrete
arrival instants:

* ``uniform`` — deterministically paced: the k-th request arrives when
  the cumulative expected count crosses ``k`` (no RNG at all);
* ``poisson`` — a non-homogeneous Poisson process by inversion: unit
  exponential gaps are mapped through the inverse cumulative rate, so
  the instantaneous intensity tracks the profile exactly;
* ``burst`` — arrivals land in clusters of ``burst_size`` at the
  instants where the cumulative count crosses multiples of the burst
  size: the same mean load as ``uniform``, maximally bunched.

Everything is driven by a seeded :func:`numpy.random.default_rng`
stream, so the same ``(profile, process, seed)`` triple always yields
the byte-identical schedule — the property the determinism tests and
the static-vs-adaptive benchmark (identical offered load per mode)
depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.service.request import ScenarioRequest, canonical_json, payload_checksum
from repro.util.validation import ConfigError

#: Known arrival processes (see module docstring).
ARRIVAL_PROCESSES = ("uniform", "poisson", "burst")


class RateProfile:
    """Base class: offered-load rate over a finite horizon.

    Subclasses provide ``rate_at`` and a closed-form ``cumulative``
    (monotone non-decreasing; inverted by bisection in
    :func:`arrival_times`).
    """

    duration_s: float

    def rate_at(self, t: float) -> float:  # pragma: no cover - interface
        """Instantaneous offered rate [req/s] at time ``t``."""
        raise NotImplementedError

    def cumulative(self, t: float) -> float:  # pragma: no cover - interface
        """Expected request count by time ``t`` (closed form)."""
        raise NotImplementedError

    def total(self) -> float:
        """Expected request count over the whole horizon."""
        return self.cumulative(self.duration_s)

    def to_dict(self) -> dict:  # pragma: no cover - interface
        """JSON-able description (recorded in the schedule provenance)."""
        raise NotImplementedError


def _check_duration(duration_s: float) -> float:
    if duration_s <= 0:
        raise ConfigError(f"profile duration_s must be > 0, got {duration_s}")
    return float(duration_s)


@dataclass(frozen=True)
class ConstantProfile(RateProfile):
    """Flat rate for the whole horizon."""

    rate: float
    duration_s: float

    def __post_init__(self):
        _check_duration(self.duration_s)
        if self.rate <= 0:
            raise ConfigError(f"rate must be > 0, got {self.rate}")

    def rate_at(self, t: float) -> float:
        """The flat rate inside the horizon, 0 outside."""
        return self.rate if 0 <= t <= self.duration_s else 0.0

    def cumulative(self, t: float) -> float:
        """``rate * t``, clamped to the horizon."""
        return self.rate * min(max(t, 0.0), self.duration_s)

    def to_dict(self) -> dict:
        """JSON-able description (recorded in the schedule provenance)."""
        return {"profile": "constant", "rate": self.rate, "duration_s": self.duration_s}


@dataclass(frozen=True)
class RampProfile(RateProfile):
    """Linear ramp from ``start_rate`` to ``end_rate`` over the horizon.

    The overload soak ramps from well under service capacity to ~10x
    over it, so one run covers the whole uncontended -> saturated ->
    overloaded regime.
    """

    start_rate: float
    end_rate: float
    duration_s: float

    def __post_init__(self):
        _check_duration(self.duration_s)
        if self.start_rate < 0 or self.end_rate < 0:
            raise ConfigError(
                f"ramp rates must be >= 0, got {self.start_rate}..{self.end_rate}"
            )
        if self.start_rate == 0 and self.end_rate == 0:
            raise ConfigError("ramp cannot be 0 -> 0")

    def rate_at(self, t: float) -> float:
        """Linear interpolation between the endpoint rates."""
        if not 0 <= t <= self.duration_s:
            return 0.0
        frac = t / self.duration_s
        return self.start_rate + (self.end_rate - self.start_rate) * frac

    def cumulative(self, t: float) -> float:
        """Exact integral of the linear rate (quadratic in ``t``)."""
        t = min(max(t, 0.0), self.duration_s)
        slope = (self.end_rate - self.start_rate) / self.duration_s
        return self.start_rate * t + 0.5 * slope * t * t

    def to_dict(self) -> dict:
        """JSON-able description (recorded in the schedule provenance)."""
        return {
            "profile": "ramp",
            "start_rate": self.start_rate,
            "end_rate": self.end_rate,
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class StepProfile(RateProfile):
    """Piecewise-constant rate: ``steps`` is ``((duration_s, rate), ...)``."""

    steps: "tuple[tuple[float, float], ...]"

    def __post_init__(self):
        if not self.steps:
            raise ConfigError("step profile needs at least one step")
        for dur, rate in self.steps:
            if dur <= 0:
                raise ConfigError(f"step duration must be > 0, got {dur}")
            if rate < 0:
                raise ConfigError(f"step rate must be >= 0, got {rate}")
        if all(rate == 0 for _, rate in self.steps):
            raise ConfigError("step profile cannot be all-zero rate")
        object.__setattr__(
            self, "duration_s", float(sum(dur for dur, _ in self.steps))
        )

    def rate_at(self, t: float) -> float:
        """The rate of the step segment containing ``t``."""
        if t < 0 or t > self.duration_s:
            return 0.0
        edge = 0.0
        for dur, rate in self.steps:
            edge += dur
            if t < edge:
                return rate
        return self.steps[-1][1]

    def cumulative(self, t: float) -> float:
        """Sum of completed segments plus the partial current one."""
        t = min(max(t, 0.0), self.duration_s)
        total, edge = 0.0, 0.0
        for dur, rate in self.steps:
            seg = min(t - edge, dur)
            if seg <= 0:
                break
            total += rate * seg
            edge += dur
        return total

    def to_dict(self) -> dict:
        """JSON-able description (recorded in the schedule provenance)."""
        return {"profile": "step", "steps": [list(s) for s in self.steps]}


def make_profile(
    name: str,
    *,
    rate: float,
    duration_s: float,
    rate_end: "float | None" = None,
    steps: "Sequence[tuple[float, float]] | None" = None,
) -> RateProfile:
    """Build a profile from CLI-ish knobs (``constant``/``ramp``/``step``)."""
    if name == "constant":
        return ConstantProfile(rate=rate, duration_s=duration_s)
    if name == "ramp":
        if rate_end is None:
            raise ConfigError("ramp profile needs rate_end")
        return RampProfile(start_rate=rate, end_rate=rate_end, duration_s=duration_s)
    if name == "step":
        if not steps:
            raise ConfigError("step profile needs steps")
        return StepProfile(steps=tuple((float(d), float(r)) for d, r in steps))
    raise ConfigError(f"unknown profile {name!r}; use constant, ramp or step")


def _invert_cumulative(profile: RateProfile, target: float) -> float:
    """``t`` with ``cumulative(t) == target``, by bisection (monotone)."""
    lo, hi = 0.0, profile.duration_s
    for _ in range(60):  # ~1e-18 relative precision; bitwise-stable
        mid = 0.5 * (lo + hi)
        if profile.cumulative(mid) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def arrival_times(
    process: str,
    profile: RateProfile,
    *,
    seed: int,
    burst_size: int = 8,
) -> np.ndarray:
    """Arrival instants [s from run start] over the profile horizon."""
    if process not in ARRIVAL_PROCESSES:
        raise ConfigError(
            f"unknown arrival process {process!r}; known: {ARRIVAL_PROCESSES}"
        )
    if burst_size < 1:
        raise ConfigError(f"burst_size must be >= 1, got {burst_size}")
    total = profile.total()
    if process == "uniform":
        n = int(total)
        return np.array(
            [_invert_cumulative(profile, k + 1.0) for k in range(n)]
        )
    if process == "burst":
        times: list[float] = []
        k = burst_size
        while k <= total:
            at = _invert_cumulative(profile, float(k))
            times.extend([at] * burst_size)
            k += burst_size
        return np.array(times)
    # poisson: inversion of unit-exponential cumulative gaps.
    rng = np.random.default_rng(seed)
    times = []
    expected = 0.0
    while True:
        expected += float(rng.exponential(1.0))
        if expected > total:
            break
        times.append(_invert_cumulative(profile, expected))
    return np.array(times)


@dataclass(frozen=True)
class ScheduledRequest:
    """One schedule entry: fire ``request`` at ``at_s`` from run start."""

    at_s: float
    request: ScenarioRequest


@dataclass(frozen=True)
class Schedule:
    """A deterministic request schedule plus its provenance.

    ``checksum()`` covers the canonical JSON of every (time, request)
    pair — two schedules with the same checksum carry the byte-identical
    offered load, which is how the benchmark proves static and adaptive
    runs saw the same traffic.
    """

    items: "tuple[ScheduledRequest, ...]"
    profile: dict
    process: str
    mix: str
    seed: int

    @property
    def duration_s(self) -> float:
        return float(self.profile.get("duration_s") or (
            sum(d for d, _ in self.profile.get("steps", [])) or 0.0
        ))

    def to_jsonable(self) -> dict:
        """The whole schedule as a canonical-JSON-ready document."""
        return {
            "process": self.process,
            "mix": self.mix,
            "seed": self.seed,
            "profile": self.profile,
            "items": [
                {"at_s": round(it.at_s, 9), "request": it.request.to_dict()}
                for it in self.items
            ],
        }

    def checksum(self) -> str:
        """sha256 over the canonical JSON of the whole schedule."""
        return payload_checksum(self.to_jsonable())

    def canonical(self) -> str:
        """The canonical JSON string itself (byte-identity checks)."""
        return canonical_json(self.to_jsonable())


def build_schedule(
    *,
    process: str,
    profile: RateProfile,
    mix,
    seed: int,
    run_id: str = "load",
    burst_size: int = 8,
    deadline_s: "float | None" = None,
    params_override: "Mapping | None" = None,
) -> Schedule:
    """Materialise the full request schedule for one load run.

    Arrival times and request-kind draws use two decorrelated child
    streams of the same seed, so changing the mix never perturbs the
    arrival pattern (and vice versa).
    """
    at = arrival_times(process, profile, seed=seed, burst_size=burst_size)
    kind_rng = np.random.default_rng([seed, 1])
    items = tuple(
        ScheduledRequest(
            at_s=float(t),
            request=mix.make_request(
                i,
                kind_rng,
                run_id=run_id,
                deadline_s=deadline_s,
                params_override=params_override,
            ),
        )
        for i, t in enumerate(at)
    )
    return Schedule(
        items=items,
        profile=profile.to_dict(),
        process=process,
        mix=mix.name,
        seed=seed,
    )
