"""The canned adaptive-vs-static overload benchmark.

One seeded schedule — a Poisson ramp from half the worker pool's
capacity to ~10x over it, all ``spin`` requests with a known constant
service time and a tight deadline — replayed twice against two fresh
services that differ *only* in admission mode:

* ``static``   — PR 5 behaviour: a bounded queue admits until full.
  Under overload the queue fills, every admitted request ages toward
  its deadline while queued, and workers burn time on requests that
  are cancelled mid-run — goodput collapses below capacity.
* ``adaptive`` — the AIMD limiter + degradation ladder keep the
  outstanding window near pool capacity, so admitted requests finish
  inside their deadline and the excess is turned away at the door.

The identical offered load is *proved*, not assumed: both runs carry
the same schedule checksum.  The report (``bench-service/1``) stores
each run's :func:`~repro.loadgen.stats.summarize` document plus the
:func:`~repro.loadgen.stats.compare` verdict — bootstrap CIs on
goodput, CI separation, and Cliff's delta on completed-request
latencies.
"""

from __future__ import annotations

import time

from repro.loadgen.runner import InProcessTransport, LoadConfig, run_schedule
from repro.loadgen.stats import compare
from repro.obs.metrics import get_registry
from repro.service import ScenarioRequest, ScenarioService, ServiceConfig

SCHEMA = "bench-service/1"

#: Admission modes the benchmark contrasts.
MODES = ("static", "adaptive")


def _warm_service(svc: ScenarioService, workers: int) -> None:
    """Run one trivial spin per worker so process spawn + import cost
    lands before the measured window (it would otherwise bias the
    first seconds of *both* runs and the limiter's first estimates)."""
    for i in range(workers):
        svc.submit(
            ScenarioRequest(
                id=f"warmup-{i}", kind="spin", params={"duration_s": 0.001}
            ),
            block=True,
        )
    svc.wait_all(timeout=60.0)


def service_benchmark(
    *,
    seed: int = 2014,
    duration_s: float = 8.0,
    workers: int = 2,
    queue_cap: int = 32,
    spin_s: float = 0.1,
    deadline_s: float = 0.25,
    overload_factor: float = 10.0,
    n_boot: int = 400,
    progress=None,
) -> dict:
    """Run the adaptive-vs-static soak; returns the ``bench-service/1``
    document (see module docstring)."""
    say = progress or (lambda msg: None)
    capacity_rps = workers / spin_s
    cfg = LoadConfig(
        arrival="poisson",
        profile="ramp",
        rate=0.5 * capacity_rps,
        rate_end=overload_factor * capacity_rps,
        duration_s=duration_s,
        mix="spin",
        seed=seed,
        deadline_s=deadline_s,
        params_override={"duration_s": spin_s},
        max_attempts=2,
        retry_budget=20.0,
        retry_refill_per_s=5.0,
    )
    schedule = cfg.build_schedule(run_id="bench")
    say(
        f"schedule: {len(schedule.items)} requests, ramp "
        f"{cfg.rate:.0f}->{cfg.rate_end:.0f} rps over {duration_s}s "
        f"(pool capacity ~{capacity_rps:.0f} rps)"
    )
    runs: dict = {}
    latencies: dict = {}
    for mode in MODES:
        get_registry().reset()
        svc_cfg = ServiceConfig(
            workers=workers,
            queue_cap=queue_cap,
            admission=mode,
        )
        t0 = time.monotonic()
        with ScenarioService(svc_cfg) as svc:
            _warm_service(svc, workers)
            report = run_schedule(schedule, InProcessTransport(svc), cfg)
            svc.wait_all(timeout=60.0)
            stats = svc.stats()
        summary = report.summary(seed=seed, n_boot=n_boot)
        summary["service"] = {
            "admission": stats.get("admission"),
            "admission_limit": stats.get("admission_limit"),
            "degrade_tier": stats.get("degrade_tier"),
            "completed": stats.get("completed"),
            "failed": stats.get("failed"),
            "shed": stats.get("shed"),
        }
        runs[mode] = summary
        latencies[mode] = report.latencies()
        say(
            f"{mode}: goodput {summary['goodput_rps']:.1f} rps, "
            f"shed rate {summary['shed_rate']:.2f}, "
            f"p99 {summary['latency']['p99_s']} "
            f"({time.monotonic() - t0:.1f}s wall)"
        )
    verdict = compare(
        runs["static"],
        runs["adaptive"],
        baseline_latencies=latencies["static"],
        candidate_latencies=latencies["adaptive"],
    )
    return {
        "schema": SCHEMA,
        "config": {
            "seed": seed,
            "duration_s": duration_s,
            "workers": workers,
            "queue_cap": queue_cap,
            "spin_s": spin_s,
            "deadline_s": deadline_s,
            "overload_factor": overload_factor,
            "capacity_rps": capacity_rps,
            "n_boot": n_boot,
            "load": cfg.to_dict(),
        },
        "schedule_checksum": schedule.checksum(),
        "requests": len(schedule.items),
        "runs": runs,
        "comparison": verdict,
    }
