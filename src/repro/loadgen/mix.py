"""Weighted request mixes of the load generator.

A :class:`RequestMix` draws scenario kinds by weight and stamps each
with small, fast, fully deterministic parameters — the point of a load
run is to stress the *service* (admission, queueing, degradation), not
to run production-sized simulations, so every kind here is sized to run
in milliseconds-to-tens-of-milliseconds on one worker.

Mixes are looked up by name (:data:`MIX_NAMES`):

* ``spin``     — pure busy-wait requests with a fixed service time; the
  benchmark mix, because its service time is a known constant.
* ``transfer`` — p2p/group/fanin multipath transfers on a small torus.
* ``mixed``    — the full menagerie: transfers, io aggregation, chaos
  campaigns and spins, weighted toward the cheap kinds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.service.request import ScenarioRequest
from repro.util.validation import ConfigError

_MiB = 1 << 20


@dataclass(frozen=True)
class RequestMix:
    """A named, weighted distribution over scenario kinds."""

    name: str
    kinds: "tuple[str, ...]"
    weights: "tuple[float, ...]"
    params: "Mapping[str, Mapping[str, Any]]" = field(default_factory=dict)

    def __post_init__(self):
        if not self.kinds:
            raise ConfigError("mix needs at least one kind")
        if len(self.weights) != len(self.kinds):
            raise ConfigError(
                f"mix {self.name!r}: {len(self.kinds)} kinds but "
                f"{len(self.weights)} weights"
            )
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ConfigError(f"mix {self.name!r}: weights must be >= 0, sum > 0")

    def pick(self, rng) -> str:
        """Draw one kind (seeded ``numpy`` Generator)."""
        total = sum(self.weights)
        probs = [w / total for w in self.weights]
        return self.kinds[int(rng.choice(len(self.kinds), p=probs))]

    def make_request(
        self,
        index: int,
        rng,
        *,
        run_id: str = "load",
        deadline_s: "float | None" = None,
        params_override: "Mapping[str, Any] | None" = None,
    ) -> ScenarioRequest:
        """The ``index``-th request of a run: kind by weighted draw,
        params from the mix table (plus ``params_override``), id
        ``{run_id}-{index:06d}``."""
        kind = self.pick(rng)
        params = dict(self.params.get(kind, {}))
        if params_override:
            params.update(params_override)
        return ScenarioRequest(
            id=f"{run_id}-{index:06d}",
            kind=kind,
            params=params,
            deadline_s=deadline_s,
        )


MIXES: "dict[str, RequestMix]" = {
    "spin": RequestMix(
        name="spin",
        kinds=("spin",),
        weights=(1.0,),
        params={"spin": {"duration_s": 0.05}},
    ),
    "transfer": RequestMix(
        name="transfer",
        kinds=("p2p", "group", "fanin"),
        weights=(0.5, 0.25, 0.25),
        params={
            "p2p": {"nnodes": 32, "nbytes": _MiB},
            "group": {"nnodes": 32, "nbytes": _MiB},
            "fanin": {"nnodes": 32, "nbytes": _MiB},
        },
    ),
    "mixed": RequestMix(
        name="mixed",
        kinds=("p2p", "group", "fanin", "io", "chaos", "spin"),
        weights=(0.30, 0.15, 0.15, 0.15, 0.05, 0.20),
        params={
            "p2p": {"nnodes": 32, "nbytes": _MiB},
            "group": {"nnodes": 32, "nbytes": _MiB},
            "fanin": {"nnodes": 32, "nbytes": _MiB},
            "io": {"ncores": 512, "pattern": "1"},
            "chaos": {"nnodes": 32, "nbytes": _MiB, "budget_s": 0.2},
            "spin": {"duration_s": 0.02},
        },
    ),
}

#: Mix names accepted by ``repro load --mix``.
MIX_NAMES = tuple(sorted(MIXES))


def get_mix(name: str) -> RequestMix:
    """Look a mix up by name."""
    try:
        return MIXES[name]
    except KeyError:
        raise ConfigError(f"unknown mix {name!r}; known: {MIX_NAMES}") from None


def mix_reference(
    mix: "RequestMix | str",
    *,
    params_override: "Mapping[str, Any] | None" = None,
) -> dict:
    """Unloaded reference payloads for a mix's transfer kinds.

    Every transfer kind the mix can draw (with the exact params a
    request would carry) is simulated once, together, through the
    batched simulate pass
    (:func:`repro.service.scenarios.run_transfer_kinds_batched`) — the
    per-kind payload an *unloaded* worker would produce.  Load reports
    embed this so completed-request payloads can be read against the
    no-contention reference (a degraded-tier run diverges from it).
    Kinds with no transfer physics (``spin``, ``io``, ``chaos``) and
    non-exact overrides (``batch_tol != 0``) are skipped.
    """
    from repro.service.scenarios import run_transfer_kinds_batched

    if isinstance(mix, str):
        mix = get_mix(mix)
    items = []
    for kind in mix.kinds:
        if kind not in ("p2p", "group", "fanin"):
            continue
        params = dict(mix.params.get(kind, {}))
        if params_override:
            params.update(params_override)
        if float(params.get("batch_tol", 0.0) or 0.0) != 0.0:
            continue
        items.append((kind, params))
    if not items:
        return {}
    payloads = run_transfer_kinds_batched(items)
    return {kind: payload for (kind, _), payload in zip(items, payloads)}
