"""Client-side retry discipline of the load generator.

Two pieces keep retries from amplifying an overload into a storm:

* :func:`full_jitter_backoff` — the AWS-style *full jitter* schedule:
  the sleep is drawn uniformly from ``[0, min(cap, base * mult**n)]``
  rather than being the deterministic exponential value, so a cohort of
  clients rejected together does not retry together.
* :class:`RetryBudget` — a token bucket shared by every client thread
  of a run: each retry spends one token, tokens refill at a bounded
  rate, and when the bucket is dry the rejection becomes terminal.
  Under sustained overload the retry traffic therefore converges to the
  refill rate — a small, fixed tax — instead of doubling the offered
  load.
"""

from __future__ import annotations

import threading
import time

from repro.util.validation import ConfigError


def full_jitter_backoff(
    attempt: int,
    *,
    base_s: float,
    cap_s: float,
    rng,
    multiplier: float = 2.0,
) -> float:
    """Sleep before retry ``attempt`` (0-based): uniform on
    ``[0, min(cap_s, base_s * multiplier**attempt)]``."""
    if base_s < 0 or cap_s < 0:
        raise ConfigError(f"backoff base/cap must be >= 0, got {base_s}/{cap_s}")
    if multiplier < 1.0:
        raise ConfigError(f"backoff multiplier must be >= 1, got {multiplier}")
    ceiling = min(cap_s, base_s * multiplier**attempt)
    return float(rng.uniform(0.0, ceiling))


class RetryBudget:
    """Token-bucket retry throttle (thread-safe).

    Args:
        capacity: bucket size — the largest retry burst ever allowed.
        refill_per_s: sustained retry rate ceiling [tokens/s].
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: float = 20.0,
        refill_per_s: float = 5.0,
        *,
        clock=time.monotonic,
    ):
        if capacity <= 0:
            raise ConfigError(f"capacity must be > 0, got {capacity}")
        if refill_per_s < 0:
            raise ConfigError(f"refill_per_s must be >= 0, got {refill_per_s}")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self._last = clock()
        self.denied = 0
        self.spent = 0

    def _refill_locked(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last) * self.refill_per_s
        )
        self._last = now

    def try_spend(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` means *don't retry*."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.spent += 1
                return True
            self.denied += 1
            return False

    def available(self) -> float:
        """Current token count (after refill)."""
        with self._lock:
            self._refill_locked()
            return self._tokens
