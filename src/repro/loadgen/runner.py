"""Open/closed-loop load runner driving the scenario service.

The runner takes a pre-built :class:`~repro.loadgen.arrivals.Schedule`
and replays it against a **transport**:

* :class:`InProcessTransport` — a live :class:`ScenarioService` in this
  process (the default; cheapest, and exposes service metrics);
* :class:`ServeTransport` — a ``repro serve`` subprocess over JSONL
  stdin/stdout (exercises the real wire path).

**Open loop** (default) paces submissions by the schedule's arrival
instants regardless of completions — the only honest way to measure an
overloaded service, since a closed loop self-throttles and hides
queueing collapse.  **Closed loop** instead keeps a fixed number of
client workers each running one request at a time (classic
concurrency-N benchmarking).

Each request's lifecycle runs on a client thread: submit, wait for the
terminal record, and on a *retriable* turn-away (queue full, adaptive
shed, circuit open) retry under the run's shared
:class:`~repro.loadgen.retry.RetryBudget` with full-jitter backoff.
Every scheduled request ends in exactly one
:class:`RequestOutcome` — ``completed``/``failed``/``shed`` from the
service, or ``rejected`` when admission turned it away terminally.

Latency is measured from the *scheduled* arrival instant, not the
submit instant, so client-side stalls cannot hide service queueing
delay (no coordinated omission).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.loadgen.arrivals import (
    ARRIVAL_PROCESSES,
    Schedule,
    ScheduledRequest,
    build_schedule,
    make_profile,
)
from repro.loadgen.mix import get_mix, mix_reference
from repro.loadgen.retry import RetryBudget, full_jitter_backoff
from repro.loadgen.stats import summarize
from repro.service.errors import ServiceError
from repro.service.request import TERMINAL_STATUSES, ScenarioRequest
from repro.util.validation import ConfigError

#: Client-visible terminal states (service terminals + client rejection).
OUTCOME_STATUSES = TERMINAL_STATUSES + ("rejected",)

#: Upper bound on concurrent client threads in open-loop mode.
_MAX_CLIENT_THREADS = 128


@dataclass(frozen=True)
class LoadConfig:
    """One load run, fully specified (and fully seeded).

    ``arrival``/``profile``/``rate``/``duration_s``/``mix``/``seed``
    define the offered load; ``mode`` picks open vs closed loop;
    the ``retry_*`` knobs shape the client retry discipline.
    """

    arrival: str = "poisson"
    profile: str = "constant"
    rate: float = 20.0
    rate_end: "float | None" = None
    steps: "tuple[tuple[float, float], ...]" = ()
    duration_s: float = 10.0
    mix: str = "spin"
    seed: int = 2014
    mode: str = "open"
    closed_concurrency: int = 8
    burst_size: int = 8
    deadline_s: "float | None" = None
    params_override: "Mapping[str, Any] | None" = None
    max_attempts: int = 3
    retry_base_s: float = 0.02
    retry_cap_s: float = 0.5
    retry_budget: float = 20.0
    retry_refill_per_s: float = 5.0

    def __post_init__(self):
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ConfigError(
                f"unknown arrival {self.arrival!r}; known: {ARRIVAL_PROCESSES}"
            )
        if self.mode not in ("open", "closed"):
            raise ConfigError(f"mode must be 'open' or 'closed', got {self.mode!r}")
        if self.closed_concurrency < 1:
            raise ConfigError(
                f"closed_concurrency must be >= 1, got {self.closed_concurrency}"
            )
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def build_schedule(self, run_id: str = "load") -> Schedule:
        """Materialise this config's deterministic request schedule."""
        profile = make_profile(
            self.profile,
            rate=self.rate,
            duration_s=self.duration_s,
            rate_end=self.rate_end,
            steps=self.steps or None,
        )
        return build_schedule(
            process=self.arrival,
            profile=profile,
            mix=get_mix(self.mix),
            seed=self.seed,
            run_id=run_id,
            burst_size=self.burst_size,
            deadline_s=self.deadline_s,
            params_override=self.params_override,
        )

    def to_dict(self) -> dict:
        """JSON-able config (embedded in reports for provenance)."""
        return {
            "arrival": self.arrival,
            "profile": self.profile,
            "rate": self.rate,
            "rate_end": self.rate_end,
            "steps": [list(s) for s in self.steps],
            "duration_s": self.duration_s,
            "mix": self.mix,
            "seed": self.seed,
            "mode": self.mode,
            "closed_concurrency": self.closed_concurrency,
            "burst_size": self.burst_size,
            "deadline_s": self.deadline_s,
            "max_attempts": self.max_attempts,
            "retry_budget": self.retry_budget,
            "retry_refill_per_s": self.retry_refill_per_s,
        }


@dataclass
class RequestOutcome:
    """One scheduled request's single client-visible terminal state."""

    id: str
    kind: str
    status: str
    error: "str | None" = None
    scheduled_at: float = 0.0
    submitted_at: "float | None" = None
    finished_at: "float | None" = None
    attempts: int = 1
    tier: int = 0
    degraded: bool = False

    @property
    def latency_s(self) -> "float | None":
        """Schedule-to-terminal latency of a completed request."""
        if self.status != "completed" or self.finished_at is None:
            return None
        return self.finished_at - self.scheduled_at

    def to_dict(self) -> dict:
        """JSON-able outcome record (``--outcomes`` report section)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "error": self.error,
            "scheduled_at": self.scheduled_at,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "tier": self.tier,
            "degraded": self.degraded,
            "latency_s": self.latency_s,
        }


class InProcessTransport:
    """Drive a live :class:`ScenarioService` in this process.

    ``execute`` blocks the calling client thread until the request is
    terminal; retriable admission rejections come back as a
    ``status="rejected"`` record instead of an exception, so the runner
    treats both transports identically.
    """

    def __init__(self, service):
        self.service = service

    def execute(self, req: ScenarioRequest) -> dict:
        """Submit and block until terminal; rejections become records."""
        try:
            self.service.submit(req)
        except ServiceError as exc:
            return {
                "status": "rejected",
                "retriable": exc.retriable,
                "error": f"{exc.code}: {exc}",
            }
        r = self.service.result(req.id)
        return {
            "status": r.status,
            "error": r.error,
            "tier": r.tier,
            "degraded": r.degraded,
            "retriable": r.status == "shed",
        }

    def close(self) -> None:  # service lifetime is the caller's
        """No-op: the caller owns the service."""
        pass


class ServeTransport:
    """Drive a ``repro serve`` subprocess over JSONL stdin/stdout.

    A single reader thread demultiplexes result lines (completion order
    is not submission order) to per-request events keyed by id.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_cap: int = 32,
        deadline_s: "float | None" = None,
        admission: str = "static",
        extra_args: "Sequence[str]" = (),
        timeout_s: float = 120.0,
    ):
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--workers", str(workers), "--queue-cap", str(queue_cap),
            "--admission", admission,
        ]
        if deadline_s is not None:
            cmd += ["--deadline", str(deadline_s)]
        cmd += list(extra_args)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.timeout_s = timeout_s
        self.proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, env=env,
        )
        self._wlock = threading.Lock()
        self._lock = threading.Lock()
        self._waiters: "dict[str, tuple[threading.Event, dict]]" = {}
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            rid = doc.get("id")
            with self._lock:
                waiter = self._waiters.pop(rid, None)
            if waiter is not None:
                ev, box = waiter
                box["doc"] = doc
                ev.set()

    def execute(self, req: ScenarioRequest) -> dict:
        """Write one JSONL request and wait for its result line."""
        ev, box = threading.Event(), {}
        with self._lock:
            self._waiters[req.id] = (ev, box)
        assert self.proc.stdin is not None
        with self._wlock:
            self.proc.stdin.write(json.dumps(req.to_dict()) + "\n")
            self.proc.stdin.flush()
        if not ev.wait(self.timeout_s):
            with self._lock:
                self._waiters.pop(req.id, None)
            return {
                "status": "rejected", "retriable": False,
                "error": f"transport-timeout: no record within {self.timeout_s}s",
            }
        doc = box["doc"]
        if doc.get("status") == "rejected":
            return {
                "status": "rejected",
                "retriable": bool(doc.get("retriable", False)),
                "error": doc.get("error"),
            }
        return {
            "status": doc.get("status"),
            "error": doc.get("error"),
            "tier": int(doc.get("tier", 0)),
            "degraded": bool(doc.get("degraded", False)),
            "retriable": doc.get("status") == "shed",
        }

    def close(self) -> None:
        """EOF the daemon's stdin (drains and exits), then reap it."""
        try:
            if self.proc.stdin is not None:
                self.proc.stdin.close()
            self.proc.wait(timeout=60)
        except Exception:
            self.proc.kill()

    def __enter__(self) -> "ServeTransport":
        """Context manager: the transport itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the daemon on scope exit."""
        self.close()


@dataclass
class LoadReport:
    """Everything one load run produced."""

    outcomes: "list[RequestOutcome]"
    duration_s: float
    schedule_checksum: str
    wall_s: float
    config: dict = field(default_factory=dict)
    mix_reference: "dict | None" = None

    def latencies(self) -> "list[float]":
        """Completed requests' schedule-to-terminal latencies."""
        return [o.latency_s for o in self.outcomes if o.latency_s is not None]

    def summary(self, *, seed: int = 0, n_boot: int = 500) -> dict:
        """The :func:`~repro.loadgen.stats.summarize` document."""
        doc = summarize(self.outcomes, self.duration_s, seed=seed, n_boot=n_boot)
        doc["schedule_checksum"] = self.schedule_checksum
        doc["wall_s"] = self.wall_s
        return doc

    def to_dict(self, *, include_outcomes: bool = False, seed: int = 0) -> dict:
        """The report file body (config + summary [+ outcomes])."""
        doc = {"config": self.config, "summary": self.summary(seed=seed)}
        if self.mix_reference:
            doc["mix_reference"] = self.mix_reference
        if include_outcomes:
            doc["outcomes"] = [o.to_dict() for o in self.outcomes]
        return doc


def _retry_request(item: ScheduledRequest, attempt: int) -> ScenarioRequest:
    """Attempt >= 2 resubmits need a fresh id (ids are unique per
    service lifetime — the journal and dedup are keyed on them)."""
    return replace(item.request, id=f"{item.request.id}-r{attempt - 1}")


def run_schedule(
    schedule: Schedule,
    transport,
    cfg: LoadConfig,
    *,
    clock=time.monotonic,
    sleep=time.sleep,
) -> LoadReport:
    """Replay ``schedule`` through ``transport`` per ``cfg.mode``."""
    budget = RetryBudget(
        capacity=cfg.retry_budget, refill_per_s=cfg.retry_refill_per_s, clock=clock
    )
    outcomes: "list[RequestOutcome | None]" = [None] * len(schedule.items)
    t0 = clock()

    def lifecycle(index: int, item: ScheduledRequest) -> None:
        rng = np.random.default_rng([cfg.seed, 2, index])
        attempt = 0
        rec: dict = {"status": "rejected", "retriable": False, "error": "not-run"}
        submitted_at = None
        while attempt < cfg.max_attempts:
            attempt += 1
            req = item.request if attempt == 1 else _retry_request(item, attempt)
            submitted_at = clock() - t0
            rec = transport.execute(req)
            if rec["status"] in ("rejected", "shed") and rec.get("retriable"):
                if attempt < cfg.max_attempts and budget.try_spend():
                    sleep(
                        full_jitter_backoff(
                            attempt - 1,
                            base_s=cfg.retry_base_s,
                            cap_s=cfg.retry_cap_s,
                            rng=rng,
                        )
                    )
                    continue
            break
        outcomes[index] = RequestOutcome(
            id=item.request.id,
            kind=item.request.kind,
            status=rec["status"],
            error=rec.get("error"),
            scheduled_at=item.at_s,
            submitted_at=submitted_at,
            finished_at=clock() - t0,
            attempts=attempt,
            tier=int(rec.get("tier", 0)),
            degraded=bool(rec.get("degraded", False)),
        )

    if cfg.mode == "closed":
        max_workers = cfg.closed_concurrency
    else:
        max_workers = _MAX_CLIENT_THREADS
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = []
        for i, item in enumerate(schedule.items):
            if cfg.mode == "open":
                delay = item.at_s - (clock() - t0)
                if delay > 0:
                    sleep(delay)
            futures.append(pool.submit(lifecycle, i, item))
        for f in futures:
            f.result()
    wall_s = clock() - t0
    done = [o for o in outcomes if o is not None]
    return LoadReport(
        outcomes=done,
        duration_s=schedule.duration_s,
        schedule_checksum=schedule.checksum(),
        wall_s=wall_s,
        config=cfg.to_dict(),
    )


def run_load(
    cfg: LoadConfig,
    transport,
    *,
    run_id: str = "load",
    clock=time.monotonic,
    sleep=time.sleep,
) -> LoadReport:
    """Build ``cfg``'s schedule and replay it through ``transport``.

    After the run (so the extra simulation cannot perturb its timing),
    the mix's unloaded per-kind reference payloads are computed in one
    batched pass (:func:`repro.loadgen.mix.mix_reference`) and attached
    to the report as ``mix_reference``.
    """
    schedule = cfg.build_schedule(run_id)
    report = run_schedule(schedule, transport, cfg, clock=clock, sleep=sleep)
    try:
        report.mix_reference = mix_reference(
            cfg.mix, params_override=cfg.params_override
        )
    except Exception:  # advisory context; never fail a finished load run
        report.mix_reference = None
    return report
