"""Statistical reduction of load-run outcomes.

:func:`summarize` turns a run's per-request outcomes into the report
the benchmark stores: terminal-status counts, goodput, shed rate,
latency percentiles (p50/p95/p99) and degradation-tier occupancy —
each rate/percentile with a seeded **bootstrap confidence interval**
(percentile method), so two runs can be compared honestly instead of
by point estimates.

:func:`compare` judges candidate vs baseline: relative goodput gain,
whether the goodput CIs are disjoint (the acceptance criterion of the
adaptive-vs-static soak), and **Cliff's delta** on the completed-request
latency samples as a scale-free effect size.

Everything takes an explicit seed; the same outcomes + seed always
reproduce the same intervals.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

#: Latency percentiles the report carries.
PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (numpy default method); NaN if empty."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def bootstrap_ci(
    values: Sequence[float],
    stat,
    *,
    n_boot: int = 500,
    alpha: float = 0.05,
    seed: int = 0,
) -> "tuple[float, float]":
    """Percentile-method bootstrap CI of ``stat(sample)``.

    ``stat`` maps a 1-D numpy array to a scalar.  Returns the
    ``(alpha/2, 1 - alpha/2)`` quantiles of the resampled statistic.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return (float("nan"), float("nan"))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    boots = np.array([stat(arr[row]) for row in idx])
    lo, hi = np.percentile(boots, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return (float(lo), float(hi))


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> float:
    """Cliff's delta effect size: P(a > b) - P(a < b), in [-1, 1].

    Negative means ``a`` stochastically *smaller* than ``b`` (for
    latencies: ``a`` is better).  Computed exactly in O((n+m) log(n+m))
    via rank counting.
    """
    x = np.sort(np.asarray(a, dtype=float))
    y = np.sort(np.asarray(b, dtype=float))
    if x.size == 0 or y.size == 0:
        return float("nan")
    # For each a_i: #(b < a_i) - #(b > a_i), summed.
    lt = np.searchsorted(y, x, side="left")  # b strictly below a_i
    gt = y.size - np.searchsorted(y, x, side="right")  # b strictly above
    return float((lt - gt).sum() / (x.size * y.size))


def _rate_ci(
    event_times: Sequence[float],
    window_s: float,
    *,
    n_boot: int,
    seed: int,
    bin_s: float = 1.0,
) -> "tuple[float, float]":
    """Bootstrap CI of an event *rate* [1/s] by resampling time bins.

    Resampling whole bins (block bootstrap with 1 s blocks) respects
    the serial correlation a queueing system induces — resampling
    individual completions would understate the variance.  ``window_s``
    must cover every event time so the drain tail gets its own bins
    instead of being folded into (and inflating) the last one.
    """
    nbins = max(1, int(np.ceil(window_s / bin_s)))
    counts = np.zeros(nbins)
    for t in event_times:
        counts[min(nbins - 1, max(0, int(t / bin_s)))] += 1
    per_bin_rate = counts / bin_s
    lo, hi = bootstrap_ci(
        per_bin_rate, lambda s: float(np.mean(s)), n_boot=n_boot, seed=seed
    )
    return (lo, hi)


def summarize(
    outcomes: Sequence,
    duration_s: float,
    *,
    seed: int = 0,
    n_boot: int = 500,
    tier_names: "Sequence[str]" = ("full", "reduced", "direct", "shed"),
) -> dict:
    """Reduce one run's :class:`~repro.loadgen.runner.RequestOutcome`
    list to the benchmark report (see module docstring)."""
    n = len(outcomes)
    statuses = [o.status for o in outcomes]
    counts = {s: statuses.count(s) for s in sorted(set(statuses))}
    completed = [o for o in outcomes if o.status == "completed"]
    turned_away = sum(
        1 for o in outcomes if o.status in ("shed", "rejected")
    )
    latencies = np.array([o.latency_s for o in completed if o.latency_s is not None])
    finish_times = [
        o.finished_at for o in completed if o.finished_at is not None
    ]
    # Rates are measured over the *observed* window: completions can
    # land after the schedule horizon (the drain tail), and dividing by
    # the nominal duration would overstate throughput for runs with a
    # long tail.  Both sides of a comparison get the same treatment.
    window_s = duration_s
    if finish_times:
        window_s = max(window_s, max(finish_times))
    goodput = len(completed) / window_s if window_s > 0 else float("nan")
    glo, ghi = _rate_ci(
        finish_times, window_s, n_boot=n_boot, seed=seed
    )
    latency: dict = {"n": int(latencies.size)}
    for q in PERCENTILES:
        key = f"p{int(q)}"
        if latencies.size:
            latency[key + "_s"] = percentile(latencies, q)
            lo, hi = bootstrap_ci(
                latencies,
                lambda s, q=q: float(np.percentile(s, q)),
                n_boot=n_boot,
                seed=seed + int(q),
            )
            latency[key + "_ci_s"] = [lo, hi]
        else:
            latency[key + "_s"] = None
            latency[key + "_ci_s"] = None
    tiers = {name: 0 for name in tier_names}
    for o in completed:
        name = tier_names[o.tier] if 0 <= o.tier < len(tier_names) else str(o.tier)
        tiers[name] = tiers.get(name, 0) + 1
    tier_occupancy = (
        {k: v / len(completed) for k, v in tiers.items()} if completed else tiers
    )
    attempts = [o.attempts for o in outcomes]
    return {
        "requests": n,
        "counts": counts,
        "goodput_rps": goodput,
        "goodput_ci_rps": [glo, ghi],
        "shed_rate": (turned_away / n) if n else 0.0,
        "latency": latency,
        "tier_occupancy": tier_occupancy,
        "retries": int(sum(attempts) - n) if n else 0,
        "duration_s": duration_s,
        "window_s": window_s,
        "bootstrap": {"n_boot": n_boot, "seed": seed, "alpha": 0.05},
    }


def compare(
    baseline: Mapping,
    candidate: Mapping,
    *,
    baseline_latencies: "Sequence[float] | None" = None,
    candidate_latencies: "Sequence[float] | None" = None,
) -> dict:
    """Candidate-vs-baseline verdict from two :func:`summarize` docs.

    ``goodput_ci_separated`` is True when the candidate's goodput CI
    lies *entirely above* the baseline's — the non-overlap criterion
    the adaptive-vs-static acceptance check uses.
    """
    g0, g1 = baseline["goodput_rps"], candidate["goodput_rps"]
    lo0, hi0 = baseline["goodput_ci_rps"]
    lo1, hi1 = candidate["goodput_ci_rps"]
    out = {
        "goodput_gain": (g1 - g0) / g0 if g0 else float("inf"),
        "goodput_ci_separated": bool(lo1 > hi0),
        "goodput_baseline_ci_rps": [lo0, hi0],
        "goodput_candidate_ci_rps": [lo1, hi1],
        "shed_rate_delta": candidate["shed_rate"] - baseline["shed_rate"],
    }
    if baseline_latencies is not None and candidate_latencies is not None:
        out["latency_cliffs_delta"] = cliffs_delta(
            candidate_latencies, baseline_latencies
        )
    p0 = baseline["latency"].get("p99_s")
    p1 = candidate["latency"].get("p99_s")
    out["p99_ratio"] = (p1 / p0) if (p0 and p1) else None
    return out
