"""The Blue Gene/Q machine model: compute nodes, psets, bridge and I/O nodes.

Mira's I/O architecture (paper §III): every 128 compute nodes form a
*pset* with two *bridge nodes* among them; each bridge node owns an 11th
2 GB/s link to the pset's I/O node (ION), for 4 GB/s of I/O bandwidth
per pset.  Compute-node I/O traffic is routed deterministically over the
torus to its default bridge node, then over the 11th link to the ION,
and from there to the storage/analysis fabric.

:class:`repro.machine.system.BGQSystem` assembles the torus topology, the
pset/ION structure and the link-capacity map consumed by the network
simulators; :func:`repro.machine.mira.mira_system` builds paper-faithful
instances from a node or core count.
"""

from repro.machine.pset import Pset, build_psets
from repro.machine.ionode import IONode, BridgeAssignment
from repro.machine.node import NodeRole, node_role
from repro.machine.system import BGQSystem
from repro.machine.mira import mira_system
from repro.machine.faults import FaultModel, degraded_system_capacity, random_link_faults
from repro.machine.storage import StorageFabric, fabric_capacity, storage_write_path

__all__ = [
    "Pset",
    "build_psets",
    "IONode",
    "BridgeAssignment",
    "NodeRole",
    "node_role",
    "BGQSystem",
    "mira_system",
    "FaultModel",
    "degraded_system_capacity",
    "random_link_faults",
    "StorageFabric",
    "fabric_capacity",
    "storage_write_path",
]
