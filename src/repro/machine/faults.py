"""Fault injection: degraded links, failed links/nodes, and fault schedules.

The paper's §IV-A conditions its analysis on "the absence of congestion
and network failures"; production torus partitions do run with degraded
links (retrained to lower rates), hard-failed links, and cordoned nodes.
This module lets experiments relax that assumption:

* :class:`FaultModel` — a *static* fault set: selected links' capacities
  are multiplied by a degradation factor, hard-failed links drop to zero
  capacity, and failed (cordoned) nodes must not serve as
  proxies/aggregators;
* :class:`FaultTrace` — a *dynamic*, reproducible schedule of
  time-windowed :class:`FaultEvent` records that can fire mid-transfer
  (transient faults, link retraining windows, permanent failures);
* :func:`degraded_system_capacity` — wraps a
  :class:`~repro.machine.system.BGQSystem` capacity function with a
  fault model;
* :func:`random_link_faults` / :func:`random_fault_trace` —
  reproducible random fault drawing.

The split between the two containers mirrors how the resilience layer
(:mod:`repro.resilience`) consumes them: a :class:`FaultModel` is
*known* state (the planner routes around it up front), while a
:class:`FaultTrace` is ground truth the executor only discovers through
observed throughput and missed deadlines.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.machine.system import BGQSystem
from repro.torus.topology import TorusTopology
from repro.util.rng import make_rng
from repro.util.validation import ConfigError


def _check_count(name: str, value, limit: int, limit_desc: str) -> int:
    """Validate an integer fault count against an inclusive upper limit."""
    if isinstance(value, bool):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    try:
        value = operator.index(value)
    except TypeError:
        raise ConfigError(f"{name} must be an integer, got {value!r}") from None
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")
    if value > limit:
        raise ConfigError(
            f"{name}={value} exceeds {limit_desc} ({limit}); "
            f"cannot draw that many distinct faults"
        )
    return value


@dataclass(frozen=True)
class FaultModel:
    """A static set of injected faults.

    Attributes:
        degraded_links: directed link id → capacity multiplier in (0, 1].
        failed_nodes: nodes that must not serve as proxies/aggregators
            (their links keep working so the machine stays routable;
            a fully dead node would partition the static routes).
        failed_links: directed links that are hard down (capacity 0).
            Flows routed across them stall; the planners treat any path
            crossing one as unusable.
    """

    degraded_links: Mapping[int, float] = field(default_factory=dict)
    failed_nodes: frozenset[int] = frozenset()
    failed_links: frozenset[int] = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "failed_nodes", frozenset(self.failed_nodes))
        object.__setattr__(self, "failed_links", frozenset(self.failed_links))
        for link, factor in self.degraded_links.items():
            if not 0 < factor <= 1:
                raise ConfigError(
                    f"link {link}: degradation factor must be in (0, 1], got {factor}"
                )
        overlap = self.failed_links & set(self.degraded_links)
        if overlap:
            raise ConfigError(
                f"links {sorted(overlap)} are both degraded and hard-failed; "
                f"list each link in only one of degraded_links / failed_links"
            )

    @property
    def is_null(self) -> bool:
        """True when this model injects no faults at all."""
        return (
            not self.degraded_links
            and not self.failed_nodes
            and not self.failed_links
        )

    def link_factor(self, link_id: int) -> float:
        """Effective capacity multiplier of one link (0.0 = hard down)."""
        if link_id in self.failed_links:
            return 0.0
        return self.degraded_links.get(link_id, 1.0)

    def path_factor(self, links: Iterable[int]) -> float:
        """Worst (minimum) link factor along a route (1.0 when empty)."""
        return min((self.link_factor(l) for l in links), default=1.0)

    def path_ok(self, links: Iterable[int]) -> bool:
        """True when no link on the route is hard down."""
        return self.path_factor(links) > 0.0

    def capacity_fn(self, base: Callable[[int], float]) -> Callable[[int], float]:
        """Wrap a capacity function with the degradations and failures."""

        def capacity(link_id: int) -> float:
            return base(link_id) * self.link_factor(link_id)

        return capacity


@dataclass(frozen=True)
class FaultEvent:
    """One time-windowed fault: ``link`` runs at ``factor`` during
    ``[start, end)``.

    ``factor == 0`` is a hard failure for the window; ``end`` defaults to
    infinity (a permanent fault from ``start`` on).
    """

    link: int
    factor: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self):
        if self.link < 0:
            raise ConfigError(f"link id must be >= 0, got {self.link}")
        if not 0 <= self.factor <= 1:
            raise ConfigError(
                f"link {self.link}: event factor must be in [0, 1], got {self.factor}"
            )
        if self.start < 0:
            raise ConfigError(f"event start must be >= 0, got {self.start}")
        if not self.end > self.start:
            raise ConfigError(
                f"event end ({self.end}) must be after start ({self.start})"
            )

    def active_at(self, t: float) -> bool:
        """True when the fault is live at time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class FaultTrace:
    """A reproducible schedule of transient/permanent link faults.

    Overlapping events on one link compose by taking the *worst* (lowest)
    factor — a link retrained twice is only as fast as its deepest
    degradation.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda e: (e.start, e.link, e.factor))),
        )

    @property
    def is_null(self) -> bool:
        """True when the schedule is empty."""
        return not self.events

    @property
    def affected_links(self) -> frozenset[int]:
        """All links that appear in any event."""
        return frozenset(e.link for e in self.events)

    def factor_at(self, link: int, t: float) -> float:
        """Effective capacity multiplier of ``link`` at time ``t``."""
        return min(
            (e.factor for e in self.events if e.link == link and e.active_at(t)),
            default=1.0,
        )

    def boundaries(self, links: "Iterable[int] | None" = None) -> list[float]:
        """Sorted distinct times at which any (selected) link's factor may
        change — event starts and finite ends."""
        sel = None if links is None else set(links)
        times: set[float] = set()
        for e in self.events:
            if sel is not None and e.link not in sel:
                continue
            times.add(e.start)
            if math.isfinite(e.end):
                times.add(e.end)
        return sorted(times)

    def next_change(
        self, t: float, links: "Iterable[int] | None" = None
    ) -> "float | None":
        """Earliest factor-change boundary strictly after ``t`` (or None)."""
        for b in self.boundaries(links):
            if b > t:
                return b
        return None

    def snapshot(self, t: float, base: "FaultModel | None" = None) -> FaultModel:
        """The fault state at one instant, merged with a static model.

        Composition is per link by worst factor; ``base.failed_nodes``
        are carried through unchanged.
        """
        base = base or FaultModel()
        degraded: dict[int, float] = dict(base.degraded_links)
        failed: set[int] = set(base.failed_links)
        for link in self.affected_links:
            f = min(self.factor_at(link, t), base.link_factor(link))
            if f <= 0.0:
                failed.add(link)
                degraded.pop(link, None)
            elif f < 1.0:
                degraded[link] = f
        for link in failed:
            degraded.pop(link, None)
        return FaultModel(
            degraded_links=degraded,
            failed_nodes=base.failed_nodes,
            failed_links=frozenset(failed),
        )


def degraded_system_capacity(
    system: BGQSystem, faults: FaultModel
) -> Callable[[int], float]:
    """The machine's capacity map with faults applied (pass to FlowSim)."""
    return faults.capacity_fn(system.capacity)


def random_link_faults(
    topology: TorusTopology,
    nlinks: int,
    *,
    factor: float = 0.25,
    nfailed_nodes: int = 0,
    nfailed_links: int = 0,
    seed=None,
) -> FaultModel:
    """Draw a reproducible random fault set.

    ``nlinks`` torus links degrade to ``factor`` of their capacity,
    ``nfailed_links`` further distinct links fail hard (capacity 0), and
    ``nfailed_nodes`` distinct nodes are cordoned.  Counts beyond the
    topology's directed-link or node population are rejected with a
    :class:`~repro.util.validation.ConfigError` up front rather than
    surfacing as an opaque sampling error.
    """
    nlinks = _check_count("nlinks", nlinks, topology.nlinks, "directed-link count")
    nfailed_links = _check_count(
        "nfailed_links", nfailed_links, topology.nlinks, "directed-link count"
    )
    if nlinks + nfailed_links > topology.nlinks:
        raise ConfigError(
            f"nlinks + nfailed_links = {nlinks + nfailed_links} exceeds the "
            f"directed-link count ({topology.nlinks})"
        )
    nfailed_nodes = _check_count(
        "nfailed_nodes", nfailed_nodes, topology.nnodes, "node count"
    )
    rng = make_rng(seed)
    ndraw = nlinks + nfailed_links
    links = rng.choice(topology.nlinks, size=ndraw, replace=False) if ndraw else []
    nodes = (
        rng.choice(topology.nnodes, size=nfailed_nodes, replace=False)
        if nfailed_nodes
        else []
    )
    return FaultModel(
        degraded_links={int(l): factor for l in links[:nlinks]},
        failed_nodes=frozenset(int(n) for n in nodes),
        failed_links=frozenset(int(l) for l in links[nlinks:]),
    )


def random_fault_trace(
    topology: TorusTopology,
    nevents: int,
    *,
    factors: Sequence[float] = (0.1, 0.25, 0.5),
    hard_fraction: float = 0.0,
    t_max: float = 1.0,
    min_duration: float = 0.01,
    max_duration: "float | None" = None,
    seed=None,
) -> FaultTrace:
    """Draw a reproducible random fault schedule.

    Each event picks a uniformly random directed link, a degradation
    factor from ``factors`` (or a hard failure with probability
    ``hard_fraction``), a start in ``[0, t_max)`` and a duration in
    ``[min_duration, max_duration]`` (``None`` means permanent).
    """
    nevents = _check_count("nevents", nevents, 10**9, "sanity bound")
    if not 0 <= hard_fraction <= 1:
        raise ConfigError(f"hard_fraction must be in [0, 1], got {hard_fraction}")
    if t_max <= 0:
        raise ConfigError(f"t_max must be > 0, got {t_max}")
    if min_duration <= 0:
        raise ConfigError(f"min_duration must be > 0, got {min_duration}")
    if max_duration is not None and max_duration < min_duration:
        raise ConfigError("max_duration must be >= min_duration")
    if not factors or any(not 0 < f <= 1 for f in factors):
        raise ConfigError("factors must be non-empty multipliers in (0, 1]")
    rng = make_rng(seed)
    events = []
    for _ in range(nevents):
        link = int(rng.integers(topology.nlinks))
        hard = bool(rng.random() < hard_fraction)
        factor = 0.0 if hard else float(factors[int(rng.integers(len(factors)))])
        start = float(rng.uniform(0.0, t_max))
        if max_duration is None:
            end = math.inf
        else:
            end = start + float(rng.uniform(min_duration, max_duration))
        events.append(FaultEvent(link=link, factor=factor, start=start, end=end))
    return FaultTrace(tuple(events))
