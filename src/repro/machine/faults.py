"""Fault injection: degraded links, failed links/nodes, and fault schedules.

The paper's §IV-A conditions its analysis on "the absence of congestion
and network failures"; production torus partitions do run with degraded
links (retrained to lower rates), hard-failed links, and cordoned nodes.
This module lets experiments relax that assumption:

* :class:`FaultModel` — a *static* fault set: selected links' capacities
  are multiplied by a degradation factor, hard-failed links drop to zero
  capacity, and failed (cordoned) nodes must not serve as
  proxies/aggregators;
* :class:`FaultTrace` — a *dynamic*, reproducible schedule of
  time-windowed :class:`FaultEvent` records that can fire mid-transfer
  (transient faults, link retraining windows, permanent failures);
* :func:`degraded_system_capacity` — wraps a
  :class:`~repro.machine.system.BGQSystem` capacity function with a
  fault model;
* :class:`SDCModel` — the *non-fail-stop* family: silent data
  corruption.  Links flip bits in transit, store-and-forward proxy
  buffers corrupt staged extents, and stale duplicates of
  already-delivered extents reappear — all while every transfer
  *reports success*.  Decisions are pure functions of
  ``(seed, transfer, extent, round, carrier)`` via a stable hash, so a
  faulted campaign is byte-deterministic regardless of whether the
  serial or the batched execution path evaluates it (and in which
  order);
* :func:`random_link_faults` / :func:`random_fault_trace` /
  :func:`random_sdc_model` — reproducible random fault drawing.

The split between the two containers mirrors how the resilience layer
(:mod:`repro.resilience`) consumes them: a :class:`FaultModel` is
*known* state (the planner routes around it up front), while a
:class:`FaultTrace` is ground truth the executor only discovers through
observed throughput and missed deadlines.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.machine.system import BGQSystem
from repro.torus.topology import TorusTopology
from repro.util.checksum import stable_unit
from repro.util.rng import make_rng
from repro.util.validation import ConfigError


def _check_count(name: str, value, limit: int, limit_desc: str) -> int:
    """Validate an integer fault count against an inclusive upper limit."""
    if isinstance(value, bool):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    try:
        value = operator.index(value)
    except TypeError:
        raise ConfigError(f"{name} must be an integer, got {value!r}") from None
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")
    if value > limit:
        raise ConfigError(
            f"{name}={value} exceeds {limit_desc} ({limit}); "
            f"cannot draw that many distinct faults"
        )
    return value


@dataclass(frozen=True)
class FaultModel:
    """A static set of injected faults.

    Attributes:
        degraded_links: directed link id → capacity multiplier in (0, 1].
        failed_nodes: nodes that must not serve as proxies/aggregators
            (their links keep working so the machine stays routable;
            a fully dead node would partition the static routes).
        failed_links: directed links that are hard down (capacity 0).
            Flows routed across them stall; the planners treat any path
            crossing one as unusable.
    """

    degraded_links: Mapping[int, float] = field(default_factory=dict)
    failed_nodes: frozenset[int] = frozenset()
    failed_links: frozenset[int] = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "failed_nodes", frozenset(self.failed_nodes))
        object.__setattr__(self, "failed_links", frozenset(self.failed_links))
        for link, factor in self.degraded_links.items():
            if not 0 < factor <= 1:
                raise ConfigError(
                    f"link {link}: degradation factor must be in (0, 1], got {factor}"
                )
        overlap = self.failed_links & set(self.degraded_links)
        if overlap:
            raise ConfigError(
                f"links {sorted(overlap)} are both degraded and hard-failed; "
                f"list each link in only one of degraded_links / failed_links"
            )

    @property
    def is_null(self) -> bool:
        """True when this model injects no faults at all."""
        return (
            not self.degraded_links
            and not self.failed_nodes
            and not self.failed_links
        )

    def link_factor(self, link_id: int) -> float:
        """Effective capacity multiplier of one link (0.0 = hard down)."""
        if link_id in self.failed_links:
            return 0.0
        return self.degraded_links.get(link_id, 1.0)

    def path_factor(self, links: Iterable[int]) -> float:
        """Worst (minimum) link factor along a route (1.0 when empty)."""
        return min((self.link_factor(l) for l in links), default=1.0)

    def path_ok(self, links: Iterable[int]) -> bool:
        """True when no link on the route is hard down."""
        return self.path_factor(links) > 0.0

    def capacity_fn(self, base: Callable[[int], float]) -> Callable[[int], float]:
        """Wrap a capacity function with the degradations and failures."""

        def capacity(link_id: int) -> float:
            return base(link_id) * self.link_factor(link_id)

        return capacity


@dataclass(frozen=True)
class FaultEvent:
    """One time-windowed fault: ``link`` runs at ``factor`` during
    ``[start, end)``.

    ``factor == 0`` is a hard failure for the window; ``end`` defaults to
    infinity (a permanent fault from ``start`` on).
    """

    link: int
    factor: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self):
        if self.link < 0:
            raise ConfigError(f"link id must be >= 0, got {self.link}")
        if not 0 <= self.factor <= 1:
            raise ConfigError(
                f"link {self.link}: event factor must be in [0, 1], got {self.factor}"
            )
        if self.start < 0:
            raise ConfigError(f"event start must be >= 0, got {self.start}")
        if not self.end > self.start:
            raise ConfigError(
                f"event end ({self.end}) must be after start ({self.start})"
            )

    def active_at(self, t: float) -> bool:
        """True when the fault is live at time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class FaultTrace:
    """A reproducible schedule of transient/permanent link faults.

    Overlapping events on one link compose by taking the *worst* (lowest)
    factor — a link retrained twice is only as fast as its deepest
    degradation.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda e: (e.start, e.link, e.factor))),
        )

    @property
    def is_null(self) -> bool:
        """True when the schedule is empty."""
        return not self.events

    @property
    def affected_links(self) -> frozenset[int]:
        """All links that appear in any event."""
        return frozenset(e.link for e in self.events)

    def factor_at(self, link: int, t: float) -> float:
        """Effective capacity multiplier of ``link`` at time ``t``."""
        return min(
            (e.factor for e in self.events if e.link == link and e.active_at(t)),
            default=1.0,
        )

    def boundaries(self, links: "Iterable[int] | None" = None) -> list[float]:
        """Sorted distinct times at which any (selected) link's factor may
        change — event starts and finite ends."""
        sel = None if links is None else set(links)
        times: set[float] = set()
        for e in self.events:
            if sel is not None and e.link not in sel:
                continue
            times.add(e.start)
            if math.isfinite(e.end):
                times.add(e.end)
        return sorted(times)

    def next_change(
        self, t: float, links: "Iterable[int] | None" = None
    ) -> "float | None":
        """Earliest factor-change boundary strictly after ``t`` (or None)."""
        for b in self.boundaries(links):
            if b > t:
                return b
        return None

    def snapshot(self, t: float, base: "FaultModel | None" = None) -> FaultModel:
        """The fault state at one instant, merged with a static model.

        Composition is per link by worst factor; ``base.failed_nodes``
        are carried through unchanged.
        """
        base = base or FaultModel()
        degraded: dict[int, float] = dict(base.degraded_links)
        failed: set[int] = set(base.failed_links)
        for link in self.affected_links:
            f = min(self.factor_at(link, t), base.link_factor(link))
            if f <= 0.0:
                failed.add(link)
                degraded.pop(link, None)
            elif f < 1.0:
                degraded[link] = f
        for link in failed:
            degraded.pop(link, None)
        return FaultModel(
            degraded_links=degraded,
            failed_nodes=base.failed_nodes,
            failed_links=frozenset(failed),
        )


def _check_rate(name: str, rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {rate}")
    return float(rate)


@dataclass(frozen=True)
class SDCModel:
    """Seeded silent-data-corruption (non-fail-stop) fault family.

    Unlike :class:`FaultModel`/:class:`FaultTrace`, nothing here slows a
    flow down or fails it: every transfer *appears* to succeed.  The
    damage is to payload bytes — exactly the failure mode the extent
    checksums in :mod:`repro.resilience.ledger` exist to catch.

    Attributes:
        flip_links: directed link id → per-extent probability that an
            extent crossing the link in one round arrives corrupted.
        corrupt_proxies: proxy node id → per-extent probability that the
            proxy's store-and-forward buffer corrupts a staged extent.
        stale_rate: per-extent probability that a round re-delivers a
            stale duplicate of an already-delivered extent (receiver
            dedup must drop it — delivering it twice breaks
            exactly-once).
        seed: campaign seed folded into every draw.

    Every decision (:meth:`wire_corrupts`, :meth:`proxy_corrupts`,
    :meth:`stale_replay`) is a pure function of its labels via
    :func:`repro.util.checksum.stable_unit` — no mutable RNG state — so
    the serial executor and the block-diagonal batched executor reach
    byte-identical verdicts under one seed no matter how their
    evaluation orders interleave.
    """

    flip_links: Mapping[int, float] = field(default_factory=dict)
    corrupt_proxies: Mapping[int, float] = field(default_factory=dict)
    stale_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for link, rate in self.flip_links.items():
            _check_rate(f"flip_links[{link}]", rate)
        for node, rate in self.corrupt_proxies.items():
            _check_rate(f"corrupt_proxies[{node}]", rate)
        _check_rate("stale_rate", self.stale_rate)

    @property
    def is_null(self) -> bool:
        """True when no draw can ever corrupt anything."""
        return (
            all(r <= 0.0 for r in self.flip_links.values())
            and all(r <= 0.0 for r in self.corrupt_proxies.values())
            and self.stale_rate <= 0.0
        )

    # -- rates --------------------------------------------------------------------

    def link_flip_rate(self, link: int) -> float:
        """Per-extent corruption probability of one directed link."""
        return self.flip_links.get(link, 0.0)

    def proxy_corrupt_rate(self, node: int) -> float:
        """Per-extent corruption probability of one proxy's buffer."""
        return self.corrupt_proxies.get(node, 0.0)

    def route_flip_probability(self, links: Iterable[int]) -> float:
        """Probability an extent crossing ``links`` arrives corrupted:
        ``1 - Π(1 - rate_l)`` over the route's flaky links."""
        survive = 1.0
        for l in links:
            rate = self.flip_links.get(l, 0.0)
            if rate > 0.0:
                survive *= 1.0 - rate
        return 1.0 - survive

    def flaky_links_on(self, links: Iterable[int]) -> tuple[int, ...]:
        """The route's links with a non-zero flip rate, ascending."""
        return tuple(
            sorted(l for l in set(links) if self.flip_links.get(l, 0.0) > 0.0)
        )

    # -- pure-function decisions --------------------------------------------------

    def _draw(self, kind: str, key: tuple[int, int], eid: int, rnd: int) -> float:
        return stable_unit("sdc", self.seed, kind, key[0], key[1], eid, rnd)

    def wire_corrupts(
        self, key: tuple[int, int], eid: int, rnd: int, links: Iterable[int]
    ) -> bool:
        """Did extent ``eid`` of transfer ``key`` arrive corrupted after
        crossing ``links`` in retry round ``rnd``?"""
        p = self.route_flip_probability(links)
        return p > 0.0 and self._draw("wire", key, eid, rnd) < p

    def proxy_corrupts(
        self, key: tuple[int, int], eid: int, rnd: int, proxy: int
    ) -> bool:
        """Did proxy ``proxy``'s buffer corrupt staged extent ``eid``
        during retry round ``rnd``?"""
        p = self.proxy_corrupt_rate(proxy)
        return p > 0.0 and self._draw(f"proxy:{proxy}", key, eid, rnd) < p

    def stale_replay(self, key: tuple[int, int], eid: int, rnd: int) -> bool:
        """Does round ``rnd`` re-deliver a stale duplicate of the
        already-delivered extent ``eid``?"""
        return (
            self.stale_rate > 0.0
            and self._draw("stale", key, eid, rnd) < self.stale_rate
        )


def random_sdc_model(
    topology: TorusTopology,
    nflip_links: int,
    *,
    flip_rate: float = 0.25,
    ncorrupt_proxies: int = 0,
    corrupt_rate: float = 0.5,
    stale_rate: float = 0.0,
    seed=None,
) -> SDCModel:
    """Draw a reproducible random silent-corruption model.

    ``nflip_links`` distinct directed links flip bits at ``flip_rate``
    per extent; ``ncorrupt_proxies`` distinct nodes corrupt staged
    extents at ``corrupt_rate``.  The draw seed doubles as the model's
    decision seed so one integer reproduces the whole campaign.
    """
    nflip_links = _check_count(
        "nflip_links", nflip_links, topology.nlinks, "directed-link count"
    )
    ncorrupt_proxies = _check_count(
        "ncorrupt_proxies", ncorrupt_proxies, topology.nnodes, "node count"
    )
    _check_rate("flip_rate", flip_rate)
    _check_rate("corrupt_rate", corrupt_rate)
    _check_rate("stale_rate", stale_rate)
    rng = make_rng(seed)
    links = (
        rng.choice(topology.nlinks, size=nflip_links, replace=False)
        if nflip_links
        else []
    )
    nodes = (
        rng.choice(topology.nnodes, size=ncorrupt_proxies, replace=False)
        if ncorrupt_proxies
        else []
    )
    return SDCModel(
        flip_links={int(l): flip_rate for l in links},
        corrupt_proxies={int(n): corrupt_rate for n in nodes},
        stale_rate=stale_rate,
        seed=int(seed) if isinstance(seed, int) else 0,
    )


def degraded_system_capacity(
    system: BGQSystem, faults: FaultModel
) -> Callable[[int], float]:
    """The machine's capacity map with faults applied (pass to FlowSim)."""
    return faults.capacity_fn(system.capacity)


def random_link_faults(
    topology: TorusTopology,
    nlinks: int,
    *,
    factor: float = 0.25,
    nfailed_nodes: int = 0,
    nfailed_links: int = 0,
    seed=None,
) -> FaultModel:
    """Draw a reproducible random fault set.

    ``nlinks`` torus links degrade to ``factor`` of their capacity,
    ``nfailed_links`` further distinct links fail hard (capacity 0), and
    ``nfailed_nodes`` distinct nodes are cordoned.  Counts beyond the
    topology's directed-link or node population are rejected with a
    :class:`~repro.util.validation.ConfigError` up front rather than
    surfacing as an opaque sampling error.
    """
    nlinks = _check_count("nlinks", nlinks, topology.nlinks, "directed-link count")
    nfailed_links = _check_count(
        "nfailed_links", nfailed_links, topology.nlinks, "directed-link count"
    )
    if nlinks + nfailed_links > topology.nlinks:
        raise ConfigError(
            f"nlinks + nfailed_links = {nlinks + nfailed_links} exceeds the "
            f"directed-link count ({topology.nlinks})"
        )
    nfailed_nodes = _check_count(
        "nfailed_nodes", nfailed_nodes, topology.nnodes, "node count"
    )
    rng = make_rng(seed)
    ndraw = nlinks + nfailed_links
    links = rng.choice(topology.nlinks, size=ndraw, replace=False) if ndraw else []
    nodes = (
        rng.choice(topology.nnodes, size=nfailed_nodes, replace=False)
        if nfailed_nodes
        else []
    )
    return FaultModel(
        degraded_links={int(l): factor for l in links[:nlinks]},
        failed_nodes=frozenset(int(n) for n in nodes),
        failed_links=frozenset(int(l) for l in links[nlinks:]),
    )


def random_fault_trace(
    topology: TorusTopology,
    nevents: int,
    *,
    factors: Sequence[float] = (0.1, 0.25, 0.5),
    hard_fraction: float = 0.0,
    t_max: float = 1.0,
    min_duration: float = 0.01,
    max_duration: "float | None" = None,
    seed=None,
) -> FaultTrace:
    """Draw a reproducible random fault schedule.

    Each event picks a uniformly random directed link, a degradation
    factor from ``factors`` (or a hard failure with probability
    ``hard_fraction``), a start in ``[0, t_max)`` and a duration in
    ``[min_duration, max_duration]`` (``None`` means permanent).
    """
    nevents = _check_count("nevents", nevents, 10**9, "sanity bound")
    if not 0 <= hard_fraction <= 1:
        raise ConfigError(f"hard_fraction must be in [0, 1], got {hard_fraction}")
    if t_max <= 0:
        raise ConfigError(f"t_max must be > 0, got {t_max}")
    if min_duration <= 0:
        raise ConfigError(f"min_duration must be > 0, got {min_duration}")
    if max_duration is not None and max_duration < min_duration:
        raise ConfigError("max_duration must be >= min_duration")
    if not factors or any(not 0 < f <= 1 for f in factors):
        raise ConfigError("factors must be non-empty multipliers in (0, 1]")
    rng = make_rng(seed)
    events = []
    for _ in range(nevents):
        link = int(rng.integers(topology.nlinks))
        hard = bool(rng.random() < hard_fraction)
        factor = 0.0 if hard else float(factors[int(rng.integers(len(factors)))])
        start = float(rng.uniform(0.0, t_max))
        if max_duration is None:
            end = math.inf
        else:
            end = start + float(rng.uniform(min_duration, max_duration))
        events.append(FaultEvent(link=link, factor=factor, start=start, end=end))
    return FaultTrace(tuple(events))
