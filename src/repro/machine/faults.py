"""Fault injection: degraded links and failed nodes.

The paper's §IV-A conditions its analysis on "the absence of congestion
and network failures"; production torus partitions do run with degraded
links (retrained to lower rates) and cordoned nodes.  This module lets
experiments relax that assumption:

* :class:`FaultModel` — multiplies selected links' capacities by a
  degradation factor and records failed (unusable-as-proxy) nodes;
* :func:`degraded_system` — wraps a :class:`~repro.machine.system.BGQSystem`
  capacity function with a fault model;
* :func:`random_link_faults` — reproducible random fault drawing.

Routing is unchanged (BG/Q's static routes survive degraded links at
reduced rate; hard link *failures* trigger re-routing that is out of
scope), so a degraded link simply becomes a slow spot that Algorithm 1's
disjoint paths may or may not avoid — which is exactly what the fault
tests probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.machine.system import BGQSystem
from repro.torus.topology import TorusTopology
from repro.util.rng import make_rng
from repro.util.validation import ConfigError


@dataclass(frozen=True)
class FaultModel:
    """A set of injected faults.

    Attributes:
        degraded_links: directed link id → capacity multiplier in (0, 1].
        failed_nodes: nodes that must not serve as proxies/aggregators
            (their links keep working so the machine stays routable;
            a fully dead node would partition the static routes).
    """

    degraded_links: Mapping[int, float] = field(default_factory=dict)
    failed_nodes: frozenset[int] = frozenset()

    def __post_init__(self):
        for link, factor in self.degraded_links.items():
            if not 0 < factor <= 1:
                raise ConfigError(
                    f"link {link}: degradation factor must be in (0, 1], got {factor}"
                )

    def capacity_fn(self, base: Callable[[int], float]) -> Callable[[int], float]:
        """Wrap a capacity function with the degradations."""

        def capacity(link_id: int) -> float:
            return base(link_id) * self.degraded_links.get(link_id, 1.0)

        return capacity


def degraded_system_capacity(
    system: BGQSystem, faults: FaultModel
) -> Callable[[int], float]:
    """The machine's capacity map with faults applied (pass to FlowSim)."""
    return faults.capacity_fn(system.capacity)


def random_link_faults(
    topology: TorusTopology,
    nlinks: int,
    *,
    factor: float = 0.25,
    nfailed_nodes: int = 0,
    seed=None,
) -> FaultModel:
    """Draw a reproducible random fault set.

    ``nlinks`` torus links degrade to ``factor`` of their capacity;
    ``nfailed_nodes`` distinct nodes are cordoned.
    """
    if not 0 <= nlinks <= topology.nlinks:
        raise ConfigError(f"nlinks must be in [0, {topology.nlinks}]")
    if not 0 <= nfailed_nodes <= topology.nnodes:
        raise ConfigError(f"nfailed_nodes must be in [0, {topology.nnodes}]")
    rng = make_rng(seed)
    links = rng.choice(topology.nlinks, size=nlinks, replace=False) if nlinks else []
    nodes = (
        rng.choice(topology.nnodes, size=nfailed_nodes, replace=False)
        if nfailed_nodes
        else []
    )
    return FaultModel(
        degraded_links={int(l): factor for l in links},
        failed_nodes=frozenset(int(n) for n in nodes),
    )
