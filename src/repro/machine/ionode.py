"""I/O nodes and compute-node → bridge assignments."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.pset import Pset
from repro.torus.topology import TorusTopology


@dataclass(frozen=True)
class IONode:
    """One I/O node: serves a single pset through its bridge nodes.

    Attributes:
        index: ION number (equals the pset index).
        pset_index: the pset it serves.
        bridges: bridge compute nodes wired to this ION.
    """

    index: int
    pset_index: int
    bridges: tuple[int, ...]


@dataclass(frozen=True)
class BridgeAssignment:
    """Default bridge node of every compute node.

    BG/Q routes a compute node's I/O traffic deterministically to *its*
    bridge node; each bridge serves an equal contiguous sub-block of the
    pset (the block whose centre it sits at — see
    :func:`repro.machine.pset.build_psets`), splitting every pset evenly
    per bridge exactly as the hardware does.  A torus-nearest assignment
    would be *uneven* on wrap-around ties and starve one ION link.
    """

    bridge_of: dict[int, int]

    def __getitem__(self, node: int) -> int:
        return self.bridge_of[node]


def assign_bridges(topology: TorusTopology, psets: list[Pset]) -> BridgeAssignment:
    """Compute the default bridge of every node (equal pset sub-blocks)."""
    table: dict[int, int] = {}
    for pset in psets:
        nb = len(pset.bridges)
        block = pset.size // nb
        for i, node in enumerate(pset.nodes):
            table[node] = pset.bridges[min(i // block, nb - 1)]
    return BridgeAssignment(bridge_of=table)
