"""Factory for paper-faithful Mira partitions."""

from __future__ import annotations

from repro.machine.system import BGQSystem
from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.torus.partition import nodes_for_cores, partition_shape
from repro.util.validation import ConfigError


def mira_system(
    *,
    nnodes: "int | None" = None,
    ncores: "int | None" = None,
    params: NetworkParams = MIRA_PARAMS,
) -> BGQSystem:
    """A standard Mira partition as a :class:`BGQSystem`.

    Give exactly one of ``nnodes`` or ``ncores`` (16 cores per node, the
    unit the paper's x-axes use).  The torus shape comes from the Mira
    partition catalogue; psets are 128 nodes with 2 bridge nodes each,
    except that partitions smaller than one pset become a single pset.
    """
    if (nnodes is None) == (ncores is None):
        raise ConfigError("give exactly one of nnodes or ncores")
    if ncores is not None:
        nnodes = nodes_for_cores(ncores)
    assert nnodes is not None
    shape = partition_shape(nnodes)
    return BGQSystem(shape, params=params, pset_size=128, bridges_per_pset=2)
