"""Node roles within the machine."""

from __future__ import annotations

import enum


class NodeRole(enum.Enum):
    """What a compute node is, from the I/O subsystem's point of view."""

    COMPUTE = "compute"
    BRIDGE = "bridge"


def node_role(node: int, bridge_nodes: frozenset[int]) -> NodeRole:
    """Role of ``node`` given the machine's bridge set."""
    return NodeRole.BRIDGE if node in bridge_nodes else NodeRole.COMPUTE
