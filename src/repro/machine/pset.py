"""Pset construction.

A pset is a block of compute nodes sharing one I/O node.  Node indices
linearise torus coordinates lexicographically, so contiguous index blocks
are contiguous slabs of the torus — matching how BG/Q psets tile the
machine.  Bridge nodes sit inside the pset (they are ordinary compute
nodes with an extra link); we place them at the 1/4 and 3/4 points of the
block so each bridge serves the half of the pset nearest to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import ConfigError


@dataclass(frozen=True)
class Pset:
    """One pset: a node block, its bridge nodes and its ION id.

    Attributes:
        index: pset number (also the ION number).
        nodes: range of member compute-node indices.
        bridges: bridge-node indices (members of ``nodes``).
    """

    index: int
    nodes: range
    bridges: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of compute nodes in the pset."""
        return len(self.nodes)

    def __contains__(self, node: int) -> bool:
        return node in self.nodes


def build_psets(
    nnodes: int,
    pset_size: int = 128,
    bridges_per_pset: int = 2,
) -> list[Pset]:
    """Partition ``nnodes`` into psets with evenly spaced bridge nodes.

    Small test systems may have fewer nodes than the standard pset size;
    the pset then shrinks to the whole machine.  ``nnodes`` must divide
    evenly into psets.
    """
    if nnodes < 1:
        raise ConfigError(f"nnodes must be >= 1, got {nnodes}")
    if pset_size < 1:
        raise ConfigError(f"pset_size must be >= 1, got {pset_size}")
    pset_size = min(pset_size, nnodes)
    if nnodes % pset_size:
        raise ConfigError(f"{nnodes} nodes do not divide into psets of {pset_size}")
    if not 1 <= bridges_per_pset <= pset_size:
        raise ConfigError(
            f"bridges_per_pset must be in [1, {pset_size}], got {bridges_per_pset}"
        )
    psets = []
    for p in range(nnodes // pset_size):
        lo = p * pset_size
        block = range(lo, lo + pset_size)
        # Bridges at the centres of the bridges_per_pset equal sub-blocks
        # (1/4 and 3/4 points for the standard two bridges).
        bridges = tuple(
            lo + (2 * b + 1) * pset_size // (2 * bridges_per_pset)
            for b in range(bridges_per_pset)
        )
        psets.append(Pset(index=p, nodes=block, bridges=bridges))
    return psets
