"""The storage/analysis fabric behind the I/O nodes (paper Figure 1).

Mira's IONs connect through a QDR InfiniBand switch complex to GPFS file
servers and to Tukey, the analysis cluster.  The paper's measurements
deliberately stop at the IONs (writes go to ``/dev/null`` *on* the ION)
so the aggregation mechanisms are measured against the 2 GB/s ION links
rather than the filesystem; this module supplies the rest of the path so
experiments can also run end-to-end and *verify* that choice:

* :class:`StorageFabric` — ``nservers`` file servers of
  ``server_bw`` each behind the IB switch; ION→fabric traffic is striped
  over servers (GPFS-style round-robin by ION).
* :func:`fabric_capacity` — extends a machine's capacity map with
  per-server link ids.
* :func:`storage_write_path` — a node's full route: torus → bridge →
  ION → its striped file server.

With Mira-like numbers (tens of GPFS servers at several GB/s each) the
fabric out-runs the ION links for partition sizes the paper studies, so
``/dev/null``-at-the-ION and end-to-end results coincide — the property
``tests/test_machine_storage.py`` pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.machine.system import BGQSystem
from repro.util.units import gbps
from repro.util.validation import ConfigError


@dataclass(frozen=True)
class StorageFabric:
    """File servers behind the ION IB switch.

    Attributes:
        nservers: number of file servers.
        server_bw: ingest bandwidth per server [B/s].  Mira's GPFS had
            hundreds of GB/s aggregate; the defaults give a deliberately
            modest 16 x 4 GB/s = 64 GB/s so saturation *is* reachable in
            stress tests.
    """

    nservers: int = 16
    server_bw: float = gbps(4.0)

    def __post_init__(self):
        if self.nservers < 1:
            raise ConfigError(f"nservers must be >= 1, got {self.nservers}")
        if self.server_bw <= 0:
            raise ConfigError(f"server_bw must be > 0, got {self.server_bw}")

    @property
    def aggregate_bw(self) -> float:
        """Total fabric ingest bandwidth."""
        return self.nservers * self.server_bw

    def server_of_ion(self, ion_index: int) -> int:
        """GPFS-style striping: IONs round-robin over servers."""
        if ion_index < 0:
            raise ConfigError(f"ion_index must be >= 0, got {ion_index}")
        return ion_index % self.nservers

    def server_link_id(self, system: BGQSystem, server: int) -> int:
        """Directed-link id of one server's ingest link (appended after
        the machine's own link space)."""
        if not 0 <= server < self.nservers:
            raise ConfigError(f"server {server} out of range")
        return system.nlinks_total + server


def fabric_capacity(
    system: BGQSystem, fabric: StorageFabric
) -> Callable[[int], float]:
    """The machine's capacity map extended with the server links."""
    base = system.nlinks_total

    def capacity(link_id: int) -> float:
        if base <= link_id < base + fabric.nservers:
            return fabric.server_bw
        return system.capacity(link_id)

    return capacity


def storage_write_path(
    system: BGQSystem, fabric: StorageFabric, node: int
) -> tuple[int, ...]:
    """Full end-to-end write route of a compute node: torus hops to its
    bridge, the 11th link to the ION, the ION's switch link, and the
    striped file server's ingest link."""
    ion = system.ion_of_node(node).index
    server = fabric.server_of_ion(ion)
    return system.io_path(node, to_storage=True) + (
        fabric.server_link_id(system, server),
    )
