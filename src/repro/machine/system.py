"""The assembled machine: torus + psets + IONs + link capacities.

:class:`BGQSystem` is the object experiments hold.  It owns:

* the :class:`~repro.torus.topology.TorusTopology` and a cached
  deterministic router;
* the pset/bridge/ION structure and each node's default I/O route;
* the **link-capacity map** consumed by the network simulators, covering
  three id ranges: torus links, bridge→ION (11th) links, and ION→storage
  links.
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence

from repro.machine.ionode import IONode, assign_bridges
from repro.machine.pset import Pset, build_psets
from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.routing.deterministic import DimOrderRouter
from repro.routing.paths import Path
from repro.torus.topology import TorusTopology
from repro.util.validation import ConfigError


class BGQSystem:
    """A simulated Blue Gene/Q partition with its I/O subsystem.

    Args:
        shape: torus dimensions (or pass a ready topology).
        params: network/endpoint constants.
        pset_size: compute nodes per pset (128 on Mira; shrinks on tiny
            test systems).
        bridges_per_pset: bridge nodes per pset (2 on Mira).
    """

    def __init__(
        self,
        shape: "Sequence[int] | TorusTopology",
        params: NetworkParams = MIRA_PARAMS,
        *,
        pset_size: int = 128,
        bridges_per_pset: int = 2,
    ):
        self.topology = shape if isinstance(shape, TorusTopology) else TorusTopology(shape)
        self.params = params
        self.router = DimOrderRouter(self.topology)
        self.psets: list[Pset] = build_psets(
            self.topology.nnodes, pset_size, bridges_per_pset
        )
        self.pset_size = self.psets[0].size
        self._bridge_assignment = assign_bridges(self.topology, self.psets)
        self.ions: list[IONode] = [
            IONode(index=p.index, pset_index=p.index, bridges=p.bridges)
            for p in self.psets
        ]
        # Link id ranges: [0, T) torus; [T, T+B) bridge->ION (outbound);
        # [T+B, T+2B) ION->bridge (inbound, for reads); [T+2B, T+2B+I)
        # ION->storage.  The 11th link is full duplex on BG/Q, hence one
        # id per direction at the same 2 GB/s.
        self._io_link_base = self.topology.nlinks
        self._bridge_list: list[int] = [b for p in self.psets for b in p.bridges]
        self._bridge_link_of = {
            b: self._io_link_base + i for i, b in enumerate(self._bridge_list)
        }
        self._io_in_link_base = self._io_link_base + len(self._bridge_list)
        self._bridge_in_link_of = {
            b: self._io_in_link_base + i for i, b in enumerate(self._bridge_list)
        }
        self._storage_link_base = self._io_in_link_base + len(self._bridge_list)
        self.nlinks_total = self._storage_link_base + len(self.ions)

    # -- structure queries -----------------------------------------------------

    @property
    def nnodes(self) -> int:
        """Compute-node count."""
        return self.topology.nnodes

    @property
    def npsets(self) -> int:
        """Pset (and ION) count."""
        return len(self.psets)

    @cached_property
    def bridge_nodes(self) -> frozenset[int]:
        """All bridge-node indices."""
        return frozenset(self._bridge_list)

    def pset_of_node(self, node: int) -> Pset:
        """The pset containing ``node``."""
        if not 0 <= node < self.nnodes:
            raise ConfigError(f"node {node} out of range")
        return self.psets[node // self.pset_size]

    def ion_of_node(self, node: int) -> IONode:
        """The default I/O node serving ``node``."""
        return self.ions[self.pset_of_node(node).index]

    def bridge_of_node(self, node: int) -> int:
        """The default bridge node ``node``'s I/O traffic goes through."""
        return self._bridge_assignment[node]

    # -- link id space -----------------------------------------------------------

    def io_link_id(self, bridge_node: int) -> int:
        """Directed-link id of a bridge node's outbound 11th (ION) link."""
        try:
            return self._bridge_link_of[bridge_node]
        except KeyError:
            raise ConfigError(f"node {bridge_node} is not a bridge node") from None

    def io_in_link_id(self, bridge_node: int) -> int:
        """Directed-link id of the inbound (ION → bridge) 11th link."""
        try:
            return self._bridge_in_link_of[bridge_node]
        except KeyError:
            raise ConfigError(f"node {bridge_node} is not a bridge node") from None

    def storage_link_id(self, ion_index: int) -> int:
        """Directed-link id of an ION's storage-fabric link."""
        if not 0 <= ion_index < len(self.ions):
            raise ConfigError(f"ION index {ion_index} out of range")
        return self._storage_link_base + ion_index

    def capacity(self, link_id: int) -> float:
        """Capacity (bytes/s) of any link in the machine."""
        if 0 <= link_id < self._io_link_base:
            return self.params.link_bw
        if self._io_link_base <= link_id < self._storage_link_base:
            return self.params.io_link_bw
        if self._storage_link_base <= link_id < self.nlinks_total:
            return self.params.ion_storage_bw
        raise ConfigError(f"link id {link_id} outside this machine's link space")

    # -- routes ------------------------------------------------------------------

    def compute_path(self, src: int, dst: int) -> Path:
        """Deterministic torus path between two compute nodes."""
        return self.router.path(src, dst)

    def io_path(self, node: int, *, to_storage: bool = False) -> tuple[int, ...]:
        """Directed links of ``node``'s default I/O write route.

        Torus hops to the default bridge node, then the 11th link to the
        ION; with ``to_storage=True`` also the ION's storage-fabric link
        (the paper's experiments write to ``/dev/null`` *on the ION*, so
        benchmarks leave this off).
        """
        bridge = self.bridge_of_node(node)
        links = list(self.router.path(node, bridge).links)
        links.append(self.io_link_id(bridge))
        if to_storage:
            links.append(self.storage_link_id(self.ion_of_node(node).index))
        return tuple(links)

    def io_read_path(self, node: int) -> tuple[int, ...]:
        """Directed links of ``node``'s default I/O *read* route: the
        inbound 11th link from the ION to the default bridge node, then
        torus hops from the bridge to ``node``."""
        bridge = self.bridge_of_node(node)
        return (self.io_in_link_id(bridge),) + self.router.path(bridge, node).links

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(s) for s in self.topology.shape)
        return (
            f"BGQSystem({dims}, nodes={self.nnodes}, psets={self.npsets}, "
            f"bridges={len(self._bridge_list)})"
        )
