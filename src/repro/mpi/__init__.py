"""A simulated MPI layer over the machine model.

Experiments are *global-view SPMD simulations*: algorithm results are
computed functionally by a driver that can see all ranks' data, while the
communication cost is accounted by building :class:`repro.network.flow.Flow`
graphs through this layer and running them in the fluid simulator.

* :class:`repro.mpi.comm.SimComm` — communicators (world + subcomms) with
  rank→node placement through a :class:`repro.torus.mapping.RankMapping`.
* :class:`repro.mpi.program.FlowProgram` — a builder for flow DAGs with
  MPI-like nonblocking put/send, waits and barriers.
* :mod:`repro.mpi.collectives` — tree / recursive-doubling / pairwise
  collective algorithms expressed as flow DAGs.
* :mod:`repro.mpi.mpiio` — ROMIO-style two-phase collective I/O with
  rank-strided aggregators: **the paper's baseline** ("default MPI
  collective I/O").
"""

from repro.mpi.comm import SimComm
from repro.mpi.program import FlowProgram
from repro.mpi.onesided import SimWindow
from repro.mpi.collectives import (
    bcast,
    reduce,
    allreduce,
    gather,
    allgather,
    alltoallv,
)
from repro.mpi.mpiio import (
    CollectiveIOConfig,
    TwoPhasePlan,
    plan_collective_write,
    collective_write_flows,
)

__all__ = [
    "SimComm",
    "FlowProgram",
    "SimWindow",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "alltoallv",
    "CollectiveIOConfig",
    "TwoPhasePlan",
    "plan_collective_write",
    "collective_write_flows",
]
