"""Collective algorithms as flow DAGs.

Classic implementations, expressed as dependency-chained puts on a
:class:`~repro.mpi.program.FlowProgram`:

* ``bcast``/``reduce``/``gather`` — binomial trees;
* ``allreduce`` — recursive doubling (power-of-two), reduce+bcast
  otherwise;
* ``allgather`` — Bruck's algorithm (log rounds, any rank count);
* ``alltoallv`` — pairwise exchange (n-1 rounds; intended for small
  communicators — the I/O engines build their exchange phases directly
  as concurrent flows instead).

Every function takes and returns a ``dict rank -> flow id``: the entry
dependency ("this rank may start once this flow completes") and the exit
event per rank.  Ranks are local to ``prog.comm`` unless a ``ranks``
subset is given, in which case the collective runs over that subset with
positions in the list acting as the collective's internal ranks.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.mpi.program import FlowProgram
from repro.network.flow import FlowId
from repro.util.validation import ConfigError

AfterMap = "dict[int, FlowId] | None"


def _setup(prog: FlowProgram, ranks, after):
    if ranks is None:
        ranks = list(range(prog.comm.size))
    else:
        ranks = list(ranks)
    if len(set(ranks)) != len(ranks) or not ranks:
        raise ConfigError("ranks must be a non-empty list of distinct ranks")
    cur: dict[int, list[FlowId]] = {r: [] for r in ranks}
    if after:
        for r, fid in after.items():
            if r in cur:
                cur[r] = [fid]
    return ranks, cur


def _exit_map(prog: FlowProgram, cur: dict[int, list[FlowId]]) -> dict[int, FlowId]:
    out: dict[int, FlowId] = {}
    for r, fids in cur.items():
        if len(fids) == 1:
            out[r] = fids[0]
        else:
            out[r] = prog.event(fids, label="join")
    return out


def _send(prog, ranks, cur, i_src, i_dst, nbytes, label):
    """One collective step: position i_src sends to position i_dst."""
    deps = tuple(cur[ranks[i_src]])
    fid = prog.iput(ranks[i_src], ranks[i_dst], nbytes, after=deps, label=label)
    cur[ranks[i_dst]] = cur[ranks[i_dst]] + [fid]
    cur[ranks[i_src]] = [fid]
    return fid


def bcast(
    prog: FlowProgram,
    nbytes: float,
    *,
    root: int = 0,
    ranks: "Sequence[int] | None" = None,
    after: AfterMap = None,
) -> dict[int, FlowId]:
    """Binomial-tree broadcast of ``nbytes`` from position ``root``."""
    ranks, cur = _setup(prog, ranks, after)
    n = len(ranks)
    rot = ranks[root:] + ranks[:root]
    k = 1
    while k < n:
        for i in range(k):
            j = i + k
            if j < n:
                deps = tuple(cur[rot[i]])
                fid = prog.iput(rot[i], rot[j], nbytes, after=deps, label="bcast")
                cur[rot[j]] = cur[rot[j]] + [fid]
                cur[rot[i]] = [fid]
        k *= 2
    return _exit_map(prog, cur)


def reduce(
    prog: FlowProgram,
    nbytes: float,
    *,
    root: int = 0,
    ranks: "Sequence[int] | None" = None,
    after: AfterMap = None,
) -> dict[int, FlowId]:
    """Binomial-tree reduction of ``nbytes`` per rank to position ``root``."""
    ranks, cur = _setup(prog, ranks, after)
    n = len(ranks)
    rot = ranks[root:] + ranks[:root]
    k = 1
    while k < n:
        for i in range(0, n, 2 * k):
            j = i + k
            if j < n:
                deps = tuple(cur[rot[j]]) + tuple(cur[rot[i]])
                fid = prog.iput(rot[j], rot[i], nbytes, after=deps, label="reduce")
                cur[rot[i]] = [fid]
                cur[rot[j]] = [fid]
        k *= 2
    return _exit_map(prog, cur)


def allreduce(
    prog: FlowProgram,
    nbytes: float,
    *,
    ranks: "Sequence[int] | None" = None,
    after: AfterMap = None,
) -> dict[int, FlowId]:
    """Allreduce: recursive doubling when the count is a power of two,
    otherwise reduce-then-broadcast."""
    ranks_l, _ = _setup(prog, ranks, after)
    n = len(ranks_l)
    if n & (n - 1):
        mid = reduce(prog, nbytes, root=0, ranks=ranks_l, after=after)
        return bcast(prog, nbytes, root=0, ranks=ranks_l, after=mid)
    ranks_l, cur = _setup(prog, ranks_l, after)
    k = 1
    while k < n:
        new_cur = {r: list(v) for r, v in cur.items()}
        for i in range(n):
            j = i ^ k
            if j > i:
                d_ij = prog.iput(
                    ranks_l[i], ranks_l[j], nbytes, after=tuple(cur[ranks_l[i]]), label="ar"
                )
                d_ji = prog.iput(
                    ranks_l[j], ranks_l[i], nbytes, after=tuple(cur[ranks_l[j]]), label="ar"
                )
                new_cur[ranks_l[i]] = [d_ij, d_ji]
                new_cur[ranks_l[j]] = [d_ij, d_ji]
        cur = new_cur
        k *= 2
    return _exit_map(prog, cur)


def gather(
    prog: FlowProgram,
    nbytes: float,
    *,
    root: int = 0,
    ranks: "Sequence[int] | None" = None,
    after: AfterMap = None,
) -> dict[int, FlowId]:
    """Binomial-tree gather; message sizes grow as subtrees merge."""
    ranks, cur = _setup(prog, ranks, after)
    n = len(ranks)
    rot = ranks[root:] + ranks[:root]
    k = 1
    while k < n:
        for i in range(0, n, 2 * k):
            j = i + k
            if j < n:
                held = min(k, n - j)  # blocks held by the sender's subtree
                deps = tuple(cur[rot[j]]) + tuple(cur[rot[i]])
                fid = prog.iput(
                    rot[j], rot[i], nbytes * held, after=deps, label="gather"
                )
                cur[rot[i]] = [fid]
                cur[rot[j]] = [fid]
        k *= 2
    return _exit_map(prog, cur)


def allgather(
    prog: FlowProgram,
    nbytes: float,
    *,
    ranks: "Sequence[int] | None" = None,
    after: AfterMap = None,
) -> dict[int, FlowId]:
    """Bruck allgather: ``ceil(log2 n)`` rounds for any rank count.

    Round ``k`` has position ``i`` send its accumulated
    ``min(2^k, n - 2^k)`` blocks to position ``(i - 2^k) mod n``.
    """
    ranks, cur = _setup(prog, ranks, after)
    n = len(ranks)
    if n == 1:
        return _exit_map(prog, cur)
    k = 1
    while k < n:
        blocks = min(k, n - k)
        new_cur = {r: list(v) for r, v in cur.items()}
        for i in range(n):
            j = (i - k) % n
            fid = prog.iput(
                ranks[i], ranks[j], nbytes * blocks, after=tuple(cur[ranks[i]]), label="ag"
            )
            new_cur[ranks[j]] = new_cur[ranks[j]] + [fid]
        cur = new_cur
        k *= 2
    return _exit_map(prog, cur)


def alltoallv(
    prog: FlowProgram,
    sizes: "Sequence[Sequence[float]]",
    *,
    ranks: "Sequence[int] | None" = None,
    after: AfterMap = None,
) -> dict[int, FlowId]:
    """Pairwise-exchange alltoallv.

    ``sizes[i][j]`` is what position ``i`` sends to position ``j``.
    Runs ``n - 1`` shift rounds with per-rank dependency chaining — use
    on small communicators only (cost grows quadratically in flows).
    """
    ranks, cur = _setup(prog, ranks, after)
    n = len(ranks)
    if len(sizes) != n or any(len(row) != n for row in sizes):
        raise ConfigError(f"sizes must be an {n}x{n} matrix")
    for shift in range(1, n):
        new_cur = {r: list(v) for r, v in cur.items()}
        for i in range(n):
            j = (i + shift) % n
            nbytes = float(sizes[i][j])
            if nbytes <= 0:
                continue
            fid = prog.iput(
                ranks[i], ranks[j], nbytes, after=tuple(cur[ranks[i]]), label="a2av"
            )
            new_cur[ranks[j]] = new_cur[ranks[j]] + [fid]
            new_cur[ranks[i]] = [fid]
        cur = new_cur
    return _exit_map(prog, cur)


def log2_rounds(n: int) -> int:
    """Number of rounds a log-structured collective needs for ``n`` ranks."""
    return max(1, math.ceil(math.log2(n))) if n > 1 else 0
