"""Simulated communicators.

:class:`SimComm` binds a rank space to torus nodes.  The world
communicator covers every rank of a :class:`~repro.torus.mapping.RankMapping`;
subcommunicators (``MPI_Comm_create`` in the paper's Algorithm 2, used to
pick per-block aggregators) restrict to a subset while local ranks are
renumbered 0..n-1.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine.system import BGQSystem
from repro.torus.mapping import RankMapping
from repro.util.validation import ConfigError


class SimComm:
    """A communicator over the simulated machine.

    Args:
        system: the machine the job runs on.
        mapping: rank→node placement; defaults to one rank per node in
            ``ABCDET`` order.
        world_ranks: for subcommunicators — the world rank of each local
            rank.  ``None`` means the world communicator.
    """

    def __init__(
        self,
        system: BGQSystem,
        mapping: "RankMapping | None" = None,
        world_ranks: "Sequence[int] | None" = None,
    ):
        self.system = system
        self.mapping = mapping or RankMapping(system.topology, ranks_per_node=1)
        if self.mapping.topology is not system.topology:
            raise ConfigError("mapping and system must share one topology")
        if world_ranks is None:
            self._world_ranks = tuple(range(self.mapping.nranks))
        else:
            wr = tuple(int(r) for r in world_ranks)
            if len(set(wr)) != len(wr):
                raise ConfigError("world_ranks must be distinct")
            for r in wr:
                if not 0 <= r < self.mapping.nranks:
                    raise ConfigError(f"world rank {r} out of range")
            self._world_ranks = wr

    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self._world_ranks)

    def world_rank(self, local_rank: int) -> int:
        """World rank of a local rank."""
        if not 0 <= local_rank < self.size:
            raise ConfigError(f"local rank {local_rank} out of range (size={self.size})")
        return self._world_ranks[local_rank]

    def node_of(self, local_rank: int) -> int:
        """Torus node hosting a local rank."""
        return self.mapping.node_of_rank(self.world_rank(local_rank))

    def nodes(self) -> list[int]:
        """Hosting node of every local rank, in rank order."""
        return [self.node_of(r) for r in range(self.size)]

    def create(self, local_ranks: Sequence[int]) -> "SimComm":
        """Subcommunicator over a subset of this communicator's ranks.

        Mirrors ``MPI_Comm_create``: ``local_ranks`` are ranks *of this
        communicator*, and become ranks 0..n-1 of the child (in the given
        order).
        """
        return SimComm(
            self.system,
            self.mapping,
            world_ranks=[self.world_rank(r) for r in local_ranks],
        )

    def split_contiguous(self, nparts: int) -> list["SimComm"]:
        """Split into ``nparts`` contiguous equal rank blocks.

        The building block for per-region subcommunicators (each physics
        module of a coupled code owns a contiguous rank range).
        """
        if nparts < 1 or self.size % nparts:
            raise ConfigError(
                f"cannot split {self.size} ranks into {nparts} equal contiguous parts"
            )
        block = self.size // nparts
        return [
            self.create(range(p * block, (p + 1) * block)) for p in range(nparts)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimComm(size={self.size})"
