"""ROMIO-style two-phase collective I/O — the paper's baseline.

"Default MPI collective I/O" on BG/Q means collective buffering:

1. **Aggregator choice** — a fixed number of *cb nodes* (8 per pset by
   default on Blue Gene) selected by **rank stride**, i.e. evenly spaced
   in rank order with no knowledge of data volumes or torus/ION topology.
2. **File domains** — the accessed byte range of the shared file is cut
   into one contiguous, equal-sized domain per aggregator.
3. **Exchange phase** — every rank ships each piece of its data to the
   aggregator owning the enclosing file offset range (over the torus).
4. **Write phase** — aggregators write their domain to storage through
   *their own* default I/O path, in rounds of ``cb_buffer_size`` (the
   collective-buffer size, 16 MiB by default); a round's exchange must
   land before its write, and the single collective buffer serialises
   consecutive rounds per aggregator.

Under *sparse* patterns this goes wrong in exactly the ways the paper
describes: data-rich file regions map onto few aggregators (so few ION
links work while the rest idle), aggregator placement ignores the torus
(long, overlapping exchange routes), and the aggregator count never
adapts to the actual request volume.  :mod:`repro.core.aggregation`
implements the paper's fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.mpi.comm import SimComm
from repro.mpi.program import FlowProgram
from repro.network.flow import FlowId
from repro.util.units import MiB
from repro.util.validation import ConfigError


@dataclass(frozen=True)
class CollectiveIOConfig:
    """Tunables of the baseline collective-buffering implementation.

    Attributes:
        aggregators_on_bridges: place the cb nodes on the bridge nodes of
            each pset — the BG/Q MPICH (``ad_bg``) default, which derives
            its aggregator list from the bridge-node topology.  This is
            precisely the paper's complaint: the default aggregators "are
            neither uniformly distributed nor balanced to connect to all
            I/O nodes" — two fixed nodes per pset take the whole pset's
            incast regardless of the request's shape or volume.
        aggregators_per_pset: cb nodes per pset when
            ``aggregators_on_bridges=False`` (rank-strided generic ROMIO
            selection, kept for ablation).
        cb_buffer_size: collective buffer bytes per aggregator per round.
        merge_node_flows: coalesce exchange traffic with a common
            (source node, aggregator, round) into one flow — pure
            simulation economy; consecutive ranks share nodes and file
            extents, so the hardware would see one stream anyway.
        ctrl_cost_per_rank: per-round collective-control overhead, per
            rank [s] — ROMIO's exchange is an ``MPI_Alltoallv`` over the
            *full* communicator every round, whose request setup/scan
            cost grows linearly with the rank count even when almost all
            pairs are empty.  This O(p)-per-round term is one of the
            documented reasons two-phase I/O degrades at scale.
        global_rounds: model ROMIO's lockstep round structure (round
            ``r+1``'s exchange starts only after *all* round-``r`` writes
            completed, because the next alltoallv is collective).  True
            matches ``ADIOI_GEN_WriteStridedColl``; False is an idealised
            per-aggregator pipeline kept for ablation.
    """

    aggregators_on_bridges: bool = True
    aggregators_per_pset: int = 8
    cb_buffer_size: int = 16 * MiB
    merge_node_flows: bool = True
    ctrl_cost_per_rank: float = 50e-9
    global_rounds: bool = True

    def __post_init__(self):
        if self.aggregators_per_pset < 1:
            raise ConfigError("aggregators_per_pset must be >= 1")
        if self.cb_buffer_size < 1:
            raise ConfigError("cb_buffer_size must be >= 1")
        if self.ctrl_cost_per_rank < 0:
            raise ConfigError("ctrl_cost_per_rank must be >= 0")


@dataclass
class TwoPhasePlan:
    """The static plan of one baseline collective write.

    Attributes:
        aggregator_ranks: cb node ranks, stride-selected.
        domains: per-aggregator file byte range ``(lo, hi)``.
        offsets: exclusive prefix sum — rank i writes file bytes
            ``[offsets[i], offsets[i] + sizes[i])``.
        sizes: bytes written per rank.
        bytes_per_aggregator: exchange volume landing on each aggregator.
        bytes_per_ion: write volume leaving through each ION index.
    """

    aggregator_ranks: list[int]
    domains: list[tuple[int, int]]
    offsets: np.ndarray
    sizes: np.ndarray
    bytes_per_aggregator: np.ndarray
    bytes_per_ion: dict[int, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        """Total bytes of the collective write."""
        return int(self.sizes.sum())

    @property
    def active_aggregators(self) -> int:
        """Aggregators that actually received any data."""
        return int(np.count_nonzero(self.bytes_per_aggregator))

    @property
    def active_ions(self) -> int:
        """IONs that actually carried any write traffic."""
        return sum(1 for b in self.bytes_per_ion.values() if b > 0)


def plan_collective_write(
    comm: SimComm,
    sizes_by_rank: Sequence[int],
    config: CollectiveIOConfig = CollectiveIOConfig(),
) -> TwoPhasePlan:
    """Build the baseline's aggregator/file-domain plan."""
    sizes = np.asarray(sizes_by_rank, dtype=np.int64)
    if len(sizes) != comm.size:
        raise ConfigError(
            f"sizes_by_rank has {len(sizes)} entries for a comm of size {comm.size}"
        )
    if (sizes < 0).any():
        raise ConfigError("sizes_by_rank must be non-negative")
    offsets = np.zeros(comm.size, dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])
    total = int(sizes.sum())

    if config.aggregators_on_bridges and comm.size == comm.mapping.nranks:
        # ad_bg style: one aggregator rank per bridge node, pset order.
        # (Bridge ranks are world ranks; only valid on the world comm —
        # subcommunicators fall back to the rank-strided selection.)
        agg_ranks = [
            int(comm.mapping.ranks_on_node(bridge)[0])
            for pset in comm.system.psets
            for bridge in pset.bridges
        ]
        naggs = len(agg_ranks)
    else:
        naggs = min(config.aggregators_per_pset * comm.system.npsets, comm.size)
        agg_ranks = [int(i * comm.size // naggs) for i in range(naggs)]

    # Equal contiguous file domains over the accessed range.
    bounds = [int(i * total // naggs) for i in range(naggs + 1)]
    domains = [(bounds[i], bounds[i + 1]) for i in range(naggs)]

    bytes_per_agg = np.zeros(naggs, dtype=np.int64)
    for a, (lo, hi) in enumerate(domains):
        bytes_per_agg[a] = hi - lo

    plan = TwoPhasePlan(
        aggregator_ranks=agg_ranks,
        domains=domains,
        offsets=offsets,
        sizes=sizes,
        bytes_per_aggregator=bytes_per_agg,
    )
    for a, rank in enumerate(agg_ranks):
        ion = comm.system.ion_of_node(comm.node_of(rank)).index
        plan.bytes_per_ion[ion] = plan.bytes_per_ion.get(ion, 0.0) + float(
            bytes_per_agg[a]
        )
    return plan


def _domain_of(plan: TwoPhasePlan, offset: int) -> int:
    """Index of the aggregator whose file domain contains ``offset``."""
    naggs = len(plan.domains)
    total = plan.domains[-1][1]
    if total <= 0:
        return 0
    a = min(naggs - 1, offset * naggs // total)
    # Integer domain bounds may be off by one from the closed form.
    while a > 0 and offset < plan.domains[a][0]:
        a -= 1
    while a < naggs - 1 and offset >= plan.domains[a][1]:
        a += 1
    return a


def collective_write_flows(
    prog: FlowProgram,
    plan: TwoPhasePlan,
    config: CollectiveIOConfig = CollectiveIOConfig(),
    *,
    label: str = "cbio",
) -> FlowId:
    """Emit the baseline collective write into ``prog``.

    Returns the flow id of the final join event (completion of the whole
    collective write — what ``MPI_File_write_all`` returning means).
    """
    comm = prog.comm
    naggs = len(plan.aggregator_ranks)
    agg_nodes = [comm.node_of(r) for r in plan.aggregator_ranks]
    cb = config.cb_buffer_size

    # exchange[a][r] maps a source key -> bytes for aggregator a, round r.
    # The key is the source *node* when merging (16 consecutive ranks share
    # a node and contiguous file extents) or the source rank otherwise.
    nrounds = [
        max(1, -(-(hi - lo) // cb)) if hi > lo else 0 for lo, hi in plan.domains
    ]
    exchange: list[list[dict[int, float]]] = [
        [dict() for _ in range(nr)] for nr in nrounds
    ]
    node_of_key: dict[int, int] = {}
    for rank in range(comm.size):
        size = int(plan.sizes[rank])
        if size == 0:
            continue
        node = comm.node_of(rank)
        key = node if config.merge_node_flows else rank
        node_of_key[key] = node
        off = int(plan.offsets[rank])
        end = off + size
        while off < end:
            a = _domain_of(plan, off)
            dom_lo, dom_hi = plan.domains[a]
            # Clip to this aggregator's domain, then to the cb round.
            r = (off - dom_lo) // cb
            round_hi = min(dom_hi, dom_lo + (r + 1) * cb)
            piece = min(end, round_hi) - off
            bucket = exchange[a][r]
            bucket[key] = bucket.get(key, 0.0) + piece
            off += piece

    # One-time offset allgather (ADIOI_Calc_file_domains): log-depth
    # latency plus O(p) payload at 16 B per rank.
    stream = min(prog.params.stream_cap, prog.params.mem_bw)
    rounds_log = max(1, int(np.ceil(np.log2(max(2, comm.size)))))
    calc_delay = rounds_log * prog.params.o_msg + 16.0 * comm.size / stream
    phase_gate: FlowId = prog.event((), delay=calc_delay, label=f"{label}-calc")

    # Per-round alltoallv control overhead (request setup over all ranks).
    ctrl = config.ctrl_cost_per_rank * comm.size + prog.params.o_msg

    write_fids: list[FlowId] = []
    nrounds_global = max(nrounds, default=0)
    if config.global_rounds:
        for r in range(nrounds_global):
            round_writes: list[FlowId] = []
            gate = prog.event((phase_gate,), delay=ctrl, label=f"{label}-a2av")
            for a in range(naggs):
                if r >= nrounds[a]:
                    continue
                bucket = exchange[a][r]
                if not bucket:
                    continue
                arrivals = [
                    prog.iput_nodes(
                        node_of_key[key],
                        agg_nodes[a],
                        b,
                        after=(gate,),
                        label=f"{label}-xchg",
                    )
                    for key, b in sorted(bucket.items())
                ]
                round_bytes = float(sum(bucket.values()))
                w = prog.iwrite_ion(
                    agg_nodes[a], round_bytes, after=arrivals, label=f"{label}-write"
                )
                round_writes.append(w)
            if round_writes:
                write_fids.extend(round_writes)
                phase_gate = prog.event(round_writes, label=f"{label}-round")
            # else: an all-empty round costs only its control gate.
    else:
        for a in range(naggs):
            prev: FlowId = phase_gate
            for r in range(nrounds[a]):
                bucket = exchange[a][r]
                if not bucket:
                    continue
                gate = prog.event((prev,), delay=ctrl, label=f"{label}-a2av")
                arrivals = [
                    prog.iput_nodes(
                        node_of_key[key],
                        agg_nodes[a],
                        b,
                        after=(gate,),
                        label=f"{label}-xchg",
                    )
                    for key, b in sorted(bucket.items())
                ]
                round_bytes = float(sum(bucket.values()))
                w = prog.iwrite_ion(
                    agg_nodes[a], round_bytes, after=arrivals, label=f"{label}-write"
                )
                write_fids.append(w)
                prev = w
    if not write_fids:
        return prog.event((phase_gate,), label=f"{label}-empty")
    return prog.event(write_fids, label=f"{label}-done")
