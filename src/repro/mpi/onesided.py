"""One-sided (RMA) windows — the primitive the paper's code is built on.

The paper's multipath engine is implemented with ``MPI_Put``: the source
puts shares into windows exposed by the proxies, the proxies detect
completion (a fence / flush) and put onward to the destination.  This
module provides that vocabulary over :class:`~repro.mpi.program.FlowProgram`:

* :class:`SimWindow` — a per-rank exposure epoch bookkeeping object;
* :meth:`SimWindow.put` / :meth:`SimWindow.get` — one-sided transfers
  (``get`` costs an extra request latency before data flows back);
* :meth:`SimWindow.fence` — closes the epoch: a synchronisation event
  that depends on every RMA issued since the previous fence, after which
  targets may safely consume the data.

The engines in :mod:`repro.core` build their flow DAGs directly for
efficiency; this layer exists for faithful application-level modelling
(examples, tests, and user code mimicking the paper's implementation).
"""

from __future__ import annotations

from repro.mpi.program import FlowProgram
from repro.network.flow import FlowId
from repro.util.validation import ConfigError


class SimWindow:
    """An RMA window over every rank of a program's communicator.

    Mirrors the ``MPI_Win`` lifecycle the paper's benchmark uses:
    ``fence; puts; fence`` epochs.  Each rank's view of the epoch is
    tracked so a fence correctly joins all accesses touching any rank.
    """

    def __init__(self, prog: FlowProgram, *, label: str = "win"):
        self.prog = prog
        self.label = label
        self._epoch = 0
        self._accesses: list[FlowId] = []
        self._last_fence: "FlowId | None" = None
        self._closed = False

    @property
    def epoch(self) -> int:
        """Number of completed fence epochs."""
        return self._epoch

    def _check_open(self):
        if self._closed:
            raise ConfigError("window is freed")

    def put(
        self,
        origin_rank: int,
        target_rank: int,
        nbytes: float,
        *,
        after: "tuple[FlowId, ...]" = (),
    ) -> FlowId:
        """One-sided put: origin writes into the target's window."""
        self._check_open()
        deps = tuple(after)
        if self._last_fence is not None:
            deps = deps + (self._last_fence,)
        fid = self.prog.iput(
            origin_rank,
            target_rank,
            nbytes,
            after=deps,
            label=f"{self.label}-put",
        )
        self._accesses.append(fid)
        return fid

    def get(
        self,
        origin_rank: int,
        target_rank: int,
        nbytes: float,
        *,
        after: "tuple[FlowId, ...]" = (),
    ) -> FlowId:
        """One-sided get: data flows target → origin after a request
        round-trip (one extra ``o_msg`` of latency vs a put)."""
        self._check_open()
        deps = tuple(after)
        if self._last_fence is not None:
            deps = deps + (self._last_fence,)
        request = self.prog.event(
            deps, delay=self.prog.params.o_msg, label=f"{self.label}-req"
        )
        fid = self.prog.iput(
            target_rank,
            origin_rank,
            nbytes,
            after=(request,),
            label=f"{self.label}-get",
        )
        self._accesses.append(fid)
        return fid

    def fence(self) -> FlowId:
        """Close the access epoch: completes when every RMA since the
        previous fence has landed (plus one barrier latency)."""
        self._check_open()
        deps = tuple(self._accesses)
        if self._last_fence is not None:
            deps = deps + (self._last_fence,)
        fence = self.prog.event(
            deps, delay=self.prog.params.o_msg, label=f"{self.label}-fence"
        )
        self._accesses = []
        self._last_fence = fence
        self._epoch += 1
        return fence

    def free(self) -> "FlowId | None":
        """Release the window; returns the last fence (if any) so callers
        can order teardown."""
        self._check_open()
        if self._accesses:
            raise ConfigError(
                "window freed with un-fenced accesses; call fence() first"
            )
        self._closed = True
        return self._last_fence
