"""Flow-DAG builder with MPI-like operations.

:class:`FlowProgram` accumulates :class:`~repro.network.flow.Flow` records
with automatically unique ids and explicit dependencies, then runs them in
a :class:`~repro.network.flowsim.FlowSim`.  Operations mirror the
nonblocking MPI style the paper's mechanisms use (``MPI_Put`` between
phases, completion detection at proxies):

* :meth:`iput` — one-sided transfer between ranks, returns its flow id;
* :meth:`local_copy` — same-node staging copy (memory-bandwidth bound);
* :meth:`event` — a zero-byte synchronisation point joining dependencies
  (used for barriers and phase boundaries).

Endpoint overheads are injected automatically: every ``iput`` pays
``o_msg``; relayed puts add ``o_fwd`` via the ``relay=True`` flag.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.mpi.comm import SimComm
from repro.network.flow import Flow, FlowId
from repro.network.flowsim import CapacityEvent, CapacityFn, FlowSim, FlowSimResult
from repro.obs.metrics import TimeSeriesProbe
from repro.util.validation import ConfigError


class FlowProgram:
    """Accumulates a flow DAG over one communicator's machine.

    ``capacity_fn`` overrides the machine's pristine link-capacity map —
    pass :func:`repro.machine.faults.degraded_system_capacity` to run the
    accumulated program on a degraded machine without touching the flow
    construction logic.

    ``probe`` is handed to the simulator so per-link utilisation is
    sampled mid-run; ``t_base`` is this program's absolute simulated
    start time (the resilience executor sets it per round so one probe's
    series stays monotone across rounds).
    """

    def __init__(
        self,
        comm: SimComm,
        *,
        batch_tol: float = 0.0,
        fair_tol: float = 0.0,
        lazy_frac: float = 0.0,
        capacity_fn: "CapacityFn | None" = None,
        probe: "TimeSeriesProbe | None" = None,
        t_base: float = 0.0,
        sdc=None,
    ):
        self.comm = comm
        self.system = comm.system
        self.params = comm.system.params
        self.batch_tol = batch_tol
        self.fair_tol = fair_tol
        self.lazy_frac = lazy_frac
        self.capacity_fn = capacity_fn
        self.probe = probe
        self.t_base = t_base
        #: Optional silent-corruption model: forwarded to the simulator
        #: so results carry wire-corruption annotations (metadata only —
        #: the batched driver reads it off the program the same way it
        #: reads ``capacity_fn``).
        self.sdc = sdc
        self.flows: list[Flow] = []
        self._counter = 0

    # -- id management ---------------------------------------------------------

    def _fresh(self, label: "str | None") -> str:
        self._counter += 1
        return f"{label or 'op'}#{self._counter}"

    # -- operations --------------------------------------------------------------

    def iput(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: float,
        *,
        after: Iterable[FlowId] = (),
        relay: bool = False,
        label: "str | None" = None,
        start_time: float = 0.0,
        tag=None,
    ) -> FlowId:
        """One-sided transfer of ``nbytes`` from ``src_rank`` to ``dst_rank``.

        ``relay=True`` marks this put as the second leg of a
        store-and-forward relay; it pays the forwarding turnaround
        ``o_fwd`` on top of ``o_msg``.
        """
        if nbytes < 0:
            raise ConfigError(f"nbytes must be >= 0, got {nbytes}")
        src_node = self.comm.node_of(src_rank)
        dst_node = self.comm.node_of(dst_rank)
        return self.iput_nodes(
            src_node,
            dst_node,
            nbytes,
            after=after,
            relay=relay,
            label=label,
            start_time=start_time,
            tag=tag,
        )

    def iput_nodes(
        self,
        src_node: int,
        dst_node: int,
        nbytes: float,
        *,
        after: Iterable[FlowId] = (),
        relay: bool = False,
        label: "str | None" = None,
        start_time: float = 0.0,
        tag=None,
    ) -> FlowId:
        """Node-addressed variant of :meth:`iput` (engines use node ids)."""
        fid = self._fresh(label)
        delay = self.params.o_msg + (self.params.o_fwd if relay else 0.0)
        if src_node == dst_node:
            path: tuple[int, ...] = ()
            rate_cap: "float | None" = self.params.mem_bw
        else:
            path = self.system.compute_path(src_node, dst_node).links
            rate_cap = None
        self.flows.append(
            Flow(
                fid=fid,
                size=float(nbytes),
                path=path,
                deps=tuple(after),
                delay=delay,
                start_time=start_time,
                rate_cap=rate_cap,
                tag=tag,
            )
        )
        return fid

    def iwrite_ion(
        self,
        src_node: int,
        nbytes: float,
        *,
        after: Iterable[FlowId] = (),
        relay: bool = True,
        label: "str | None" = None,
        tag=None,
    ) -> FlowId:
        """Write from a node to its default I/O node (``/dev/null`` sink).

        The route is the node's deterministic I/O path: torus hops to its
        default bridge node, then the 2 GB/s 11th link.  ``relay=True`` by
        default because I/O writes in both the baseline and the paper's
        scheme are issued by an aggregator that has just received the data.
        """
        fid = self._fresh(label)
        delay = self.params.o_msg + (self.params.o_fwd if relay else 0.0)
        self.flows.append(
            Flow(
                fid=fid,
                size=float(nbytes),
                path=self.system.io_path(src_node),
                deps=tuple(after),
                delay=delay,
                rate_cap=self.params.io_link_bw,
                tag=tag,
            )
        )
        return fid

    def iread_ion(
        self,
        dst_node: int,
        nbytes: float,
        *,
        after: Iterable[FlowId] = (),
        label: "str | None" = None,
        tag=None,
    ) -> FlowId:
        """Read from the default I/O node into ``dst_node``.

        The mirror of :meth:`iwrite_ion`: the inbound 11th link from the
        ION to the node's default bridge, then torus hops to the node.
        """
        fid = self._fresh(label)
        self.flows.append(
            Flow(
                fid=fid,
                size=float(nbytes),
                path=self.system.io_read_path(dst_node),
                deps=tuple(after),
                delay=self.params.o_msg,
                rate_cap=self.params.io_link_bw,
                tag=tag,
            )
        )
        return fid

    def local_copy(
        self,
        rank: int,
        nbytes: float,
        *,
        after: Iterable[FlowId] = (),
        label: "str | None" = None,
        tag=None,
    ) -> FlowId:
        """A staging memcpy on one rank's node."""
        self.comm.node_of(rank)  # validates the rank
        return self.local_copy_node(0, nbytes, after=after, label=label, tag=tag)

    def local_copy_node(
        self,
        node: int,
        nbytes: float,
        *,
        after: Iterable[FlowId] = (),
        label: "str | None" = None,
        tag=None,
    ) -> FlowId:
        """Node-addressed staging memcpy (node id only labels the copy —
        local copies occupy no network links)."""
        if not 0 <= node < self.system.nnodes:
            raise ConfigError(f"node {node} out of range")
        fid = self._fresh(label or "copy")
        self.flows.append(
            Flow(
                fid=fid,
                size=float(nbytes),
                path=(),
                deps=tuple(after),
                delay=self.params.o_msg,
                rate_cap=self.params.mem_bw,
                tag=tag,
            )
        )
        return fid

    def event(
        self,
        after: Iterable[FlowId],
        *,
        delay: float = 0.0,
        label: "str | None" = None,
    ) -> FlowId:
        """A zero-byte join node: completes when all of ``after`` have."""
        fid = self._fresh(label or "event")
        self.flows.append(
            Flow(fid=fid, size=0.0, path=(), deps=tuple(after), delay=delay)
        )
        return fid

    def barrier(
        self,
        after_by_rank: "Sequence[FlowId] | dict[int, FlowId]",
        *,
        label: str = "barrier",
    ) -> FlowId:
        """All-ranks join (a dissemination barrier's cost is folded into
        a single ``o_msg``-latency event; the paper's phases synchronise
        on data arrival, not on barrier microstructure)."""
        deps = list(after_by_rank.values()) if isinstance(after_by_rank, dict) else list(after_by_rank)
        return self.event(deps, delay=self.params.o_msg, label=label)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        capacity_events: "Sequence[CapacityEvent] | None" = None,
        *,
        cutoffs: "Mapping[FlowId, float] | None" = None,
    ) -> FlowSimResult:
        """Simulate the accumulated DAG (optionally under a fault schedule).

        ``cutoffs`` maps flow ids to snapshot times passed straight to
        :meth:`~repro.network.flowsim.FlowSim.run` — the resilience
        executor registers carrier deadlines here to read back byte-exact
        partial progress for cancelled carriers.
        """
        sim = FlowSim(
            self.capacity_fn or self.system.capacity,
            self.params,
            batch_tol=self.batch_tol,
            fair_tol=self.fair_tol,
            lazy_frac=self.lazy_frac,
        )
        return sim.run(
            self.flows,
            capacity_events=capacity_events,
            probe=self.probe,
            t_base=self.t_base,
            cutoffs=cutoffs,
            sdc=self.sdc,
        )
