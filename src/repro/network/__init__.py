"""Network simulators and performance models.

Two complementary simulators share the same topology/link abstractions:

* :class:`repro.network.flowsim.FlowSim` — a fluid, flow-level
  discrete-event simulator.  Concurrent transfers are fluid flows that
  receive **max-min fair** shares of every directed link they traverse
  (progressive filling); events fire at flow activations and completions.
  This is the workhorse for all paper experiments: RDMA bulk transfers on
  a torus are long-lived and bandwidth-bound, exactly the regime where
  fluid fair-sharing models are accurate.

* :class:`repro.network.packetsim.PacketSim` — a packet-level simulator
  with per-link FIFOs and cut-through arbitration, used on small
  configurations to cross-validate the fluid model's contention behaviour
  (tests assert the two agree on who-shares-what).

:mod:`repro.network.params` holds the calibrated Mira constants,
:mod:`repro.network.endpoint` the per-message Messaging-Unit overhead
model (the source of the paper's Eq. 4 threshold behaviour), and
:mod:`repro.network.congestion` a fast closed-form makespan bound used at
the largest scales.
"""

from repro.network.params import NetworkParams, MIRA_PARAMS
from repro.network.endpoint import EndpointModel
from repro.network.flow import Flow, FlowResult
from repro.network.flowsim import FlowSim, FlowSimResult, uniform_capacities
from repro.network.congestion import congestion_makespan
from repro.network.stats import LinkStats, summarize_links
from repro.network.packet import Packet
from repro.network.packetsim import PacketSim, PacketSimResult
from repro.network.trace import build_trace, trace_json, trace_csv, gantt

__all__ = [
    "NetworkParams",
    "MIRA_PARAMS",
    "EndpointModel",
    "Flow",
    "FlowResult",
    "FlowSim",
    "FlowSimResult",
    "uniform_capacities",
    "congestion_makespan",
    "LinkStats",
    "summarize_links",
    "Packet",
    "PacketSim",
    "PacketSimResult",
    "build_trace",
    "trace_json",
    "trace_csv",
    "gantt",
]
