"""Cross-scenario batched FlowSim: many independent runs, one kernel.

Campaigns, sweeps and the load harness execute thousands of *small*,
*independent* :class:`~repro.network.flowsim.FlowSim` runs — a few flows
on a few dozen links each.  Run serially, each one pays the fixed numpy
dispatch cost of a full event loop (array setup, waterfill calls on
single-digit active sets), and that overhead, not arithmetic, dominates.

:class:`BatchFlowSim` amortizes it by **stacking the scenarios'
link×flow incidence matrices block-diagonally** into one global CSR:
scenario ``i``'s real links occupy a private dense-id block, every flow
gets its private virtual rate-cap link after all real blocks, and one
:func:`_waterfill_blocks` pass per lockstep round solves *every* live
scenario's active set at once (per-scenario water levels, one global
segment-min per iteration).  Because the blocks
share no links, the stacked system decomposes into per-scenario
components and the progressive filling's per-link arithmetic only ever
mixes values from one scenario — each scenario's rates are **bit-equal**
to what its own full re-solve would produce (asserted by
``tests/test_batchsim.py``).

Clocks stay **per scenario**: each round, every live scenario advances
to *its own* next event (activation, capacity change, cutoff snapshot
or completion) and drains its flows over exactly the same time segments
a solo run would use, so results are byte-identical to per-scenario
``FlowSim(..., incremental=False)`` runs (and within the usual ≤1e-12
of the default incremental engine — see ``docs/PERFORMANCE.md``).

Scope: exact mode only (no ``batch_tol``/``fair_tol``/``lazy_frac``)
and no probes.  Per-scenario **capacity events** (mid-run link
degradation/failure/recovery, including hard-down links that surface as
per-scenario :class:`~repro.util.validation.LinkDownError`), per-flow
**cutoff snapshots** and cooperative **cancellation** are first-class:
a faulted scenario re-solves only its own block and its failure — with
``on_error="capture"`` — kills only that scenario, never its batch
neighbours.  That is what lets the resilience executor keep faulted
retry rounds on the batched path instead of dropping whole campaigns
serial (see :func:`repro.resilience.executor.run_resilient_transfer_many`).
"""

from __future__ import annotations

import heapq
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.network.flow import Flow, FlowResult
from repro.network.flowsim import (
    _EMPTY_I64,
    _EPS_BYTES,
    _REL_TOL,
    CapacityEvent,
    CapacityFn,
    FlowSim,
    FlowSimResult,
    _segment_gather,
)
from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.obs.metrics import get_registry
from repro.util.cancel import current_scope
from repro.util.validation import (
    ConfigError,
    LinkDownError,
    SimulationCancelled,
    SimulationError,
)


def _waterfill_blocks(
    caps_full: np.ndarray,
    flat: np.ndarray,
    ptr: np.ndarray,
    lens: np.ndarray,
    t_flow: np.ndarray,
    t_ptr: np.ndarray,
    t_lens: np.ndarray,
    frozen: np.ndarray,
    nfl0: np.ndarray,
    unfrozen_c: np.ndarray,
    comp_flow: np.ndarray,
    comp_dense: np.ndarray,
    n_real: int,
) -> np.ndarray:
    """Component-parallel progressive filling over stacked scenarios.

    Equivalent to one :func:`~repro.network.flowsim.waterfill_csr` call
    per scenario — **bit-equal**, every per-link float op sees exactly
    the operands its solo counterpart would — but each iteration freezes
    the bottleneck of *every* live scenario at that scenario's own water
    level (``level_c``) instead of only the globally lowest one, so the
    iteration count is the *maximum* of the per-scenario filling depths
    rather than their sum.  That collapse is where batching wins: the
    O(links) bottleneck scans and transpose gathers are shared across
    scenarios per iteration instead of dispatched once per scenario per
    freeze.

    ``comp_flow[f]``/``comp_dense[l]`` give the scenario ordinal of each
    global flow / dense link; ``unfrozen_c`` holds the per-scenario
    unfrozen counts (consumed).  Blocks share no links, so per-scenario
    saturation levels evolve independently; the freeze-retirement update
    preserves :func:`waterfill_csr`'s two code shapes (scalar sequential
    for 1–2 short rows, batched rescale otherwise — chosen per scenario
    with the same eligibility test) so even the float *rounding* matches
    the solo kernel's.

    A zero-capacity link (a capacity event took it hard down) pins its
    scenario's water level at 0, freezing that scenario's flows at rate
    0 — exactly as the solo kernel does; the caller turns those zero
    rates into a per-scenario :class:`LinkDownError`.
    """
    live_idx = (nfl0 > 0).nonzero()[0]
    remap = np.empty(len(caps_full), dtype=np.int64)
    remap[live_idx] = np.arange(len(live_idx), dtype=np.int64)
    nfl = nfl0[live_idx]
    s = caps_full[live_idx] / nfl
    comp_live = comp_dense[live_idx]
    n = len(ptr) - 1
    rate = np.zeros(n)
    fbuf = np.zeros(n, dtype=bool)  # per-iteration freeze dedup scratch
    level_c = np.zeros(len(unfrozen_c))
    m = np.empty(len(unfrozen_c))
    todo = int(unfrozen_c.sum())
    sub_at = np.subtract.at
    ptr_item = ptr.item
    remap_item = remap.item
    nfl_item = nfl.item
    s_item = s.item
    with np.errstate(divide="ignore", invalid="ignore"):
        for _ in range(n + 1):
            if todo == 0:
                break
            alive = unfrozen_c > 0
            m[:] = np.inf
            np.minimum.at(m, comp_live, s)
            if not np.isfinite(m[alive]).all():  # pragma: no cover
                raise SimulationError(
                    "waterfill: no live links but unfrozen flows remain"
                )
            np.maximum(level_c, m, out=level_c, where=alive)
            # Each live scenario's minimum-level links saturate this
            # iteration (exact equality, as in the solo kernel; dead
            # scenarios are masked so their inf == inf never matches).
            sat = alive[comp_live] & (s == m[comp_live])
            sat_orig = live_idx[sat.nonzero()[0]]
            if len(sat_orig) and sat_orig[0] >= n_real:
                # Every saturated link is a private virtual cap link
                # (dense ids ascend, so checking the smallest suffices):
                # the freeze set is the id offset, no gather, no dedup.
                newly = sat_orig - n_real
            else:
                cand = t_flow[_segment_gather(t_ptr, t_lens, sat_orig)]
                cand = cand[~frozen[cand]]
                fbuf[cand] = True
                newly = fbuf.nonzero()[0]
                fbuf[newly] = False
            if not len(newly):  # pragma: no cover - filling invariant
                raise SimulationError("waterfill: no flow froze in an iteration")
            cf = comp_flow[newly]
            frozen[newly] = True
            rate[newly] = level_c[cf]
            sub_at(unfrozen_c, cf, 1)
            todo -= len(newly)
            # Retire the frozen rows scenario by scenario.  ``newly``
            # ascends and flows are laid out per scenario, so the
            # groups are contiguous slices.
            bounds = np.flatnonzero(cf[1:] != cf[:-1]) + 1
            seg = [0, *bounds.tolist(), len(newly)]
            big: "list[np.ndarray] | None" = None
            for a, b in zip(seg[:-1], seg[1:]):
                c = int(cf[a])
                if unfrozen_c[c] == 0:
                    continue  # scenario finished; its links are never read again
                js = newly[a:b]
                if b - a <= 2 and (
                    ptr_item(int(js[-1]) + 1) - ptr_item(int(js[0])) <= 32
                ):
                    # Solo kernel's scalar fast path, same eligibility
                    # test (the global ptr span of a scenario's rows
                    # equals its solo span — blocks are contiguous).
                    lvl = level_c.item(c)
                    for j in js.tolist():
                        for gl in flat[ptr[j] : ptr[j + 1]].tolist():
                            li = remap_item(gl)
                            n_o = nfl_item(li)
                            n_n = n_o - 1.0
                            nfl[li] = n_n
                            if n_n <= 0.0:
                                s[li] = np.inf
                            else:
                                s[li] = lvl + (s_item(li) - lvl) * (n_o / n_n)
                elif big is None:
                    big = [js]
                else:
                    big.append(js)
            if big is not None:
                # One batched rescale for every scenario that took the
                # vectorized path — per-entry levels keep each link's
                # arithmetic inside its own scenario, so stacking the
                # scenarios' updates changes nothing elementwise.
                rows = big[0] if len(big) == 1 else np.concatenate(big)
                links = remap[flat[_segment_gather(ptr, lens, rows)]]
                s_old = s[links]
                n_old = nfl[links]
                sub_at(nfl, links, 1.0)
                new_n = nfl[links]
                lvl_e = level_c[comp_live[links]]
                s[links] = lvl_e + (s_old - lvl_e) * (n_old / new_n)
                dead_sel = links[new_n <= 0]
                if len(dead_sel):
                    s[dead_sel] = np.inf
        else:  # pragma: no cover - loop bound is n freezes
            raise SimulationError("waterfill did not converge")
    return rate


# Pass-1 branch tags (one per lockstep round, per scenario) — the same
# event precedence the solo event loop resolves per iteration.
_B_CUT = 0  # a cutoff snapshot splits the drain; rates stay valid
_B_INT = 1  # an activation or capacity event interrupts; rates recompute
_B_COMPLETE = 2  # the earliest completion lands


class _ScenarioState:
    """Mutable per-scenario bookkeeping inside one ``simulate_many``."""

    __slots__ = (
        "index", "comp", "flows", "fid_to_idx", "uniq", "link_index", "nl",
        "link_off", "flow_off", "T", "act", "pending", "n_updates",
        "events", "ep", "cut_times", "cut_map", "cut_rec", "cp",
        "rates_valid", "dead",
    )

    def __init__(self, index, comp, flows, fid_to_idx, uniq, link_index, nl,
                 link_off, flow_off):
        self.index = index
        self.comp = comp  # scenario ordinal among non-empty scenarios
        self.flows = flows
        self.fid_to_idx = fid_to_idx
        self.uniq = uniq
        self.link_index = link_index  # original link id -> local dense id
        self.nl = nl
        self.link_off = link_off
        self.flow_off = flow_off
        self.T = 0.0
        self.act = _EMPTY_I64  # global flow ids, activation order
        self.pending: list[tuple[float, int]] = []
        self.n_updates = 0
        self.events: list[CapacityEvent] = []
        self.ep = 0  # next unapplied capacity event
        self.cut_times: list[float] = []
        self.cut_map: dict[float, list[int]] = {}  # time -> global flow ids
        self.cut_rec: dict = {}
        self.cp = 0  # next unapplied cutoff time
        # Mirrors the solo loop's ``rates is None``: True while the last
        # computed rate vector is still current (only a cutoff split
        # preserves it) — drives ``n_updates`` parity, since the global
        # waterfill runs every round regardless.
        self.rates_valid = False
        self.dead = False  # killed by a captured per-scenario error


class BatchFlowSim:
    """Batched executor for many independent exact-mode FlowSim runs.

    Args:
        params: machine constants, as for :class:`FlowSim` (the per-flow
            default rate cap is ``min(stream_cap, mem_bw)``).
    """

    def __init__(self, params: NetworkParams = MIRA_PARAMS):
        self.params = params
        self._default_cap = min(params.stream_cap, params.mem_bw)

    def simulate_many(
        self,
        scenarios: Sequence[
            tuple["Mapping[int, float] | CapacityFn", Sequence[Flow]]
        ],
        *,
        events: "Sequence[Sequence[CapacityEvent] | None] | None" = None,
        cutoffs: "Sequence[Mapping | None] | None" = None,
        cancel_check: "Callable[[], object] | None" = None,
        cancel_every: int = 64,
        on_error: str = "raise",
        sdc: "Sequence | None" = None,
    ) -> list[FlowSimResult]:
        """Run every ``(capacities, flows)`` scenario; one result each.

        Scenarios are mutually independent — link ids are scoped *per
        scenario* (the same id in two scenarios means two different
        links, as it would across two separate :meth:`FlowSim.run`
        calls).  Results are returned in submission order and match
        per-scenario runs byte-for-byte (see module docstring).

        ``events`` and ``cutoffs`` are optional per-scenario sequences
        aligned with ``scenarios`` (``None`` entries mean none): each
        scenario's capacity events and per-flow cutoff snapshots carry
        exactly the semantics of :meth:`FlowSim.run`'s same-named
        arguments, applied to that scenario's own clock and block only.
        ``sdc`` is the same-shaped per-scenario sequence of
        silent-corruption models: each non-``None`` entry annotates its
        scenario's result exactly as :meth:`FlowSim.run`'s ``sdc``
        argument would — pure metadata, so batched and serial faulted
        runs stay byte-identical.

        ``cancel_check``/``cancel_every`` poll the cooperative
        cancellation hook once per lockstep round (the batched analogue
        of the solo event-loop iteration); with ``cancel_check=None``
        the ambient :func:`repro.util.cancel.current_scope` is polled
        instead.  A hook that never fires leaves results byte-identical
        to an unhooked run.

        ``on_error`` chooses what a *per-scenario* simulation failure
        (a :class:`LinkDownError` after a capacity event took a link
        hard down, or a starvation :class:`SimulationError`) does:
        ``"raise"`` (default) propagates the first failure, as a solo
        run would; ``"capture"`` kills only the failing scenario — its
        result slot holds the exception object (message byte-identical
        to the solo run's) while every other scenario runs to
        completion.  Configuration errors always raise.
        """
        scenarios = list(scenarios)
        if not scenarios:
            return []
        if on_error not in ("raise", "capture"):
            raise ConfigError(
                f"on_error must be 'raise' or 'capture', got {on_error!r}"
            )
        if cancel_every < 1:
            raise ConfigError(f"cancel_every must be >= 1, got {cancel_every}")
        if cancel_check is None:
            scope = current_scope()
            if scope is not None:
                cancel_check = scope.check
        n_since_check = 0
        if events is not None and len(events) != len(scenarios):
            raise ConfigError(
                f"events must align with scenarios "
                f"({len(events)} != {len(scenarios)})"
            )
        if cutoffs is not None and len(cutoffs) != len(scenarios):
            raise ConfigError(
                f"cutoffs must align with scenarios "
                f"({len(cutoffs)} != {len(scenarios)})"
            )
        if sdc is not None and len(sdc) != len(scenarios):
            raise ConfigError(
                f"sdc must align with scenarios "
                f"({len(sdc)} != {len(scenarios)})"
            )

        # ---- per-scenario structural build (validation + compaction) --
        states: list[_ScenarioState] = []
        results: list["FlowSimResult | None"] = [None] * len(scenarios)
        errors: list["Exception | None"] = [None] * len(scenarios)
        caps_blocks: list[np.ndarray] = []
        real_flat_parts: list[np.ndarray] = []
        real_lens_parts: list[np.ndarray] = []
        flows_all: list[Flow] = []
        dep_pairs: list[tuple[int, int]] = []  # (parent, child), global ids
        link_off = 0
        for si, item in enumerate(scenarios):
            try:
                capacities, flows = item
            except (TypeError, ValueError):
                raise ConfigError(
                    "each scenario must be a (capacities, flows) pair"
                ) from None
            sim = FlowSim(capacities, self.params)  # validates capacities
            flows = list(flows)
            if not flows:
                results[si] = FlowSimResult({}, 0.0, {}, 0)
                continue
            fid_to_idx = sim._index_flows(flows)
            link_index, uniq, caps, real_flat, real_ptr, real_lens = (
                sim._compact_links(flows)
            )
            flow_off = len(flows_all)
            st = _ScenarioState(
                si, len(states), flows, fid_to_idx, uniq, link_index,
                len(caps), link_off, flow_off,
            )
            scen_events = events[si] if events is not None else None
            st.events = sorted(scen_events or ())
            for e in st.events:
                if not isinstance(e, CapacityEvent):
                    raise ConfigError(
                        f"capacity_events must contain CapacityEvent "
                        f"records, got {e!r}"
                    )
            scen_cuts = cutoffs[si] if cutoffs is not None else None
            if scen_cuts:
                for fid, t_cut in scen_cuts.items():
                    i = fid_to_idx.get(fid)
                    if i is None:
                        raise ConfigError(f"cutoff names unknown flow {fid!r}")
                    t_cut = float(t_cut)
                    if t_cut < 0:
                        raise ConfigError(
                            f"flow {fid!r}: cutoff time must be >= 0, "
                            f"got {t_cut}"
                        )
                    if np.isfinite(t_cut):
                        st.cut_map.setdefault(t_cut, []).append(flow_off + i)
                st.cut_times = sorted(st.cut_map)
            for i, f in enumerate(flows):
                for dep in f.deps:
                    j = fid_to_idx.get(dep)
                    if j is None:
                        raise ConfigError(
                            f"flow {f.fid!r} depends on unknown flow {dep!r}"
                        )
                    if j == i:
                        raise ConfigError(f"flow {f.fid!r} depends on itself")
                    dep_pairs.append((flow_off + j, flow_off + i))
            caps_blocks.append(caps)
            real_flat_parts.append(real_flat + link_off)
            real_lens_parts.append(real_lens)
            flows_all.extend(flows)
            link_off += len(caps)
            states.append(st)

        if not states:
            return [r if r is not None else FlowSimResult({}, 0.0, {}, 0)
                    for r in results]

        # ---- global block-diagonal incidence ---------------------------
        nf = len(flows_all)
        nl = link_off
        caps = np.concatenate(caps_blocks)
        real_flat = np.concatenate(real_flat_parts)
        real_lens = np.concatenate(real_lens_parts)
        real_ptr = np.zeros(nf + 1, dtype=np.int64)
        np.cumsum(real_lens, out=real_ptr[1:])

        size_arr = np.array([f.size for f in flows_all], dtype=np.float64)
        start_arr = np.array([f.start_time for f in flows_all])
        delay_arr = np.array([f.delay for f in flows_all])
        remaining = size_arr.copy()
        rate_caps_all = np.array(
            [
                f.rate_cap if f.rate_cap is not None else self._default_cap
                for f in flows_all
            ]
        )
        caps_full = np.concatenate([caps, rate_caps_all])
        lens_full = real_lens + 1
        ptr = np.zeros(nf + 1, dtype=np.int64)
        np.cumsum(lens_full, out=ptr[1:])
        flat = np.empty(int(ptr[-1]), dtype=np.int64)
        virt_pos = ptr[1:] - 1
        real_mask = np.ones(len(flat), dtype=bool)
        real_mask[virt_pos] = False
        flat[real_mask] = real_flat
        flat[virt_pos] = nl + np.arange(nf, dtype=np.int64)
        t_order = np.argsort(flat, kind="stable")
        rep_flow = np.repeat(np.arange(nf, dtype=np.int64), lens_full)
        t_flow = rep_flow[t_order]
        t_lens = np.bincount(flat, minlength=nl + nf)
        t_ptr = np.zeros(nl + nf + 1, dtype=np.int64)
        np.cumsum(t_lens, out=t_ptr[1:])

        # Dependency DAG (CSR over global flow ids).
        dep_count = np.zeros(nf, dtype=np.int64)
        child_lens = np.zeros(nf, dtype=np.int64)
        for j, i in dep_pairs:
            child_lens[j] += 1
            dep_count[i] += 1
        child_ptr = np.zeros(nf + 1, dtype=np.int64)
        np.cumsum(child_lens, out=child_ptr[1:])
        child_flat = np.empty(len(dep_pairs), dtype=np.int64)
        fill = child_ptr[:-1].copy()
        for j, i in dep_pairs:
            child_flat[fill[j]] = i
            fill[j] += 1

        # Scenario ordinal of every global flow and dense link (real
        # blocks first, then the per-flow virtual cap links) — the
        # component labels `_waterfill_blocks` freezes in parallel.
        comp_flow = np.repeat(
            np.arange(len(states), dtype=np.int64),
            [len(st.flows) for st in states],
        )
        comp_dense = np.concatenate([
            np.repeat(
                np.arange(len(states), dtype=np.int64),
                [st.nl for st in states],
            ),
            comp_flow,
        ])

        ready_time = np.zeros(nf)
        start_rec = np.full(nf, np.nan)
        finish_rec = np.full(nf, np.nan)
        done = np.zeros(nf, dtype=bool)
        link_bytes_arr = np.zeros(nl)
        nfl_act = np.zeros(nl + nf, dtype=np.float64)

        for st in states:
            for li, f in enumerate(st.flows):
                gi = st.flow_off + li
                if dep_count[gi] == 0:
                    heapq.heappush(st.pending, (f.start_time + f.delay, gi))

        have_deps = bool(dep_pairs)

        def release_deps(st: _ScenarioState, b: np.ndarray, t: float):
            # Scalar loop: waves finish a handful of flows, where the
            # ufunc.at/unique route costs more than it saves.  A child
            # reaches zero exactly once, so push order can't affect the
            # (t_act, id)-keyed heap.
            for j in b:
                lo = child_ptr[j]
                for c in child_flat[lo : lo + child_lens[j]]:
                    c = int(c)
                    if ready_time[c] < t:
                        ready_time[c] = t
                    dep_count[c] -= 1
                    if dep_count[c] == 0:
                        t_act = max(ready_time[c], start_arr[c]) + delay_arr[c]
                        heapq.heappush(st.pending, (t_act, c))

        def finish_flows(st: _ScenarioState, b: np.ndarray, t: float):
            done[b] = True
            finish_rec[b] = t
            ns = np.isnan(start_rec[b])
            if ns.any():
                start_rec[b[ns]] = t
            if have_deps:
                release_deps(st, b, t)

        def activate_due(st: _ScenarioState, t: float):
            new_act: list[int] = []
            while st.pending and st.pending[0][0] <= t + 1e-18:
                t_act, i = heapq.heappop(st.pending)
                start_rec[i] = t_act
                if remaining[i] <= _EPS_BYTES:
                    finish_flows(st, np.array([i], dtype=np.int64), t_act)
                else:
                    new_act.append(i)
            if new_act:
                for i in new_act:
                    lo = ptr[i]
                    for k in flat[lo : lo + lens_full[i]]:
                        nfl_act[k] += 1.0
                st.act = np.concatenate(
                    [st.act, np.asarray(new_act, dtype=np.int64)]
                )

        def apply_cuts_due(st: _ScenarioState, t: float):
            # Same arithmetic as the solo loop: callers land here with
            # ``remaining`` drained exactly to ``t``, so size - remaining
            # *is* the bytes delivered at the cut instant.
            while st.cp < len(st.cut_times) and st.cut_times[st.cp] <= t + 1e-18:
                for gi in st.cut_map[st.cut_times[st.cp]]:
                    if done[gi]:
                        got = float(size_arr[gi])
                    else:
                        got = float(
                            min(
                                size_arr[gi],
                                max(size_arr[gi] - remaining[gi], 0.0),
                            )
                        )
                    st.cut_rec[flows_all[gi].fid] = got
                st.cp += 1

        def apply_events_due(st: _ScenarioState, t: float):
            while st.ep < len(st.events) and st.events[st.ep].time <= t + 1e-18:
                e = st.events[st.ep]
                k = st.link_index.get(e.link)
                if k is not None:
                    caps_full[st.link_off + k] = e.capacity
                st.ep += 1

        def stall_error(st: _ScenarioState, bad: np.ndarray) -> SimulationError:
            """The solo run's LinkDownError/starvation error, verbatim.

            ``bad`` holds this scenario's zero-rate global flow ids in
            activation order (the order the solo check would see them).
            """
            fids = [flows_all[int(g)].fid for g in bad]
            down = sorted(
                {
                    int(st.uniq[int(k) - st.link_off])
                    for g in bad
                    for k in real_flat[real_ptr[g] : real_ptr[g + 1]]
                    if caps_full[int(k)] <= 0
                }
            )
            if down:
                return LinkDownError(
                    f"flows {fids} stalled: their routes cross "
                    f"zero-capacity link(s) {down} (link down); the "
                    f"transfers can never complete",
                    links=tuple(down),
                )
            return SimulationError(f"flows starved (zero rate): {fids}")

        def kill_scenario(st: _ScenarioState, err: Exception):
            errors[st.index] = err
            st.dead = True
            if len(st.act):
                np.subtract.at(
                    nfl_act, flat[_segment_gather(ptr, lens_full, st.act)], 1.0
                )
                st.act = _EMPTY_I64
            st.pending = []

        # ---- lockstep rounds ------------------------------------------
        live = list(states)
        n_rounds = 0
        K = len(states)
        dt_c = np.empty(K)  # this round's per-scenario time step
        t_c = np.empty(K)  # per-scenario clock after the step
        tmin = np.empty(K)  # per-scenario earliest completion dt
        while live:
            n_rounds += 1
            if cancel_check is not None:
                n_since_check += 1
                if n_since_check >= cancel_every:
                    n_since_check = 0
                    try:
                        hit = cancel_check()
                    except SimulationCancelled:
                        get_registry().counter("flowsim.cancelled").inc()
                        raise
                    if hit:
                        get_registry().counter("flowsim.cancelled").inc()
                        raise SimulationCancelled(
                            f"batched simulation cancelled by hook after "
                            f"{n_rounds} rounds ({len(live)} scenarios live)"
                        )
            # One stacked waterfill covers every live scenario's active
            # set — blocks share no links, so each block's rates equal
            # its own solo full re-solve, bit for bit.
            need = [st for st in live if len(st.act)]
            if need:
                sel = (
                    need[0].act
                    if len(need) == 1
                    else np.concatenate([st.act for st in need])
                )
                frozen = np.ones(nf, dtype=bool)
                frozen[sel] = False
                unfrozen_c = np.bincount(comp_flow[sel], minlength=K)
                r = _waterfill_blocks(
                    caps_full, flat, ptr, lens_full, t_flow, t_ptr, t_lens,
                    frozen, nfl_act, unfrozen_c, comp_flow, comp_dense, nl,
                )
                r_sel = r[sel]
                cf_sel = comp_flow[sel]
                if np.any(r_sel <= 0):
                    # A capacity event took some scenario's link hard
                    # down (or a rate starved): fail *that scenario
                    # only*, with the solo run's exact error.
                    bad_mask = r_sel <= 0
                    for c in np.unique(cf_sel[bad_mask]):
                        st = need[0] if len(need) == 1 else next(
                            s for s in need if s.comp == int(c)
                        )
                        err = stall_error(st, sel[bad_mask & (cf_sel == c)])
                        if on_error == "raise":
                            raise err
                        kill_scenario(st, err)
                    live = [st for st in live if not st.dead]
                    need = [st for st in need if not st.dead]
                    if not need:
                        continue
                    keep = np.isin(cf_sel, np.asarray([s.comp for s in need]))
                    sel = sel[keep]
                    r_sel = r_sel[keep]
                    cf_sel = cf_sel[keep]
                for st in need:
                    if not st.rates_valid:
                        st.n_updates += 1
                        st.rates_valid = True
                tmin[:] = np.inf
                np.minimum.at(tmin, cf_sel, remaining[sel] / r_sel)

            # Pass 1 — per-scenario branching on Python scalars: resolve
            # this round's event precedence (cutoff split vs. activation
            # or capacity-event interrupt vs. completion), exactly as a
            # solo run would, and advance each scenario's clock.  All
            # post-drain processing waits for pass 4 so cutoff snapshots
            # read the drained ``remaining``.
            advancing: list[_ScenarioState] = []
            completing: list[_ScenarioState] = []
            stepped: list[tuple[_ScenarioState, int]] = []
            cbr = np.zeros(K, dtype=bool)  # took the completion branch
            for st in live:
                if not len(st.act):
                    if not st.pending:
                        continue  # scenario finished
                    # Jump to the next activation (solo order: cuts,
                    # events, then activations at the new clock).
                    st.T = max(st.T, st.pending[0][0])
                    apply_cuts_due(st, st.T)
                    apply_events_due(st, st.T)
                    activate_due(st, st.T)
                    st.rates_valid = False
                    advancing.append(st)
                    continue
                c = st.comp
                dt_complete = tmin.item(c)
                next_evt = (
                    st.events[st.ep].time if st.ep < len(st.events) else np.inf
                )
                next_cut = (
                    st.cut_times[st.cp] if st.cp < len(st.cut_times) else np.inf
                )
                dt_act = (st.pending[0][0] - st.T) if st.pending else np.inf
                dt_int = min(dt_act, next_evt - st.T)
                if (
                    next_cut - st.T < dt_int * (1 - _REL_TOL)
                    and next_cut - st.T < dt_complete * (1 - _REL_TOL)
                ):
                    # A cutoff snapshot strictly precedes everything:
                    # split the linear drain and *keep* the rate vector.
                    dt = max(next_cut - st.T, 0.0)
                    tag = _B_CUT
                elif dt_int < dt_complete * (1 - _REL_TOL):
                    # An activation or a capacity change interrupts
                    # before any completion.
                    dt = max(dt_int, 0.0)
                    tag = _B_INT
                else:
                    dt = dt_complete
                    tag = _B_COMPLETE
                    cbr[c] = True
                    completing.append(st)
                dt_c[c] = dt
                st.T += dt
                t_c[c] = st.T
                stepped.append((st, tag))
                advancing.append(st)

            if need and stepped:
                # Pass 2 — one vectorized drain over every active flow
                # (each flow advances by its own scenario's step).
                remaining[sel] = np.maximum(
                    remaining[sel] - r_sel * dt_c[cf_sel], 0.0
                )
            if completing:
                # Pass 3 — bulk completion bookkeeping across scenarios.
                fin_mask = (remaining[sel] <= _EPS_BYTES) & cbr[cf_sel]
                fin = sel[fin_mask]
                cf_fin = cf_sel[fin_mask]
                fin_cnt = np.bincount(cf_fin, minlength=K)
                if np.any(fin_cnt[cbr] == 0):  # pragma: no cover
                    raise SimulationError(
                        "no flow completed at a completion event"
                    )
                np.subtract.at(
                    nfl_act, flat[_segment_gather(ptr, lens_full, fin)], 1.0
                )
                done[fin] = True
                t_fin = t_c[cf_fin]
                finish_rec[fin] = t_fin
                ns = np.isnan(start_rec[fin])
                if ns.any():
                    start_rec[fin[ns]] = t_fin[ns]
            # Pass 4 — per-scenario post-drain processing, in each
            # branch's solo order:
            #   CUT       cuts only (rates stay valid)
            #   INT       cuts, activations, capacity events
            #   COMPLETE  dependency release, cuts, act prune,
            #             activations, capacity events
            for st, tag in stepped:
                if tag == _B_CUT:
                    apply_cuts_due(st, st.T)
                    continue
                if tag == _B_INT:
                    apply_cuts_due(st, st.T)
                    activate_due(st, st.T)
                    apply_events_due(st, st.T)
                    st.rates_valid = False
                    continue
                m_fin = done[st.act]
                if have_deps:
                    release_deps(st, st.act[m_fin], st.T)
                apply_cuts_due(st, st.T)
                st.act = st.act[~m_fin]
                activate_due(st, st.T)
                apply_events_due(st, st.T)
                st.rates_valid = False
            live = [st for st in advancing if st.pending or len(st.act)]

        # ---- per-scenario results -------------------------------------
        alive = [st for st in states if not st.dead]
        if not done.all():
            for st in alive:
                lo, hi = st.flow_off, st.flow_off + len(st.flows)
                if not done[lo:hi].all():
                    stuck = [
                        st.flows[i].fid
                        for i in range(len(st.flows))
                        if not done[lo + i]
                    ]
                    raise SimulationError(
                        f"dependency cycle or stuck flows: {stuck}"
                    )
        # Every surviving flow completed: account link bytes once, in
        # bulk — the per-event accumulation a solo run does is
        # order-independent, and dead scenarios' blocks are disjoint
        # from every surviving scenario's, so adding their (never-read)
        # contributions is harmless.
        np.add.at(link_bytes_arr, real_flat, np.repeat(size_arr, real_lens))
        for st in alive:
            apply_cuts_due(st, np.inf)  # cuts past the makespan
            lo, hi = st.flow_off, st.flow_off + len(st.flows)
            lb = link_bytes_arr[st.link_off : st.link_off + st.nl]
            busy = np.flatnonzero(lb)
            link_bytes = {int(st.uniq[k]): float(lb[k]) for k in busy}
            res = {
                f.fid: FlowResult(
                    fid=f.fid,
                    size=f.size,
                    start=float(start_rec[lo + i]),
                    finish=float(finish_rec[lo + i]),
                    tag=f.tag,
                )
                for i, f in enumerate(st.flows)
            }
            makespan = float(np.max(finish_rec[lo:hi]))
            out = FlowSimResult(
                res, makespan, link_bytes, st.n_updates, st.cut_rec
            )
            if sdc is not None and sdc[st.index] is not None:
                out.annotate_sdc(sdc[st.index], st.flows)
            results[st.index] = out

        reg = get_registry()
        reg.counter("flowsim.batch_runs").inc()
        reg.counter("flowsim.batch_scenarios").inc(len(states))
        reg.counter("flowsim.batch_rounds").inc(n_rounds)
        reg.counter("flowsim.flows_completed").inc(int(done.sum()))
        n_dead = len(states) - len(alive)
        if n_dead:
            reg.counter("flowsim.batch_scenarios_failed").inc(n_dead)
        return [
            res if err is None else err  # type: ignore[misc]
            for res, err in zip(results, errors)
        ]


def simulate_many(
    scenarios: Sequence[
        tuple["Mapping[int, float] | CapacityFn", Sequence[Flow]]
    ],
    params: NetworkParams = MIRA_PARAMS,
    **kwargs,
) -> list[FlowSimResult]:
    """Module-level convenience: ``BatchFlowSim(params).simulate_many(...)``."""
    return BatchFlowSim(params).simulate_many(scenarios, **kwargs)
