"""Closed-form makespan bounds from link congestion.

For very large configurations a full fluid simulation is unnecessary to
rank schedules: the makespan of a set of bandwidth-bound flows is bounded
below by

* the *congestion bound*: for every directed link, the total bytes
  crossing it divided by its capacity, and
* the *chain bound*: along every dependency chain, the sum of serial
  latencies plus each flow's size over its stream cap.

``congestion_makespan`` returns the max of the two — exact when the
bottleneck link is busy continuously (true for the paper's bulk
transfers) and within a small factor otherwise.  Tests compare it against
:class:`repro.network.flowsim.FlowSim` on every microbenchmark scenario.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.network.flow import Flow, FlowId
from repro.network.flowsim import CapacityFn
from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.util.validation import ConfigError


def _cap_fn(capacities: "Mapping[int, float] | CapacityFn") -> CapacityFn:
    if isinstance(capacities, Mapping):
        return capacities.__getitem__
    if callable(capacities):
        return capacities
    raise ConfigError("capacities must be a mapping or callable")


def link_load_bound(
    flows: Sequence[Flow],
    capacities: "Mapping[int, float] | CapacityFn",
) -> float:
    """Max over links of (total bytes crossing it) / capacity."""
    cap_of = _cap_fn(capacities)
    loads: dict[int, float] = {}
    for f in flows:
        for g in f.path:
            loads[g] = loads.get(g, 0.0) + f.size
    best = 0.0
    for g, b in loads.items():
        cap = cap_of(g)
        if cap <= 0:
            raise ConfigError(f"link {g} has non-positive capacity")
        best = max(best, b / cap)
    return best


def chain_bound(flows: Sequence[Flow], params: NetworkParams = MIRA_PARAMS) -> float:
    """Longest dependency chain of serial latency + uncontended drain time."""
    by_id: dict[FlowId, Flow] = {f.fid: f for f in flows}
    memo: dict[FlowId, float] = {}

    def finish_lb(fid: FlowId) -> float:
        if fid in memo:
            return memo[fid]
        f = by_id[fid]
        memo[fid] = -1.0  # cycle sentinel
        ready = f.start_time
        for dep in f.deps:
            if dep not in by_id:
                raise ConfigError(f"flow {f.fid!r} depends on unknown flow {dep!r}")
            d = finish_lb(dep)
            if d < 0:
                raise ConfigError(f"dependency cycle through flow {dep!r}")
            ready = max(ready, d)
        cap = f.rate_cap if f.rate_cap is not None else min(params.stream_cap, params.mem_bw)
        out = ready + f.delay + f.size / cap
        memo[fid] = out
        return out

    return max((finish_lb(f.fid) for f in flows), default=0.0)


def congestion_makespan(
    flows: Sequence[Flow],
    capacities: "Mapping[int, float] | CapacityFn",
    params: NetworkParams = MIRA_PARAMS,
) -> float:
    """Lower-bound makespan estimate: max(link congestion, longest chain)."""
    return max(link_load_bound(flows, capacities), chain_bound(flows, params))
