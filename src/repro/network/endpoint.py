"""Per-message endpoint (Messaging Unit) cost model.

The paper models a transfer as ``t = t_s + t_t + t_r`` (its Eq. 1):
sender processing/injection, wire transfer, receiver processing/storage.
Splitting a message over ``k`` store-and-forward paths gives
``t' = 2 (t'_s + t'_t + t'_r)`` (Eq. 2), and the key inequality (Eq. 4)
is that the *processing* components do not shrink linearly with ``k``
because they contain fixed per-message costs.

This module realises that structure for the fluid simulator:

* every message pays a fixed latency ``o_msg`` (``t_s + t_r`` fixed
  parts) that does not scale with size or path count;
* each store-and-forward relay adds ``o_fwd`` (the proxy's extra
  receive-process-reinject turnaround);
* the size-dependent part is bandwidth-shaped: a single stream moves at
  ``min(stream_cap, fair link share)``, which the simulator resolves.

Local (same node) copies move at ``mem_bw``.
"""

from __future__ import annotations

from repro.network.params import NetworkParams
from repro.util.validation import check_non_negative


class EndpointModel:
    """Computes per-message latencies and rate caps from the parameters."""

    def __init__(self, params: NetworkParams):
        self.params = params

    def message_latency(self, nbytes: float, *, nrelays: int = 0) -> float:
        """Serial (non-bandwidth) latency of one message.

        Args:
            nbytes: message size (validated non-negative; the latency is
                size-independent in this model — size effects enter
                through the bandwidth term resolved by the simulator).
            nrelays: number of store-and-forward intermediate nodes on the
                message's journey (0 for a direct transfer).
        """
        check_non_negative("nbytes", nbytes)
        check_non_negative("nrelays", nrelays)
        return self.params.o_msg + nrelays * self.params.o_fwd

    def stream_rate_cap(self) -> float:
        """Upper bound on a single message stream's bandwidth."""
        return min(self.params.stream_cap, self.params.mem_bw)

    def local_copy_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` within one node's memory."""
        check_non_negative("nbytes", nbytes)
        return self.params.o_msg + nbytes / self.params.mem_bw

    def direct_time(self, nbytes: float, path_rate: "float | None" = None) -> float:
        """Closed-form time of an uncontended direct transfer.

        ``path_rate`` lets callers model a known bottleneck (e.g. a shared
        link share); defaults to the single-stream cap.
        """
        rate = self.stream_rate_cap() if path_rate is None else min(path_rate, self.stream_rate_cap())
        return self.message_latency(nbytes) + nbytes / rate
