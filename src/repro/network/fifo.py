"""Bounded FIFO queues modelling the BG/Q Messaging Unit buffers.

Each BG/Q node has injection FIFOs feeding its send units and reception
FIFOs fed by its receive units; the MU provides enough FIFOs to saturate
all links, but each individual FIFO is finite, which is what creates
backpressure (and head-of-line blocking) under contention.  The
packet-level simulator attaches one :class:`LinkFifo` to every directed
link.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.network.packet import Packet
from repro.util.validation import ConfigError


class LinkFifo:
    """A bounded FIFO of packets waiting to cross one directed link."""

    def __init__(self, depth: int = 8):
        if depth < 1:
            raise ConfigError(f"FIFO depth must be >= 1, got {depth}")
        self.depth = depth
        self._q: Deque[Packet] = deque()

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        """True when no more packets can be enqueued."""
        return len(self._q) >= self.depth

    @property
    def empty(self) -> bool:
        """True when there is nothing to transmit."""
        return not self._q

    def push(self, pkt: Packet) -> None:
        """Enqueue a packet; caller must check :attr:`full` first."""
        if self.full:
            raise ConfigError("push into a full FIFO (caller must check backpressure)")
        self._q.append(pkt)

    def peek(self) -> Packet:
        """The packet that would transmit next."""
        return self._q[0]

    def pop(self) -> Packet:
        """Dequeue the head packet."""
        return self._q.popleft()
