"""Flow and result records for the fluid simulator."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Hashable

import numpy as np

from repro.util.validation import ConfigError

FlowId = Hashable


@dataclass(frozen=True)
class Flow:
    """One fluid transfer through the network.

    Attributes:
        fid: unique flow identifier (any hashable; strings read best).
        size: payload bytes to move.
        path: directed link ids traversed (empty for a same-node copy).
        deps: flow ids that must *complete* before this flow may start —
            the store-and-forward dependency mechanism (a proxy's second
            hop depends on its first hop; a two-phase I/O write's ION leg
            depends on the aggregation leg).
        delay: extra serial latency between readiness (max of ``deps``
            completions, or ``start_time``) and the moment the flow begins
            consuming bandwidth.  Endpoint overheads (``o_msg``,
            ``o_fwd``) are injected here by the layers that build flows.
        start_time: earliest absolute start (for flows with no deps).
        rate_cap: per-flow bandwidth ceiling; ``None`` means the
            simulator's default single-stream cap.
        tag: free-form annotation carried through to results.
    """

    fid: FlowId
    size: float
    path: tuple[int, ...] = ()
    deps: tuple[FlowId, ...] = ()
    delay: float = 0.0
    start_time: float = 0.0
    rate_cap: "float | None" = None
    tag: Any = None

    def __post_init__(self):
        if self.size < 0:
            raise ConfigError(f"flow {self.fid!r}: size must be >= 0, got {self.size}")
        if self.delay < 0:
            raise ConfigError(f"flow {self.fid!r}: delay must be >= 0")
        if self.start_time < 0:
            raise ConfigError(f"flow {self.fid!r}: start_time must be >= 0")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ConfigError(f"flow {self.fid!r}: rate_cap must be > 0")

    @cached_property
    def path_arr(self) -> np.ndarray:
        """``path`` as an ``int64`` array, computed once per flow.

        The simulator's incidence-matrix build concatenates these
        directly (no per-hop tuple iteration); caching matters because
        benchmarks and the resilience executor re-run the same flow
        objects many times.
        """
        return np.asarray(self.path, dtype=np.int64)


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow.

    ``start`` is when the flow became bandwidth-active (after deps and
    ``delay``); ``finish`` is when its last byte arrived.
    """

    fid: FlowId
    size: float
    start: float
    finish: float
    tag: Any = None

    @property
    def duration(self) -> float:
        """Active transfer duration (seconds)."""
        return self.finish - self.start

    @property
    def mean_rate(self) -> float:
        """Average achieved bandwidth while active (bytes/second)."""
        d = self.duration
        return self.size / d if d > 0 else float("inf")
