"""Fluid flow-level network simulator with max-min fair sharing.

Model
-----
Concurrent transfers are *fluid flows*.  At any instant, the rate vector
over active flows is the **max-min fair allocation** subject to

* every directed link's capacity (flows traversing a link share it), and
* a per-flow single-stream ceiling (``stream_cap``, the protocol limit a
  single message stream can reach on BG/Q — modelled as a private virtual
  link per flow).

Rates are recomputed at every event (flow activation or completion) by
progressive filling: all unfrozen flows grow uniformly until some link
saturates, flows crossing it freeze, and the process repeats.  Between
events, flows drain linearly, so the simulation is exact for the fluid
model.

Dependencies (``Flow.deps``) implement store-and-forward: a dependent
flow becomes *ready* when all its predecessors complete, then waits
``delay`` seconds (endpoint/forwarding overhead) before consuming
bandwidth.

Implementation
--------------
The core is vectorized around a **sparse link×flow incidence matrix**
built once per run in CSR form: one flat ``int64`` array of dense link
indices (every flow's real links followed by its private virtual cap
link) plus row-pointer offsets.  The event loop is *incremental*: the
per-link active-flow counts (``nfl``) are maintained with
``np.add.at``/``np.subtract.at`` as flows activate and complete, and the
active-set incidence slice is re-gathered with one fancy index per rate
epoch — there is no per-flow Python loop over path rows anywhere in the
hot path.  :meth:`FlowSim._waterfill` consumes those arrays directly:
per-iteration link loads, saturation detection and flow freezing are all
boolean-mask operations over the incidence entries.  Dependency releases
are batched per completion event (one segmented gather over a children
CSR).  See ``docs/PERFORMANCE.md`` for the measured speedups.

Scale
-----
``batch_tol > 0`` enables *batched completions*: when the earliest
completion is ``dt`` away, all flows finishing within ``dt * (1 +
batch_tol)`` complete together (each is granted at most ``batch_tol``
extra relative time).  This collapses near-ties and cuts rate
recomputations by orders of magnitude at 4K–8K nodes, with error bounded
by ``batch_tol``; tests cross-validate against exact mode.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict
from typing import Callable, Mapping, NamedTuple, Sequence

import numpy as np

from dataclasses import dataclass

from repro.network.flow import Flow, FlowId, FlowResult
from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.obs.metrics import TimeSeriesProbe, get_registry
from repro.obs.trace import get_tracer
from repro.util.cancel import current_scope
from repro.util.validation import (
    ConfigError,
    LinkDownError,
    SimulationCancelled,
    SimulationError,
)

_EPS_BYTES = 1e-3  # sub-byte residue counts as complete (float rounding guard)
_REL_TOL = 1e-12

# ``incremental="auto"`` enables component-local re-solves only for runs
# of at least this many flows: below it, a full waterfill is a handful
# of vectorized dispatches and the per-event component bookkeeping costs
# more than it saves (measured crossover ≈ 200 flows on a uniform 4x4x4
# torus; CI's perf-smoke guards the small-count side).
_INC_AUTO_MIN = 192

CapacityFn = Callable[[int], float]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class _StructuralCache:
    """Small thread-safe LRU memo for flow-population structural arrays.

    Resilience retry rounds and repeated service scenarios re-simulate
    *identical flow populations* under different capacity functions, and
    everything derived from the flows' identities alone — the dense-link
    compaction, both incidence CSRs, the dependency DAG — is reusable
    verbatim across those runs.  Keys hold references to the flows' own
    tuples (no copies); cached arrays are handed out uncopied and must
    be treated as immutable by the consumer (the one array :meth:`run`
    mutates, the dependency countdown, is copied on the way out).
    """

    def __init__(self, maxsize: int = 8):
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            val = self._data.get(key)
            if val is not None:
                self._data.move_to_end(key)
            return val

    def put(self, key, val) -> None:
        with self._lock:
            self._data[key] = val
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class _RunStructure(NamedTuple):
    """Capacity-independent per-population arrays cached across runs."""

    fid_to_idx: "dict[FlowId, int]"
    dep_count0: np.ndarray  # pristine dependency countdown (copy to use)
    child_lens: np.ndarray
    child_ptr: np.ndarray
    child_flat: np.ndarray
    lens_full: np.ndarray
    ptr: np.ndarray
    flat: np.ndarray
    t_flow: np.ndarray
    t_lens: np.ndarray
    t_ptr: np.ndarray
    rows_unique: bool


_LINK_STRUCT_CACHE = _StructuralCache()
_RUN_STRUCT_CACHE = _StructuralCache()


def _segment_gather(ptr: np.ndarray, lens: np.ndarray, idxs: np.ndarray) -> np.ndarray:
    """Indices of every CSR entry of rows ``idxs`` (concatenated, in order).

    ``ptr``/``lens`` describe a CSR layout (``ptr[i]`` is row ``i``'s first
    entry, ``lens[i]`` its length); the result indexes the flat array.
    """
    counts = lens[idxs]
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I64
    ends = np.cumsum(counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(ptr[idxs], counts) + offs


@dataclass(frozen=True, order=True)
class CapacityEvent:
    """A scheduled capacity change: at ``time``, directed link ``link``'s
    capacity becomes ``capacity`` bytes/second (absolute, not a factor).

    ``capacity == 0`` takes the link hard down; any flow still routed
    across it stalls, which the simulator reports as a
    :class:`~repro.util.validation.LinkDownError` rather than spinning on
    a transfer that can never finish.  Fault layers build these from
    :class:`repro.machine.faults.FaultTrace` schedules.
    """

    time: float
    link: int
    capacity: float

    def __post_init__(self):
        if self.time < 0:
            raise ConfigError(f"event time must be >= 0, got {self.time}")
        if self.capacity < 0:
            raise ConfigError(
                f"link {self.link}: event capacity must be >= 0, got {self.capacity}"
            )


def uniform_capacities(link_bw: float) -> CapacityFn:
    """A capacity function giving every link the same bandwidth.

    Suitable for torus-only experiments; the machine model in
    :mod:`repro.machine` supplies heterogeneous capacities (torus links
    vs. 2 GB/s ION links vs. the ION→storage fabric).
    """
    if link_bw <= 0:
        raise ConfigError(f"link_bw must be > 0, got {link_bw}")
    return lambda link_id: link_bw


class FlowSimResult:
    """Results of one :class:`FlowSim` run.

    ``cutoff_bytes`` holds, for every flow the caller passed a *cutoff*
    time for (see :meth:`FlowSim.run`), the bytes that flow had
    delivered by that instant — the byte-exact partial-progress record
    the resilience ledger credits when a carrier is cancelled at its
    deadline.

    When the run carried a silent-data-corruption model
    (:class:`repro.machine.faults.SDCModel` via ``run(..., sdc=...)``),
    the result is annotated with it: :meth:`wire_flip_probability`
    reports each flow's route corruption probability.  The annotation
    is pure metadata — SDC never changes rates or timings (that is what
    makes it *silent*), so annotated and unannotated runs are
    byte-identical in every physical output.
    """

    def __init__(
        self,
        results: dict[FlowId, FlowResult],
        makespan: float,
        link_bytes: dict[int, float],
        n_rate_updates: int,
        cutoff_bytes: "dict[FlowId, float] | None" = None,
    ):
        self.results = results
        self.makespan = makespan
        self.link_bytes = link_bytes
        self.n_rate_updates = n_rate_updates
        self.cutoff_bytes = cutoff_bytes or {}
        self.sdc = None
        self._flow_paths: dict[FlowId, tuple] = {}
        self._total_bytes: "float | None" = None
        self._aggregate_throughput: "float | None" = None

    def annotate_sdc(self, sdc, flows: "Sequence[Flow]") -> None:
        """Attach the run's SDC model and flow routes (metadata only)."""
        self.sdc = sdc
        self._flow_paths = {f.fid: f.path for f in flows}

    def wire_flip_probability(self, fid: FlowId) -> float:
        """Probability this flow's payload crossed a bit-flipping link
        (``1 - Π(1 - rate_l)`` over its route; 0.0 without an SDC
        model).  Per-extent corruption *decisions* stay with the
        resilience executor — only it knows the extent identities."""
        if self.sdc is None:
            return 0.0
        return self.sdc.route_flip_probability(self._flow_paths.get(fid, ()))

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, fid: FlowId) -> FlowResult:
        return self.results[fid]

    def finish(self, fid: FlowId) -> float:
        """Completion time of one flow."""
        return self.results[fid].finish

    def delivered_by_cutoff(self, fid: FlowId) -> float:
        """Bytes ``fid`` had delivered at its cutoff time (its full size
        when no cutoff was registered for it — the flow was never cut)."""
        got = self.cutoff_bytes.get(fid)
        return float(self.results[fid].size) if got is None else got

    def total_bytes(self) -> float:
        """Sum of all flow payloads (computed once, then cached —
        benchmarks call this inside timing loops)."""
        if self._total_bytes is None:
            self._total_bytes = float(sum(r.size for r in self.results.values()))
        return self._total_bytes

    def aggregate_throughput(self) -> float:
        """Total payload divided by makespan (the paper's 'total throughput').

        Cached alongside :meth:`total_bytes` — service payloads and
        benchmark loops call it repeatedly on a finished result."""
        if self._aggregate_throughput is None:
            if self.makespan <= 0:
                self._aggregate_throughput = (
                    float("inf") if self.total_bytes() > 0 else 0.0
                )
            else:
                self._aggregate_throughput = self.total_bytes() / self.makespan
        return self._aggregate_throughput

    def invalidate_caches(self) -> None:
        """Drop the cached ``total_bytes``/``aggregate_throughput`` values.

        Both caches derive from the same payload sum, so any caller that
        mutates ``results`` in place must drop them together — never one
        without the other."""
        self._total_bytes = None
        self._aggregate_throughput = None

    def by_tag(self, tag) -> list[FlowResult]:
        """All flow results carrying ``tag``."""
        return [r for r in self.results.values() if r.tag == tag]


def waterfill_csr(
    caps_full: np.ndarray,
    flat: np.ndarray,
    ptr: np.ndarray,
    lens: np.ndarray,
    t_flow: np.ndarray,
    t_ptr: np.ndarray,
    t_lens: np.ndarray,
    frozen: np.ndarray,
    nfl0: np.ndarray,
    nf: int,
    n_real: int,
    freeze_log: "list | None" = None,
    rows_unique: bool = True,
    fair_tol: float = 0.0,
) -> np.ndarray:
    """Max-min fair rates for one active set (progressive filling).

    Module-level so :class:`BatchFlowSim` (``batchsim``) can drive the
    same kernel over block-diagonally stacked scenarios without a
    :class:`FlowSim` instance.

    Fully vectorized over the precomputed link×flow incidence
    matrix, held in CSR form both ways:

    * ``flat``/``ptr``/``lens`` — flow → dense-link rows (each
      flow's real links followed by its private virtual cap link, so
      every row is non-empty and the filling always terminates);
    * ``t_flow``/``t_ptr`` — the transpose, link → flows crossing
      it (built once per run; each link saturates at most once per
      fill, so the freeze work it feeds is amortized O(entries)).

    ``frozen`` marks the *inactive* flows on entry (consumed, not
    copied); ``nfl0`` is the per-dense-link count of active-flow
    entries, maintained incrementally by :meth:`run` — dense links
    with a zero count (untouched by the active set) are priced out
    with an infinite water level rather than compacted away.
    ``n_real`` is the number of real links: dense ids at or above it
    are the per-flow virtual cap links (id ``n_real + flow``), which
    the freeze step exploits to skip the transpose gather when every
    saturated link is virtual.

    Per iteration, all unfrozen flows share one water ``level``:
    the bottleneck search is a handful of O(links) array ops, links
    saturated at the level freeze their unfrozen flows via the
    transpose slices, and the frozen rows' counts retire with one
    ``np.subtract.at``.  Returns the rate vector over *all* flows
    (inactive entries are 0; callers slice the active set).

    ``freeze_log``, when given, receives one sorted array of flow
    indices per filling iteration — the flows frozen at that
    bottleneck level (used by the property tests to compare freeze
    order against the reference implementation).
    """
    # Compact to the links the active set actually touches (every
    # dense link with a positive count) — one linear mask + remap
    # per fill, so the per-iteration scans below shrink with the
    # active set instead of staying O(all links) for tail events.
    live_idx = (nfl0 > 0).nonzero()[0]
    remap = np.empty(len(caps_full), dtype=np.int64)
    remap[live_idx] = np.arange(len(live_idx), dtype=np.int64)
    caps_live = caps_full[live_idx]
    nfl = nfl0[live_idx]
    # Per-link *absolute saturation levels*: link l saturates when
    # the shared water level reaches ``s[l]``; its remaining capacity
    # at level h is implicitly ``(s[l] - h) * nfl[l]``, so no
    # per-link capacity needs materializing.  Between freezes
    # nothing about a link changes — ``s`` only needs recomputing
    # for the links the newly frozen flows touch (``s_new = level +
    # (s_old - level) * n_old / n_new``), and the per-iteration
    # bottleneck search is a single min plus one equality scan (the
    # bottleneck link hits its own minimum exactly; independent
    # near-ties land in their own iterations at levels within float
    # rounding of each other).  Links whose flows all froze are
    # priced out at an infinite level.
    s = caps_live / nfl
    n = len(ptr) - 1
    rate = np.zeros(n)
    fbuf = np.zeros(n, dtype=bool)  # per-iteration freeze dedup scratch
    n_frozen = 0
    level = 0.0

    # Saturation levels only ever rise (freezing a flow weakly raises
    # every touched link's level), so the bottleneck search can run
    # over a small *candidate pool* of the currently-lowest levels,
    # rebuilt via one ``np.partition`` only when the pool's minimum
    # climbs past its admission threshold.  Every saturated link goes
    # dead, so a pool of ``_POOL`` links sustains about that many
    # iterations between O(links) rebuilds.
    _POOL = 64
    use_pool = len(s) > 4 * _POOL
    if use_pool:
        t_thr = float(np.partition(s, _POOL)[_POOL])
        C = (s <= t_thr).nonzero()[0]

    ftol = fair_tol
    sub_at = np.subtract.at
    concat = np.concatenate
    s_item = s.item
    nfl_item = nfl.item
    remap_item = remap.item
    ptr_item = ptr.item
    with np.errstate(divide="ignore", invalid="ignore"):
        for _ in range(nf + 1):
            if n_frozen == nf:
                break
            if use_pool:
                sC = s[C]
                smin = float(sC.min())
                if smin > t_thr:
                    t_thr = float(np.partition(s, _POOL)[_POOL])
                    C = (s <= t_thr).nonzero()[0]
                    sC = s[C]
                    smin = float(sC.min())
            else:
                smin = float(s.min())
            if smin == np.inf:  # pragma: no cover - virtual links prevent this
                raise SimulationError("waterfill: no live links but unfrozen flows remain")
            prev = level
            if smin > level:
                level = smin
            # Saturated links freeze every unfrozen flow crossing them.
            # fair_tol > 0 groups near-ties: links whose fair share is
            # within (1 + fair_tol) of the bottleneck freeze together,
            # trading <= fair_tol relative rate error for far fewer
            # filling iterations on large active sets.
            if ftol > 0:
                bound = prev + (level - prev) * (1 + ftol)
                if use_pool and bound > t_thr:
                    # Widen the pool to cover the whole grouping window.
                    t_thr = bound
                    C = (s <= t_thr).nonzero()[0]
                    sC = s[C]
                if use_pool:
                    sat_links = C[(sC <= bound).nonzero()[0]]
                else:
                    sat_links = (s <= bound).nonzero()[0]
            elif use_pool:
                sat_links = C[sC == smin]
            else:
                sat_links = (s == smin).nonzero()[0]
            sat_orig = live_idx[sat_links]  # transpose slices use dense ids
            ks = sat_orig.tolist()
            if ks[0] >= n_real:
                # Every saturated link is a private virtual cap link
                # (dense ids sorted, so checking the smallest
                # suffices).  Each carries exactly its own flow,
                # unfrozen by construction while its count is live —
                # the freeze set is just the id offset, with no
                # transpose gather and no dedup.  Rate-cap ties
                # (many flows pinned at the same stream cap) make
                # this the dominant shape on parameterized machines.
                newly = sat_orig - n_real
            else:
                if len(ks) == 1:
                    k = ks[0]
                    cand = t_flow[t_ptr[k] : t_ptr[k + 1]]
                elif len(ks) <= 32:
                    cand = concat([t_flow[t_ptr[k] : t_ptr[k + 1]] for k in ks])
                else:
                    cand = t_flow[_segment_gather(t_ptr, t_lens, sat_orig)]
                cand = cand[~frozen[cand]]
                if not len(cand):  # pragma: no cover - filling invariant
                    raise SimulationError(
                        "waterfill: no flow froze in an iteration"
                    )
                if rows_unique and len(ks) == 1:
                    # One saturated link and duplicate-free rows: its
                    # unfrozen flow list is already distinct (and sorted).
                    newly = cand
                else:
                    # Dedup via the scratch flag array (a flow can sit
                    # on several links saturating in the same
                    # iteration) — cheaper than a sort-based
                    # ``np.unique`` in the hot loop.
                    fbuf[cand] = True
                    newly = fbuf.nonzero()[0]
                    fbuf[newly] = False
            js = newly.tolist()
            nj = len(js)
            n_frozen += nj
            if freeze_log is not None:
                freeze_log.append(newly)
            if n_frozen == nf:
                # Last freeze of the fill (frequently the largest —
                # the whole remaining set pinned at a shared rate
                # cap): the link-state update below would never be
                # read again, so skip it.
                frozen[newly] = True
                rate[newly] = level
                break
            # Retire every entry of every newly frozen flow and bring
            # only the touched links' state current.  One or two
            # frozen flows with short rows (the common case — freezes
            # of one or two flows make up over 40% of iterations):
            # plain scalar arithmetic over their handful of links
            # beats the dozen-odd vectorized dispatches below, and
            # applying the flows one after the other is algebraically
            # the same count-rescaling as the batched update.
            # (The ptr span covers every row between the first and
            # last frozen index, so it bounds their combined length
            # from above — a cheap two-lookup eligibility test.)
            if nj <= 2 and ptr_item(js[-1] + 1) - ptr_item(js[0]) <= 32:
                for j in js:
                    frozen[j] = True
                    rate[j] = level
                    for gl in flat[ptr[j] : ptr[j + 1]].tolist():
                        li = remap_item(gl)
                        n_o = nfl_item(li)
                        n_n = n_o - 1.0
                        nfl[li] = n_n
                        if n_n <= 0.0:
                            s[li] = np.inf
                        else:
                            s[li] = level + (s_item(li) - level) * (n_o / n_n)
                continue
            frozen[newly] = True
            rate[newly] = level
            # Duplicate link indices (several frozen flows sharing a
            # link) are safe in the batched update — the fancy-index
            # updates compute one value per link from the same
            # gathered originals, while ``np.subtract.at`` decrements
            # per entry.
            if nj == 1:
                links = remap[flat[ptr[js[0]] : ptr[js[0] + 1]]]
            elif nj <= 32:
                links = remap[concat([flat[ptr[j] : ptr[j + 1]] for j in js])]
            else:
                links = remap[flat[_segment_gather(ptr, lens, newly)]]
            s_old = s[links]
            n_old = nfl[links]
            sub_at(nfl, links, 1.0)
            new_n = nfl[links]
            # new_n == 0 (a link losing its last unfrozen flow — at
            # least the saturated ones, every iteration) divides to
            # inf/nan here; those entries are overwritten with the
            # infinite price right after, and the fill-wide errstate
            # silences the transient warnings.
            s_new = level + (s_old - level) * (n_old / new_n)
            s[links] = s_new
            dead_sel = links[new_n <= 0]
            if len(dead_sel):
                s[dead_sel] = np.inf
        else:  # pragma: no cover - loop bound is nf freezes
            raise SimulationError("waterfill did not converge")
    return rate


class FlowSim:
    """Max-min fair fluid simulator over an arbitrary link set.

    Args:
        capacities: mapping or callable giving each directed link id its
            capacity in bytes/second.
        params: machine constants (only ``stream_cap``/``mem_bw`` are used
            here; overhead constants are applied by the layers that build
            flows, as ``Flow.delay``).
        batch_tol: relative completion-batching tolerance (0 = exact).
        fair_tol: waterfill near-tie grouping tolerance (0 = exact
            max-min fairness; small values like 0.02 speed up very large
            active sets with a bounded relative rate error).
        lazy_frac: lazy rate-update threshold (0 = recompute at every
            event).  With ``lazy_frac > 0``, surviving flows keep their
            frozen (still capacity-feasible) rates after completions
            until the freed bandwidth exceeds this fraction of the last
            allocation — a *conservative* approximation (rates are never
            overestimated) that collapses thousands of rate updates on
            very large homogeneous phases.
        incremental: component-local re-solve policy (default
            ``"auto"``).  Max-min allocations decompose over the
            connected components of the link×flow incidence graph, so
            each event only re-waterfills the component(s) it touches,
            and a flow whose real links are all strictly unsaturated
            completes without any re-solve at all (its removal provably
            changes no other flow's rate).  The results are exact —
            identical to the full re-solve up to float rounding (≤1e-12
            relative, see ``tests/test_flowsim_incremental.py``).  The
            per-event component bookkeeping has a fixed cost, so it only
            pays off once the active system is big enough for full
            re-solves to hurt: ``"auto"`` enables it for runs of at
            least ``_INC_AUTO_MIN`` flows and uses the plain full
            re-solve below that (where the full solve is already a few
            vectorized dispatches).  ``True`` forces incremental at any
            size (the property tests do, to exercise the path on small
            randomized systems); ``False`` forces the full re-solve on
            every event for A/B checks.  Only effective in
            exact-fairness mode: ``fair_tol > 0`` groups near-ties
            *across* component boundaries and ``lazy_frac > 0`` has its
            own staleness rule, so either falls back to full re-solves.
    """

    def __init__(
        self,
        capacities: "Mapping[int, float] | CapacityFn",
        params: NetworkParams = MIRA_PARAMS,
        *,
        batch_tol: float = 0.0,
        fair_tol: float = 0.0,
        lazy_frac: float = 0.0,
        incremental: "bool | str" = "auto",
    ):
        if isinstance(capacities, Mapping):
            self._cap_of: CapacityFn = capacities.__getitem__
        elif callable(capacities):
            self._cap_of = capacities
        else:
            raise ConfigError("capacities must be a mapping or callable")
        if batch_tol < 0:
            raise ConfigError(f"batch_tol must be >= 0, got {batch_tol}")
        if fair_tol < 0:
            raise ConfigError(f"fair_tol must be >= 0, got {fair_tol}")
        if lazy_frac < 0:
            raise ConfigError(f"lazy_frac must be >= 0, got {lazy_frac}")
        if incremental not in (True, False, "auto"):
            raise ConfigError(
                f"incremental must be True, False or 'auto', got {incremental!r}"
            )
        self.params = params
        self.batch_tol = float(batch_tol)
        self.fair_tol = float(fair_tol)
        self.lazy_frac = float(lazy_frac)
        self.incremental = incremental
        self._default_cap = min(params.stream_cap, params.mem_bw)

    # ------------------------------------------------------------------ setup

    def _index_flows(self, flows: Sequence[Flow]):
        fid_to_idx: dict[FlowId, int] = {}
        for i, f in enumerate(flows):
            if f.fid in fid_to_idx:
                raise ConfigError(f"duplicate flow id {f.fid!r}")
            fid_to_idx[f.fid] = i
        return fid_to_idx

    def _compact_links(self, flows: Sequence[Flow]):
        """Build the real-link half of the incidence matrix in one pass.

        Maps global link ids to dense indices via one ``np.unique`` over
        the concatenation of every flow's precomputed hop→link-id array
        (:attr:`Flow.path_arr`), fetches each distinct link's capacity
        exactly once, and returns CSR arrays:

        * ``link_index`` — global id → dense index (for capacity events),
        * ``uniq`` — dense index → global id,
        * ``caps`` — per-dense-link capacity,
        * ``real_flat``/``real_ptr``/``real_lens`` — the CSR incidence of
          real links (``real_flat[real_ptr[i]:real_ptr[i+1]]`` is flow
          ``i``'s dense link row).

        The structural half (everything but ``caps``) depends only on
        the flows' routes, so it is memoized across runs — resilience
        retry rounds and repeated scenarios re-submit identical flow
        populations under *different* capacity functions, and only the
        capacity fetch + validation rerun on a cache hit.
        """
        n = len(flows)
        key = tuple(f.path for f in flows)
        hit = _LINK_STRUCT_CACHE.get(key)
        if hit is None:
            real_lens = np.fromiter(
                (len(f.path) for f in flows), dtype=np.int64, count=n
            )
            real_ptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(real_lens, out=real_ptr[1:])
            if real_ptr[-1]:
                flat_g = np.concatenate([f.path_arr for f in flows])
            else:
                flat_g = _EMPTY_I64
            uniq, real_flat = np.unique(flat_g, return_inverse=True)
            real_flat = real_flat.astype(np.int64, copy=False)
            link_index = {int(g): k for k, g in enumerate(uniq)}
            hit = (link_index, uniq, real_flat, real_ptr, real_lens)
            _LINK_STRUCT_CACHE.put(key, hit)
        link_index, uniq, real_flat, real_ptr, real_lens = hit
        caps = np.array([float(self._cap_of(int(g))) for g in uniq], dtype=np.float64)
        bad = np.flatnonzero(caps <= 0)
        if len(bad):
            e = int(np.flatnonzero(np.isin(real_flat, bad))[0])
            i = int(np.searchsorted(real_ptr, e, side="right")) - 1
            g = int(uniq[real_flat[e]])
            raise ConfigError(
                f"flow {flows[i].fid!r}: route crosses link {g} with "
                f"non-positive capacity {caps[real_flat[e]]} (link is down); "
                f"exclude the path or heal the link before submitting"
            )
        return link_index, uniq, caps, real_flat, real_ptr, real_lens

    # ------------------------------------------------------------------ fairness

    def _waterfill(
        self,
        caps_full: np.ndarray,
        flat: np.ndarray,
        ptr: np.ndarray,
        lens: np.ndarray,
        t_flow: np.ndarray,
        t_ptr: np.ndarray,
        t_lens: np.ndarray,
        frozen: np.ndarray,
        nfl0: np.ndarray,
        nf: int,
        n_real: int,
        freeze_log: "list | None" = None,
        rows_unique: bool = True,
    ) -> np.ndarray:
        """Instance entry point of :func:`waterfill_csr` (adds ``fair_tol``)."""
        return waterfill_csr(
            caps_full, flat, ptr, lens, t_flow, t_ptr, t_lens, frozen,
            nfl0, nf, n_real, freeze_log=freeze_log, rows_unique=rows_unique,
            fair_tol=self.fair_tol,
        )

    # ------------------------------------------------------------------ run

    def run(
        self,
        flows: Sequence[Flow],
        capacity_events: "Sequence[CapacityEvent] | None" = None,
        *,
        probe: "TimeSeriesProbe | None" = None,
        t_base: float = 0.0,
        cutoffs: "Mapping[FlowId, float] | None" = None,
        cancel_check: "Callable[[], object] | None" = None,
        cancel_every: int = 64,
        sdc=None,
    ) -> FlowSimResult:
        """Simulate all flows to completion and return per-flow results.

        ``sdc`` (a :class:`repro.machine.faults.SDCModel`) annotates the
        result with per-flow wire-corruption probabilities — see
        :meth:`FlowSimResult.wire_flip_probability`.  Corruption is
        *silent*: it never alters rates, timings or delivered bytes, so
        passing a model cannot change any physical output.

        ``capacity_events`` schedules mid-run capacity changes (link
        degradation, failure, or recovery); each triggers an exact rate
        recomputation at its fire time.  Events on links no submitted
        flow traverses are ignored.

        ``probe`` samples per-link rate/utilisation, per-link queue
        depth and delivered bytes on a fixed simulated-time grid inside
        this loop (see :class:`~repro.obs.metrics.TimeSeriesProbe`); the
        samples are fed straight from the incremental incidence state
        (per-link counts and the active-set entry slice), so enabling
        the probe prices one segmented ``np.add.at`` per window that
        contains a grid tick.  ``t_base`` is this run's absolute
        simulated start time, used to keep probe samples and recorded
        spans monotone when a caller (the resilience executor) chains
        several runs on one timeline.

        ``cutoffs`` maps flow ids to *cutoff* times (run-local, like
        event times): the simulator snapshots each named flow's
        delivered bytes at exactly that instant and reports them in
        :attr:`FlowSimResult.cutoff_bytes`.  Rates are piecewise
        constant, so the snapshot is exact and — unlike a capacity
        event — triggers **no rate recomputation**: flow timings are
        unchanged to within one linear-drain split per cutoff.  The
        resilience executor registers each carrier's deadline here so a
        cancelled carrier's partial progress can be credited byte-for-
        byte instead of re-sending its entire share.

        ``cancel_check`` is the **cooperative cancellation hook**: a
        callable polled once every ``cancel_every`` event-loop
        iterations.  It either raises
        :class:`~repro.util.validation.SimulationCancelled` itself (the
        :meth:`repro.util.cancel.CancelScope.check` idiom) or returns a
        truthy value, in which case the simulator raises on its behalf —
        so a deadline installed by the scenario service cuts a stuck or
        oversized run off mid-simulation instead of hanging a worker.
        When ``None``, the ambient :func:`repro.util.cancel.cancel_scope`
        (if one is installed) is polled instead; with neither, the hook
        costs nothing.  The check never mutates simulator state, so a
        hook that is installed but never fires leaves results
        byte-identical to an unhooked run.
        """
        flows = list(flows)
        if not flows:
            return FlowSimResult({}, 0.0, {}, 0)
        if t_base < 0:
            raise ConfigError(f"t_base must be >= 0, got {t_base}")
        if cancel_every < 1:
            raise ConfigError(f"cancel_every must be >= 1, got {cancel_every}")
        if cancel_check is None:
            scope = current_scope()
            if scope is not None:
                cancel_check = scope.check
        n_since_check = 0
        if probe is not None:
            probe.rebase(t_base)
        # Structural arrays (both incidence CSRs, the dependency DAG)
        # depend only on the flows' identities — fids, routes, deps —
        # not on capacities or payloads, so identical flow populations
        # (resilience retry rounds, repeated scenarios) reuse them from
        # the LRU memo; capacities are refetched fresh every run.
        skey = tuple((f.fid, f.path, f.deps) for f in flows)
        struct: "_RunStructure | None" = _RUN_STRUCT_CACHE.get(skey)
        if struct is not None:
            fid_to_idx = struct.fid_to_idx
        else:
            fid_to_idx = self._index_flows(flows)
        link_index, uniq, caps, real_flat, real_ptr, real_lens = self._compact_links(
            flows
        )
        n = len(flows)
        nl = len(caps)
        events = sorted(capacity_events or ())
        for e in events:
            if not isinstance(e, CapacityEvent):
                raise ConfigError(
                    f"capacity_events must contain CapacityEvent records, got {e!r}"
                )

        # Cutoff snapshots: per-flow delivered-bytes attribution times.
        cut_map: dict[float, list[int]] = {}
        cut_rec: dict[FlowId, float] = {}
        if cutoffs:
            for fid, t_cut in cutoffs.items():
                i = fid_to_idx.get(fid)
                if i is None:
                    raise ConfigError(f"cutoff names unknown flow {fid!r}")
                t_cut = float(t_cut)
                if t_cut < 0:
                    raise ConfigError(
                        f"flow {fid!r}: cutoff time must be >= 0, got {t_cut}"
                    )
                if np.isfinite(t_cut):
                    cut_map.setdefault(t_cut, []).append(i)
        cut_times = sorted(cut_map)
        cp = 0  # next unapplied cutoff time

        if struct is None:
            # Dependency DAG in CSR form:
            # child_flat[child_ptr[j]:child_ptr[j+1]] are the flows
            # waiting on flow j.
            dep_count0 = np.zeros(n, dtype=np.int64)
            child_lens = np.zeros(n, dtype=np.int64)
            dep_pairs: list[tuple[int, int]] = []  # (parent, child)
            for i, f in enumerate(flows):
                for dep in f.deps:
                    j = fid_to_idx.get(dep)
                    if j is None:
                        raise ConfigError(
                            f"flow {f.fid!r} depends on unknown flow {dep!r}"
                        )
                    if j == i:
                        raise ConfigError(f"flow {f.fid!r} depends on itself")
                    dep_pairs.append((j, i))
                    child_lens[j] += 1
                    dep_count0[i] += 1
            child_ptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(child_lens, out=child_ptr[1:])
            child_flat = np.empty(len(dep_pairs), dtype=np.int64)
            fill = child_ptr[:-1].copy()
            for j, i in dep_pairs:
                child_flat[fill[j]] = i
                fill[j] += 1
        else:
            dep_count0 = struct.dep_count0
            child_lens = struct.child_lens
            child_ptr = struct.child_ptr
            child_flat = struct.child_flat
        dep_count = dep_count0.copy()  # consumed as dependencies release

        size_arr = np.array([f.size for f in flows], dtype=np.float64)
        start_arr = np.array([f.start_time for f in flows], dtype=np.float64)
        delay_arr = np.array([f.delay for f in flows], dtype=np.float64)
        remaining = size_arr.copy()
        rate_caps_all = np.array(
            [f.rate_cap if f.rate_cap is not None else self._default_cap for f in flows]
        )
        # Global dense link space: real links, then one virtual cap link
        # per flow.  The full incidence CSR (flat/ptr/lens_full) holds
        # each flow's real links followed by its virtual link, so every
        # row is non-empty.
        caps_full = np.concatenate([caps, rate_caps_all])
        if struct is None:
            lens_full = real_lens + 1
            ptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(lens_full, out=ptr[1:])
            flat = np.empty(int(ptr[-1]), dtype=np.int64)
            virt_pos = ptr[1:] - 1
            real_mask = np.ones(len(flat), dtype=bool)
            real_mask[virt_pos] = False
            flat[real_mask] = real_flat
            flat[virt_pos] = nl + np.arange(n, dtype=np.int64)
            # Transpose incidence (link → flows crossing it), built once
            # per population: the waterfill walks saturated links' flow
            # lists through these slices instead of scanning every
            # active entry per filling iteration.
            t_order = np.argsort(flat, kind="stable")
            rep_flow = np.repeat(np.arange(n, dtype=np.int64), lens_full)
            t_flow = rep_flow[t_order]
            t_lens = np.bincount(flat, minlength=nl + n)
            t_ptr = np.zeros(nl + n + 1, dtype=np.int64)
            np.cumsum(t_lens, out=t_ptr[1:])
            # Torus routes never reuse a directed link, so incidence rows
            # are normally duplicate-free; verify once so the waterfill
            # can trust single-link freeze lists without a dedup pass.
            rows_unique = len(np.unique(flat * np.int64(n) + rep_flow)) == len(flat)
            _RUN_STRUCT_CACHE.put(
                skey,
                _RunStructure(
                    fid_to_idx, dep_count0, child_lens, child_ptr,
                    child_flat, lens_full, ptr, flat, t_flow, t_lens,
                    t_ptr, rows_unique,
                ),
            )
        else:
            lens_full = struct.lens_full
            ptr = struct.ptr
            flat = struct.flat
            t_flow = struct.t_flow
            t_lens = struct.t_lens
            t_ptr = struct.t_ptr
            rows_unique = struct.rows_unique

        # Incremental re-solve state (see ``incremental`` in the class
        # docstring).  ``link_load`` tracks each real dense link's total
        # active rate so completions can prove themselves *clean* (all
        # links strictly unsaturated → removal changes no other rate);
        # ``dirty_seeds`` accumulates the flows whose components need a
        # re-waterfill at the next fill point.
        inc = (
            self.incremental is True
            or (self.incremental == "auto" and n >= _INC_AUTO_MIN)
        ) and self.fair_tol == 0 and self.lazy_frac == 0
        is_act = np.zeros(n, dtype=bool)
        rate_all = np.zeros(n)  # current rate per flow (0 when inactive)
        link_load = np.zeros(nl)  # per-real-link sum of active rates
        dirty_seeds: list[np.ndarray] = []  # arrivals / cap drops → BFS
        freed_links: list[np.ndarray] = []  # departures / cap raises → grow set

        ready_time = np.zeros(n)  # max(dep finishes), running
        start_rec = np.full(n, np.nan)
        finish_rec = np.full(n, np.nan)
        done = np.zeros(n, dtype=bool)
        link_bytes_arr = np.zeros(nl)

        pending: list[tuple[float, int]] = []  # (activation time, idx)
        for i, f in enumerate(flows):
            if dep_count[i] == 0:
                heapq.heappush(pending, (f.start_time + f.delay, i))

        act = _EMPTY_I64  # active flow indices, activation order
        # Incremental per-dense-link count of active-flow entries; the
        # waterfill's starting point and the probe's queue depths.
        nfl_act = np.zeros(nl + n, dtype=np.float64)
        T = 0.0
        n_updates = 0
        delivered = 0.0

        # Active-set incidence cache, re-gathered only when `act` changes.
        act_ent_links = _EMPTY_I64
        act_ent_flow = _EMPTY_I64
        act_dirty = True

        def refresh_act_cache():
            nonlocal act_ent_links, act_ent_flow, act_dirty
            ent = _segment_gather(ptr, lens_full, act)
            act_ent_links = flat[ent]
            act_ent_flow = np.repeat(
                np.arange(len(act), dtype=np.int64), lens_full[act]
            )
            act_dirty = False

        def affected_flows(seeds: np.ndarray) -> np.ndarray:
            """Active flows of the incidence components touching ``seeds``.

            BFS over the link×flow incidence graph (flow CSR one way,
            transpose the other), restricted to *active* flows: two
            active flows are coupled iff they share a real link, so the
            union of whole components returned here can be re-waterfilled
            exactly while every other active flow keeps its frozen rate.
            Seeds may be inactive — a just-finished flow seeds through
            its links.  Once most of the active set is visited the BFS
            stops and returns the whole set: re-solving extra whole
            components is always exact, and ``act`` is the cheapest
            superset.
            """
            stop_at = (len(act) * 3) // 4
            vis_f = np.zeros(n, dtype=bool)
            vis_l = np.zeros(nl, dtype=bool)
            frontier = np.unique(seeds)
            vis_f[frontier] = True
            comp = [frontier[is_act[frontier]]]
            n_vis = len(comp[0])
            if n_vis > stop_at:
                return act
            while len(frontier):
                links = real_flat[_segment_gather(real_ptr, real_lens, frontier)]
                links = links[~vis_l[links]]
                if not len(links):
                    break
                vis_l[links] = True
                fl = t_flow[_segment_gather(t_ptr, t_lens, np.unique(links))]
                fl = fl[is_act[fl] & ~vis_f[fl]]
                if not len(fl):
                    break
                frontier = np.unique(fl)
                vis_f[frontier] = True
                comp.append(frontier)
                n_vis += len(frontier)
                if n_vis > stop_at:
                    return act
            return np.concatenate(comp) if len(comp) > 1 else comp[0]

        def check_rates_positive(idx: np.ndarray, r: np.ndarray) -> None:
            """Raise on stalled/starved flows in one freshly solved set."""
            if not np.any(r <= 0):
                return
            bad = idx[r <= 0]
            fids = [flows[int(i)].fid for i in bad]
            down = sorted(
                {
                    int(uniq[k])
                    for i in bad
                    for k in real_flat[real_ptr[i] : real_ptr[i + 1]]
                    if caps_full[int(k)] <= 0
                }
            )
            if down:
                raise LinkDownError(
                    f"flows {fids} stalled: their routes cross "
                    f"zero-capacity link(s) {down} (link down); the "
                    f"transfers can never complete",
                    links=tuple(down),
                )
            raise SimulationError(f"flows starved (zero rate): {fids}")

        def finish_flows(b: np.ndarray, t: float):
            """Record completions and batch-release dependents.

            Does *not* touch the active-set state — callers decrement
            ``nfl_act`` for flows that were bandwidth-active.
            """
            nonlocal delivered
            done[b] = True
            finish_rec[b] = t
            delivered += float(size_arr[b].sum())
            ns = np.isnan(start_rec[b])
            if ns.any():
                start_rec[b[ns]] = t
            ent = _segment_gather(real_ptr, real_lens, b)
            if len(ent):
                np.add.at(
                    link_bytes_arr, real_flat[ent], np.repeat(size_arr[b], real_lens[b])
                )
            ch = _segment_gather(child_ptr, child_lens, b)
            if len(ch):
                ch_idx = child_flat[ch]
                np.maximum.at(ready_time, ch_idx, t)
                np.subtract.at(dep_count, ch_idx, 1)
                uniq_ch = np.unique(ch_idx)
                for c in uniq_ch[dep_count[uniq_ch] == 0]:
                    t_act = max(ready_time[c], start_arr[c]) + delay_arr[c]
                    heapq.heappush(pending, (t_act, int(c)))

        def activate_due(t: float):
            """Move pending flows whose activation time has arrived.

            Activations are batched: the active set, per-link counts and
            incidence cache are updated once per call, not per flow.
            """
            nonlocal act, act_dirty
            new_act: list[int] = []
            moved = False
            while pending and pending[0][0] <= t + 1e-18:
                t_act, i = heapq.heappop(pending)
                start_rec[i] = t_act
                if remaining[i] <= _EPS_BYTES:
                    finish_flows(np.array([i], dtype=np.int64), t_act)
                else:
                    new_act.append(i)
                moved = True
            if new_act:
                b = np.asarray(new_act, dtype=np.int64)
                np.add.at(nfl_act, flat[_segment_gather(ptr, lens_full, b)], 1.0)
                act = np.concatenate([act, b])
                act_dirty = True
                is_act[b] = True
                if inc:
                    dirty_seeds.append(b)
            return moved

        def apply_cuts_due(t: float):
            """Snapshot delivered bytes for every cutoff whose time arrived.

            Rates are piecewise constant and every caller lands here with
            ``remaining`` drained exactly to ``t``, so ``size - remaining``
            *is* the bytes delivered at the cut instant — no interpolation.
            """
            nonlocal cp
            while cp < len(cut_times) and cut_times[cp] <= t + 1e-18:
                for i in cut_map[cut_times[cp]]:
                    if done[i]:
                        got = float(size_arr[i])
                    else:
                        got = float(
                            min(size_arr[i], max(size_arr[i] - remaining[i], 0.0))
                        )
                    cut_rec[flows[i].fid] = got
                cp += 1

        ep = 0  # next unapplied capacity event

        def apply_events_due(t: float):
            """Apply capacity events whose fire time has arrived."""
            nonlocal ep
            changed = False
            while ep < len(events) and events[ep].time <= t + 1e-18:
                e = events[ep]
                k = link_index.get(e.link)
                if k is not None:
                    old_cap = caps_full[k]
                    caps_full[k] = e.capacity
                    changed = True
                    if inc and e.capacity != old_cap:
                        # An event on an idle link re-solves nothing now
                        # (future activations read the updated caps).  A
                        # raise only lets flows *grow* — exactly like a
                        # departure freeing the link; a drop can shrink
                        # flows and cascade, so it re-solves the touched
                        # component(s).
                        fl = t_flow[t_ptr[k] : t_ptr[k + 1]]
                        fl = fl[is_act[fl]]
                        if len(fl):
                            if e.capacity > old_cap:
                                freed_links.append(
                                    np.asarray([k], dtype=np.int64)
                                )
                            else:
                                dirty_seeds.append(fl)
                ep += 1
            return changed

        rates: "np.ndarray | None" = None  # aligned with `act`
        freed_rate = 0.0
        total_rate_at_fill = 0.0

        def probe_window(t0: float, t1: float, have_rates: bool) -> None:
            """Feed one constant-rate window [t0, t1) to the probe.

            Aggregation runs once per window containing a grid tick —
            rates are frozen between events, so the samples are exact.
            The per-link series come straight from the incremental
            state: queue depths are ``nfl_act`` and rates one segmented
            ``np.add.at`` over the cached active incidence slice.
            """
            if t1 <= t0 or not probe.due(t1):
                return
            if not (have_rates and len(act)):
                probe.record_window(t0, t1, {}, {}, {}, 0, delivered)
                return
            if act_dirty:
                refresh_act_cache()
            real = act_ent_links < nl
            agg = np.zeros(nl)
            np.add.at(agg, act_ent_links[real], rates[act_ent_flow[real]])
            ks = np.flatnonzero(nfl_act[:nl] > 0)
            cap_k = caps_full[ks]
            util = np.divide(
                agg[ks], cap_k, out=np.zeros(len(ks)), where=cap_k > 0
            )
            probe.record_window_dense(
                t0, t1, uniq[ks], agg[ks], util,
                nfl_act[ks].astype(np.int64), len(act), delivered,
            )

        while pending or len(act):
            if cancel_check is not None:
                n_since_check += 1
                if n_since_check >= cancel_every:
                    n_since_check = 0
                    try:
                        hit = cancel_check()
                    except SimulationCancelled:
                        get_registry().counter("flowsim.cancelled").inc()
                        raise
                    if hit:
                        get_registry().counter("flowsim.cancelled").inc()
                        raise SimulationCancelled(
                            f"simulation cancelled by hook at T={T:.6g}s "
                            f"({n_updates} rate updates)"
                        )
            if not len(act):
                # Jump to the next activation.
                T_new = max(T, pending[0][0])
                if probe is not None:
                    probe_window(T, T_new, False)
                T = T_new
                apply_cuts_due(T)
                apply_events_due(T)
                if activate_due(T) and not inc:
                    rates = None
                continue

            if rates is not None and (dirty_seeds or freed_links):
                if not dirty_seeds:
                    # Grow-set repair for departures and capacity raises.
                    # Freeing capacity on links ``L`` cannot disturb a
                    # flow whose max-min *bottleneck certificate* — a
                    # saturated link it tops (Bertsekas–Gallager), or its
                    # own rate cap — survives outside L: that link's load
                    # and flow set are untouched, so the certificate
                    # still holds.  When every below-cap flow on L keeps
                    # one (``G0`` empty, the common case) the old rates
                    # are still exactly max-min and the event costs a few
                    # gathers.  Otherwise re-solve G0 together with its
                    # one-hop squeeze partners (top flows on G0's
                    # surviving saturated links — max-min is *not*
                    # monotone under departures: a grower can lower a
                    # neighbour) against residual capacities, then audit
                    # the bottleneck criterion globally; a wider cascade
                    # fails the audit and falls back to the full re-solve
                    # below.
                    L = (
                        freed_links[0]
                        if len(freed_links) == 1
                        else np.unique(np.concatenate(freed_links))
                    )
                    freed_links.clear()
                    C = t_flow[_segment_gather(t_ptr, t_lens, L)]
                    C = C[is_act[C]]
                    if len(C):
                        C = np.unique(C)
                        C = C[rate_all[C] < rate_caps_all[C] * (1.0 - 1e-12)]
                    G0 = C
                    if len(C):
                        if act_dirty:
                            refresh_act_cache()
                        real_a = act_ent_links < nl
                        lk_a = act_ent_links[real_a]
                        fo_a = act_ent_flow[real_a]
                        r_a = rate_all[act]
                        tmax = np.zeros(nl)
                        np.maximum.at(tmax, lk_a, r_a[fo_a])
                        sat = link_load >= caps_full[:nl] * (1.0 - 1e-12)
                        in_l = np.zeros(nl, dtype=bool)
                        in_l[L] = True
                        ent_c = _segment_gather(real_ptr, real_lens, C)
                        lk_c = real_flat[ent_c]
                        rep_c = np.repeat(
                            np.arange(len(C), dtype=np.int64), real_lens[C]
                        )
                        bn = (
                            sat[lk_c]
                            & ~in_l[lk_c]
                            & (rate_all[C][rep_c] >= tmax[lk_c] * (1.0 - 1e-12))
                        )
                        keep = np.zeros(len(C), dtype=bool)
                        keep[rep_c[bn]] = True
                        G0 = C[~keep]
                    if len(G0):
                        ent_g = _segment_gather(real_ptr, real_lens, G0)
                        lk_g = real_flat[ent_g]
                        sq = np.zeros(nl, dtype=bool)
                        mg = sat[lk_g] & ~in_l[lk_g]
                        sq[lk_g[mg]] = True
                        mq = sq[lk_a] & (
                            r_a[fo_a] >= tmax[lk_a] * (1.0 - 1e-12)
                        )
                        S = np.unique(np.concatenate([G0, act[fo_a[mq]]]))
                        if len(S) == 1 and rows_unique:
                            # A lone grower's max-min rate is the least
                            # residual capacity over its links (same
                            # arithmetic the sub-solve would perform).
                            f0 = int(S[0])
                            s0 = real_ptr[f0]
                            lks = real_flat[s0 : s0 + real_lens[f0]]
                            resid = caps_full[lks] - (
                                link_load[lks] - rate_all[f0]
                            )
                            r_new = np.array([
                                min(
                                    float(resid.min()) if len(lks) else np.inf,
                                    float(rate_caps_all[f0]),
                                )
                            ])
                            n_updates += 1
                            check_rates_positive(S, r_new)
                            link_load[lks] += r_new[0] - rate_all[f0]
                            rate_all[f0] = r_new[0]
                        else:
                            caps_res = caps_full.copy()
                            ent_s = _segment_gather(real_ptr, real_lens, S)
                            load_s = np.zeros(nl)
                            np.add.at(
                                load_s,
                                real_flat[ent_s],
                                np.repeat(rate_all[S], real_lens[S]),
                            )
                            caps_res[:nl] -= link_load - load_s
                            frozen_s = np.ones(n, dtype=bool)
                            frozen_s[S] = False
                            nfl_s = np.zeros(nl + n)
                            np.add.at(
                                nfl_s,
                                flat[_segment_gather(ptr, lens_full, S)],
                                1.0,
                            )
                            r_new = self._waterfill(
                                caps_res, flat, ptr, lens_full, t_flow, t_ptr,
                                t_lens, frozen_s, nfl_s, len(S), nl,
                                rows_unique=rows_unique,
                            )[S]
                            n_updates += 1
                            check_rates_positive(S, r_new)
                            np.add.at(
                                link_load,
                                real_flat[ent_s],
                                np.repeat(r_new - rate_all[S], real_lens[S]),
                            )
                            rate_all[S] = r_new
                        # Global audit (Bertsekas–Gallager): the repaired
                        # allocation is max-min iff every active flow
                        # tops a saturated link or sits at its rate cap.
                        r_a = rate_all[act]
                        tmax[:] = 0.0
                        np.maximum.at(tmax, lk_a, r_a[fo_a])
                        sat = link_load >= caps_full[:nl] * (1.0 - 1e-12)
                        ok = sat[lk_a] & (
                            r_a[fo_a] >= tmax[lk_a] * (1.0 - 1e-12)
                        )
                        has_bn = np.zeros(len(act), dtype=bool)
                        has_bn[fo_a[ok]] = True
                        if np.all(
                            has_bn
                            | (r_a >= rate_caps_all[act] * (1.0 - 1e-12))
                        ):
                            rates = r_a
                        else:
                            rates = None  # cascade wider than one hop
                else:
                    # Component-local re-solve: waterfill only the dirty
                    # components (everything else frozen).  The subset's
                    # per-link counts are rebuilt from its own rows —
                    # equal to ``nfl_act`` on every link the subset
                    # touches, because components are link-disjoint.
                    # Pending freed links fold in through their flows:
                    # any flow a grow-repair would touch sits on a freed
                    # link, so seeding those flows keeps the component
                    # superset exact.
                    if freed_links:
                        L = np.unique(np.concatenate(freed_links))
                        freed_links.clear()
                        fl = t_flow[_segment_gather(t_ptr, t_lens, L)]
                        fl = fl[is_act[fl]]
                        if len(fl):
                            dirty_seeds.append(fl)
                    seeds = (
                        dirty_seeds[0]
                        if len(dirty_seeds) == 1
                        else np.concatenate(dirty_seeds)
                    )
                    dirty_seeds.clear()
                    S = affected_flows(seeds)
                    if len(S):
                        frozen_s = np.ones(n, dtype=bool)
                        frozen_s[S] = False
                        nfl_s = np.zeros(nl + n)
                        np.add.at(
                            nfl_s, flat[_segment_gather(ptr, lens_full, S)], 1.0
                        )
                        r_new = self._waterfill(
                            caps_full, flat, ptr, lens_full, t_flow, t_ptr,
                            t_lens, frozen_s, nfl_s, len(S), nl,
                            rows_unique=rows_unique,
                        )[S]
                        n_updates += 1
                        check_rates_positive(S, r_new)
                        ent_r = _segment_gather(real_ptr, real_lens, S)
                        if len(ent_r):
                            np.add.at(
                                link_load,
                                real_flat[ent_r],
                                np.repeat(r_new - rate_all[S], real_lens[S]),
                            )
                        rate_all[S] = r_new
                        rates = rate_all[act]

            if rates is None:
                # Full re-solve: first fill, legacy (non-incremental)
                # triggers, and the incremental paths' audit fallback.
                dirty_seeds.clear()
                freed_links.clear()
                frozen0 = np.ones(n, dtype=bool)
                frozen0[act] = False
                rates = self._waterfill(
                    caps_full, flat, ptr, lens_full, t_flow, t_ptr, t_lens,
                    frozen0, nfl_act, len(act), nl, rows_unique=rows_unique,
                )[act]
                n_updates += 1
                check_rates_positive(act, rates)
                total_rate_at_fill = float(rates.sum())
                freed_rate = 0.0
                if inc:
                    rate_all[:] = 0.0
                    rate_all[act] = rates
                    link_load[:] = 0.0
                    if act_dirty:
                        refresh_act_cache()
                    real = act_ent_links < nl
                    np.add.at(
                        link_load, act_ent_links[real], rates[act_ent_flow[real]]
                    )

            if getattr(self, "_selfcheck", False) and inc and len(act):
                fz = np.ones(n, dtype=bool)
                fz[act] = False
                ref = self._waterfill(
                    caps_full, flat, ptr, lens_full, t_flow, t_ptr, t_lens,
                    fz, nfl_act, len(act), nl, rows_unique=rows_unique,
                )[act]
                bad = np.abs(rates - ref) > 1e-9 * np.maximum(ref, 1.0)
                if bad.any():
                    raise RuntimeError(
                        f"divergence T={T}: flows={act[bad]} inc={rates[bad]} ref={ref[bad]}"
                    )

            next_evt = events[ep].time if ep < len(events) else np.inf
            next_cut = cut_times[cp] if cp < len(cut_times) else np.inf
            ttf = remaining[act] / rates
            dt_complete = float(ttf.min())
            dt_act = (pending[0][0] - T) if pending else np.inf
            dt_int = min(dt_act, next_evt - T)
            if (
                next_cut - T < dt_int * (1 - _REL_TOL)
                and next_cut - T < dt_complete * (1 - _REL_TOL)
            ):
                # A cutoff snapshot strictly precedes every activation,
                # capacity event and completion: split the linear drain
                # at the cut instant and *keep* the rate vector — the
                # split is invisible to flow timings, which is what makes
                # fault-free runs byte-identical with or without cutoffs.
                dt = max(next_cut - T, 0.0)
                if probe is not None:
                    probe_window(T, T + dt, True)
                remaining[act] = np.maximum(remaining[act] - rates * dt, 0.0)
                T += dt
                apply_cuts_due(T)
                continue
            if dt_int < dt_complete * (1 - _REL_TOL):
                # An activation or a capacity change interrupts before any
                # completion; drain linearly, then recompute rates.
                dt = max(dt_int, 0.0)
                if probe is not None:
                    probe_window(T, T + dt, True)
                remaining[act] = np.maximum(remaining[act] - rates * dt, 0.0)
                T += dt
                apply_cuts_due(T)
                activate_due(T)
                apply_events_due(T)
                if not inc:
                    rates = None
                continue

            dt = dt_complete
            if self.batch_tol > 0:
                # Batched completions never overshoot a pending cutoff
                # (but a cut inside the [dt_complete, dt) stretch must
                # not drag dt below the earliest completion either).
                dt = min(
                    dt_complete * (1 + self.batch_tol),
                    dt_act,
                    next_evt - T,
                    max(next_cut - T, dt_complete),
                )
            if probe is not None:
                probe_window(T, T + dt, True)
            remaining[act] = np.maximum(remaining[act] - rates * dt, 0.0)
            T += dt

            finished_mask = remaining[act] <= _EPS_BYTES
            if not finished_mask.any():  # pragma: no cover - dt covers the min
                raise SimulationError("no flow completed at a completion event")
            fin = act[finished_mask]
            np.subtract.at(nfl_act, flat[_segment_gather(ptr, lens_full, fin)], 1.0)
            finish_flows(fin, T)
            apply_cuts_due(T)
            act = act[~finished_mask]
            act_dirty = True
            is_act[fin] = False
            if inc:
                # Clean-completion test: a flow whose real links are all
                # strictly unsaturated crosses no remaining flow's
                # bottleneck, so its removal changes no other max-min
                # rate — no re-solve.  Links it leaves *saturated* are
                # recorded as freed; only their grow set re-solves.  The
                # threshold is conservative: waterfill drift is ~1e-13
                # relative, so a truly saturated link never shows 1e-9
                # of slack, while a false positive merely re-solves.
                ent_f = _segment_gather(real_ptr, real_lens, fin)
                if len(ent_f):
                    lk = real_flat[ent_f]
                    cap_l = caps_full[lk]
                    sat = link_load[lk] >= cap_l - cap_l * 1e-9
                    if sat.any():
                        freed_links.append(np.unique(lk[sat]))
                    np.subtract.at(
                        link_load, lk, np.repeat(rate_all[fin], real_lens[fin])
                    )
                rate_all[fin] = 0.0
                rates = rates[~finished_mask]
                activate_due(T)
                apply_events_due(T)
            else:
                # Lazy rate updates: survivors keep their (still feasible)
                # rates until enough bandwidth has been freed to matter.
                freed_rate += float(rates[finished_mask].sum())
                rates = rates[~finished_mask]
                if (
                    self.lazy_frac <= 0
                    or freed_rate > self.lazy_frac * max(total_rate_at_fill, 1e-30)
                    or not len(rates)
                ):
                    rates = None
                if activate_due(T):
                    rates = None
                if apply_events_due(T):
                    rates = None

        if not done.all():
            stuck = [flows[i].fid for i in range(n) if not done[i]]
            raise SimulationError(f"dependency cycle or stuck flows: {stuck}")
        apply_cuts_due(np.inf)  # cuts past the makespan: flows fully delivered

        busy = np.flatnonzero(link_bytes_arr)
        link_bytes = {int(uniq[k]): float(link_bytes_arr[k]) for k in busy}
        results = {
            f.fid: FlowResult(
                fid=f.fid,
                size=f.size,
                start=float(start_rec[i]),
                finish=float(finish_rec[i]),
                tag=f.tag,
            )
            for i, f in enumerate(flows)
        }
        makespan = float(np.max(finish_rec)) if n else 0.0
        if probe is not None:
            probe.record_final(makespan, delivered)
        tracer = get_tracer()
        if tracer.enabled:
            run_span = tracer.record(
                "flowsim.run",
                t_base,
                t_base + makespan,
                cat="flowsim",
                n_flows=n,
                n_rate_updates=n_updates,
                capacity_events=ep,
                delivered_bytes=delivered,
            )
            if run_span is not None:
                for i, f in enumerate(flows):
                    if i >= tracer.max_flow_spans:
                        tracer.n_dropped += n - i
                        break
                    if f.size <= 0:
                        continue
                    tracer.record(
                        f"flow:{f.fid}",
                        t_base + float(start_rec[i]),
                        t_base + float(finish_rec[i]),
                        cat="flow",
                        parent=run_span,
                        bytes=f.size,
                        hops=len(f.path),
                        tag=None if f.tag is None else str(f.tag),
                    )
        reg = get_registry()
        reg.counter("flowsim.runs").inc()
        reg.counter("flowsim.flows_completed").inc(n)
        reg.counter("flowsim.rate_updates").inc(n_updates)
        reg.counter("flowsim.capacity_events_applied").inc(ep)
        reg.counter("flowsim.delivered_bytes").inc(delivered)
        out = FlowSimResult(results, makespan, link_bytes, n_updates, cut_rec)
        if sdc is not None:
            out.annotate_sdc(sdc, flows)
        return out
