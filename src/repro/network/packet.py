"""Packet records for the packet-level simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass
class Packet:
    """One network packet of a chopped-up message.

    Attributes:
        mid: id of the message this packet belongs to.
        seq: packet sequence number within the message.
        path: directed link ids the packet must traverse.
        hop: index into ``path`` of the next link to cross.
    """

    mid: Hashable
    seq: int
    path: tuple[int, ...]
    hop: int = 0

    @property
    def delivered(self) -> bool:
        """True once the packet has crossed its whole path."""
        return self.hop >= len(self.path)

    def next_link(self) -> int:
        """The next directed link this packet will occupy."""
        return self.path[self.hop]


@dataclass(frozen=True)
class PacketMessage:
    """A message to be transmitted packet-by-packet.

    ``size`` is payload bytes; the simulator chops it into
    ``ceil(size / packet_payload)`` packets.
    """

    mid: Hashable
    size: int
    path: tuple[int, ...]
    inject_tick: int = 0
