"""Packet-level torus simulator (validation substrate).

A time-stepped store-and-forward simulator: time advances in *ticks* of
one packet transmission (``packet_payload / link_bw`` seconds).  Every
directed link has a bounded :class:`~repro.network.fifo.LinkFifo`; per
tick each link transmits its head packet to the FIFO of the packet's next
link (or delivers it), stalling under backpressure.  Sources inject at
most one packet per outgoing link per tick (the MU can drive all links
concurrently but each send unit feeds one link).

This model is far too slow for 8K-node experiments — that is
:class:`repro.network.flowsim.FlowSim`'s job — but on small
configurations it provides an independent check that the fluid model's
contention behaviour (equal sharing of a contended link, k-path speedup)
is not an artefact of the max-min abstraction.  Tests compare the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.network.fifo import LinkFifo
from repro.network.packet import Packet, PacketMessage
from repro.network.params import MIRA_PARAMS, NetworkParams
from repro.util.validation import ConfigError, SimulationError


@dataclass(frozen=True)
class PacketSimResult:
    """Delivery times (in seconds) per message, plus the tick count run."""

    finish_times: dict
    ticks: int
    tick_seconds: float

    def finish(self, mid: Hashable) -> float:
        """Delivery time of one message (seconds)."""
        return self.finish_times[mid]

    @property
    def makespan(self) -> float:
        """Time when the last message finished."""
        return max(self.finish_times.values(), default=0.0)

    def throughput(self, mid: Hashable, size: int) -> float:
        """Achieved bandwidth of one message."""
        t = self.finish_times[mid]
        return size / t if t > 0 else float("inf")


class PacketSim:
    """Store-and-forward packet simulator over arbitrary directed links."""

    def __init__(
        self,
        params: NetworkParams = MIRA_PARAMS,
        *,
        fifo_depth: int = 8,
        max_ticks: int = 10_000_000,
    ):
        self.params = params
        self.fifo_depth = int(fifo_depth)
        self.max_ticks = int(max_ticks)
        self.tick_seconds = params.packet_payload / params.link_bw

    def run(self, messages: Sequence[PacketMessage]) -> PacketSimResult:
        """Simulate all messages to delivery."""
        for m in messages:
            if m.size <= 0:
                raise ConfigError(f"message {m.mid!r}: size must be > 0")
            if not m.path:
                raise ConfigError(f"message {m.mid!r}: empty path (same-node copy)")
        fifos: dict[int, LinkFifo] = {}

        def fifo(g: int) -> LinkFifo:
            f = fifos.get(g)
            if f is None:
                f = LinkFifo(self.fifo_depth)
                fifos[g] = f
            return f

        # Per-message packet generators (injected lazily, 1/tick/first-link).
        pending = {
            m.mid: [
                math.ceil(m.size / self.params.packet_payload),  # packets left
                0,  # next seq
            ]
            for m in messages
        }
        inject_at = {m.mid: m.inject_tick for m in messages}
        paths = {m.mid: tuple(m.path) for m in messages}
        undelivered = {
            m.mid: math.ceil(m.size / self.params.packet_payload) for m in messages
        }
        finish_ticks: dict = {}

        tick = 0
        while len(finish_ticks) < len(messages):
            if tick > self.max_ticks:
                raise SimulationError(
                    f"packet simulation exceeded {self.max_ticks} ticks "
                    f"({len(messages) - len(finish_ticks)} messages unfinished)"
                )
            # 1) every link transmits its head packet (snapshot heads first
            #    so a packet moved this tick is not re-transmitted this tick).
            moves: list[tuple[int, Packet]] = []
            for g, f in fifos.items():
                if not f.empty:
                    moves.append((g, f.peek()))
            for g, pkt in moves:
                if pkt.hop + 1 >= len(pkt.path):
                    fifos[g].pop()
                    pkt.hop += 1
                    undelivered[pkt.mid] -= 1
                    if undelivered[pkt.mid] == 0 and pending[pkt.mid][0] == 0:
                        finish_ticks[pkt.mid] = tick + 1
                else:
                    nxt = fifo(pkt.path[pkt.hop + 1])
                    if not nxt.full:
                        fifos[g].pop()
                        pkt.hop += 1
                        nxt.push(pkt)
                    # else: backpressure stall; retry next tick
            # 2) sources inject one packet per message per tick.  The
            # injection order rotates each tick so messages sharing a full
            # first-link FIFO alternate instead of the dict-first message
            # monopolising the freed slot (round-robin send-unit
            # arbitration).
            mids = list(pending.keys())
            offset = tick % len(mids) if mids else 0
            for mid in mids[offset:] + mids[:offset]:
                state = pending[mid]
                if state[0] > 0 and tick >= inject_at[mid]:
                    first = fifo(paths[mid][0])
                    if not first.full:
                        first.push(Packet(mid=mid, seq=state[1], path=paths[mid]))
                        state[0] -= 1
                        state[1] += 1
            tick += 1

        return PacketSimResult(
            finish_times={mid: t * self.tick_seconds for mid, t in finish_ticks.items()},
            ticks=tick,
            tick_seconds=self.tick_seconds,
        )
