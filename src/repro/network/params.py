"""Calibrated network and endpoint constants.

The Mira numbers come from two sources:

* **Hardware specs quoted in the paper** — 2 GB/s raw per torus link per
  direction, ~90% (1.8 GB/s) available to user payload after packet and
  protocol overheads; 2 GB/s bridge→I/O-node links; 128-node psets with
  two bridge nodes each.

* **Calibration against the paper's measurements** — the paper's Figure 5
  shows a *single deterministic path* saturating at ~1.6 GB/s
  (``stream_cap``), a direct-vs-proxy crossover at 256 KB for k = 4
  proxies, and Figure 6 a crossover at 512 KB for k = 3.  With the
  store-and-forward proxy model (two sequential hops of ``d/k`` each),
  the crossover condition is ``d* (1 - 2/k) / stream_cap = o_msg +
  o_fwd`` (see :mod:`repro.core.model`), so the pair of observed
  crossovers pins ``o_msg + o_fwd ≈ 81.5 µs``.  We split this into a small
  per-message initiation cost and a dominant store-and-forward turnaround
  (completion detection + re-injection at the proxy), which is where the
  time actually goes in an ``MPI_Put``-based relay.

EXPERIMENTS.md records how each constant maps onto reproduced figures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import gbps, MiB
from repro.util.validation import check_positive, check_non_negative


@dataclass(frozen=True)
class NetworkParams:
    """All tunable constants of the simulated machine.

    Attributes:
        link_bw: user-payload capacity of one torus link direction [B/s].
        stream_cap: maximum rate of a single message stream [B/s] — the
            per-path protocol ceiling observed in the paper (1.6 GB/s).
        io_link_bw: bridge-node → I/O-node (11th) link capacity [B/s].
        ion_storage_bw: capacity from one I/O node toward the storage /
            analysis fabric [B/s].  Experiments write to ``/dev/null`` on
            the ION (as in the paper), so this is high and rarely binding.
        o_msg: fixed per-message initiation overhead (inject + match) [s].
        o_fwd: store-and-forward turnaround at an intermediate node
            (detect completion, re-inject) [s].
        mem_bw: node memory-copy bandwidth [B/s]; bounds local (same-node)
            data movement and staging copies.
        packet_payload: user payload per network packet [B] (packet-level
            simulator granularity).
        reception_fifos: reception FIFOs drained per node per packet time
            (BG/Q places incoming packets of one stream in one reception
            FIFO; the MU has enough FIFOs to saturate all links).
    """

    link_bw: float = gbps(1.8)
    stream_cap: float = gbps(1.6)
    io_link_bw: float = gbps(2.0)
    ion_storage_bw: float = gbps(64.0)
    o_msg: float = 7e-6
    o_fwd: float = 74.5e-6
    mem_bw: float = gbps(28.0)
    packet_payload: int = 512
    reception_fifos: int = 11
    cb_buffer_size: int = 16 * MiB

    def __post_init__(self):
        check_positive("link_bw", self.link_bw)
        check_positive("stream_cap", self.stream_cap)
        check_positive("io_link_bw", self.io_link_bw)
        check_positive("ion_storage_bw", self.ion_storage_bw)
        check_non_negative("o_msg", self.o_msg)
        check_non_negative("o_fwd", self.o_fwd)
        check_positive("mem_bw", self.mem_bw)
        check_positive("packet_payload", self.packet_payload)
        check_positive("reception_fifos", self.reception_fifos)
        check_positive("cb_buffer_size", self.cb_buffer_size)

    def with_(self, **kwargs) -> "NetworkParams":
        """A copy with selected fields replaced (ablation convenience)."""
        return replace(self, **kwargs)


#: The calibrated Mira instance used by all paper-reproduction benchmarks.
MIRA_PARAMS = NetworkParams()
