"""Link utilisation statistics over a simulation run.

The paper's argument is about *resource utilisation*: sparse patterns
leave most links idle under single-path routing, and proxies recruit
them.  These helpers quantify that — tests assert, for example, that the
proxy scheme strictly increases the number of busy links and lowers the
maximum per-link load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.network.flowsim import FlowSimResult
from repro.util.validation import ConfigError


@dataclass(frozen=True)
class LinkStats:
    """Aggregate link-level statistics of one run.

    Attributes:
        busy_links: number of links that carried any payload.
        total_bytes: sum of bytes over all links (counts each traversal).
        max_bytes: bytes over the most-loaded link.
        mean_bytes: mean bytes over busy links.
        max_utilization: most-loaded link's bytes / (capacity * makespan).
        imbalance: max over busy links divided by mean (1.0 = perfectly
            balanced).
    """

    busy_links: int
    total_bytes: float
    max_bytes: float
    mean_bytes: float
    max_utilization: float
    imbalance: float


def summarize_links(
    result: FlowSimResult,
    capacities: "Mapping[int, float] | Callable[[int], float]",
) -> LinkStats:
    """Compute :class:`LinkStats` from a :class:`FlowSimResult`."""
    if isinstance(capacities, Mapping):
        cap_of = capacities.__getitem__
    elif callable(capacities):
        cap_of = capacities
    else:
        raise ConfigError("capacities must be a mapping or callable")

    if not result.link_bytes:
        return LinkStats(0, 0.0, 0.0, 0.0, 0.0, 1.0)
    loads = np.fromiter(
        result.link_bytes.values(), dtype=np.float64, count=len(result.link_bytes)
    )
    max_bytes = float(loads.max())
    # Utilisation is a max over *all* busy links (the most-loaded-by-bytes
    # link need not be the most utilised one when capacities differ).
    # Zero-capacity links (hard faults) and a zero makespan (all-empty
    # flows) carry no defined utilisation — they contribute 0.0 rather
    # than dividing by zero.
    max_util = 0.0
    if result.makespan > 0:
        caps = np.fromiter(
            (cap_of(link) for link in result.link_bytes),
            dtype=np.float64,
            count=len(result.link_bytes),
        )
        util = np.divide(
            loads, caps * result.makespan, out=np.zeros_like(loads), where=caps > 0
        )
        max_util = float(util.max())
    mean = float(loads.mean())
    return LinkStats(
        busy_links=len(loads),
        total_bytes=float(loads.sum()),
        max_bytes=max_bytes,
        mean_bytes=mean,
        max_utilization=max_util,
        imbalance=max_bytes / mean if mean > 0 else 1.0,
    )
