"""Timeline traces of simulation runs.

Converts a :class:`~repro.network.flowsim.FlowSimResult` into portable
records — per-flow timelines with tags, a Gantt-style text chart, and
JSON/CSV export — so runs can be inspected, diffed, or fed to external
plotting without rerunning the simulator.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass

from repro.network.flowsim import FlowSimResult
from repro.util.units import format_time
from repro.util.validation import ConfigError


@dataclass(frozen=True)
class TraceRecord:
    """One flow's timeline entry."""

    fid: str
    size: float
    start: float
    finish: float
    mean_rate: float
    tag: str


def build_trace(result: FlowSimResult) -> list[TraceRecord]:
    """Flatten a result into records sorted by start time."""
    records = []
    for r in result.results.values():
        records.append(
            TraceRecord(
                fid=str(r.fid),
                size=float(r.size),
                start=float(r.start),
                finish=float(r.finish),
                mean_rate=float(r.mean_rate) if r.duration > 0 else 0.0,
                tag="" if r.tag is None else str(r.tag),
            )
        )
    return sorted(records, key=lambda x: (x.start, x.finish, x.fid))


def trace_json(result: FlowSimResult, *, indent: int = 2) -> str:
    """The trace as a JSON document (records + makespan)."""
    payload = {
        "makespan": result.makespan,
        "total_bytes": result.total_bytes(),
        "flows": [asdict(r) for r in build_trace(result)],
    }
    return json.dumps(payload, indent=indent)


def trace_csv(result: FlowSimResult) -> str:
    """The trace as CSV text (one row per flow)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["fid", "size", "start", "finish", "mean_rate", "tag"])
    for r in build_trace(result):
        writer.writerow([r.fid, r.size, r.start, r.finish, r.mean_rate, r.tag])
    return buf.getvalue()


def gantt(result: FlowSimResult, *, width: int = 60, max_rows: int = 40) -> str:
    """An ASCII Gantt chart of (up to ``max_rows``) flow timelines.

    Zero-byte join events are skipped; rows are labelled with the flow id
    and aligned to a shared time axis.
    """
    if width < 10:
        raise ConfigError(f"width must be >= 10, got {width}")
    records = [r for r in build_trace(result) if r.size > 0]
    if not records:
        return "(no data flows)"
    span = max(result.makespan, 1e-30)
    shown = records[:max_rows]
    label_w = min(24, max(len(r.fid) for r in shown))
    lines = []
    for r in shown:
        lo = int(width * r.start / span)
        hi = max(lo + 1, int(width * r.finish / span))
        bar = " " * lo + "=" * (hi - lo) + " " * (width - hi)
        lines.append(f"{r.fid[:label_w]:>{label_w}} |{bar}|")
    if len(records) > max_rows:
        lines.append(f"... {len(records) - max_rows} more flows")
    lines.append(f"{'':>{label_w}}  0{'':{width - 10}}{format_time(span):>8}")
    return "\n".join(lines)
