"""Unified observability: structured tracing, metrics, and trace export.

Three pieces, designed to be wired once and consumed everywhere:

* :mod:`repro.obs.trace` — hierarchical span tracer (plan →
  proxy-select → transfer-round → flow) with a process-wide registry, a
  zero-overhead null tracer, and JSONL / Chrome ``trace_event``
  exporters (open the latter in Perfetto or ``chrome://tracing``);
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  and a :class:`~repro.obs.metrics.TimeSeriesProbe` sampled *inside*
  the fluid simulator's event loop at fixed simulated-time intervals;
* :mod:`repro.obs.report` — text summary (hottest links, span time
  breakdown, resilience counters).

See ``docs/OBSERVABILITY.md`` for the full API and trace formats.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProbeSample,
    TimeSeriesProbe,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.report import render_report
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    export_chrome,
    export_jsonl,
    get_tracer,
    set_tracer,
    traced,
    use_tracer,
    validate_well_nested,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeSample",
    "TimeSeriesProbe",
    "get_registry",
    "set_registry",
    "use_registry",
    "render_report",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "export_chrome",
    "export_jsonl",
    "get_tracer",
    "set_tracer",
    "traced",
    "use_tracer",
    "validate_well_nested",
]
