"""Time-series metrics: counters, gauges, histograms, and a sim-time probe.

Complements :mod:`repro.obs.trace`'s spans with *aggregates*: a
process-wide :class:`MetricsRegistry` of named counters/gauges/fixed-
bucket histograms, and a :class:`TimeSeriesProbe` the fluid simulator
drives **inside its event loop** — sampling per-link rate and
utilisation, per-link queue depth (active flows crossing the link) and
cumulative delivered bytes at a fixed simulated-time interval.  Because
samples are taken mid-run rather than post-hoc, transient dynamics such
as a :class:`~repro.network.flowsim.CapacityEvent` capacity dip are
visible in the series, not averaged away.

Between simulator events the fluid model's rates are constant, so the
probe is exact: it prices one per-link aggregation per *window that
contains a tick*, never per event, keeping the disabled path (no probe)
free and the enabled path cheap.
"""

from __future__ import annotations

import contextlib
import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.util.validation import ConfigError

#: Default histogram buckets: decades from 1 µs to 1000 s (seconds).
DEFAULT_TIME_BUCKETS = tuple(10.0 ** e for e in range(-6, 4))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise ConfigError(f"counter {self.name!r}: increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """A value that can move both ways (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        """Set the gauge to ``v``."""
        self.value = float(v)


class Histogram:
    """Fixed-bucket histogram (cumulative-free, one count per bucket).

    ``buckets`` are upper bounds; observations above the last bound land
    in the overflow bucket (``counts[-1]``).
    """

    __slots__ = ("name", "buckets", "counts", "total", "sum")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigError(f"histogram {name!r}: buckets must be non-empty")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError(f"histogram {name!r}: buckets must be strictly increasing")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, v: float) -> None:
        """Count one finite observation into its bucket."""
        if not math.isfinite(v):
            raise ConfigError(f"histogram {self.name!r}: observation must be finite, got {v}")
        i = 0
        for i, b in enumerate(self.buckets):  # noqa: B007 - short fixed lists
            if v <= b:
                break
        else:
            i = len(self.buckets)
        self.counts[i] += 1
        self.total += 1
        self.sum += v

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0


class MetricsRegistry:
    """Named metrics for one process (or one run).

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same instrument thereafter; a name may hold only one kind.
    """

    def __init__(self):
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}

    def _get(self, name: str, kind, *args):
        m = self._metrics.get(name)
        if m is None:
            m = kind(name, *args)
            self._metrics[name] = m
        elif not isinstance(m, kind):
            raise ConfigError(
                f"metric {name!r} already registered as {type(m).__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(name, Histogram, buckets)

    def snapshot(self) -> dict:
        """All metric values as a plain JSON-ready dict."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, m in sorted(self._metrics.items()):
            if isinstance(m, Counter):
                out["counters"][name] = m.value
            elif isinstance(m, Gauge):
                out["gauges"][name] = m.value
            else:
                out["histograms"][name] = {
                    "buckets": list(m.buckets),
                    "counts": list(m.counts),
                    "total": m.total,
                    "sum": m.sum,
                    "mean": m.mean,
                }
        return out

    def to_json(self, *, indent: int = 2) -> str:
        """The snapshot serialised as JSON text."""
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        """Drop every registered metric."""
        self._metrics.clear()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def set_registry(registry: "MetricsRegistry | None") -> MetricsRegistry:
    """Install ``registry`` process-wide (``None`` installs a fresh one)."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return _registry


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry):
    """Temporarily install ``registry`` (restores the previous on exit)."""
    prev = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(prev)


def counter_violations(
    before: Mapping[str, float], after: Mapping[str, float]
) -> list[str]:
    """Counters that moved *backwards* between two snapshots.

    Counters are monotone by contract (:meth:`Counter.inc` rejects
    negative increments), so any name whose value decreased — or that
    vanished entirely — between ``before`` and ``after`` (the
    ``"counters"`` sections of two :meth:`MetricsRegistry.snapshot`
    calls) marks a broken instrument or a mid-run registry reset.
    Returns the offending names, sorted; empty means monotone.
    """
    bad = []
    for name, v in before.items():
        w = after.get(name)
        if w is None or w < v:
            bad.append(name)
    return sorted(bad)


# -- time-series probe --------------------------------------------------------


@dataclass(frozen=True)
class ProbeSample:
    """One instant of simulator state.

    ``t`` is absolute simulated time (rebased across resilience rounds);
    link keys are *global* directed link ids.
    """

    t: float
    active_flows: int
    delivered_bytes: float
    link_rate: Mapping[int, float]
    link_util: Mapping[int, float]
    queue_depth: Mapping[int, int]


@dataclass
class TimeSeriesProbe:
    """Samples simulator state on a fixed simulated-time grid.

    Args:
        interval: simulated seconds between samples (> 0).
        links: optional link-id filter; when given, only these links'
            series are recorded (queue depth / rate / utilisation).
        max_samples: storage cap — a stalled flow can stretch simulated
            time by orders of magnitude, so past the cap further ticks
            are counted in ``n_dropped`` rather than stored.

    The simulator calls :meth:`rebase` once per run (resilience rounds
    pass their absolute start time so the series stays monotone across
    rounds) and :meth:`record_window` for each constant-rate window that
    contains a grid tick.
    """

    interval: float
    links: "frozenset[int] | None" = None
    max_samples: int = 20_000
    samples: list[ProbeSample] = field(default_factory=list)
    n_dropped: int = 0
    _offset: float = 0.0
    _next: float = 0.0  # absolute time of the next tick

    def __post_init__(self):
        if self.interval <= 0:
            raise ConfigError(f"interval must be > 0, got {self.interval}")
        if self.max_samples < 1:
            raise ConfigError(f"max_samples must be >= 1, got {self.max_samples}")
        if self.links is not None:
            self.links = frozenset(self.links)

    # -- simulator-facing ----------------------------------------------------

    def rebase(self, t0: float) -> None:
        """Start a run whose local time 0 is absolute time ``t0``."""
        if t0 < 0:
            raise ConfigError(f"t0 must be >= 0, got {t0}")
        self._offset = float(t0)
        if self._next < t0:
            # Snap the grid forward to the first tick inside the new run.
            n = math.ceil((t0 - self._next) / self.interval)
            self._next += n * self.interval

    def due(self, t1_local: float) -> bool:
        """Does the window ending at local time ``t1_local`` contain a tick?"""
        return self._next < self._offset + t1_local

    def record_window(
        self,
        t0_local: float,
        t1_local: float,
        link_rate: Mapping[int, float],
        link_util: Mapping[int, float],
        queue_depth: Mapping[int, int],
        active_flows: int,
        delivered_bytes: float,
    ) -> None:
        """Record every grid tick inside local window ``[t0, t1)``.

        Rates are constant inside a window, so all ticks in it share one
        aggregation (the caller computes it once).
        """
        t1 = self._offset + t1_local
        if self.links is not None:
            link_rate = {g: v for g, v in link_rate.items() if g in self.links}
            link_util = {g: v for g, v in link_util.items() if g in self.links}
            queue_depth = {g: v for g, v in queue_depth.items() if g in self.links}
        while self._next < t1 - 1e-18 and len(self.samples) < self.max_samples:
            self.samples.append(
                ProbeSample(
                    t=self._next,
                    active_flows=active_flows,
                    delivered_bytes=delivered_bytes,
                    link_rate=dict(link_rate),
                    link_util=dict(link_util),
                    queue_depth=dict(queue_depth),
                )
            )
            self._next += self.interval
        if self._next < t1 - 1e-18:
            # Saturated: count the remaining ticks arithmetically instead
            # of looping — a stalled flow (STALL_RATE clamp) can stretch a
            # single window across ~1e10 grid ticks.
            n = math.ceil((t1 - 1e-18 - self._next) / self.interval)
            self.n_dropped += n
            self._next += n * self.interval

    def record_window_dense(
        self,
        t0_local: float,
        t1_local: float,
        link_ids,
        rate,
        util,
        depth,
        active_flows: int,
        delivered_bytes: float,
    ) -> None:
        """Array-shaped variant of :meth:`record_window`.

        The vectorized simulator hands its incremental per-link state
        straight over — ``link_ids`` is an array of global link ids and
        ``rate``/``util``/``depth`` are aligned value arrays — so the
        dict materialisation happens here, only for windows that contain
        a grid tick, and only for the links that pass the filter.
        """
        if self.links is not None:
            keep = [j for j, g in enumerate(link_ids) if int(g) in self.links]
        else:
            keep = range(len(link_ids))
        link_rate: dict[int, float] = {}
        link_util: dict[int, float] = {}
        queue_depth: dict[int, int] = {}
        for j in keep:
            g = int(link_ids[j])
            link_rate[g] = float(rate[j])
            link_util[g] = float(util[j])
            queue_depth[g] = int(depth[j])
        self.record_window(
            t0_local, t1_local, link_rate, link_util, queue_depth,
            active_flows, delivered_bytes,
        )

    def record_final(self, t_local: float, delivered_bytes: float) -> None:
        """Close a run's series with an all-idle sample at its makespan."""
        t = self._offset + t_local
        last = self.samples[-1].t if self.samples else -math.inf
        if t <= last or len(self.samples) >= self.max_samples:
            return
        self.samples.append(
            ProbeSample(
                t=t,
                active_flows=0,
                delivered_bytes=delivered_bytes,
                link_rate={},
                link_util={},
                queue_depth={},
            )
        )

    # -- analysis ------------------------------------------------------------

    def times(self) -> list[float]:
        """Absolute simulated time of every stored sample."""
        return [s.t for s in self.samples]

    def series(self, link: int, field_: str = "link_rate") -> list[float]:
        """One link's sampled series (``link_rate``/``link_util``/``queue_depth``)."""
        if field_ not in ("link_rate", "link_util", "queue_depth"):
            raise ConfigError(f"unknown probe field {field_!r}")
        return [getattr(s, field_).get(link, 0.0) for s in self.samples]

    def hottest_links(self, top: int = 10) -> list[tuple[int, float]]:
        """Links ranked by mean sampled rate: ``(link, mean rate B/s)``."""
        if top < 0:
            raise ConfigError(f"top must be >= 0, got {top}")
        if not self.samples:
            return []
        acc: dict[int, float] = {}
        for s in self.samples:
            for g, r in s.link_rate.items():
                acc[g] = acc.get(g, 0.0) + r
        n = len(self.samples)
        return sorted(
            ((g, total / n) for g, total in acc.items()), key=lambda kv: -kv[1]
        )[:top]

    def reset(self) -> None:
        """Drop all samples and restart the grid at time zero."""
        self.samples.clear()
        self.n_dropped = 0
        self._offset = 0.0
        self._next = 0.0
