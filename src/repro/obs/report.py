"""Human-readable summaries of one traced run.

:func:`render_report` folds the three observability sources — span
tracer, metrics registry, time-series probe — into a text report: where
wall time went (span breakdown), where bytes went (top-N hottest links
with peak utilisation), and what the resilience layer did (retry/
failover counters).  The CLI prints it after ``repro trace``.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, TimeSeriesProbe
from repro.obs.trace import NullTracer, Tracer
from repro.util.units import format_bytes, format_rate


def span_breakdown_lines(tracer: "Tracer | NullTracer", *, top: int = 12) -> list[str]:
    """Span names ranked by total wall/sim duration."""
    rows = sorted(
        tracer.breakdown().items(), key=lambda kv: -kv[1]["total_s"]
    )[:top] if tracer.enabled else []
    if not rows:
        return ["  (no spans recorded)"]
    width = max(len(name) for name, _ in rows)
    return [
        f"  {name:<{width}}  x{int(rec['count']):<5d} {rec['total_s'] * 1e3:10.3f} ms"
        for name, rec in rows
    ]


def hottest_links_lines(probe: TimeSeriesProbe, *, top: int = 10) -> list[str]:
    """Top links by mean sampled rate, with their peak utilisation."""
    hot = probe.hottest_links(top)
    if not hot:
        return ["  (no samples)"]
    peak_util: dict[int, float] = {}
    for s in probe.samples:
        for g, u in s.link_util.items():
            if u > peak_util.get(g, 0.0):
                peak_util[g] = u
    return [
        f"  link {g:>6}  mean {format_rate(rate):>12}  peak util {peak_util.get(g, 0.0):6.1%}"
        for g, rate in hot
    ]


def counter_lines(registry: MetricsRegistry, *, prefix: str = "") -> list[str]:
    """All counters (optionally filtered by name prefix), one per line."""
    snap = registry.snapshot()["counters"]
    rows = [(k, v) for k, v in snap.items() if k.startswith(prefix)]
    if not rows:
        return [f"  (no counters{' under ' + prefix if prefix else ''})"]
    width = max(len(k) for k, _ in rows)
    out = []
    for k, v in rows:
        shown = format_bytes(v) if k.endswith("bytes") else f"{v:g}"
        out.append(f"  {k:<{width}}  {shown}")
    return out


def render_report(
    *,
    tracer: "Tracer | NullTracer | None" = None,
    registry: "MetricsRegistry | None" = None,
    probe: "TimeSeriesProbe | None" = None,
    top: int = 10,
) -> str:
    """The full text report (sections for whichever sources are given)."""
    lines: list[str] = ["observability report", "===================="]
    if probe is not None:
        n = len(probe.samples)
        span = (
            f"{probe.samples[0].t:.6f}s .. {probe.samples[-1].t:.6f}s" if n else "empty"
        )
        lines.append(f"time series: {n} samples ({span}, every {probe.interval:g}s)")
        lines.append(f"hottest links (top {top}):")
        lines.extend(hottest_links_lines(probe, top=top))
    if tracer is not None:
        lines.append("span time breakdown:")
        lines.extend(span_breakdown_lines(tracer, top=top))
    if registry is not None:
        lines.append("counters:")
        lines.extend(counter_lines(registry))
    return "\n".join(lines)
