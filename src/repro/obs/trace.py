"""Structured span tracing for planner, simulator and resilience layers.

The paper's claims are about *where bytes flow and when*; this module
turns a run into an inspectable timeline instead of a post-hoc summary.
A :class:`Tracer` collects **hierarchical spans** — plan → proxy-select →
transfer-round → flow — each carrying free-form attributes (bytes, k,
path ids, fault events).  Two clock domains coexist:

* ``wall`` spans time the *library* (planning cost, simulation cost) on
  the process clock, opened and closed by the context-manager API;
* ``sim`` spans time the *machine* (flow activity, rounds) in simulated
  seconds and are recorded post-hoc via :meth:`Tracer.record`, because
  the fluid simulator knows their boundaries exactly.

A process-wide registry (:func:`get_tracer` / :func:`set_tracer`) lets
deep layers emit spans without threading a tracer through every call;
the default :data:`NULL_TRACER` makes every emission a no-op so the
disabled path adds no measurable overhead (see
``benchmarks/bench_simulator_perf.py`` and ``docs/OBSERVABILITY.md``).

Exporters produce JSONL (one span per line, grep/pandas friendly) and
the Chrome ``trace_event`` format loadable in Perfetto or
``chrome://tracing``; the Chrome exporter also renders
:class:`~repro.obs.metrics.TimeSeriesProbe` samples as counter tracks,
so mid-run effects like a CapacityEvent capacity dip are visible as a
per-link utilisation time series.
"""

from __future__ import annotations

import contextlib
import functools
import io
import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.util.validation import ConfigError

#: Clock domain of spans opened by the context-manager API.
WALL = "wall"
#: Clock domain of spans recorded from simulated time.
SIM = "sim"


@dataclass
class Span:
    """One timed operation, possibly with children.

    ``t0``/``t1`` are seconds in the span's clock ``domain``: offsets
    from the tracer's epoch for ``wall`` spans, absolute simulated time
    for ``sim`` spans.  ``t1`` is ``None`` while the span is open.
    """

    name: str
    domain: str
    t0: float
    t1: "float | None" = None
    cat: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self


class _NullSpan:
    """Inert span handed out by the :class:`NullTracer`."""

    __slots__ = ()
    name = ""
    domain = WALL
    t0 = 0.0
    t1 = 0.0
    cat = ""
    duration = 0.0

    @property
    def attrs(self) -> dict:
        return {}

    @property
    def children(self) -> list:
        return []

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span`` returns a shared inert object usable both as a context
    manager and as a span (``.set`` accepted and discarded), so
    instrumented code needs no ``if enabled`` branches.
    """

    enabled = False
    roots: tuple = ()
    n_dropped = 0

    def span(self, name: str, *, cat: str = "", **attrs: Any) -> _NullSpan:
        """Hand out the shared inert span."""
        return _NULL_SPAN

    def record(self, name, t0, t1, *, cat="", domain=SIM, parent=None, **attrs) -> None:
        """Discard the span."""
        return None

    def current(self) -> None:
        """There is never an open span."""
        return None

    def iter_spans(self) -> Iterator[Span]:
        """Nothing is ever stored."""
        return iter(())

    def clear(self) -> None:
        """Nothing to clear."""
        return None


class _OpenSpan:
    """Context manager binding one wall span to the tracer stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def set(self, **attrs: Any) -> Span:
        return self.span.set(**attrs)

    def __enter__(self) -> Span:
        self._tracer._stack.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self.span.t1 = self._tracer._now()
        popped = self._tracer._stack.pop()
        if popped is not self.span:  # pragma: no cover - stack discipline
            raise ConfigError("span stack corrupted: exited a non-innermost span")


class Tracer:
    """Collects a forest of spans for one process (or one run).

    Args:
        clock: wall-clock source (seconds; monotonic preferred).
        max_spans: hard cap on stored spans; further emissions are
            counted in ``n_dropped`` instead of stored, so a runaway
            loop cannot exhaust memory.
        max_flow_spans: cap on per-flow ``sim`` spans one simulator run
            may record (flows beyond it still simulate, they are just
            not individually traced).
    """

    enabled = True

    def __init__(
        self,
        *,
        clock=time.perf_counter,
        max_spans: int = 200_000,
        max_flow_spans: int = 2000,
    ):
        if max_spans < 1:
            raise ConfigError(f"max_spans must be >= 1, got {max_spans}")
        if max_flow_spans < 0:
            raise ConfigError(f"max_flow_spans must be >= 0, got {max_flow_spans}")
        self._clock = clock
        self._epoch = clock()
        self.max_spans = max_spans
        self.max_flow_spans = max_flow_spans
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._n_spans = 0
        self.n_dropped = 0

    # -- time ----------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    # -- emission ------------------------------------------------------------

    def _attach(self, span: Span, parent: "Span | None" = None) -> "Span | None":
        if self._n_spans >= self.max_spans:
            self.n_dropped += 1
            return None
        self._n_spans += 1
        if parent is not None:
            parent.children.append(span)
        elif self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def span(self, name: str, *, cat: str = "", **attrs: Any):
        """Open a wall-clock span as a context manager.

        The span nests under the innermost open span.  Attributes may be
        given up front or attached later via ``Span.set`` inside the
        ``with`` block.
        """
        span = Span(name=name, domain=WALL, t0=self._now(), cat=cat, attrs=dict(attrs))
        if self._attach(span) is None:
            return _NULL_SPAN
        return _OpenSpan(self, span)

    def record(
        self,
        name: str,
        t0: float,
        t1: float,
        *,
        cat: str = "",
        domain: str = SIM,
        parent: "Span | None" = None,
        **attrs: Any,
    ) -> "Span | None":
        """Record an already-completed span (simulated-time events).

        Nests under ``parent`` when given, else under the innermost
        *open* wall span — so sim-domain flow and round spans hang off
        the operation that produced them.
        """
        if t1 < t0:
            raise ConfigError(f"span {name!r}: t1 {t1} precedes t0 {t0}")
        span = Span(name=name, domain=domain, t0=float(t0), t1=float(t1), cat=cat, attrs=dict(attrs))
        return self._attach(span, parent)

    def current(self) -> "Span | None":
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- inspection ----------------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        """All stored spans, depth-first, parents before children."""
        stack = list(reversed(self.roots))
        while stack:
            s = stack.pop()
            yield s
            stack.extend(reversed(s.children))

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Total duration and count per span name (closed spans only)."""
        out: dict[str, dict[str, float]] = {}
        for s in self.iter_spans():
            if s.t1 is None:
                continue
            rec = out.setdefault(s.name, {"count": 0, "total_s": 0.0})
            rec["count"] += 1
            rec["total_s"] += s.duration
        return out

    def clear(self) -> None:
        """Drop all stored spans (open spans on the stack are kept)."""
        self.roots.clear()
        self._n_spans = len(self._stack)
        self.n_dropped = 0


#: The process-wide disabled tracer (zero overhead).
NULL_TRACER = NullTracer()
_tracer: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The process-wide tracer (the null tracer unless one was set)."""
    return _tracer


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install ``tracer`` process-wide (``None`` restores the null tracer)."""
    global _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return _tracer


@contextlib.contextmanager
def use_tracer(tracer: "Tracer | NullTracer"):
    """Temporarily install ``tracer`` (restores the previous one on exit)."""
    prev = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(prev)


def traced(name: "str | None" = None, *, cat: str = ""):
    """Decorator: run the function inside a wall span on the global tracer."""

    def deco(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with get_tracer().span(span_name, cat=cat):
                return fn(*args, **kwargs)

        return wrapper

    return deco


# -- validation ---------------------------------------------------------------


def validate_well_nested(spans: Iterable[Span], *, tol: float = 1e-9) -> int:
    """Assert every closed span's children lie within it and share its
    domain's monotonicity; returns the number of spans checked.

    Raises :class:`~repro.util.validation.ConfigError` on the first
    violation — used by tests and the CI trace smoke check.
    """
    n = 0
    stack = [(None, s) for s in spans]
    while stack:
        parent, s = stack.pop()
        n += 1
        if s.t1 is not None and s.t1 < s.t0 - tol:
            raise ConfigError(f"span {s.name!r}: negative duration ({s.t0} -> {s.t1})")
        if parent is not None and parent.t1 is not None and parent.domain == s.domain:
            if s.t0 < parent.t0 - tol or (s.t1 is not None and s.t1 > parent.t1 + tol):
                raise ConfigError(
                    f"span {s.name!r} [{s.t0}, {s.t1}] escapes parent "
                    f"{parent.name!r} [{parent.t0}, {parent.t1}]"
                )
        stack.extend((s, c) for c in s.children)
    return n


# -- exporters ----------------------------------------------------------------


def _span_dict(span: Span, parent_id: "int | None", sid: int) -> dict:
    return {
        "id": sid,
        "parent": parent_id,
        "name": span.name,
        "cat": span.cat,
        "domain": span.domain,
        "t0": span.t0,
        "t1": span.t1,
        "attrs": span.attrs,
    }


def export_jsonl(tracer: "Tracer | NullTracer", out=None) -> str:
    """Serialise all spans as JSON Lines (one span per line, ``parent``
    linking by id).  Writes to ``out`` (a path or file object) when
    given; always returns the text.
    """
    buf = io.StringIO()
    sid = 0
    stack = [(None, s) for s in reversed(list(tracer.roots))]
    while stack:
        parent_id, s = stack.pop()
        sid += 1
        buf.write(json.dumps(_span_dict(s, parent_id, sid), default=str) + "\n")
        stack.extend((sid, c) for c in reversed(s.children))
    text = buf.getvalue()
    _write_out(out, text)
    return text


def _write_out(out, text: str) -> None:
    if out is None:
        return
    if hasattr(out, "write"):
        out.write(text)
    else:
        # Atomic replace: a run killed mid-export never leaves a torn
        # trace file behind (see repro.util.atomicio).
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(out, text, durable=False)


def export_chrome(
    tracer: "Tracer | NullTracer",
    out=None,
    *,
    probe=None,
    top_links: int = 16,
    indent: "int | None" = None,
) -> str:
    """Serialise spans (and optionally probe samples) as a Chrome
    ``trace_event`` JSON document, loadable in Perfetto.

    Wall spans land on pid 0 ("wall clock"), sim spans on pid 1
    ("simulated time"); all timestamps are microseconds.  When a
    :class:`~repro.obs.metrics.TimeSeriesProbe` is given, its samples
    become counter (``"ph": "C"``) tracks on the sim timeline: per-link
    rate for the ``top_links`` hottest links, aggregate goodput, active
    flows, and per-link queue depth — a capacity dip shows up as a
    visible trough in the affected link's rate track.
    """
    if top_links < 0:
        raise ConfigError(f"top_links must be >= 0, got {top_links}")
    events: list[dict] = [
        {"ph": "M", "pid": 0, "name": "process_name", "args": {"name": "wall clock"}},
        {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "simulated time"}},
    ]
    for s in tracer.iter_spans():
        if s.t1 is None:
            continue
        pid = 0 if s.domain == WALL else 1
        events.append(
            {
                "name": s.name,
                "cat": s.cat or s.domain,
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": s.t0 * 1e6,
                "dur": max(s.duration, 0.0) * 1e6,
                "args": {k: _jsonable(v) for k, v in s.attrs.items()},
            }
        )
    if probe is not None and probe.samples:
        events.extend(_probe_counter_events(probe, top_links))
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    text = json.dumps(doc, indent=indent, default=str)
    _write_out(out, text)
    return text


def _jsonable(v):
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


def _probe_counter_events(probe, top_links: int) -> list[dict]:
    """Counter tracks from probe samples (hottest links by peak rate)."""
    peak: dict[int, float] = {}
    for s in probe.samples:
        for g, r in s.link_rate.items():
            if r > peak.get(g, 0.0):
                peak[g] = r
    hot = sorted(peak, key=lambda g: -peak[g])[:top_links]
    events: list[dict] = []
    for s in probe.samples:
        ts = s.t * 1e6
        events.append(
            {
                "name": "goodput",
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": ts,
                "args": {"delivered_GB": s.delivered_bytes / 1e9},
            }
        )
        events.append(
            {
                "name": "active_flows",
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": ts,
                "args": {"flows": s.active_flows},
            }
        )
        for g in hot:
            events.append(
                {
                    "name": f"link{g}",
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "ts": ts,
                    "args": {
                        "rate_GBps": s.link_rate.get(g, 0.0) / 1e9,
                        "utilization": s.link_util.get(g, 0.0),
                        "queue_depth": s.queue_depth.get(g, 0),
                    },
                }
            )
    return events
