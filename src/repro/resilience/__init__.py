"""Fault tolerance for sparse data movement.

Closes the loop the paper's §IV-A assumes away: fault injection
(:mod:`repro.machine.faults`) → detection (:class:`HealthMonitor`) →
re-planning (:class:`ResilientPlanner`) → retried execution
(:func:`run_resilient_transfer`).
"""

from repro.resilience.executor import (
    PathAttempt,
    ResilienceTelemetry,
    ResilientOutcome,
    RetryPolicy,
    TransferAbortedError,
    run_resilient_transfer,
)
from repro.resilience.health import HealthMonitor
from repro.resilience.planner import ResilientPlanner, ResilientTransfer

__all__ = [
    "HealthMonitor",
    "PathAttempt",
    "ResilienceTelemetry",
    "ResilientOutcome",
    "ResilientPlanner",
    "ResilientTransfer",
    "RetryPolicy",
    "TransferAbortedError",
    "run_resilient_transfer",
]
