"""Fault tolerance for sparse data movement.

Closes the loop the paper's §IV-A assumes away: fault injection
(:mod:`repro.machine.faults`) → detection (:class:`HealthMonitor`) →
re-planning (:class:`ResilientPlanner`) → retried execution
(:func:`run_resilient_transfer`) — with an end-to-end integrity ledger
(:class:`TransferLedger`) proving exactly-once delivery, and a seeded
chaos-campaign harness (:func:`run_campaign`) that checks the whole
stack against machine-verifiable invariants.
"""

from repro.resilience.chaos import (
    CampaignConfig,
    ChaosRun,
    ChaosScenario,
    GEOMETRIES,
    SCENARIO_KINDS,
    run_campaign,
)
from repro.resilience.executor import (
    PathAttempt,
    ResilienceTelemetry,
    ResilientOutcome,
    RetryPolicy,
    TransferAbortedError,
    run_resilient_transfer,
)
from repro.resilience.health import (
    DEGRADED,
    DOWN,
    HEALTHY,
    PROBATION,
    HealthMonitor,
)
from repro.resilience.ledger import (
    Extent,
    IntegrityError,
    LedgerReport,
    TransferLedger,
    extent_checksum,
    group_extents,
    prefix_extents,
)
from repro.resilience.planner import ResilientPlanner, ResilientTransfer

__all__ = [
    "CampaignConfig",
    "ChaosRun",
    "ChaosScenario",
    "DEGRADED",
    "DOWN",
    "Extent",
    "GEOMETRIES",
    "HEALTHY",
    "HealthMonitor",
    "IntegrityError",
    "LedgerReport",
    "PROBATION",
    "PathAttempt",
    "ResilienceTelemetry",
    "ResilientOutcome",
    "ResilientPlanner",
    "ResilientTransfer",
    "RetryPolicy",
    "SCENARIO_KINDS",
    "TransferAbortedError",
    "TransferLedger",
    "extent_checksum",
    "group_extents",
    "prefix_extents",
    "run_campaign",
    "run_resilient_transfer",
]
