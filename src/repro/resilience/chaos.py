"""Chaos-campaign harness: seeded fault sweeps with verified invariants.

A **campaign** drives :func:`~repro.resilience.executor.run_resilient_transfer`
through a grid of ``scenario × geometry × seed`` cells.  Each cell
builds a hidden :class:`~repro.machine.faults.FaultTrace` from the
*actual* routes the planner chose (faults far from any route exercise
nothing), runs the transfer, and checks machine-verifiable invariants:

``ledger-exactly-once``
    every :class:`~repro.resilience.ledger.TransferLedger` verifies with
    no duplicate extent deliveries (and no gaps unless the run was
    budget-capped);
``byte-conservation``
    delivered + residue == requested, per transfer and in total;
``goodput-floor``
    a *completed* run's throughput stays above a configured fraction of
    the fault-free baseline (catches silent stalls);
``retries-bounded``
    retry rounds never exceed the policy's ``max_retries`` per transfer;
``budget-respected``
    no recovery activity past ``budget_s`` (round 0 is ungated — the
    budget bounds recovery, so the allowed horizon is the later of the
    budget and round 0's last deadline);
``metrics-monotone``
    every ``resilience.*``/simulator counter is monotone across the run
    (see :func:`repro.obs.metrics.counter_violations`).

Scenario kinds (:data:`SCENARIO_KINDS`):

* ``hard-down`` — one or two carrier routes go to zero mid-transfer;
* ``correlated-dim`` — every route link along one torus dimension fails
  together (a midplane-style correlated failure);
* ``flapping`` — one route's links oscillate down/up, exercising the
  health monitor's probation (half-open) re-probing;
* ``brownout`` — a window of deep capacity degradation over several
  routes, no hard failure;
* ``retry-storm`` — a second wave of failures lands *during* recovery,
  hitting the retry round mid-flight;
* ``silent-corruption`` — non-fail-stop: route links flip bits in
  transit (plus stale replays of delivered extents); nothing slows
  down, only end-to-end extent verification can notice;
* ``corrupting-proxy`` — a store-and-forward proxy's staging buffer
  corrupts everything it relays, driving strike accumulation into
  corruption quarantine and re-planning around the poisoned node.

Corruption cells additionally verify ``no-corrupt-acked`` (zero bytes
whose recorded arrival checksum mismatches the sealed truth were ever
credited) and — when the model makes a hit certain —
``corruption-detected``.

Geometries (:data:`GEOMETRIES`): ``p2p`` (one pair), ``group`` (three
disjoint pairs), ``fanin`` (three sources, one destination — the
aggregation-shaped case).

The report is plain JSON (schema ``chaos-campaign/1``) so CI can archive
it and :mod:`benchmarks.record` can consume it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.core.multipath import TransferSpec, run_transfer_many
from repro.machine import mira_system
from repro.machine.faults import FaultEvent, FaultTrace, SDCModel
from repro.machine.system import BGQSystem
from repro.obs.metrics import counter_violations, get_registry
from repro.resilience.executor import (
    ResilientOutcome,
    RetryPolicy,
    TransferAbortedError,
    run_resilient_transfer,
)
from repro.resilience.health import HealthMonitor
from repro.resilience.ledger import IntegrityError
from repro.resilience.planner import ResilientPlanner
from repro.torus.links import link_id_parts
from repro.util.validation import ConfigError

#: Scenario kinds a campaign can sweep.
SCENARIO_KINDS = (
    "hard-down",
    "correlated-dim",
    "flapping",
    "brownout",
    "retry-storm",
    "silent-corruption",
    "corrupting-proxy",
)

#: One-line operator summaries (``repro chaos --list-campaigns``).
SCENARIO_SUMMARIES = {
    "hard-down": "one or two carrier routes go to zero mid-transfer",
    "correlated-dim": "every route link along one torus dimension fails together",
    "flapping": "route links oscillate down/up, exercising probation re-probes",
    "brownout": "deep capacity degradation window, no hard failure",
    "retry-storm": "a second failure wave lands during recovery itself",
    "silent-corruption": (
        "non-fail-stop: links flip bits in transit (+ stale replays); "
        "only end-to-end verification can notice"
    ),
    "corrupting-proxy": (
        "a store-and-forward proxy corrupts everything it relays, "
        "driving corruption quarantine and re-planning"
    ),
}

#: Transfer geometries a campaign can sweep.
GEOMETRIES = ("p2p", "group", "fanin")

_MiB = 1 << 20


@dataclass(frozen=True)
class ChaosScenario:
    """One generated fault schedule, tied to the routes it targets.

    ``sdc`` is the silent-corruption model of non-fail-stop cells
    (``None`` for timing-fault cells); ``expect_detection`` is True
    when the model *guarantees* at least one corrupt arrival in round 0
    (rate-1.0 fault on a round-0 carrier), making
    ``corruption-detected`` machine-checkable rather than
    probabilistic.
    """

    kind: str
    geometry: str
    seed: int
    trace: FaultTrace
    description: str
    sdc: "SDCModel | None" = None
    expect_detection: bool = False


@dataclass
class ChaosRun:
    """Outcome and invariant verdicts of one campaign cell."""

    scenario: str
    geometry: str
    seed: int
    passed: bool
    invariants: dict[str, bool]
    failures: list[str]
    makespan: float = 0.0
    total_bytes: float = 0.0
    delivered_bytes: float = 0.0
    residue_bytes: int = 0
    goodput: float = 0.0
    rounds: int = 0
    retries: int = 0
    failovers: int = 0
    bytes_resent: int = 0
    bytes_redriven: int = 0
    partial_credit_bytes: int = 0
    replacements: int = 0
    degraded_to_direct: int = 0
    budget_exhausted: bool = False
    corrupt_extents_detected: int = 0
    corrupt_bytes_redriven: int = 0
    stale_drops: int = 0
    corrupted_acknowledged_bytes: int = 0
    quarantined_links: int = 0
    quarantined_proxies: int = 0
    error: "str | None" = None

    def to_dict(self) -> dict:
        """JSON-ready record of this run for the campaign report."""
        return {
            "scenario": self.scenario,
            "geometry": self.geometry,
            "seed": self.seed,
            "passed": self.passed,
            "invariants": dict(self.invariants),
            "failures": list(self.failures),
            "makespan_s": self.makespan,
            "total_bytes": self.total_bytes,
            "delivered_bytes": self.delivered_bytes,
            "residue_bytes": self.residue_bytes,
            "goodput_Bps": self.goodput,
            "rounds": self.rounds,
            "retries": self.retries,
            "failovers": self.failovers,
            "bytes_resent": self.bytes_resent,
            "bytes_redriven": self.bytes_redriven,
            "partial_credit_bytes": self.partial_credit_bytes,
            "replacements": self.replacements,
            "degraded_to_direct": self.degraded_to_direct,
            "budget_exhausted": self.budget_exhausted,
            "corrupt_extents_detected": self.corrupt_extents_detected,
            "corrupt_bytes_redriven": self.corrupt_bytes_redriven,
            "stale_drops": self.stale_drops,
            "corrupted_acknowledged_bytes": self.corrupted_acknowledged_bytes,
            "quarantined_links": self.quarantined_links,
            "quarantined_proxies": self.quarantined_proxies,
            "error": self.error,
        }


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one chaos campaign.

    ``budget_s`` is deliberately non-``None`` by default: a campaign
    must *always* come back with a report, so scenarios that kill every
    route degrade to a budget-capped best-effort run instead of
    raising.  ``goodput_floor`` is a fraction of each geometry's
    fault-free throughput.
    """

    nnodes: int = 128
    nbytes: int = 8 * _MiB
    seeds: tuple[int, ...] = (0,)
    scenarios: tuple[str, ...] = SCENARIO_KINDS
    geometries: tuple[str, ...] = GEOMETRIES
    max_retries: int = 3
    budget_s: float = 0.5
    reprobe_interval: float = 0.005
    avoid_failure_domains: bool = True
    goodput_floor: float = 0.02

    def __post_init__(self):
        bad = [s for s in self.scenarios if s not in SCENARIO_KINDS]
        if bad:
            raise ConfigError(f"unknown scenario kinds: {bad}")
        bad = [g for g in self.geometries if g not in GEOMETRIES]
        if bad:
            raise ConfigError(f"unknown geometries: {bad}")
        if self.nbytes < 1:
            raise ConfigError(f"nbytes must be >= 1, got {self.nbytes}")
        if self.budget_s <= 0:
            raise ConfigError(f"budget_s must be > 0, got {self.budget_s}")
        if not 0 <= self.goodput_floor < 1:
            raise ConfigError(
                f"goodput_floor must be in [0, 1), got {self.goodput_floor}"
            )

    def policy(self) -> RetryPolicy:
        """The :class:`RetryPolicy` every campaign run executes under."""
        return RetryPolicy(
            max_retries=self.max_retries,
            budget_s=self.budget_s,
            reprobe_interval=self.reprobe_interval,
            avoid_failure_domains=self.avoid_failure_domains,
        )


def geometry_specs(
    system: BGQSystem, geometry: str, nbytes: int
) -> list[TransferSpec]:
    """The transfer set of one geometry, scaled to the machine size."""
    n = system.nnodes
    far = n // 2 + n // 8 + 1  # off-axis: routes cross several dimensions
    if geometry == "p2p":
        pairs = [(0, far % n)]
    elif geometry == "group":
        pairs = [(0, far % n), (5, (far + 9) % n), (9, (far + 19) % n)]
    elif geometry == "fanin":
        dst = far % n
        pairs = [(0, dst), (5, dst), (9, dst)]
    else:
        raise ConfigError(f"unknown geometry {geometry!r}")
    pairs = [(s, d) for s, d in pairs if s != d]
    return [TransferSpec(src=s, dst=d, nbytes=nbytes) for s, d in pairs]


def _route_links(system: BGQSystem, plans) -> list[tuple[int, ...]]:
    """Per-carrier route link tuples of a fault-free plan (plus the
    direct path of every pair — retry traffic may use it)."""
    routes: list[tuple[int, ...]] = []
    for plan in plans:
        spec = plan.spec
        if plan.strategy == "proxy":
            asg = plan.assignment
            for j in range(asg.k):
                routes.append(asg.phase1[j].links + asg.phase2[j].links)
        routes.append(system.compute_path(spec.src, spec.dst).links)
    return routes


def build_scenario(
    kind: str,
    system: BGQSystem,
    plans,
    *,
    geometry: str,
    seed: int,
    rng: "random.Random | None" = None,
) -> ChaosScenario:
    """Generate one seeded fault schedule targeting the plan's routes."""
    if rng is None:
        rng = random.Random(f"{kind}:{geometry}:{seed}")
    routes = _route_links(system, plans)
    if not routes:
        raise ConfigError("plans yielded no routes to fault")
    events: list[FaultEvent] = []
    sdc: "SDCModel | None" = None
    expect_detection = False

    def round0_routes() -> list[tuple[int, ...]]:
        """Routes that carry round-0 traffic (unlike ``routes``, this
        excludes the direct path of proxy-planned pairs — a rate-1.0
        fault must hit a route that actually runs to guarantee a
        detection)."""
        out: list[tuple[int, ...]] = []
        for plan in plans:
            if plan.strategy == "proxy":
                a = plan.assignment
                out.extend(
                    a.phase1[j].links + a.phase2[j].links for j in range(a.k)
                )
            else:
                out.append(
                    system.compute_path(plan.spec.src, plan.spec.dst).links
                )
        return out

    def kill(links, *, start, end=float("inf"), factor=0.0):
        for l in sorted(set(links)):
            events.append(FaultEvent(link=l, factor=factor, start=start, end=end))

    if kind == "hard-down":
        nroutes = min(len(routes), rng.choice((1, 2)))
        t0 = rng.uniform(0.002, 0.005)
        for r in rng.sample(routes, nroutes):
            kill(r, start=t0)
        desc = f"{nroutes} route(s) hard down at t={t0:.4f}"
    elif kind == "correlated-dim":
        ndims = system.topology.ndims
        all_links = sorted({l for r in routes for l in r})
        dims = sorted({link_id_parts(l, ndims)[1] for l in all_links})
        dim = rng.choice(dims)
        sel = [l for l in all_links if link_id_parts(l, ndims)[1] == dim]
        t0 = rng.uniform(0.002, 0.005)
        kill(sel, start=t0)
        desc = f"all dim-{dim} route links ({len(sel)}) down at t={t0:.4f}"
    elif kind == "flapping":
        route = rng.choice(routes)
        period = rng.uniform(0.006, 0.012)
        duty = period * rng.uniform(0.4, 0.7)
        t0 = rng.uniform(0.001, 0.003)
        for i in range(6):
            kill(route, start=t0 + i * period, end=t0 + i * period + duty)
        desc = f"one route flapping: {duty:.4f}s down every {period:.4f}s"
    elif kind == "brownout":
        nroutes = max(1, len(routes) // 2)
        factor = rng.uniform(0.1, 0.3)
        t0 = rng.uniform(0.001, 0.003)
        t1 = t0 + rng.uniform(0.02, 0.06)
        for r in rng.sample(routes, nroutes):
            kill(r, start=t0, end=t1, factor=factor)
        desc = f"{nroutes} route(s) at {factor:.2f}x for [{t0:.4f}, {t1:.4f})"
    elif kind == "retry-storm":
        # First wave mid-transfer, second wave timed to land during the
        # recovery round, third wave browns out whatever is left.
        order = rng.sample(routes, len(routes))
        t0 = rng.uniform(0.002, 0.004)
        kill(order[0], start=t0)
        if len(order) > 1:
            kill(order[1], start=t0 + rng.uniform(0.008, 0.015))
        if len(order) > 2:
            kill(
                order[2],
                start=t0 + rng.uniform(0.015, 0.025),
                end=t0 + 0.08,
                factor=rng.uniform(0.05, 0.2),
            )
        desc = f"cascading failures starting t={t0:.4f}"
    elif kind == "silent-corruption":
        # Non-fail-stop: nothing slows down, links flip bits in
        # transit.  One round-0 carrier link flips at rate 1.0 so a
        # detection is *certain* (the invariant is machine-checkable),
        # a few more route links flip probabilistically, and delivered
        # extents see stale replays the receiver must drop.
        r0 = round0_routes()
        anchor = rng.choice(r0)
        flips = {anchor[0]: 1.0}
        others = sorted({l for r in r0 for l in r} - set(flips))
        for l in rng.sample(others, min(3, len(others))):
            flips[l] = round(rng.uniform(0.2, 0.6), 3)
        sdc = SDCModel(flip_links=flips, stale_rate=0.2, seed=seed)
        expect_detection = True
        desc = (
            f"wire bit-flips on {len(flips)} route links (link {anchor[0]} "
            f"at rate 1.0) + stale replays at 0.2"
        )
    elif kind == "corrupting-proxy":
        # A store-and-forward staging buffer poisons everything it
        # relays: strikes accumulate into corruption quarantine and the
        # retry machinery re-plans around the node.
        proxy_asgs = [p.assignment for p in plans if p.strategy == "proxy"]
        if proxy_asgs:
            a = rng.choice(proxy_asgs)
            rates = {a.proxies[0]: 1.0}
            if a.k > 1 and rng.random() < 0.5:
                rates[a.proxies[1]] = round(rng.uniform(0.5, 0.9), 3)
            sdc = SDCModel(corrupt_proxies=rates, seed=seed)
            desc = f"corrupting proxy buffer(s) {rates}"
        else:
            # Every pair went direct — no staging buffer exists, so the
            # nearest equivalent is a certain wire flip on that path.
            d = round0_routes()[0]
            sdc = SDCModel(flip_links={d[0]: 1.0}, seed=seed)
            desc = "no proxy plan; direct-route wire flip at rate 1.0"
        expect_detection = True
    else:
        raise ConfigError(f"unknown scenario kind {kind!r}")

    return ChaosScenario(
        kind=kind,
        geometry=geometry,
        seed=seed,
        trace=FaultTrace(events=tuple(events)),
        description=desc,
        sdc=sdc,
        expect_detection=expect_detection,
    )


def _check_invariants(
    outcome: ResilientOutcome,
    *,
    n_specs: int,
    policy: RetryPolicy,
    baseline_tp: float,
    goodput_floor: float,
    counters_before: dict,
    counters_after: dict,
    expect_detection: bool = False,
) -> tuple[dict[str, bool], list[str]]:
    inv: dict[str, bool] = {}
    failures: list[str] = []

    def check(name: str, ok: bool, detail: str = ""):
        inv[name] = bool(ok)
        if not ok:
            failures.append(f"{name}: {detail}" if detail else name)

    dupes = [r.duplicates for r in outcome.integrity if r.duplicates]
    check("ledger-exactly-once", not dupes, f"duplicate extents {dupes}")

    conserved = all(
        r.delivered_bytes + r.residue_bytes == r.total_bytes
        for r in outcome.integrity
    ) and (
        outcome.delivered_bytes + outcome.residue_bytes == outcome.total_bytes
    )
    check(
        "byte-conservation",
        conserved,
        f"delivered {outcome.delivered_bytes} + residue "
        f"{outcome.residue_bytes} != total {outcome.total_bytes}",
    )

    check(
        "complete-or-budgeted",
        outcome.complete or outcome.telemetry.budget_exhausted,
        "incomplete without budget exhaustion",
    )

    if outcome.complete:
        floor = goodput_floor * baseline_tp
        check(
            "goodput-floor",
            outcome.throughput >= floor,
            f"{outcome.throughput:.3g} B/s < floor {floor:.3g} B/s",
        )
    else:
        inv["goodput-floor"] = True  # residue reported; floor not owed

    check(
        "retries-bounded",
        outcome.telemetry.retries <= policy.max_retries * n_specs,
        f"{outcome.telemetry.retries} retries > "
        f"{policy.max_retries} x {n_specs} transfers",
    )

    if policy.budget_s is not None:
        # Round 0 is ungated, so the horizon is the later of the budget
        # and round 0's last deadline (plus fluid-model slack).
        r0_deadline = max(
            (a.deadline for a in outcome.telemetry.attempts if a.round == 0),
            default=0.0,
        )
        horizon = max(policy.budget_s, r0_deadline) * (1 + 1e-9) + 1e-9
        check(
            "budget-respected",
            outcome.makespan <= horizon,
            f"makespan {outcome.makespan:.4f}s past horizon {horizon:.4f}s",
        )
    else:
        inv["budget-respected"] = True

    bad = counter_violations(counters_before, counters_after)
    check("metrics-monotone", not bad, f"counters went backwards: {bad}")

    check(
        "no-corrupt-acked",
        outcome.corrupted_acknowledged_bytes == 0,
        f"{outcome.corrupted_acknowledged_bytes} corrupted bytes were "
        f"credited as delivered",
    )
    if expect_detection:
        check(
            "corruption-detected",
            outcome.telemetry.corrupt_extents_detected > 0,
            "a rate-1.0 corruption fault produced no detection",
        )
    else:
        inv["corruption-detected"] = True  # nothing certain to detect

    return inv, failures


def run_campaign(config: "CampaignConfig | None" = None) -> dict:
    """Run the full scenario × geometry × seed grid; returns the report.

    The report is JSON-ready (schema ``chaos-campaign/1``); ``passed``
    is True only when every cell satisfied every invariant.
    """
    config = config or CampaignConfig()
    t_wall = time.perf_counter()
    system = mira_system(nnodes=config.nnodes)
    policy = config.policy()
    reg = get_registry()

    # Fault-free baselines per geometry anchor the goodput floor (and
    # double as a sanity run of each geometry through the executor).
    baselines: dict[str, float] = {}
    for geometry in config.geometries:
        specs = geometry_specs(system, geometry, config.nbytes)
        base = run_resilient_transfer(system, specs)
        base_rep = base.integrity
        if not base.complete or any(r.duplicates for r in base_rep):
            raise IntegrityError(
                f"fault-free baseline for {geometry!r} failed its own ledger",
                kind="gap",
                extent_ids=(),
            )
        baselines[geometry] = base.throughput

    # One batched fault-free pass over the whole geometry grid: the
    # *ideal* transfer throughput per geometry (raw multipath flows, no
    # executor rounds/chunking), simulated together through
    # :class:`~repro.network.batchsim.BatchFlowSim`.  Reported next to
    # the executor baselines so a cell's goodput can be read against
    # both the executor's fault-free floor and the physics ceiling.
    ideal_outs = run_transfer_many(
        system,
        [geometry_specs(system, g, config.nbytes) for g in config.geometries],
    )
    ideal = {
        g: out.throughput for g, out in zip(config.geometries, ideal_outs)
    }

    runs: list[ChaosRun] = []
    for seed in config.seeds:
        for geometry in config.geometries:
            specs = geometry_specs(system, geometry, config.nbytes)
            plans = ResilientPlanner(system).plan(specs)
            for kind in config.scenarios:
                scenario = build_scenario(
                    kind, system, plans, geometry=geometry, seed=seed
                )
                before = dict(reg.snapshot()["counters"])
                error = None
                outcome = None
                # Corruption cells get their own monitor so the report
                # can read quarantine state back out; timing cells keep
                # the executor's default construction, byte-identical.
                mon = None
                if scenario.sdc is not None:
                    mon = HealthMonitor(
                        system,
                        suspect_fraction=policy.health_threshold,
                        reprobe_interval=policy.reprobe_interval,
                    )
                try:
                    outcome = run_resilient_transfer(
                        system, specs, trace=scenario.trace, policy=policy,
                        sdc=scenario.sdc, monitor=mon,
                    )
                except (IntegrityError, TransferAbortedError) as exc:
                    error = f"{type(exc).__name__}: {exc}"
                after = dict(reg.snapshot()["counters"])

                if outcome is None:
                    runs.append(
                        ChaosRun(
                            scenario=kind,
                            geometry=geometry,
                            seed=seed,
                            passed=False,
                            invariants={},
                            failures=[error or "executor raised"],
                            error=error,
                        )
                    )
                    continue

                inv, failures = _check_invariants(
                    outcome,
                    n_specs=len(specs),
                    policy=policy,
                    baseline_tp=baselines[geometry],
                    goodput_floor=config.goodput_floor,
                    counters_before=before,
                    counters_after=after,
                    expect_detection=scenario.expect_detection,
                )
                t = outcome.telemetry
                runs.append(
                    ChaosRun(
                        scenario=kind,
                        geometry=geometry,
                        seed=seed,
                        passed=not failures,
                        invariants=inv,
                        failures=failures,
                        makespan=outcome.makespan,
                        total_bytes=outcome.total_bytes,
                        delivered_bytes=outcome.delivered_bytes,
                        residue_bytes=outcome.residue_bytes,
                        goodput=(
                            outcome.delivered_bytes / outcome.makespan
                            if outcome.makespan > 0
                            else 0.0
                        ),
                        rounds=t.rounds,
                        retries=t.retries,
                        failovers=t.failovers,
                        bytes_resent=t.bytes_resent,
                        bytes_redriven=t.bytes_redriven,
                        partial_credit_bytes=t.partial_credit_bytes,
                        replacements=t.replacements,
                        degraded_to_direct=t.degraded_to_direct,
                        budget_exhausted=t.budget_exhausted,
                        corrupt_extents_detected=t.corrupt_extents_detected,
                        corrupt_bytes_redriven=t.corrupt_bytes_redriven,
                        stale_drops=t.stale_drops,
                        corrupted_acknowledged_bytes=(
                            outcome.corrupted_acknowledged_bytes
                        ),
                        quarantined_links=(
                            len(mon.quarantined_links()) if mon else 0
                        ),
                        quarantined_proxies=(
                            len(mon.quarantined_proxies()) if mon else 0
                        ),
                    )
                )

    n_passed = sum(1 for r in runs if r.passed)
    return {
        "schema": "chaos-campaign/1",
        "config": {
            "nnodes": config.nnodes,
            "nbytes": config.nbytes,
            "seeds": list(config.seeds),
            "scenarios": list(config.scenarios),
            "geometries": list(config.geometries),
            "max_retries": config.max_retries,
            "budget_s": config.budget_s,
            "reprobe_interval": config.reprobe_interval,
            "avoid_failure_domains": config.avoid_failure_domains,
            "goodput_floor": config.goodput_floor,
        },
        "baseline_throughput_Bps": baselines,
        "transfer_ideal_throughput_Bps": ideal,
        "runs": [r.to_dict() for r in runs],
        "n_runs": len(runs),
        "n_passed": n_passed,
        "passed": n_passed == len(runs),
        "wall_time_s": time.perf_counter() - t_wall,
    }
