"""Resilient transfer execution: detect → re-plan → retry.

:func:`run_resilient_transfer` closes the loop the planner alone cannot:
the ground-truth :class:`~repro.machine.faults.FaultTrace` is *hidden*
from planning (as real link failures are), and only shows up as missed
per-path deadlines and collapsed observed rates.  Execution proceeds in
**rounds**:

1. every carrier gets a deadline (``deadline_factor`` × its Eq. 1/2
   predicted time at the believed rate); the round's flows run in the
   fluid simulator against the ground-truth capacities, with the trace's
   factor changes applied mid-run as exact
   :class:`~repro.network.flowsim.CapacityEvent` interrupts;
2. a carrier **fails** when it misses its deadline *and* its achieved
   delivery rate fell below ``health_threshold`` of plan — plain two-way
   max-min contention yields a 0.5 rate ratio, safely above the default
   0.4, so fair sharing alone never triggers failover;
3. failed shares are pooled per transfer and **re-split** over the
   carriers the :class:`~repro.resilience.health.HealthMonitor` still
   believes healthy: ≥ ``min_healthy_paths`` survivors → proportional
   re-split over them; 1–2 survivors → survivors plus the direct path as
   an extra carrier; none → graceful degradation to a plain direct
   retry;
4. the next round starts after an exponential backoff (simulated time);
   a transfer that exhausts ``max_retries`` raises
   :class:`TransferAbortedError` carrying the telemetry so far.

With no faults at all, round 1 emits byte-for-byte the same flow program
as :func:`~repro.core.multipath.run_transfer` and no deadline fires, so
the outcome is identical to the fault-blind executor's (tested).

Hard-down links are clamped to :data:`STALL_RATE` (≈1 B/s) instead of
zero so a flow routed across one *stalls* — exactly what a real RDMA put
into a dead link does — and is caught by its deadline rather than by a
simulator error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.multipath import (
    TransferSpec,
    build_direct_flows,
    build_multipath_flows_detailed,
)
from repro.core.proxy_select import ProxyAssignment, forced_assignment
from repro.machine.faults import FaultModel, FaultTrace
from repro.machine.system import BGQSystem
from repro.mpi.comm import SimComm
from repro.mpi.program import FlowProgram
from repro.network.flowsim import CapacityEvent, FlowSimResult
from repro.obs.metrics import TimeSeriesProbe, get_registry
from repro.obs.trace import get_tracer
from repro.resilience.health import DOWN, HEALTHY, HealthMonitor
from repro.resilience.planner import ResilientPlanner, ResilientTransfer
from repro.util.validation import ConfigError, SimulationError

#: Residual rate of a hard-down link [B/s]: the flow stalls but the
#: fluid model stays well-posed; deadlines do the actual failure
#: detection, as they would on the real machine.
STALL_RATE = 1.0


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the detect-and-retry loop.

    Attributes:
        max_retries: retry rounds allowed per transfer before aborting.
        deadline_factor: a carrier is late when it exceeds this multiple
            of its predicted time.
        backoff_base: first retry's backoff delay [s] (simulated time).
        backoff_multiplier: exponential backoff growth per retry.
        min_healthy_paths: surviving-proxy count below which the direct
            path joins the retry carriers (the Eq. 5 profitability floor:
            fewer than 3 paths cannot beat direct anyway).
        health_threshold: a late carrier only *fails* when its delivery
            rate fell below this fraction of plan; keep < 0.5 so fair
            two-way contention is never mistaken for a fault.
        min_planned_fraction: planned rates are floored at this fraction
            of the stream ceiling when setting deadlines, so a path the
            monitor believes (almost) dead cannot "succeed" by matching
            an absurdly low expectation — it fails fast instead.
    """

    max_retries: int = 3
    deadline_factor: float = 1.5
    backoff_base: float = 1e-4
    backoff_multiplier: float = 2.0
    min_healthy_paths: int = 3
    health_threshold: float = 0.4
    min_planned_fraction: float = 0.01

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.deadline_factor < 1.0:
            raise ConfigError(
                f"deadline_factor must be >= 1, got {self.deadline_factor}"
            )
        if self.backoff_base < 0:
            raise ConfigError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.min_healthy_paths < 1:
            raise ConfigError(
                f"min_healthy_paths must be >= 1, got {self.min_healthy_paths}"
            )
        if not 0 < self.health_threshold < 1:
            raise ConfigError(
                f"health_threshold must be in (0, 1), got {self.health_threshold}"
            )
        if not 0 < self.min_planned_fraction <= 1:
            raise ConfigError(
                f"min_planned_fraction must be in (0, 1], got "
                f"{self.min_planned_fraction}"
            )


class TransferAbortedError(SimulationError):
    """A transfer exhausted its retries; ``telemetry`` holds the record."""

    def __init__(self, message: str, telemetry: "ResilienceTelemetry | None" = None):
        super().__init__(message)
        self.telemetry = telemetry


@dataclass(frozen=True)
class PathAttempt:
    """One carrier's attempt in one round (absolute simulated times)."""

    round: int
    src: int
    dst: int
    proxy: "int | None"  # None = the direct path carried this share
    share: int
    planned_time: float
    deadline: float
    finish: float
    verdict: str  # "ok" or "failed"


@dataclass
class ResilienceTelemetry:
    """Structured record of the executor's resilience actions.

    The same events also feed the process-wide observability layer —
    ``resilience.*`` counters in :func:`repro.obs.get_registry` and
    ``transfer-round`` spans on :func:`repro.obs.get_tracer` — so this
    object is a per-call convenience view, not the only record.
    """

    rounds: int = 0
    retries: int = 0
    failovers: int = 0
    bytes_resent: int = 0
    degraded_to_direct: int = 0
    attempts: list[PathAttempt] = field(default_factory=list)

    @property
    def failed_attempts(self) -> list[PathAttempt]:
        """All per-path attempts that missed their deadline and failed."""
        return [a for a in self.attempts if a.verdict == "failed"]


@dataclass
class ResilientOutcome:
    """Result of a resilient transfer run.

    ``makespan`` is absolute simulated completion time including retry
    rounds and backoffs; ``round_results`` keeps each round's raw
    flow-level results (round 0 first).
    """

    makespan: float
    total_bytes: float
    delivered_bytes: float
    mode_used: dict[tuple[int, int], str]
    telemetry: ResilienceTelemetry
    plans: list[ResilientTransfer]
    round_results: list[FlowSimResult]

    @property
    def throughput(self) -> float:
        """Requested payload over total elapsed time [B/s]."""
        return self.total_bytes / self.makespan if self.makespan > 0 else float("inf")

    @property
    def result(self) -> FlowSimResult:
        """The first round's flow results (fault-free: the whole run)."""
        return self.round_results[0]


@dataclass
class _Carrier:
    """One share in flight during a round."""

    spec_idx: int
    proxy: "int | None"
    share: int
    two_hop: bool
    planned_rate: float
    planned_time: float
    deadline: float
    exit_fid: object = None
    obs: list = field(default_factory=list)  # (links, fid) pairs to observe


def _predicted_time(params, share: int, rate: float, two_hop: bool) -> float:
    """Eq. 1 / Eq. 2 per-carrier time at a believed rate."""
    if two_hop:
        return 2 * params.o_msg + params.o_fwd + 2 * share / rate
    return params.o_msg + share / rate


def run_resilient_transfer(
    system: BGQSystem,
    specs: Sequence[TransferSpec],
    *,
    faults: "FaultModel | None" = None,
    trace: "FaultTrace | None" = None,
    policy: "RetryPolicy | None" = None,
    planner: "ResilientPlanner | None" = None,
    monitor: "HealthMonitor | None" = None,
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
    lazy_frac: float = 0.0,
    probe: "TimeSeriesProbe | None" = None,
) -> ResilientOutcome:
    """Execute transfers with fault detection, failover and retry.

    Args:
        faults: *known* static faults — the planner routes around them.
        trace: *hidden* ground truth the executor only discovers through
            missed deadlines and observed rates.
        policy: retry/deadline/backoff knobs (default :class:`RetryPolicy`).
        planner: a pre-built (possibly pre-warmed) fault-aware planner.
        monitor: a pre-built health monitor (kept across calls to carry
            link beliefs from one transfer wave to the next).
        probe: a :class:`~repro.obs.metrics.TimeSeriesProbe`; each round
            runs with its absolute start time as the probe base, so the
            sampled series is monotone across rounds and backoffs.
    """
    specs = list(specs)
    if not specs:
        raise ConfigError("specs must be non-empty")
    tracer = get_tracer()
    reg = get_registry()
    faults = faults or FaultModel()
    trace = trace or FaultTrace()
    policy = policy or RetryPolicy()
    if monitor is None:
        monitor = HealthMonitor(
            system, faults=faults, suspect_fraction=policy.health_threshold
        )
    if planner is None:
        planner = ResilientPlanner(system, faults=faults, monitor=monitor)
    plans = planner.plan(specs)

    params = system.params
    stream = min(params.stream_cap, params.mem_bw)
    comm = SimComm(system)
    direct_links = {
        (s.src, s.dst): system.compute_path(s.src, s.dst).links for s in specs
    }

    def capacity_at(link: int, t: float) -> float:
        c = system.capacity(link) * faults.link_factor(link) * trace.factor_at(link, t)
        return c if c > 0.0 else STALL_RATE

    def round_capacity_fn(t0: float) -> "Callable[[int], float] | None":
        if faults.is_null and trace.is_null:
            return None  # pristine machine: identical physics to run_transfer
        return lambda link: capacity_at(link, t0)

    def round_events(t0: float) -> "list[CapacityEvent] | None":
        if trace.is_null:
            return None
        evs = []
        for link in trace.affected_links:
            for b in trace.boundaries([link]):
                if b > t0:
                    evs.append(
                        CapacityEvent(time=b - t0, link=link, capacity=capacity_at(link, b))
                    )
        return evs or None

    def emit_carrier_group(
        prog: FlowProgram,
        spec_idx: int,
        asg: ProxyAssignment,
        nbytes: int,
        weights: "tuple[float, ...] | None",
        rates: Sequence[float],
        label: str,
    ) -> list[_Carrier]:
        """Emit a (possibly partial) multipath group and wrap each share."""
        spec = specs[spec_idx]
        sub = TransferSpec(src=spec.src, dst=spec.dst, nbytes=nbytes)
        _, emissions = build_multipath_flows_detailed(
            prog, sub, asg, weights=weights, label=label
        )
        out = []
        for i, em in enumerate(emissions):
            two_hop = em.phase1 is not None
            rate = max(float(rates[i]), policy.min_planned_fraction * stream)
            t_pred = _predicted_time(params, em.share, rate, two_hop)
            car = _Carrier(
                spec_idx=spec_idx,
                proxy=None if em.proxy == spec.src else em.proxy,
                share=em.share,
                two_hop=two_hop,
                planned_rate=rate,
                planned_time=t_pred,
                deadline=policy.deadline_factor * t_pred,
                exit_fid=em.exit,
            )
            if two_hop:
                car.obs = [
                    (asg.phase1[i].links, em.phase1),
                    (asg.phase2[i].links, em.exit),
                ]
            else:
                car.obs = [(direct_links[(spec.src, spec.dst)], em.exit)]
            out.append(car)
        return out

    def emit_direct(
        prog: FlowProgram, spec_idx: int, nbytes: int, rate: float, label: str
    ) -> _Carrier:
        spec = specs[spec_idx]
        sub = TransferSpec(src=spec.src, dst=spec.dst, nbytes=nbytes)
        fid = build_direct_flows(prog, sub, label=label)
        rate = max(float(rate), policy.min_planned_fraction * stream)
        t_pred = _predicted_time(params, nbytes, rate, two_hop=False)
        return _Carrier(
            spec_idx=spec_idx,
            proxy=None,
            share=nbytes,
            two_hop=False,
            planned_rate=rate,
            planned_time=t_pred,
            deadline=policy.deadline_factor * t_pred,
            exit_fid=fid,
            obs=[(direct_links[(spec.src, spec.dst)], fid)],
        )

    telemetry = ResilienceTelemetry()
    mode_used: dict[tuple[int, int], str] = {}
    round_results: list[FlowSimResult] = []
    retries_left = [policy.max_retries] * len(specs)
    delivered = 0.0

    # Round 0's work comes straight from the plan; later rounds replace
    # this with the per-spec retry emissions built below.
    def initial_emit(prog: FlowProgram) -> list[_Carrier]:
        out = []
        for idx, plan in enumerate(plans):
            spec = specs[idx]
            key = (spec.src, spec.dst)
            if plan.strategy == "proxy":
                asg = plan.assignment
                rates = (
                    plan.weights
                    if plan.weights is not None
                    else [stream] * asg.k
                )
                out.extend(
                    emit_carrier_group(
                        prog, idx, asg, spec.nbytes, plan.weights, rates, "mpath"
                    )
                )
                mode_used[key] = f"proxy:{asg.k}"
            else:
                rate = plan.effective_direct_rate or stream
                out.append(emit_direct(prog, idx, spec.nbytes, rate, "direct"))
                mode_used[key] = "direct"
        return out

    emit_round = initial_emit
    T = 0.0
    rnd = 0
    while True:
        rspan_cm = tracer.span("transfer-round", cat="resilience", round=rnd)
        with rspan_cm as rspan:
            prog = FlowProgram(
                comm,
                batch_tol=batch_tol,
                fair_tol=fair_tol,
                lazy_frac=lazy_frac,
                capacity_fn=round_capacity_fn(T),
                probe=probe,
                t_base=T,
            )
            carriers = emit_round(prog)
            result = prog.run(round_events(T))
            round_results.append(result)
            telemetry.rounds += 1
            reg.counter("resilience.rounds").inc()

            round_end = 0.0
            failed_by_spec: dict[int, list[_Carrier]] = {}
            for car in carriers:
                finish = result.finish(car.exit_fid)
                ok = finish <= car.deadline
                if not ok:
                    fixed = car.planned_time - (
                        (2 if car.two_hop else 1) * car.share / car.planned_rate
                    )
                    elapsed = max(finish - fixed, 1e-12)
                    achieved = car.share / elapsed
                    planned_delivery = (
                        car.planned_rate / 2 if car.two_hop else car.planned_rate
                    )
                    ok = achieved >= policy.health_threshold * planned_delivery
                spec = specs[car.spec_idx]
                telemetry.attempts.append(
                    PathAttempt(
                        round=rnd,
                        src=spec.src,
                        dst=spec.dst,
                        proxy=car.proxy,
                        share=car.share,
                        planned_time=car.planned_time,
                        deadline=T + car.deadline,
                        finish=T + finish,
                        verdict="ok" if ok else "failed",
                    )
                )
                reg.counter(
                    "resilience.attempts.ok" if ok else "resilience.attempts.failed"
                ).inc()
                if math.isfinite(finish):
                    reg.histogram("resilience.attempt_time_s").observe(finish)
                for links, fid in car.obs:
                    r = result[fid]
                    rate_obs = r.mean_rate if math.isfinite(r.mean_rate) else stream
                    monitor.observe(links, rate_obs)
                    if not ok and rate_obs <= 2 * STALL_RATE:
                        monitor.mark_down(links)
                if ok:
                    delivered += car.share
                    round_end = max(round_end, finish)
                else:
                    # The share is re-sent in full next round; treat the
                    # carrier as cancelled at its deadline.
                    round_end = max(round_end, min(finish, car.deadline))
                    failed_by_spec.setdefault(car.spec_idx, []).append(car)
            monitor.end_round()
            rspan.set(
                carriers=len(carriers),
                failed=sum(len(v) for v in failed_by_spec.values()),
                t_start=T,
                round_end=T + round_end,
            )
        if tracer.enabled:
            tracer.record(
                f"round{rnd}",
                T,
                T + round_end,
                cat="resilience",
                carriers=len(carriers),
                failed=sum(len(v) for v in failed_by_spec.values()),
            )

        if not failed_by_spec:
            break

        retry_emits: list[Callable[[FlowProgram], list[_Carrier]]] = []
        for idx, failed in sorted(failed_by_spec.items()):
            spec = specs[idx]
            if retries_left[idx] == 0:
                reg.counter("resilience.aborts").inc()
                raise TransferAbortedError(
                    f"transfer ({spec.src}, {spec.dst}) still failing after "
                    f"{policy.max_retries} retries; giving up",
                    telemetry=telemetry,
                )
            retries_left[idx] -= 1
            nbytes = sum(c.share for c in failed)
            telemetry.bytes_resent += nbytes
            telemetry.failovers += len(failed)
            telemetry.retries += 1
            reg.counter("resilience.bytes_resent").inc(nbytes)
            reg.counter("resilience.failovers").inc(len(failed))
            reg.counter("resilience.retries").inc()

            asg = plans[idx].assignment
            d_links = direct_links[(spec.src, spec.dst)]
            healthy = []
            if asg is not None:
                healthy = [
                    j
                    for j in range(asg.k)
                    if asg.proxies[j] != spec.src
                    and monitor.path_verdict(asg.phase1[j].links + asg.phase2[j].links)
                    == HEALTHY
                ]
            direct_rate = monitor.path_rate(d_links)
            use_direct = False
            if len(healthy) >= policy.min_healthy_paths:
                pass  # enough intact disjoint paths: re-split over them
            elif healthy:
                # Too few survivors for the k/2 law: add the direct path
                # as one more carrier (unless it is believed dead too).
                use_direct = monitor.path_verdict(d_links) != DOWN
            else:
                healthy = []
                use_direct = True
                telemetry.degraded_to_direct += 1
                reg.counter("resilience.degraded_to_direct").inc()

            carriers_nodes = [asg.proxies[j] for j in healthy]
            rates = [
                monitor.path_rate(asg.phase1[j].links + asg.phase2[j].links) / 2
                for j in healthy
            ]
            if use_direct:
                carriers_nodes.append(spec.src)
                rates.append(max(direct_rate, STALL_RATE))
            # A tiny share cannot feed every carrier one positive byte.
            if nbytes < len(carriers_nodes):
                carriers_nodes = carriers_nodes[:nbytes]
                rates = rates[:nbytes]
            label = f"retry{rnd + 1}"

            if carriers_nodes == [spec.src]:
                retry_emits.append(
                    lambda p, i=idx, n=nbytes, r=rates[0], lb=label: [
                        emit_direct(p, i, n, r, lb)
                    ]
                )
                continue
            sub_asg = forced_assignment(system, spec.src, spec.dst, carriers_nodes)
            equal = all(r == rates[0] for r in rates)
            weights = None if equal else tuple(max(r, STALL_RATE) for r in rates)
            # For the deadline math a self-carrier delivers at r (one
            # hop), a proxy at r/2 — emit_carrier_group handles it via
            # the single-stream rate per carrier (2x the delivery rate
            # for two-hop carriers).
            single_rates = [
                2 * r if node != spec.src else r
                for node, r in zip(carriers_nodes, rates)
            ]
            retry_emits.append(
                lambda p, i=idx, a=sub_asg, n=nbytes, w=weights, sr=tuple(
                    single_rates
                ), lb=label: emit_carrier_group(p, i, a, n, w, sr, lb)
            )

        def emit_retries(
            prog: FlowProgram, emits=tuple(retry_emits)
        ) -> list[_Carrier]:
            out = []
            for fn in emits:
                out.extend(fn(prog))
            return out

        emit_round = emit_retries
        rnd += 1
        backoff = policy.backoff_base * policy.backoff_multiplier ** (rnd - 1)
        T = T + round_end + backoff

    total = float(sum(s.nbytes for s in specs))
    return ResilientOutcome(
        makespan=T + round_end,
        total_bytes=total,
        delivered_bytes=float(delivered),
        mode_used=mode_used,
        telemetry=telemetry,
        plans=plans,
        round_results=round_results,
    )
