"""Resilient transfer execution: detect → credit → re-plan → retry.

:func:`run_resilient_transfer` closes the loop the planner alone cannot:
the ground-truth :class:`~repro.machine.faults.FaultTrace` is *hidden*
from planning (as real link failures are), and only shows up as missed
per-path deadlines and collapsed observed rates.  Execution proceeds in
**rounds**:

1. every carrier gets a deadline (``deadline_factor`` × its Eq. 1/2
   predicted time at the believed rate); the round's flows run in the
   fluid simulator against the ground-truth capacities, with the trace's
   factor changes applied mid-run as exact
   :class:`~repro.network.flowsim.CapacityEvent` interrupts;
2. a carrier **fails** when it misses its deadline *and* its achieved
   delivery rate fell below ``health_threshold`` of plan — plain two-way
   max-min contention yields a 0.5 rate ratio, safely above the default
   0.4, so fair sharing alone never triggers failover;
3. a failed carrier is *cancelled at its deadline*: the simulator's
   byte-exact cutoff snapshot says how much of its share actually
   landed, and the :class:`~repro.resilience.ledger.TransferLedger`
   credits those extents — including extents parked **at a
   store-and-forward proxy** (phase 1 done, phase 2 owed), which are
   re-driven over the second hop only;
4. the remaining *outstanding* extents are re-split, whole extents at a
   time, over the carriers the monitor still believes healthy, topped
   up with failure-domain-aware **replacement proxies** from the
   planner (never sharing a link with a degraded route or a surviving
   carrier) and, when too few survive, the direct path;
5. the next round starts after an exponential backoff (simulated time);
   a transfer that exhausts ``max_retries`` raises
   :class:`TransferAbortedError` — unless a wall-clock **budget** is
   set, in which case the executor degrades to one final best-effort
   direct round capped at the budget and returns the ledger's residue
   instead of raising.

At completion every ledger verifies **exactly-once** delivery of every
extent; duplicates or gaps raise
:class:`~repro.resilience.ledger.IntegrityError`.  Receivers drop
stale-epoch arrivals (a cancelled carrier's flow finishing after its
deadline delivers nothing), which is what makes the credit exact.

With no faults at all, round 1 emits byte-for-byte the same flow program
as :func:`~repro.core.multipath.run_transfer`, registers no cutoffs, and
no deadline fires, so the outcome is identical to the fault-blind
executor's (tested).

Hard-down links are clamped to :data:`STALL_RATE` (≈1 B/s) instead of
zero so a flow routed across one *stalls* — exactly what a real RDMA put
into a dead link does — and is caught by its deadline rather than by a
simulator error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.multipath import (
    TransferSpec,
    build_direct_flows,
    build_multipath_flows_detailed,
)
from repro.core.proxy_select import ProxyAssignment, forced_assignment
from repro.machine.faults import FaultModel, FaultTrace, SDCModel
from repro.machine.system import BGQSystem
from repro.mpi.comm import SimComm
from repro.mpi.program import FlowProgram
from repro.network.flowsim import CapacityEvent, FlowSimResult
from repro.obs.metrics import TimeSeriesProbe, get_registry
from repro.obs.trace import get_tracer
from repro.resilience.health import (
    DOWN,
    HEALTHY,
    PROBATION,
    QUARANTINED,
    HealthMonitor,
)
from repro.util.cancel import check_cancelled
from repro.resilience.ledger import (
    DEFAULT_CHUNK_BYTES,
    Extent,
    LedgerReport,
    TransferLedger,
    group_extents,
    prefix_extents,
)
from repro.resilience.planner import ResilientPlanner, ResilientTransfer
from repro.util.validation import ConfigError, SimulationError

#: Residual rate of a hard-down link [B/s]: the flow stalls but the
#: fluid model stays well-posed; deadlines do the actual failure
#: detection, as they would on the real machine.
STALL_RATE = 1.0

#: XOR mask applied to an extent's checksum to model the observed
#: checksum of a corrupted arrival (any constant != 0 works: the
#: mismatch, not the value, is what detection keys on).
_CORRUPT_MASK = 0xA5A5A5A5


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the detect-and-retry loop.

    Attributes:
        max_retries: retry rounds allowed per transfer before aborting.
        deadline_factor: a carrier is late when it exceeds this multiple
            of its predicted time.
        backoff_base: first retry's backoff delay [s] (simulated time).
        backoff_multiplier: exponential backoff growth per retry.
        backoff_jitter: fraction of each backoff delay that is
            randomised (AWS *full jitter* at 1.0): round ``n``'s delay
            is drawn uniformly from ``[(1 - j) * b, b]``, where ``b``
            is the deterministic exponential value — so simultaneous
            retries against a shared resource decorrelate instead of
            colliding again in lockstep.  0 keeps the legacy
            deterministic schedule.
        jitter_seed: seed of the jitter stream (only read when
            ``backoff_jitter > 0``).  The stream is derived from this
            seed *plus* the transfer set (src/dst/size of every spec),
            so concurrent transfers sharing one policy decorrelate
            instead of retrying in lockstep, while the same seed and
            specs always reproduce the same delays.
        min_healthy_paths: surviving-proxy count below which replacement
            proxies (and, failing that, the direct path) join the retry
            carriers (the Eq. 5 profitability floor: fewer than 3 paths
            cannot beat direct anyway).
        health_threshold: a late carrier only *fails* when its delivery
            rate fell below this fraction of plan; keep < 0.5 so fair
            two-way contention is never mistaken for a fault.
        min_planned_fraction: planned rates are floored at this fraction
            of the stream ceiling when setting deadlines, so a path the
            monitor believes (almost) dead cannot "succeed" by matching
            an absurdly low expectation — it fails fast instead.
        chunk_bytes: extent granularity of the integrity ledger (see
            :class:`~repro.resilience.ledger.TransferLedger`).
        partial_progress: credit a cancelled carrier's byte-exact
            partial delivery and re-send only outstanding extents
            (``False`` re-sends failed shares whole — the pre-ledger
            behaviour, kept for the retransmit-volume benchmark).
        budget_s: wall-clock ceiling [simulated s] on recovery: no retry
            round *starts* past it, and on exhaustion (or retries
            running out while a budget is set) the executor runs one
            budget-capped best-effort direct round and returns the
            ledger's residue instead of raising.  Round 0 always runs
            to its natural end — the budget gates recovery, not the
            initial attempt.  ``None`` keeps the raising behaviour.
        reprobe_interval: half-open re-probe interval handed to an
            auto-created :class:`~repro.resilience.health.HealthMonitor`
            (ignored when a monitor is passed in); ``None`` disables.
        use_replacements: top up surviving carriers with
            failure-domain-aware replacement proxies (only when at
            least one carrier survived — with none, the direct path is
            the only believed-safe fallback).
        avoid_failure_domains: additionally keep replacement routes out
            of every midplane failure domain touching a link the
            monitor believes down.
    """

    max_retries: int = 3
    deadline_factor: float = 1.5
    backoff_base: float = 1e-4
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.0
    jitter_seed: int = 2014
    min_healthy_paths: int = 3
    health_threshold: float = 0.4
    min_planned_fraction: float = 0.01
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    partial_progress: bool = True
    budget_s: "float | None" = None
    reprobe_interval: "float | None" = None
    use_replacements: bool = True
    avoid_failure_domains: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.deadline_factor < 1.0:
            raise ConfigError(
                f"deadline_factor must be >= 1, got {self.deadline_factor}"
            )
        if self.backoff_base < 0:
            raise ConfigError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0 <= self.backoff_jitter <= 1:
            raise ConfigError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.min_healthy_paths < 1:
            raise ConfigError(
                f"min_healthy_paths must be >= 1, got {self.min_healthy_paths}"
            )
        if not 0 < self.health_threshold < 1:
            raise ConfigError(
                f"health_threshold must be in (0, 1), got {self.health_threshold}"
            )
        if not 0 < self.min_planned_fraction <= 1:
            raise ConfigError(
                f"min_planned_fraction must be in (0, 1], got "
                f"{self.min_planned_fraction}"
            )
        if self.chunk_bytes < 1:
            raise ConfigError(f"chunk_bytes must be >= 1, got {self.chunk_bytes}")
        if self.budget_s is not None and self.budget_s <= 0:
            raise ConfigError(f"budget_s must be > 0, got {self.budget_s}")
        if self.reprobe_interval is not None and self.reprobe_interval <= 0:
            raise ConfigError(
                f"reprobe_interval must be > 0, got {self.reprobe_interval}"
            )


class TransferAbortedError(SimulationError):
    """A transfer exhausted its retries; ``telemetry`` holds the record."""

    def __init__(self, message: str, telemetry: "ResilienceTelemetry | None" = None):
        super().__init__(message)
        self.telemetry = telemetry


@dataclass(frozen=True)
class PathAttempt:
    """One carrier's attempt in one round (absolute simulated times)."""

    round: int
    src: int
    dst: int
    proxy: "int | None"  # None = the direct path carried this share
    share: int
    planned_time: float
    deadline: float
    finish: float
    verdict: str  # "ok", "failed" (deadline) or "corrupt" (integrity)


@dataclass
class ResilienceTelemetry:
    """Structured record of the executor's resilience actions.

    The same events also feed the process-wide observability layer —
    ``resilience.*`` counters in :func:`repro.obs.get_registry` and
    ``transfer-round`` spans on :func:`repro.obs.get_tracer` — so this
    object is a per-call convenience view, not the only record.
    """

    rounds: int = 0
    retries: int = 0
    failovers: int = 0
    bytes_resent: int = 0
    degraded_to_direct: int = 0
    partial_credit_bytes: int = 0
    bytes_redriven: int = 0
    replacements: int = 0
    budget_exhausted: bool = False
    corrupt_extents_detected: int = 0
    corrupt_bytes_redriven: int = 0
    stale_drops: int = 0
    attempts: list[PathAttempt] = field(default_factory=list)

    @property
    def failed_attempts(self) -> list[PathAttempt]:
        """All per-path attempts that missed their deadline and failed."""
        return [a for a in self.attempts if a.verdict == "failed"]


@dataclass
class ResilientOutcome:
    """Result of a resilient transfer run.

    ``makespan`` is absolute simulated completion time including retry
    rounds and backoffs; ``round_results`` keeps each round's raw
    flow-level results (round 0 first).  ``ledgers`` maps each
    ``(src, dst)`` pair to its verified
    :class:`~repro.resilience.ledger.TransferLedger` and ``integrity``
    holds the per-transfer verification reports — ``complete`` is False
    only for budget-exhausted best-effort runs, whose undelivered bytes
    are ``residue_bytes``.
    """

    makespan: float
    total_bytes: float
    delivered_bytes: float
    mode_used: dict[tuple[int, int], str]
    telemetry: ResilienceTelemetry
    plans: list[ResilientTransfer]
    round_results: list[FlowSimResult]
    ledgers: dict[tuple[int, int], TransferLedger] = field(default_factory=dict)
    integrity: list[LedgerReport] = field(default_factory=list)
    residue_bytes: int = 0
    complete: bool = True

    @property
    def throughput(self) -> float:
        """Requested payload over total elapsed time [B/s]."""
        return self.total_bytes / self.makespan if self.makespan > 0 else float("inf")

    @property
    def corrupted_acknowledged_bytes(self) -> int:
        """Bytes whose *recorded arrival checksum* mismatches the sealed
        truth yet were credited as delivered — the zero-tolerance audit
        the corruption chaos campaigns assert on (summed over every
        transfer's integrity report)."""
        return sum(r.corrupted_acknowledged_bytes for r in self.integrity)

    @property
    def result(self) -> FlowSimResult:
        """The first round's flow results (fault-free: the whole run)."""
        return self.round_results[0]


@dataclass
class _Carrier:
    """One share in flight during a round."""

    spec_idx: int
    proxy: "int | None"
    share: int
    two_hop: bool
    planned_rate: float
    planned_time: float
    deadline: float
    exit_fid: object = None
    phase1_fid: object = None
    redrive: bool = False  # one-hop proxy→dst re-drive of parked extents
    extents: list = field(default_factory=list)  # ledger extents, stream order
    obs: list = field(default_factory=list)  # (links, fid) pairs to observe


def _jitter_stream(policy: "RetryPolicy", specs) -> "np.random.Generator | None":
    """Backoff-jitter RNG for one transfer execution.

    The stream is keyed by ``jitter_seed`` *and* the transfer set
    (src/dst/size of every spec), so concurrent transfers that share a
    policy draw decorrelated jitter — the whole point of jitter — while
    any single transfer stays byte-reproducible from its seed.
    """
    if policy.backoff_jitter <= 0:
        return None
    key = [policy.jitter_seed]
    for s in specs:
        key.extend((s.src, s.dst, s.nbytes))
    return np.random.default_rng(key)


def _predicted_time(params, share: int, rate: float, two_hop: bool) -> float:
    """Eq. 1 / Eq. 2 per-carrier time at a believed rate."""
    if two_hop:
        return 2 * params.o_msg + params.o_fwd + 2 * share / rate
    return params.o_msg + share / rate


def _resilient_execution(
    system: BGQSystem,
    specs: Sequence[TransferSpec],
    *,
    faults: "FaultModel | None" = None,
    trace: "FaultTrace | None" = None,
    policy: "RetryPolicy | None" = None,
    planner: "ResilientPlanner | None" = None,
    monitor: "HealthMonitor | None" = None,
    sdc: "SDCModel | None" = None,
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
    lazy_frac: float = 0.0,
    probe: "TimeSeriesProbe | None" = None,
):
    """Generator core of the resilient executor (detect → credit → retry).

    Holds *all* of the executor's logic — round emission, deadlines,
    ledger credit, health feeding, re-planning, budgets — but performs
    **no simulation itself**: at each point where a round must run it
    yields ``(prog, capacity_events, cutoffs)`` and receives the
    :class:`~repro.network.flowsim.FlowSimResult` back via ``send()``.
    :func:`run_resilient_transfer` drives it with serial
    ``prog.run(...)`` calls (identical behaviour to the pre-generator
    executor); :func:`run_resilient_transfer_many` drives many of these
    generators in lockstep *waves*, one batched
    :class:`~repro.network.batchsim.BatchFlowSim` pass per wave, so a
    faulted scenario in a batch retries only its own outstanding
    extents without forcing its batch neighbours serial.  A driver
    ``throw()``s simulation errors in, which propagate exactly as they
    would from an inline ``prog.run``.  Returns (via ``StopIteration``)
    the :class:`ResilientOutcome`.

    ``sdc`` switches on the silent-corruption defense: every extent
    arriving at its destination is end-to-end checksum-verified before
    credit.  A mismatch is `corrupted, not lost` — the extent returns
    to outstanding (never acknowledged), the mismatch is attributed to
    its carrier (the staging proxy of a store-and-forward carrier, the
    route links of a direct one), the carrier's verdict becomes
    ``"corrupt"`` and a retry round re-drives *only* the corrupt
    extents over carriers the monitor still trusts.  Passing a *null*
    model (all rates zero) keeps the verification active but inert —
    the configuration the verification-overhead benchmark measures.
    Corruption decisions are pure functions of
    ``(seed, transfer, extent, round, carrier)``, so serial and batched
    drivers agree byte-for-byte.
    """
    specs = list(specs)
    if not specs:
        raise ConfigError("specs must be non-empty")
    tracer = get_tracer()
    reg = get_registry()
    faults = faults or FaultModel()
    trace = trace or FaultTrace()
    policy = policy or RetryPolicy()
    if monitor is None:
        monitor = HealthMonitor(
            system,
            faults=faults,
            suspect_fraction=policy.health_threshold,
            reprobe_interval=policy.reprobe_interval,
        )
    if planner is None:
        planner = ResilientPlanner(system, faults=faults, monitor=monitor)
    plans = planner.plan(specs)

    params = system.params
    stream = min(params.stream_cap, params.mem_bw)
    comm = SimComm(system)
    direct_links = {
        (s.src, s.dst): system.compute_path(s.src, s.dst).links for s in specs
    }
    faulted = not (faults.is_null and trace.is_null)
    # Fault-free runs never register cutoffs: the flow program the
    # simulator sees is byte-identical to the fault-blind executor's.
    track_cutoffs = faulted and policy.partial_progress
    # Verification is on whenever an SDC model is supplied — even a
    # null one (that configuration measures pure verification cost).
    verify_extents = sdc is not None
    ledgers = {
        idx: TransferLedger(
            (s.src, s.dst), s.nbytes, chunk_bytes=policy.chunk_bytes
        )
        for idx, s in enumerate(specs)
    }

    def capacity_at(link: int, t: float) -> float:
        c = system.capacity(link) * faults.link_factor(link) * trace.factor_at(link, t)
        return c if c > 0.0 else STALL_RATE

    def round_capacity_fn(t0: float) -> "Callable[[int], float] | None":
        if not faulted:
            return None  # pristine machine: identical physics to run_transfer
        return lambda link: capacity_at(link, t0)

    def round_events(t0: float) -> "list[CapacityEvent] | None":
        if trace.is_null:
            return None
        evs = []
        for link in trace.affected_links:
            for b in trace.boundaries([link]):
                if b > t0:
                    evs.append(
                        CapacityEvent(time=b - t0, link=link, capacity=capacity_at(link, b))
                    )
        return evs or None

    def emit_carrier_group(
        prog: FlowProgram,
        spec_idx: int,
        asg: ProxyAssignment,
        nbytes: int,
        weights: "tuple[float, ...] | None",
        rates: Sequence[float],
        label: str,
        shares: "Sequence[int] | None" = None,
        groups: "Sequence[Sequence[Extent]] | None" = None,
    ) -> list[_Carrier]:
        """Emit a (possibly partial) multipath group and wrap each share."""
        spec = specs[spec_idx]
        sub = TransferSpec(src=spec.src, dst=spec.dst, nbytes=nbytes)
        _, emissions = build_multipath_flows_detailed(
            prog, sub, asg, weights=weights, shares=shares, label=label
        )
        out = []
        for i, em in enumerate(emissions):
            two_hop = em.phase1 is not None
            rate = max(float(rates[i]), policy.min_planned_fraction * stream)
            t_pred = _predicted_time(params, em.share, rate, two_hop)
            car = _Carrier(
                spec_idx=spec_idx,
                proxy=None if em.proxy == spec.src else em.proxy,
                share=em.share,
                two_hop=two_hop,
                planned_rate=rate,
                planned_time=t_pred,
                deadline=policy.deadline_factor * t_pred,
                exit_fid=em.exit,
                phase1_fid=em.phase1,
                extents=list(groups[i]) if groups is not None else [],
            )
            if two_hop:
                car.obs = [
                    (asg.phase1[i].links, em.phase1),
                    (asg.phase2[i].links, em.exit),
                ]
            else:
                car.obs = [(direct_links[(spec.src, spec.dst)], em.exit)]
            out.append(car)
        return out

    def emit_direct(
        prog: FlowProgram,
        spec_idx: int,
        nbytes: int,
        rate: float,
        label: str,
        extents: "Sequence[Extent] | None" = None,
    ) -> _Carrier:
        spec = specs[spec_idx]
        sub = TransferSpec(src=spec.src, dst=spec.dst, nbytes=nbytes)
        fid = build_direct_flows(prog, sub, label=label)
        rate = max(float(rate), policy.min_planned_fraction * stream)
        t_pred = _predicted_time(params, nbytes, rate, two_hop=False)
        return _Carrier(
            spec_idx=spec_idx,
            proxy=None,
            share=nbytes,
            two_hop=False,
            planned_rate=rate,
            planned_time=t_pred,
            deadline=policy.deadline_factor * t_pred,
            exit_fid=fid,
            extents=list(extents) if extents is not None else [],
            obs=[(direct_links[(spec.src, spec.dst)], fid)],
        )

    def emit_redrive(
        prog: FlowProgram,
        spec_idx: int,
        proxy: int,
        extents: Sequence[Extent],
        rate: float,
        label: str,
    ) -> _Carrier:
        """One-hop proxy→destination re-drive of extents parked at a
        store-and-forward proxy (phase 1 already landed them there)."""
        spec = specs[spec_idx]
        nbytes = sum(e.length for e in extents)
        fid = prog.iput_nodes(
            proxy, spec.dst, nbytes, relay=True, label=label,
            tag=(spec.src, spec.dst),
        )
        rate = max(float(rate), policy.min_planned_fraction * stream)
        t_pred = params.o_msg + params.o_fwd + nbytes / rate
        p2_links = system.compute_path(proxy, spec.dst).links
        return _Carrier(
            spec_idx=spec_idx,
            proxy=proxy,
            share=nbytes,
            two_hop=False,
            planned_rate=rate,
            planned_time=t_pred,
            deadline=policy.deadline_factor * t_pred,
            exit_fid=fid,
            redrive=True,
            extents=list(extents),
            obs=[(p2_links, fid)],
        )

    telemetry = ResilienceTelemetry()
    mode_used: dict[tuple[int, int], str] = {}
    round_results: list[FlowSimResult] = []
    retries_left = [policy.max_retries] * len(specs)

    # Round 0's work comes straight from the plan; later rounds replace
    # this with the per-spec retry emissions built below.  The ledgers
    # are sealed here, once the round-0 share boundaries are known.
    def initial_emit(prog: FlowProgram) -> list[_Carrier]:
        out = []
        for idx, plan in enumerate(plans):
            spec = specs[idx]
            key = (spec.src, spec.dst)
            if plan.strategy == "proxy":
                asg = plan.assignment
                rates = (
                    plan.weights
                    if plan.weights is not None
                    else [stream] * asg.k
                )
                cars = emit_carrier_group(
                    prog, idx, asg, spec.nbytes, plan.weights, rates, "mpath"
                )
                mode_used[key] = f"proxy:{asg.k}"
            else:
                rate = plan.effective_direct_rate or stream
                cars = [emit_direct(prog, idx, spec.nbytes, rate, "direct")]
                mode_used[key] = "direct"
            # Extent boundaries = chunk grid ∪ these share boundaries,
            # so every carrier range is a whole number of extents.
            led = ledgers[idx]
            cuts, lo = [], 0
            for car in cars:
                lo += car.share
                cuts.append(lo)
            led.seal(cuts[:-1])
            lo = 0
            for car in cars:
                car.extents = led.extents_in_range(lo, lo + car.share)
                lo += car.share
            out.extend(cars)
        return out

    def carrier_links(car: _Carrier) -> list[int]:
        """Every link the carrier's hops cross (observation routes)."""
        return [l for links, _ in car.obs for l in links]

    def carrier_str(car: _Carrier) -> str:
        """Attribution label: the staging proxy of a store-and-forward
        carrier (its buffer is the prime suspect, and it persists
        across re-routed hops so repeated strikes localise), else the
        direct route's links."""
        if car.proxy is not None:
            return f"proxy:{car.proxy}"
        links = sorted(set(carrier_links(car)))
        return "links:" + ",".join(str(l) for l in links)

    def credit_verified(
        car: _Carrier, exts: "list[Extent]", rnd: int
    ) -> tuple[int, list[Extent]]:
        """Credit destination arrivals, end-to-end verifying when the
        SDC defense is on; returns ``(fresh_bytes, corrupt_extents)``."""
        led = ledgers[car.spec_idx]
        if not verify_extents:
            return led.credit_delivered(exts), []
        key = led.key
        links = carrier_links(car)
        observed = []
        for e in exts:
            bad = sdc.wire_corrupts(key, e.eid, rnd, links) or (
                car.proxy is not None
                and sdc.proxy_corrupts(key, e.eid, rnd, car.proxy)
            )
            observed.append((e.checksum ^ _CORRUPT_MASK) if bad else e.checksum)
        return led.credit_received(exts, observed, carrier=carrier_str(car))

    def note_corruption(car: _Carrier, corrupt: "list[Extent]") -> None:
        """Telemetry + monitor strikes for one carrier's corrupt extents."""
        nb = sum(e.length for e in corrupt)
        telemetry.corrupt_extents_detected += len(corrupt)
        telemetry.corrupt_bytes_redriven += nb
        reg.counter("resilience.extents.corrupt").inc(len(corrupt))
        reg.counter("resilience.corrupt_bytes_redriven").inc(nb)
        if car.proxy is not None:
            monitor.record_corruption(proxy=car.proxy)
        else:
            monitor.record_corruption(links=carrier_links(car))

    def credit_carrier(
        car: _Carrier, ok: bool, result: FlowSimResult, rnd: int
    ) -> "list[Extent]":
        """Move the carrier's extents through the ledger.

        ``ok`` carriers delivered everything.  Failed carriers are
        cancelled at their deadline: the simulator's cutoff snapshot
        says how many bytes landed, and only whole extents inside that
        prefix are credited (delivered at the destination, or — for the
        first hop of a store-and-forward carrier — parked at the
        proxy).  The receiver drops anything arriving after the
        cancellation, so nothing here can double-deliver.  Returns the
        extents whose end-to-end verification failed (empty without an
        SDC model) — credited nothing, back to outstanding.
        """
        led = ledgers[car.spec_idx]
        if ok:
            _, corrupt = credit_verified(car, car.extents, rnd)
            reg.counter("resilience.extents.delivered").inc(
                len(car.extents) - len(corrupt)
            )
            return corrupt
        if not (faulted and policy.partial_progress):
            return []
        if car.two_hop:
            g2 = result.delivered_by_cutoff(car.exit_fid)
            g1 = result.delivered_by_cutoff(car.phase1_fid)
            cov2, _ = prefix_extents(car.extents, g2)
            cov1, _ = prefix_extents(car.extents, g1)
            got, corrupt = credit_verified(car, cov2, rnd)
            # Store-and-forward: phase 2 only starts once phase 1 has
            # fully landed, so cov2 is always a prefix of cov1 — the
            # difference sits at the proxy, owing only the second hop.
            led.credit_at_proxy(cov1[len(cov2):], car.proxy)
            reg.counter("resilience.extents.delivered").inc(
                len(cov2) - len(corrupt)
            )
            reg.counter("resilience.extents.at_proxy").inc(len(cov1) - len(cov2))
        else:
            g = result.delivered_by_cutoff(car.exit_fid)
            cov, _ = prefix_extents(car.extents, g)
            got, corrupt = credit_verified(car, cov, rnd)
            reg.counter("resilience.extents.delivered").inc(
                len(cov) - len(corrupt)
            )
        if got:
            telemetry.partial_credit_bytes += got
            reg.counter("resilience.partial_credit_bytes").inc(got)
        return corrupt

    def settle_round(
        carriers: list[_Carrier], result: FlowSimResult, rnd: int, T: float
    ) -> tuple[float, dict[int, list[_Carrier]]]:
        """Per-carrier verdicts, ledger credit, monitor feeding."""
        round_end = 0.0
        failed_by_spec: dict[int, list[_Carrier]] = {}
        for car in carriers:
            finish = result.finish(car.exit_fid)
            ok = finish <= car.deadline
            if not ok:
                fixed = car.planned_time - (
                    (2 if car.two_hop else 1) * car.share / car.planned_rate
                )
                elapsed = max(finish - fixed, 1e-12)
                achieved = car.share / elapsed
                planned_delivery = (
                    car.planned_rate / 2 if car.two_hop else car.planned_rate
                )
                ok = achieved >= policy.health_threshold * planned_delivery
            # Credit first: the integrity verdict needs the corrupt set.
            corrupt = credit_carrier(car, ok, result, rnd)
            verdict = "corrupt" if corrupt else ("ok" if ok else "failed")
            spec = specs[car.spec_idx]
            telemetry.attempts.append(
                PathAttempt(
                    round=rnd,
                    src=spec.src,
                    dst=spec.dst,
                    proxy=car.proxy,
                    share=car.share,
                    planned_time=car.planned_time,
                    deadline=T + car.deadline,
                    finish=T + finish,
                    verdict=verdict,
                )
            )
            reg.counter(f"resilience.attempts.{verdict}").inc()
            if math.isfinite(finish):
                reg.histogram("resilience.attempt_time_s").observe(finish)
            # A stalled flow's *mean* rate is its bytes diluted over the
            # whole stall (share / ~1e6 s ≈ a few B/s), so the dead-link
            # line must be relative to the stream ceiling, not to
            # STALL_RATE alone — 1e-6 of nominal is still ~1000x any
            # stall artefact and ~1e5 below any real degradation.
            down_rate = max(2 * STALL_RATE, 1e-6 * stream)
            for links, fid in car.obs:
                r = result[fid]
                rate_obs = r.mean_rate if math.isfinite(r.mean_rate) else stream
                monitor.observe(links, rate_obs)
                if not ok and rate_obs <= down_rate:
                    monitor.mark_down(links)
            if corrupt:
                note_corruption(car, corrupt)
            elif verify_extents and ok and car.extents:
                # A fully verified-clean round absolves any earlier
                # corruption suspicion against this carrier.
                if car.proxy is not None:
                    monitor.absolve(proxy=car.proxy)
                else:
                    monitor.absolve(links=carrier_links(car))
            if ok:
                round_end = max(round_end, finish)
            else:
                # Cancelled at the deadline: the receiver ignores the
                # late arrival; only the credited prefix counts.
                round_end = max(round_end, min(finish, car.deadline))
            if not ok or corrupt:
                # Corrupt extents are already back to OUTSTANDING in the
                # ledger; listing the carrier here drives the retry
                # machinery to re-split and re-drive them.
                failed_by_spec.setdefault(car.spec_idx, []).append(car)
        if verify_extents and sdc.stale_rate > 0.0:
            # Stale/duplicate replays of already-delivered extents: the
            # receiver's epoch check discards them on arrival, so they
            # cost nothing — but they are counted, and exactly-once
            # verification at the end proves none was double-credited.
            for idx, led in sorted(ledgers.items()):
                stale = sum(
                    1
                    for e in led.delivered_extents()
                    if sdc.stale_replay(led.key, e.eid, rnd)
                )
                if stale:
                    led.record_stale_drops(stale)
                    telemetry.stale_drops += stale
                    reg.counter("resilience.stale_dropped").inc(stale)
        monitor.end_round()
        monitor.advance(T + round_end)
        return round_end, failed_by_spec

    def best_effort_round(T0: float, rnd: int) -> float:
        """Final budget-capped direct/redrive round; returns its length.

        Every flow is cut off at the remaining budget and whatever
        landed by then is credited — the outcome reports the residue.
        """
        t_rem = (policy.budget_s - T0) if policy.budget_s is not None else math.inf
        if t_rem <= 0:
            return 0.0
        prog = FlowProgram(
            comm,
            batch_tol=batch_tol,
            fair_tol=fair_tol,
            lazy_frac=lazy_frac,
            capacity_fn=round_capacity_fn(T0),
            probe=probe,
            t_base=T0,
            sdc=sdc,
        )
        carriers: list[_Carrier] = []
        for idx, led in sorted(ledgers.items()):
            if led.complete:
                continue
            spec = specs[idx]
            for p in led.holders():
                p2 = system.compute_path(p, spec.dst).links
                if (
                    monitor.path_verdict(p2) != DOWN
                    and monitor.proxy_quarantine(p) != QUARANTINED
                ):
                    exts = led.held_extents(p)
                    carriers.append(
                        emit_redrive(
                            prog, idx, p, exts,
                            monitor.path_rate(p2), "best-effort-redrive",
                        )
                    )
                else:
                    led.release_proxy(p)
            outstanding = led.outstanding_extents()
            if outstanding:
                nb = sum(e.length for e in outstanding)
                rate = monitor.path_rate(direct_links[(spec.src, spec.dst)])
                carriers.append(
                    emit_direct(
                        prog, idx, nb, max(rate, STALL_RATE), "best-effort",
                        extents=outstanding,
                    )
                )
        if not carriers:
            return 0.0
        cutoffs = (
            {car.exit_fid: t_rem for car in carriers}
            if math.isfinite(t_rem)
            else None
        )
        result = yield (prog, round_events(T0), cutoffs)
        round_results.append(result)
        telemetry.rounds += 1
        reg.counter("resilience.rounds").inc()
        round_end = 0.0
        for car in carriers:
            finish = result.finish(car.exit_fid)
            ok = finish <= t_rem
            g = result.delivered_by_cutoff(car.exit_fid)
            cov, _ = prefix_extents(car.extents, g)
            got, corrupt = credit_verified(car, cov, rnd)
            reg.counter("resilience.extents.delivered").inc(len(cov) - len(corrupt))
            if corrupt:
                note_corruption(car, corrupt)
            if not ok and got:
                telemetry.partial_credit_bytes += got
                reg.counter("resilience.partial_credit_bytes").inc(got)
            spec = specs[car.spec_idx]
            telemetry.attempts.append(
                PathAttempt(
                    round=rnd,
                    src=spec.src,
                    dst=spec.dst,
                    proxy=car.proxy,
                    share=car.share,
                    planned_time=car.planned_time,
                    deadline=T0 + min(t_rem, car.deadline),
                    finish=T0 + finish,
                    verdict="corrupt" if corrupt else ("ok" if ok else "failed"),
                )
            )
            round_end = max(round_end, min(finish, t_rem))
        return round_end

    emit_round = initial_emit
    T = 0.0
    rnd = 0
    jitter_rng = _jitter_stream(policy, specs)
    while True:
        rspan_cm = tracer.span("transfer-round", cat="resilience", round=rnd)
        with rspan_cm as rspan:
            prog = FlowProgram(
                comm,
                batch_tol=batch_tol,
                fair_tol=fair_tol,
                lazy_frac=lazy_frac,
                capacity_fn=round_capacity_fn(T),
                probe=probe,
                t_base=T,
                sdc=sdc,
            )
            carriers = emit_round(prog)
            if policy.budget_s is not None and rnd > 0:
                # Retry rounds may not run past the budget: a carrier
                # still in flight at the budget line is cancelled there
                # (round 0 is ungated — the budget bounds *recovery*).
                t_rem = policy.budget_s - T
                for car in carriers:
                    car.deadline = min(car.deadline, t_rem)
            cutoffs = None
            if track_cutoffs:
                cutoffs = {}
                for car in carriers:
                    cutoffs[car.exit_fid] = car.deadline
                    if car.phase1_fid is not None:
                        cutoffs[car.phase1_fid] = car.deadline
            result = yield (prog, round_events(T), cutoffs)
            round_results.append(result)
            telemetry.rounds += 1
            reg.counter("resilience.rounds").inc()

            round_end, failed_by_spec = settle_round(carriers, result, rnd, T)
            rspan.set(
                carriers=len(carriers),
                failed=sum(len(v) for v in failed_by_spec.values()),
                t_start=T,
                round_end=T + round_end,
            )
        if tracer.enabled:
            tracer.record(
                f"round{rnd}",
                T,
                T + round_end,
                cat="resilience",
                carriers=len(carriers),
                failed=sum(len(v) for v in failed_by_spec.values()),
            )

        if not failed_by_spec:
            break

        # Recovery gate: exhausted retries abort (no budget) or divert to
        # the final best-effort round (budget set); a retry round that
        # would start past the budget diverts likewise.
        exhausted = [i for i in sorted(failed_by_spec) if retries_left[i] == 0]
        backoff = policy.backoff_base * policy.backoff_multiplier**rnd
        if jitter_rng is not None:
            # Full jitter (AWS style) at backoff_jitter=1: uniform on
            # [0, backoff]; partial jitter keeps a deterministic floor.
            u = float(jitter_rng.uniform(0.0, 1.0))
            backoff *= (1.0 - policy.backoff_jitter) + policy.backoff_jitter * u
        T_next = T + round_end + backoff
        over_budget = policy.budget_s is not None and T_next >= policy.budget_s
        if exhausted and policy.budget_s is None:
            spec = specs[exhausted[0]]
            reg.counter("resilience.aborts").inc()
            raise TransferAbortedError(
                f"transfer ({spec.src}, {spec.dst}) still failing after "
                f"{policy.max_retries} retries; giving up",
                telemetry=telemetry,
            )
        if exhausted or over_budget:
            telemetry.budget_exhausted = True
            reg.counter("resilience.budget_exhausted").inc()
            T_bf = (
                min(T_next, policy.budget_s)
                if policy.budget_s is not None
                else T_next
            )
            be_end = yield from best_effort_round(T_bf, rnd + 1)
            if be_end > 0:
                T, round_end = T_bf, be_end
            # else: no budget left for a final round — the clock stops at
            # the last real round's end, not at a phantom backoff.
            break

        retry_emits: list[Callable[[FlowProgram], list[_Carrier]]] = []
        for idx, failed in sorted(failed_by_spec.items()):
            spec = specs[idx]
            led = ledgers[idx]
            key = (spec.src, spec.dst)
            retries_left[idx] -= 1
            telemetry.failovers += len(failed)
            telemetry.retries += 1
            reg.counter("resilience.failovers").inc(len(failed))
            reg.counter("resilience.retries").inc()
            label = f"retry{rnd + 1}"

            # Extents parked at proxies ride the second hop only —
            # unless that hop is believed dead (probation counts as
            # alive: a flapping link gets re-probed, not abandoned).
            for p in led.holders():
                p2 = system.compute_path(p, spec.dst).links
                verdict = monitor.path_verdict(p2)
                if monitor.proxy_quarantine(p) == QUARANTINED:
                    # A corruption-quarantined holder's buffer cannot be
                    # trusted: abandon the parked copy and re-send those
                    # extents from the source over a clean carrier.
                    led.release_proxy(p)
                elif verdict in (HEALTHY, PROBATION):
                    exts = led.held_extents(p)
                    nb = sum(e.length for e in exts)
                    telemetry.bytes_redriven += nb
                    reg.counter("resilience.bytes_redriven").inc(nb)
                    reg.counter("resilience.extents.redriven").inc(len(exts))
                    retry_emits.append(
                        lambda prog, i=idx, pp=p, ee=tuple(exts), rr=monitor.path_rate(
                            p2
                        ), lb=label: [emit_redrive(prog, i, pp, list(ee), rr, lb)]
                    )
                else:
                    led.release_proxy(p)

            outstanding = led.outstanding_extents()
            if not outstanding:
                continue
            nbytes_out = sum(e.length for e in outstanding)
            telemetry.bytes_resent += nbytes_out
            reg.counter("resilience.bytes_resent").inc(nbytes_out)

            asg = plans[idx].assignment
            d_links = direct_links[key]
            healthy = []
            if asg is not None:
                healthy = [
                    j
                    for j in range(asg.k)
                    if asg.proxies[j] != spec.src
                    and monitor.path_verdict(asg.phase1[j].links + asg.phase2[j].links)
                    == HEALTHY
                    # A corruption-quarantined proxy is never a survivor,
                    # even when its route looks fast — its *buffer* is
                    # the suspect, not its links.
                    and monitor.proxy_quarantine(asg.proxies[j]) != QUARANTINED
                ]
            carriers_nodes = [asg.proxies[j] for j in healthy]
            rates = [
                monitor.path_rate(asg.phase1[j].links + asg.phase2[j].links) / 2
                for j in healthy
            ]

            # Failure-domain-aware top-up: replacements must not share a
            # link with anything believed degraded *or* with a surviving
            # carrier's route.  Only with at least one verified-healthy
            # survivor — with none, nothing is known-good to anchor on
            # and the direct path is the fallback.
            if (
                policy.use_replacements
                and healthy
                and len(healthy) < policy.min_healthy_paths
            ):
                bad_links = set(monitor.suspect_links())
                avoid = set(bad_links)
                for j in healthy:
                    avoid.update(asg.phase1[j].links)
                    avoid.update(asg.phase2[j].links)
                avoid_domains: set[int] = set()
                if policy.avoid_failure_domains:
                    from repro.torus.partition import link_failure_domains

                    shape = system.topology.shape
                    for l in bad_links:
                        if monitor.effective_capacity(l) <= 0.0:
                            avoid_domains |= link_failure_domains(l, shape)
                repl = planner.find_replacements(
                    spec.src,
                    spec.dst,
                    policy.min_healthy_paths - len(healthy),
                    exclude=set(asg.proxies) | {spec.src, spec.dst},
                    avoid_links=frozenset(avoid),
                    avoid_domains=frozenset(avoid_domains),
                )
                for j in range(repl.k):
                    carriers_nodes.append(repl.proxies[j])
                    rates.append(
                        monitor.path_rate(
                            repl.phase1[j].links + repl.phase2[j].links
                        )
                        / 2
                    )
                if repl.k:
                    telemetry.replacements += repl.k
                    reg.counter("resilience.replacements").inc(repl.k)

            use_direct = False
            if len(carriers_nodes) >= policy.min_healthy_paths:
                pass  # enough intact disjoint paths: re-split over them
            elif carriers_nodes:
                # Too few survivors for the k/2 law: add the direct path
                # as one more carrier (unless it is believed dead too).
                use_direct = monitor.path_verdict(d_links) != DOWN
            else:
                use_direct = True
                telemetry.degraded_to_direct += 1
                reg.counter("resilience.degraded_to_direct").inc()
            direct_rate = monitor.path_rate(d_links)
            if use_direct:
                carriers_nodes.append(spec.src)
                rates.append(max(direct_rate, STALL_RATE))

            # Whole-extent re-split: contiguous near-equal extent groups,
            # one per carrier — byte counts come from the groups, so the
            # flows stay exactly aligned with the ledger.
            k = min(len(carriers_nodes), len(outstanding))
            groups = group_extents(outstanding, k)
            carriers_nodes = carriers_nodes[: len(groups)]
            rates = rates[: len(groups)]

            if carriers_nodes == [spec.src]:
                retry_emits.append(
                    lambda p, i=idx, n=nbytes_out, r=rates[0], lb=label, ee=tuple(
                        outstanding
                    ): [emit_direct(p, i, n, r, lb, extents=list(ee))]
                )
                continue
            sub_asg = forced_assignment(system, spec.src, spec.dst, carriers_nodes)
            shares = [sum(e.length for e in g) for g in groups]
            # For the deadline math a self-carrier delivers at r (one
            # hop), a proxy at r/2 — emit_carrier_group handles it via
            # the single-stream rate per carrier (2x the delivery rate
            # for two-hop carriers).
            single_rates = [
                2 * r if node != spec.src else r
                for node, r in zip(carriers_nodes, rates)
            ]
            retry_emits.append(
                lambda p, i=idx, a=sub_asg, n=nbytes_out, sh=tuple(shares), sr=tuple(
                    single_rates
                ), gg=tuple(tuple(g) for g in groups), lb=label: emit_carrier_group(
                    p, i, a, n, None, sr, lb, shares=list(sh),
                    groups=[list(g) for g in gg],
                )
            )

        if not retry_emits:
            # Partial credit covered everything the failed carriers owed;
            # nothing is outstanding, so there is no round to run.
            break

        def emit_retries(
            prog: FlowProgram, emits=tuple(retry_emits)
        ) -> list[_Carrier]:
            out = []
            for fn in emits:
                out.extend(fn(prog))
            return out

        emit_round = emit_retries
        rnd += 1
        T = T_next

    # Every ledger must verify exactly-once delivery; a best-effort run
    # reports residue instead of demanding completeness.
    reports: list[LedgerReport] = []
    for idx, led in sorted(ledgers.items()):
        reports.append(
            led.verify(expect_complete=not telemetry.budget_exhausted)
        )
    residue = sum(r.residue_bytes for r in reports)
    delivered = float(sum(r.delivered_bytes for r in reports))
    if residue:
        reg.counter("resilience.residue_bytes").inc(residue)

    total = float(sum(s.nbytes for s in specs))
    return ResilientOutcome(
        makespan=T + round_end,
        total_bytes=total,
        delivered_bytes=delivered,
        mode_used=mode_used,
        telemetry=telemetry,
        plans=plans,
        round_results=round_results,
        ledgers={(s.src, s.dst): ledgers[i] for i, s in enumerate(specs)},
        integrity=reports,
        residue_bytes=int(residue),
        complete=all(r.complete for r in reports),
    )


def run_resilient_transfer(
    system: BGQSystem,
    specs: Sequence[TransferSpec],
    *,
    faults: "FaultModel | None" = None,
    trace: "FaultTrace | None" = None,
    policy: "RetryPolicy | None" = None,
    planner: "ResilientPlanner | None" = None,
    monitor: "HealthMonitor | None" = None,
    sdc: "SDCModel | None" = None,
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
    lazy_frac: float = 0.0,
    probe: "TimeSeriesProbe | None" = None,
) -> ResilientOutcome:
    """Execute transfers with fault detection, failover and retry.

    The serial driver of :func:`_resilient_execution`: each yielded
    round runs through its own ``prog.run`` call, exactly as the
    pre-generator executor did.

    Args:
        faults: *known* static faults — the planner routes around them.
        trace: *hidden* ground truth the executor only discovers through
            missed deadlines and observed rates.
        sdc: optional silent-corruption model; supplying one (even a
            null one) turns on end-to-end extent verification — corrupt
            arrivals are credited nothing and re-driven.
        policy: retry/deadline/backoff/budget knobs (default
            :class:`RetryPolicy`).
        planner: a pre-built (possibly pre-warmed) fault-aware planner.
        monitor: a pre-built health monitor (kept across calls to carry
            link beliefs from one transfer wave to the next).
        probe: a :class:`~repro.obs.metrics.TimeSeriesProbe`; each round
            runs with its absolute start time as the probe base, so the
            sampled series is monotone across rounds and backoffs.
    """
    gen = _resilient_execution(
        system, specs, faults=faults, trace=trace, policy=policy,
        planner=planner, monitor=monitor, sdc=sdc, batch_tol=batch_tol,
        fair_tol=fair_tol, lazy_frac=lazy_frac, probe=probe,
    )
    result: "FlowSimResult | None" = None
    try:
        while True:
            # Round boundary = natural cancellation yield point (tiny
            # round programs never reach the simulator's own poll).
            check_cancelled()
            prog, events, cutoffs = gen.send(result)
            result = prog.run(events, cutoffs=cutoffs)
    except StopIteration as stop:
        return stop.value


def run_resilient_transfer_many(
    system: BGQSystem,
    spec_sets: "Sequence[Sequence[TransferSpec]]",
    *,
    faults: "Sequence[FaultModel | None] | FaultModel | None" = None,
    traces: "Sequence[FaultTrace | None] | FaultTrace | None" = None,
    policy: "RetryPolicy | None" = None,
    monitors: "Sequence[HealthMonitor | None] | None" = None,
    sdc: "Sequence[SDCModel | None] | SDCModel | None" = None,
    batch_tol: float = 0.0,
    fair_tol: float = 0.0,
    lazy_frac: float = 0.0,
    probes: "Sequence[TimeSeriesProbe | None] | None" = None,
    on_error: str = "raise",
) -> "list[ResilientOutcome]":
    """Execute many *independent* resilient transfers, batching rounds.

    Each element of ``spec_sets`` is one transfer scenario, executed
    with exactly the logic of :func:`run_resilient_transfer` — its own
    ledgers, health monitor, planner, jitter stream and retry state —
    but the per-round flow simulations of all scenarios run together:
    every *wave* gathers each live scenario's next pending round and
    solves them in one block-diagonal
    :meth:`~repro.network.batchsim.BatchFlowSim.simulate_many` pass,
    with that scenario's capacity events and cutoff snapshots applied
    to its own block only.  Scenarios whose state diverges (one retries
    while another is done) simply drop out of later waves; nothing
    forces the survivors serial.  Per-scenario outcomes are
    byte-identical to serial :func:`run_resilient_transfer` calls for
    round programs below the incremental auto-gate (the executor's
    rounds are well under it; asserted by
    ``tests/test_resilience_batched.py``).

    A scenario that cannot batch falls back to a serial ``prog.run``
    **for that wave only**, and the downgrade is surfaced, not silent:
    the ``resilience.batch.fallback`` counter (plus a per-reason
    ``resilience.batch.fallback.<reason>`` counter: ``probe-set``,
    ``non-exact``) and a one-line log warning record why.

    Args:
        faults / traces: per-scenario sequences aligned with
            ``spec_sets`` (a single instance is shared by all).
        monitors: optional per-scenario pre-built health monitors.
        sdc: optional per-scenario silent-corruption models (a single
            model is shared by all).  Corruption decisions are pure
            functions of the model's seed and extent identity, so the
            batched waves make byte-identical decisions to serial runs.
        probes: optional per-scenario probes (a probed scenario runs
            its rounds serially — surfaced as above).
        on_error: ``"raise"`` propagates the first scenario's
            simulation failure (:class:`TransferAbortedError` etc.);
            ``"capture"`` stores the exception in that scenario's
            outcome slot and lets the rest finish.
    """
    from repro.network.batchsim import BatchFlowSim
    from repro.util.log import get_logger

    if on_error not in ("raise", "capture"):
        raise ConfigError(
            f"on_error must be 'raise' or 'capture', got {on_error!r}"
        )
    spec_sets = [list(s) for s in spec_sets]
    if not spec_sets:
        return []
    n = len(spec_sets)

    def _aligned(arg, name):
        if arg is None:
            return [None] * n
        if isinstance(arg, (FaultModel, FaultTrace, SDCModel)):
            return [arg] * n
        arg = list(arg)
        if len(arg) != n:
            raise ConfigError(
                f"{name} must align with spec_sets ({len(arg)} != {n})"
            )
        return arg

    faults_l = _aligned(faults, "faults")
    traces_l = _aligned(traces, "traces")
    monitors_l = _aligned(monitors, "monitors")
    probes_l = _aligned(probes, "probes")
    sdc_l = _aligned(sdc, "sdc")

    reg = get_registry()
    log = get_logger(__name__)
    exact = batch_tol == 0.0 and fair_tol == 0.0 and lazy_frac == 0.0

    gens = [
        _resilient_execution(
            system, spec_sets[i], faults=faults_l[i], trace=traces_l[i],
            policy=policy, monitor=monitors_l[i], sdc=sdc_l[i],
            batch_tol=batch_tol, fair_tol=fair_tol, lazy_frac=lazy_frac,
            probe=probes_l[i],
        )
        for i in range(n)
    ]
    outcomes: "list[ResilientOutcome | Exception | None]" = [None] * n
    # i -> (gen, prog, events, cutoffs): each live scenario's next round.
    pending: "dict[int, tuple]" = {}

    def advance(i: int, gen, payload, *, throw: bool):
        """Feed one simulation result (or error) back into scenario i."""
        try:
            nxt = gen.throw(payload) if throw else gen.send(payload)
        except StopIteration as stop:
            outcomes[i] = stop.value
            pending.pop(i, None)
        except Exception as exc:
            if on_error == "raise":
                raise
            reg.counter("resilience.batch.scenario_errors").inc()
            outcomes[i] = exc
            pending.pop(i, None)
        else:
            pending[i] = (gen, *nxt)

    for i, gen in enumerate(gens):
        advance(i, gen, None, throw=False)

    n_waves = 0
    while pending:
        n_waves += 1
        # Wave boundaries are the campaign's natural yield points: the
        # simulators only poll every ``cancel_every`` lockstep rounds,
        # so small round programs would otherwise outlive a cancelled
        # ambient scope.
        check_cancelled()
        idxs = sorted(pending)
        batchable: "list[int]" = []
        fallback: "list[tuple[int, str]]" = []
        for i in idxs:
            _, prog, _, _ = pending[i]
            if prog.probe is not None:
                fallback.append((i, "probe-set"))
            elif not exact:
                fallback.append((i, "non-exact"))
            else:
                batchable.append(i)
        results: "dict[int, object]" = {}
        if batchable:
            batch = BatchFlowSim(system.params).simulate_many(
                [
                    (
                        pending[i][1].capacity_fn or system.capacity,
                        pending[i][1].flows,
                    )
                    for i in batchable
                ],
                events=[pending[i][2] for i in batchable],
                cutoffs=[pending[i][3] for i in batchable],
                sdc=[pending[i][1].sdc for i in batchable],
                on_error="capture",
            )
            results.update(zip(batchable, batch))
        if fallback:
            reasons = sorted({r for _, r in fallback})
            log.warning(
                "resilient batch: %d/%d scenario round(s) fell back to "
                "serial simulation (%s)",
                len(fallback), len(idxs), ", ".join(reasons),
            )
            reg.counter("resilience.batch.fallback").inc(len(fallback))
            for _, reason in fallback:
                reg.counter(f"resilience.batch.fallback.{reason}").inc()
            for i, _ in fallback:
                _, prog, events, cutoffs = pending[i]
                try:
                    results[i] = prog.run(events, cutoffs=cutoffs)
                except Exception as exc:
                    results[i] = exc
        for i in idxs:
            gen = pending[i][0]
            res = results[i]
            advance(i, gen, res, throw=isinstance(res, Exception))

    reg.counter("resilience.batch.transfers").inc(n)
    reg.counter("resilience.batch.waves").inc(n_waves)
    return outcomes  # type: ignore[return-value]  # every slot filled
