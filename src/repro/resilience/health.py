"""Link-health estimation from observed flow throughputs.

The executor (:mod:`repro.resilience.executor`) never sees the ground
truth :class:`~repro.machine.faults.FaultTrace` — like a real runtime it
only sees what its own transfers achieve.  :class:`HealthMonitor` turns
those observations into per-link *effective capacity* estimates:

* an observed flow rate is a **lower bound** on every link it crossed
  (max-min sharing can only slow a flow down), so within one round the
  monitor keeps the *maximum* rate seen per link;
* at round end the fresh estimates **replace** the stored ones for the
  links observed, so a link that recovers (a transient fault window
  ending) is re-trusted as soon as a fast flow crosses it again;
* links whose estimate falls below ``suspect_fraction`` of nominal are
  flagged, and whole paths get a ``healthy`` / ``degraded`` / ``down``
  verdict the retry logic keys on.

Known static faults (a :class:`~repro.machine.faults.FaultModel`) seed
the initial belief, so the monitor starts out distrusting links the
operator already cordoned.
"""

from __future__ import annotations

from typing import Iterable

from repro.machine.faults import FaultModel
from repro.machine.system import BGQSystem
from repro.util.validation import ConfigError

#: Verdicts returned by :meth:`HealthMonitor.path_verdict`.
HEALTHY = "healthy"
DEGRADED = "degraded"
DOWN = "down"
#: Half-open: the link was believed dead but its re-probe interval has
#: elapsed — a path through it may carry a *small* probing share again.
PROBATION = "probation"
#: A carrier (link or proxy) accumulated enough corruption strikes to be
#: distrusted outright: planners route around it until its re-probe
#: interval elapses (half-open, :data:`PROBATION`) and a verified-clean
#: delivery absolves it.
QUARANTINED = "quarantined"


class HealthMonitor:
    """Estimates per-link effective capacity from observed throughputs.

    Args:
        system: the machine whose nominal capacities anchor the scale.
        faults: *known* static faults seeding the initial estimates
            (degraded links start distrusted, failed links start down).
        suspect_fraction: links whose effective capacity falls below this
            fraction of nominal are flagged as suspect.  The default 0.4
            sits safely below the 0.5 rate ratio that plain two-way
            max-min sharing produces, so fair contention alone never
            condemns a healthy link.
        reprobe_interval: simulated seconds after which a link believed
            *down* enters probation (half-open): paths through it report
            :data:`PROBATION` instead of :data:`DOWN`, so a flapping link
            isn't excluded for the rest of the transfer.  ``None``
            disables re-probing (down stays down until re-observed).
            The same interval times corruption-quarantine re-probes.
        corruption_threshold: checksum-mismatch strikes (attributed via
            :meth:`record_corruption`) after which a link or proxy is
            quarantined.  Capacity estimates and corruption trust are
            orthogonal axes: a quarantined link may be *fast* — it just
            cannot be believed.
    """

    def __init__(
        self,
        system: BGQSystem,
        *,
        faults: "FaultModel | None" = None,
        suspect_fraction: float = 0.4,
        reprobe_interval: "float | None" = None,
        corruption_threshold: int = 2,
    ):
        if not 0 < suspect_fraction < 1:
            raise ConfigError(
                f"suspect_fraction must be in (0, 1), got {suspect_fraction}"
            )
        if reprobe_interval is not None and reprobe_interval <= 0:
            raise ConfigError(
                f"reprobe_interval must be > 0, got {reprobe_interval}"
            )
        if corruption_threshold < 1:
            raise ConfigError(
                f"corruption_threshold must be >= 1, got {corruption_threshold}"
            )
        self.system = system
        self.faults = faults or FaultModel()
        self.suspect_fraction = suspect_fraction
        self.reprobe_interval = reprobe_interval
        self.corruption_threshold = corruption_threshold
        self._estimates: dict[int, float] = {}
        self._pending: dict[int, float] = {}
        self._down_since: dict[int, float] = {}
        self._link_strikes: dict[int, int] = {}
        self._proxy_strikes: dict[int, int] = {}
        self._q_link_since: dict[int, float] = {}
        self._q_proxy_since: dict[int, float] = {}
        self._now = 0.0

    # -- state access ------------------------------------------------------------

    def nominal(self, link: int) -> float:
        """Pristine capacity of one directed link [B/s]."""
        return float(self.system.capacity(link))

    def effective_capacity(self, link: int) -> float:
        """Current belief about one link's usable capacity [B/s].

        Observation-backed estimates win; otherwise the known static
        fault state applies to the nominal capacity.
        """
        est = self._estimates.get(link)
        if est is not None:
            return est
        return self.nominal(link) * self.faults.link_factor(link)

    def link_fraction(self, link: int) -> float:
        """Effective capacity as a fraction of nominal (0.0 = down).

        A hard-quarantined link reports 0.0 regardless of how fast it
        is: bytes that cannot be trusted are bytes not moved.  In
        corruption probation (half-open) the capacity belief applies
        again so a probing share can be planned across it.
        """
        if self.link_quarantine(link) == QUARANTINED:
            return 0.0
        est = self._estimates.get(link)
        if est is None:
            # Without an observation the belief is nominal × static
            # factor, so the fraction is the factor itself — no need to
            # look the capacity up just to divide it back out.
            return self.faults.link_factor(link)
        nom = self.nominal(link)
        return est / nom if nom > 0 else 0.0

    @property
    def is_pristine(self) -> bool:
        """True while nothing degrades any link: no observation-backed
        estimate recorded, an empty static fault set, and no corruption
        strikes on record.  Planners use this to skip per-link belief
        queries on healthy systems."""
        return (
            not self._estimates
            and self.faults.is_null
            and not self._link_strikes
            and not self._proxy_strikes
        )

    def is_suspect(self, link: int) -> bool:
        """True when the link's estimate falls below the suspect line."""
        return self.link_fraction(link) < self.suspect_fraction

    def suspect_links(self) -> list[int]:
        """All observed-or-known links currently below the suspect line
        (hard-quarantined links report fraction 0.0, so they qualify)."""
        known = set(self._estimates)
        known.update(self.faults.degraded_links)
        known.update(self.faults.failed_links)
        known.update(self._q_link_since)
        return sorted(l for l in known if self.is_suspect(l))

    # -- observation -------------------------------------------------------------

    def observe(self, links: Iterable[int], rate: float) -> None:
        """Record one flow's achieved rate over the links it crossed.

        The rate is a lower bound on each link's capacity; per round the
        best (highest) bound per link is kept until :meth:`end_round`.
        """
        if rate < 0:
            raise ConfigError(f"observed rate must be >= 0, got {rate}")
        for link in links:
            prev = self._pending.get(link)
            if prev is None or rate > prev:
                self._pending[link] = float(rate)

    def mark_down(self, links: Iterable[int]) -> None:
        """Force links to zero effective capacity immediately."""
        for link in links:
            self._estimates[link] = 0.0
            self._pending.pop(link, None)
            self._down_since.setdefault(link, self._now)

    def advance(self, now: float) -> None:
        """Move the monitor's clock to simulated time ``now``.

        The executor calls this as rounds progress; the clock anchors
        :meth:`in_probation`'s elapsed-time check.  Time never rewinds.
        """
        if now > self._now:
            self._now = now

    def in_probation(self, link: int) -> bool:
        """True when ``link`` is believed down but its re-probe interval
        has elapsed — eligible to carry a probing share (half-open)."""
        if self.reprobe_interval is None:
            return False
        since = self._down_since.get(link)
        return (
            since is not None
            and self.effective_capacity(link) <= 0.0
            and self._now - since >= self.reprobe_interval
        )

    def end_round(self) -> None:
        """Commit this round's observations, replacing prior estimates
        for the links observed (recent evidence wins — recovery shows)."""
        self._estimates.update(self._pending)
        for link, rate in self._pending.items():
            if rate > 0.0:
                self._down_since.pop(link, None)
        self._pending.clear()

    # -- corruption trust ---------------------------------------------------------

    def record_corruption(
        self, *, links: Iterable[int] = (), proxy: "int | None" = None
    ) -> None:
        """Attribute one detected checksum mismatch to a carrier.

        Each call adds one strike to every named link and to the proxy;
        an entity reaching ``corruption_threshold`` strikes is
        quarantined (its re-probe clock starts — and *restarts* if a
        half-open probe corrupts again).
        """
        for link in links:
            n = self._link_strikes.get(link, 0) + 1
            self._link_strikes[link] = n
            if n >= self.corruption_threshold:
                self._q_link_since[link] = self._now
        if proxy is not None:
            n = self._proxy_strikes.get(proxy, 0) + 1
            self._proxy_strikes[proxy] = n
            if n >= self.corruption_threshold:
                self._q_proxy_since[proxy] = self._now

    def absolve(
        self, *, links: Iterable[int] = (), proxy: "int | None" = None
    ) -> None:
        """Clear corruption strikes after a verified-clean delivery
        crossed the carrier — the half-open probe (or plain good
        behaviour) restores trust."""
        for link in links:
            self._link_strikes.pop(link, None)
            self._q_link_since.pop(link, None)
        if proxy is not None:
            self._proxy_strikes.pop(proxy, None)
            self._q_proxy_since.pop(proxy, None)

    def _quarantine_state(self, since: "float | None") -> "str | None":
        if since is None:
            return None
        if (
            self.reprobe_interval is not None
            and self._now - since >= self.reprobe_interval
        ):
            return PROBATION
        return QUARANTINED

    def link_quarantine(self, link: int) -> "str | None":
        """``"quarantined"``, ``"probation"`` (half-open) or ``None``."""
        return self._quarantine_state(self._q_link_since.get(link))

    def proxy_quarantine(self, node: int) -> "str | None":
        """``"quarantined"``, ``"probation"`` (half-open) or ``None``."""
        return self._quarantine_state(self._q_proxy_since.get(node))

    def corruption_strikes(self, *, link: "int | None" = None,
                           proxy: "int | None" = None) -> int:
        """Current strike count of one link or proxy."""
        if link is not None:
            return self._link_strikes.get(link, 0)
        if proxy is not None:
            return self._proxy_strikes.get(proxy, 0)
        return 0

    def quarantined_links(self) -> list[int]:
        """Links under quarantine or half-open re-probe, ascending."""
        return sorted(self._q_link_since)

    def quarantined_proxies(self) -> list[int]:
        """Proxies under quarantine or half-open re-probe, ascending."""
        return sorted(self._q_proxy_since)

    def reprobe_countdown(
        self, *, link: "int | None" = None, proxy: "int | None" = None
    ) -> "float | None":
        """Simulated seconds until a quarantined carrier turns half-open
        (0.0 = already in probation; ``None`` = not quarantined or
        re-probing disabled)."""
        since = (
            self._q_link_since.get(link)
            if link is not None
            else self._q_proxy_since.get(proxy)
        )
        if since is None or self.reprobe_interval is None:
            return None
        return max(0.0, self.reprobe_interval - (self._now - since))

    # -- path-level queries -------------------------------------------------------

    def path_rate(self, links: Iterable[int], *, cap: "float | None" = None) -> float:
        """Believed bottleneck rate along a route, clipped at ``cap``
        (default: the single-stream ceiling)."""
        if cap is None:
            cap = min(self.system.params.stream_cap, self.system.params.mem_bw)
        rate = min((self.effective_capacity(l) for l in links), default=cap)
        return min(rate, cap)

    def path_verdict(self, links: Iterable[int]) -> str:
        """``"down"`` when any link is believed dead or hard-quarantined
        for corruption, ``"probation"`` when every such link has aged
        past the re-probe interval (the path may carry a small probing
        share again), ``"degraded"`` when any link is suspect,
        ``"healthy"`` otherwise."""
        verdict = HEALTHY
        saw_dead = False
        for link in links:
            q = self.link_quarantine(link)
            if q == QUARANTINED:
                return DOWN
            if q == PROBATION:
                saw_dead = True
            if self.effective_capacity(link) <= 0.0:
                if not self.in_probation(link):
                    return DOWN
                saw_dead = True
            elif self.is_suspect(link):
                verdict = DEGRADED
        if saw_dead:
            return PROBATION
        return verdict
