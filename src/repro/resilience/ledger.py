"""End-to-end integrity ledger for resilient transfers.

Every :class:`~repro.core.multipath.TransferSpec` is decomposed into
**extents** — contiguous byte ranges aligned to a chunk grid plus the
round-0 carrier share boundaries — each carrying a checksum over a
deterministic pseudo-payload.  The extent is the unit of retransmission
and of accounting:

* a carrier cancelled at its deadline credits the extents its byte-exact
  partial progress fully covered (prefix order — carriers stream their
  range front to back), so only the *outstanding* tail is re-sent;
* a store-and-forward proxy that finished phase 1 but not phase 2 holds
  its extents **at the proxy**: only the second hop needs re-driving;
* at completion :meth:`TransferLedger.verify` asserts every extent was
  delivered exactly once — duplicates and gaps raise
  :class:`IntegrityError` with the offending extent ids.

The ledger is pure bookkeeping: it never touches the simulator, so the
fault-free fast path can skip it entirely (no behaviour change) while
every faulted path gets machine-checkable exactly-once semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.util.checksum import extent_checksum
from repro.util.validation import ConfigError, SimulationError

#: Default extent granularity: 256 KiB — small enough that a carrier
#: killed mid-share strands at most one partial extent per carrier,
#: large enough that extent bookkeeping stays negligible next to the
#: shares (a 32 MiB transfer over 4 carriers is ~128 extents).
DEFAULT_CHUNK_BYTES = 256 * 1024

#: Extent lifecycle states.
OUTSTANDING = "outstanding"
AT_PROXY = "at-proxy"
DELIVERED = "delivered"


class IntegrityError(SimulationError):
    """Exactly-once delivery was violated (or a checksum mismatched).

    ``extent_ids`` carries the offending extents; ``kind`` is one of
    ``"duplicate"``, ``"gap"`` or ``"corrupt"``; ``carrier`` names the
    attributed carrier (``"links:3,7"``, ``"proxy:42"``) when the
    violation can be pinned on one — retry logs and chaos reports can
    name the culprit without re-deriving it.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str,
        extent_ids: Sequence[int],
        carrier: "str | None" = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.extent_ids = tuple(extent_ids)
        self.carrier = carrier


@dataclass(frozen=True)
class Extent:
    """One contiguous byte range of a transfer.

    ``eid`` is the extent's index in offset order (unique per transfer);
    ``checksum`` is a CRC-32 over the extent's deterministic
    pseudo-payload (see :func:`extent_checksum`).
    """

    eid: int
    offset: int
    length: int
    checksum: int

    @property
    def end(self) -> int:
        return self.offset + self.length


def prefix_extents(
    extents: Sequence[Extent], nbytes: float
) -> tuple[list[Extent], list[Extent]]:
    """Split an ordered extent group at a byte-exact progress mark.

    A carrier streams its group front to back, so ``nbytes`` of
    delivered payload covers a prefix of the group.  Returns
    ``(covered, rest)`` where ``covered`` are the extents *fully*
    inside the prefix — a partially-arrived extent is discarded and
    re-sent whole (the extent is the retransmit granularity).
    """
    covered: list[Extent] = []
    rest: list[Extent] = []
    used = 0.0
    for ext in extents:
        if used + ext.length <= nbytes + 1e-9:
            covered.append(ext)
            used += ext.length
        else:
            rest.append(ext)
    return covered, rest


@dataclass
class LedgerReport:
    """Outcome of one :meth:`TransferLedger.verify` pass."""

    key: tuple[int, int]
    total_bytes: int
    delivered_bytes: int
    residue_bytes: int
    n_extents: int
    n_delivered: int
    n_outstanding: int
    n_at_proxy: int
    duplicates: tuple[int, ...]
    complete: bool
    #: Checksum mismatches caught (and re-driven) during the transfer.
    n_corrupt_detected: int = 0
    #: Carriers attributed for those mismatches, detection order.
    corrupt_carriers: tuple[str, ...] = ()
    #: Stale duplicate arrivals the receiver dedup dropped uncredited.
    stale_drops: int = 0
    #: Bytes credited despite a checksum mismatch — the silent-corruption
    #: defense's core invariant is that this is **always zero**.
    corrupted_acknowledged_bytes: int = 0


class TransferLedger:
    """Extent accounting for one transfer.

    Build one per :class:`~repro.core.multipath.TransferSpec`, then
    :meth:`seal` it with the round-0 share boundaries.  Extent
    boundaries are the union of the chunk grid and the share
    boundaries, so every round-0 carrier range is a whole number of
    extents and partial-progress credit never splits an extent across
    carriers.
    """

    def __init__(
        self,
        key: tuple[int, int],
        nbytes: int,
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ):
        if nbytes <= 0:
            raise ConfigError(f"nbytes must be > 0, got {nbytes}")
        if chunk_bytes < 1:
            raise ConfigError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        self.key = (int(key[0]), int(key[1]))
        self.nbytes = int(nbytes)
        self.chunk_bytes = int(chunk_bytes)
        self._extents: tuple[Extent, ...] = ()
        self._state: list[str] = []
        self._holder: list["int | None"] = []  # proxy node per AT_PROXY extent
        self._deliveries: list[int] = []  # delivery count per extent
        self._duplicates: list[int] = []
        self._corruption_events: list[tuple[int, "str | None"]] = []
        self._stale_drops = 0
        # Observed checksum recorded at credit time, per delivered extent
        # (None = credited without end-to-end verification).
        self._acked_checksum: list["int | None"] = []
        self._sealed = False

    # -- construction ------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        return self._sealed

    def seal(self, share_boundaries: Iterable[int] = ()) -> None:
        """Fix the extent partition: chunk grid ∪ ``share_boundaries``.

        Call once, right after round-0 shares are chosen.  Boundaries
        outside ``(0, nbytes)`` are ignored.
        """
        if self._sealed:
            raise ConfigError("ledger already sealed")
        cuts = {0, self.nbytes}
        cuts.update(
            range(self.chunk_bytes, self.nbytes, self.chunk_bytes)
        )
        for b in share_boundaries:
            b = int(b)
            if 0 < b < self.nbytes:
                cuts.add(b)
        marks = sorted(cuts)
        exts = []
        for i, (lo, hi) in enumerate(zip(marks, marks[1:])):
            exts.append(
                Extent(
                    eid=i,
                    offset=lo,
                    length=hi - lo,
                    checksum=extent_checksum(self.key, lo, hi - lo),
                )
            )
        self._extents = tuple(exts)
        n = len(exts)
        self._state = [OUTSTANDING] * n
        self._holder = [None] * n
        self._deliveries = [0] * n
        self._acked_checksum = [None] * n
        self._sealed = True

    # -- queries -----------------------------------------------------------------

    @property
    def extents(self) -> tuple[Extent, ...]:
        self._require_sealed()
        return self._extents

    def _require_sealed(self) -> None:
        if not self._sealed:
            raise ConfigError("ledger not sealed; call seal() first")

    def extents_in_range(self, lo: int, hi: int) -> list[Extent]:
        """All extents fully inside ``[lo, hi)`` (round-0 carrier ranges
        are whole extents by construction, so this is exact for them)."""
        self._require_sealed()
        return [e for e in self._extents if e.offset >= lo and e.end <= hi]

    def outstanding_extents(self) -> list[Extent]:
        """Extents not yet delivered and not parked at a proxy."""
        self._require_sealed()
        return [
            e for e in self._extents if self._state[e.eid] == OUTSTANDING
        ]

    def delivered_extents(self) -> list[Extent]:
        """Extents already credited as delivered (the stale-replay fault
        targets these: a duplicate arrival of one must be dropped)."""
        self._require_sealed()
        return [e for e in self._extents if self._state[e.eid] == DELIVERED]

    def held_extents(self, proxy: "int | None" = None) -> list[Extent]:
        """Extents parked at a store-and-forward proxy (``proxy=None``:
        at any proxy)."""
        self._require_sealed()
        return [
            e
            for e in self._extents
            if self._state[e.eid] == AT_PROXY
            and (proxy is None or self._holder[e.eid] == proxy)
        ]

    def holders(self) -> list[int]:
        """Proxies currently holding extents, ascending."""
        self._require_sealed()
        return sorted(
            {
                h
                for st, h in zip(self._state, self._holder)
                if st == AT_PROXY and h is not None
            }
        )

    @property
    def delivered_bytes(self) -> int:
        self._require_sealed()
        return sum(
            e.length for e in self._extents if self._state[e.eid] == DELIVERED
        )

    @property
    def residue_bytes(self) -> int:
        """Bytes not yet at the destination (outstanding or at a proxy)."""
        return self.nbytes - self.delivered_bytes

    @property
    def complete(self) -> bool:
        self._require_sealed()
        return all(st == DELIVERED for st in self._state)

    @property
    def n_corrupt_detected(self) -> int:
        """Checksum mismatches caught so far (each re-driven, not credited)."""
        return len(self._corruption_events)

    @property
    def corrupt_carriers(self) -> tuple[str, ...]:
        """Attributed carriers of the mismatches, detection order."""
        return tuple(c for _, c in self._corruption_events if c is not None)

    @property
    def stale_drops(self) -> int:
        """Stale duplicate arrivals dropped uncredited by receiver dedup."""
        return self._stale_drops

    @property
    def corrupted_acknowledged_bytes(self) -> int:
        """Bytes credited despite a checksum mismatch — must stay zero.

        Audited from evidence, not assumed: every verified credit path
        records the checksum it *observed*, and this re-compares each
        delivered extent's recorded observation against the sealed
        truth.  The chaos campaigns assert it is zero on every run.
        """
        return sum(
            e.length
            for e in self._extents
            if self._state[e.eid] == DELIVERED
            and self._acked_checksum[e.eid] is not None
            and self._acked_checksum[e.eid] != e.checksum
        )

    # -- state transitions -------------------------------------------------------

    def credit_at_proxy(self, extents: Iterable[Extent], proxy: int) -> None:
        """Park extents at a proxy (phase 1 landed; phase 2 still owed).

        Already-delivered extents are left alone — a stale phase-1
        arrival after the destination got the bytes elsewhere changes
        nothing about delivery.
        """
        self._require_sealed()
        for ext in extents:
            self._check_member(ext)
            if self._state[ext.eid] == DELIVERED:
                continue
            self._state[ext.eid] = AT_PROXY
            self._holder[ext.eid] = int(proxy)

    def release_proxy(self, proxy: int) -> list[Extent]:
        """Return a proxy's parked extents to outstanding (its phase-2
        path is believed dead; the source re-sends them)."""
        self._require_sealed()
        released = []
        for ext in self._extents:
            if self._state[ext.eid] == AT_PROXY and self._holder[ext.eid] == proxy:
                self._state[ext.eid] = OUTSTANDING
                self._holder[ext.eid] = None
                released.append(ext)
        return released

    def credit_delivered(
        self,
        extents: Iterable[Extent],
        *,
        checksums: "Sequence[int] | None" = None,
    ) -> int:
        """Record extents arriving at the destination; returns the bytes
        newly credited.

        A second delivery of the same extent is recorded as a duplicate
        (it will fail :meth:`verify`) rather than raising here — the
        executor's receiver-side dedup *prevents* duplicates, and the
        ledger is the instrument that proves it did.

        ``checksums``, when given, are end-to-end verified against the
        sealed extent checksums; any mismatch raises
        :class:`IntegrityError` immediately (corruption is never
        recorded as delivery).
        """
        self._require_sealed()
        extents = list(extents)
        if checksums is not None:
            if len(checksums) != len(extents):
                raise ConfigError("one checksum per extent required")
            bad = [
                e.eid
                for e, c in zip(extents, checksums)
                if int(c) != e.checksum
            ]
            if bad:
                raise IntegrityError(
                    f"transfer {self.key}: checksum mismatch on extents {bad}",
                    kind="corrupt",
                    extent_ids=bad,
                )
        fresh = 0
        for i, ext in enumerate(extents):
            self._check_member(ext)
            self._deliveries[ext.eid] += 1
            if self._state[ext.eid] == DELIVERED:
                self._duplicates.append(ext.eid)
                continue
            self._state[ext.eid] = DELIVERED
            self._holder[ext.eid] = None
            if checksums is not None:
                self._acked_checksum[ext.eid] = int(checksums[i])
            fresh += ext.length
        return fresh

    def credit_received(
        self,
        extents: Iterable[Extent],
        checksums: Sequence[int],
        *,
        carrier: "str | None" = None,
    ) -> tuple[int, list[Extent]]:
        """Verify-then-credit one carrier's arrivals; the corruption-aware
        sibling of :meth:`credit_delivered`.

        Each arriving extent's observed ``checksum`` is compared with the
        sealed one.  A match credits the extent exactly as
        :meth:`credit_delivered` would.  A mismatch does **not** raise
        and credits nothing: the extent is `corrupted, not lost` — it
        returns to outstanding (releasing any proxy hold) for re-drive,
        and the mismatch is recorded with its attributed ``carrier``
        (``"links:..."`` / ``"proxy:..."``) for quarantine decisions.

        Returns ``(fresh_bytes, corrupt_extents)``.
        """
        self._require_sealed()
        extents = list(extents)
        if len(checksums) != len(extents):
            raise ConfigError("one checksum per extent required")
        fresh = 0
        corrupt: list[Extent] = []
        for ext, obs in zip(extents, checksums):
            self._check_member(ext)
            if int(obs) != ext.checksum:
                corrupt.append(ext)
                self._corruption_events.append((ext.eid, carrier))
                if self._state[ext.eid] != DELIVERED:
                    # Corrupted, not lost: back to outstanding for re-drive.
                    self._state[ext.eid] = OUTSTANDING
                    self._holder[ext.eid] = None
                continue
            self._deliveries[ext.eid] += 1
            if self._state[ext.eid] == DELIVERED:
                self._duplicates.append(ext.eid)
                continue
            self._state[ext.eid] = DELIVERED
            self._holder[ext.eid] = None
            self._acked_checksum[ext.eid] = int(obs)
            fresh += ext.length
        return fresh, corrupt

    def record_stale_drops(self, n: int = 1) -> None:
        """Count stale duplicate arrivals the receiver dedup dropped
        (never credited — exactly-once is preserved by construction)."""
        if n < 0:
            raise ConfigError(f"n must be >= 0, got {n}")
        self._stale_drops += int(n)

    def _check_member(self, ext: Extent) -> None:
        if (
            not 0 <= ext.eid < len(self._extents)
            or self._extents[ext.eid] != ext
        ):
            raise ConfigError(
                f"extent {ext!r} does not belong to transfer {self.key}"
            )

    # -- verification ------------------------------------------------------------

    def verify(self, *, expect_complete: bool = True) -> LedgerReport:
        """Assert exactly-once delivery; returns the integrity report.

        Raises :class:`IntegrityError` on any duplicate delivery, and —
        when ``expect_complete`` — on gaps (undelivered extents).  A
        budget-exhausted best-effort run verifies with
        ``expect_complete=False``: residue is reported, not raised.
        """
        self._require_sealed()
        dupes = sorted(set(self._duplicates))
        if dupes:
            raise IntegrityError(
                f"transfer {self.key}: extents delivered more than once: "
                f"{dupes}",
                kind="duplicate",
                extent_ids=dupes,
            )
        gaps = [
            e.eid for e in self._extents if self._state[e.eid] != DELIVERED
        ]
        if expect_complete and gaps:
            raise IntegrityError(
                f"transfer {self.key}: extents never delivered: {gaps}",
                kind="gap",
                extent_ids=gaps,
            )
        return LedgerReport(
            key=self.key,
            total_bytes=self.nbytes,
            delivered_bytes=self.delivered_bytes,
            residue_bytes=self.residue_bytes,
            n_extents=len(self._extents),
            n_delivered=sum(1 for s in self._state if s == DELIVERED),
            n_outstanding=sum(1 for s in self._state if s == OUTSTANDING),
            n_at_proxy=sum(1 for s in self._state if s == AT_PROXY),
            duplicates=tuple(dupes),
            complete=not gaps,
            n_corrupt_detected=self.n_corrupt_detected,
            corrupt_carriers=self.corrupt_carriers,
            stale_drops=self._stale_drops,
            corrupted_acknowledged_bytes=self.corrupted_acknowledged_bytes,
        )


def group_extents(
    extents: Sequence[Extent], k: int
) -> list[list[Extent]]:
    """Partition ordered extents into ``k`` contiguous groups of
    near-equal byte size (every group non-empty; ``k`` capped at the
    extent count).

    The retry path re-splits *whole extents* over carriers — byte
    counts per carrier come out of the groups, not the other way
    around, so no rounding can detach the flows from the ledger.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    extents = list(extents)
    if not extents:
        return []
    k = min(k, len(extents))
    remaining = sum(e.length for e in extents)
    groups: list[list[Extent]] = []
    acc: list[Extent] = []
    taken = 0
    for pos, ext in enumerate(extents):
        acc.append(ext)
        taken += ext.length
        # Close the group once it reached its fair share of what's left,
        # as long as enough extents remain to keep later groups
        # non-empty.
        left = len(extents) - pos - 1
        groups_to_fill = k - len(groups) - 1
        if groups_to_fill > 0 and (
            left == groups_to_fill  # must close now: one extent per group left
            or (taken >= remaining / (groups_to_fill + 1) and left > groups_to_fill)
        ):
            groups.append(acc)
            remaining -= taken
            acc, taken = [], 0
    groups.append(acc)
    return groups
