"""Fault-aware planning — Algorithm 1 with the paper's §IV-A assumption
("the absence of ... network failures") removed.

:class:`ResilientPlanner` wraps :class:`~repro.core.planner.TransferPlanner`
and overrides its two hooks:

* the **proxy search** excludes cordoned nodes outright and iteratively
  re-searches around proxies whose two-hop route crosses a hard-failed
  link or falls below ``min_path_fraction`` of nominal capacity — the
  search space of Algorithm 1 is large (``2L`` directions × offsets), so
  a blocked direction usually has an intact neighbour;
* the **direct-vs-proxy decision** re-runs the Eq. 4–5 threshold against
  *effective* rates: a degraded direct path lowers ``r`` in Eq. 1, a
  degraded carrier lowers its contribution to the aggregate proxy rate
  in Eq. 2, and the crossover point moves accordingly.  When nothing on
  the pair's routes is degraded the decision reduces exactly to the
  fault-free planner's (byte-identical plans — tested).

Effective capacities come from the *known* static fault set and, when a
:class:`~repro.resilience.health.HealthMonitor` is attached, from live
observations — whichever believes a link is slower wins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.core.multipath import TransferSpec
from repro.core.planner import PlannedTransfer, TransferPlanner
from repro.core.proxy_select import (
    ProxyAssignment,
    ProxyPlan,
    find_proxies,
    find_proxies_for_pair,
)
from repro.machine.faults import FaultModel
from repro.machine.system import BGQSystem
from repro.resilience.health import QUARANTINED, HealthMonitor
from repro.util.validation import ConfigError


@dataclass
class ResilientTransfer(PlannedTransfer):
    """A :class:`~repro.core.planner.PlannedTransfer` with fault context.

    Attributes:
        weights: per-carrier byte-split weights (``None`` = the paper's
            equal split; set when carriers have unequal effective rates
            so all paths finish together).
        dropped_proxies: proxies the search rejected for crossing failed
            or too-degraded links.
        path_factors: per-carrier effective-capacity fraction (1.0 =
            pristine two-hop route).
        effective_direct_rate: believed bottleneck rate of the direct
            path [B/s] (the ``r`` used in the Eq. 4 comparison).
    """

    weights: "tuple[float, ...] | None" = None
    dropped_proxies: tuple[int, ...] = ()
    path_factors: tuple[float, ...] = ()
    effective_direct_rate: "float | None" = None


class ResilientPlanner(TransferPlanner):
    """Plans transfers around known faults and observed degradation.

    Args:
        faults: the *known* static fault set (cordoned nodes, degraded
            and failed links).  Unknown faults are the executor's
            problem — see :mod:`repro.resilience.executor`.
        monitor: optional live health estimates folded into the
            effective capacities (worst belief wins).
        min_path_fraction: a candidate proxy whose two-hop route falls
            below this fraction of nominal capacity is dropped and
            searched around.
        replan_rounds: how many exclusion-and-research iterations the
            proxy search may take before accepting what it has.
    """

    def __init__(
        self,
        system: BGQSystem,
        *,
        faults: "FaultModel | None" = None,
        monitor: "HealthMonitor | None" = None,
        min_path_fraction: float = 0.5,
        replan_rounds: int = 4,
        **kwargs,
    ):
        super().__init__(system, **kwargs)
        self.faults = faults or FaultModel()
        self.monitor = monitor
        if not 0 < min_path_fraction <= 1:
            raise ConfigError(
                f"min_path_fraction must be in (0, 1], got {min_path_fraction}"
            )
        if replan_rounds < 0:
            raise ConfigError(f"replan_rounds must be >= 0, got {replan_rounds}")
        self.min_path_fraction = min_path_fraction
        self.replan_rounds = replan_rounds
        self._dropped: dict[tuple[int, int], tuple[int, ...]] = {}

    # -- effective capacities -----------------------------------------------------

    def link_fraction(self, link: int) -> float:
        """Worst believed capacity fraction of one link (static ∧ observed)."""
        f = self.faults.link_factor(link)
        if self.monitor is not None:
            f = min(f, self.monitor.link_fraction(link))
        return f

    def path_fraction(self, links: Iterable[int]) -> float:
        """Worst link fraction along a route (1.0 when empty)."""
        mon = self.monitor
        if self.faults.is_null and (mon is None or mon.is_pristine):
            return 1.0
        frac = 1.0
        for l in links:
            f = self.link_fraction(l)
            if f < frac:
                frac = f
                if frac <= 0.0:
                    break
        return frac

    def _carrier_fraction(self, asg: ProxyAssignment, i: int) -> float:
        return min(
            self.path_fraction(asg.phase1[i].links),
            self.path_fraction(asg.phase2[i].links),
        )

    def _path_rate(self, links: tuple[int, ...]) -> float:
        """Believed bottleneck rate [B/s], clipped at the stream ceiling."""
        rate = min(
            (self.system.capacity(l) * self.link_fraction(l) for l in links),
            default=self.model.stream_rate,
        )
        return min(rate, self.model.stream_rate)

    def dropped_proxies(self, pair: tuple[int, int]) -> tuple[int, ...]:
        """Proxies the last search rejected for this (src, dst) pair."""
        return self._dropped.get(pair, ())

    def _untrusted_proxies(self) -> set[int]:
        """Nodes hard-quarantined for corruption — never planned as
        proxies (half-open probation nodes stay eligible so a probing
        share can absolve them)."""
        if self.monitor is None:
            return set()
        return {
            p
            for p in self.monitor.quarantined_proxies()
            if self.monitor.proxy_quarantine(p) == QUARANTINED
        }

    def find_replacements(
        self,
        src: int,
        dst: int,
        n: int,
        *,
        exclude: Iterable[int] = (),
        avoid_links: "frozenset[int] | set[int]" = frozenset(),
        avoid_domains: "frozenset[int] | set[int]" = frozenset(),
        max_offset: "int | None" = None,
    ) -> ProxyAssignment:
        """Failure-domain-aware replacement search for evicted proxies.

        Finds up to ``n`` fresh proxies for ``(src, dst)`` whose two-hop
        routes avoid:

        * ``exclude`` nodes (evicted proxies, busy endpoints) and every
          node the static fault set cordons;
        * ``avoid_links`` — the executor passes every link the health
          monitor currently marks degraded or down *plus* the routes of
          surviving carriers, so replacements share no torus link with
          either;
        * ``avoid_domains`` — optional midplane failure domains (see
          :func:`repro.torus.partition.node_failure_domain`): a
          replacement must not route through a midplane holding a
          degraded link, protecting against correlated failures.

        Returns a (possibly empty) :class:`ProxyAssignment` — the
        executor degrades gracefully when nothing qualifies.
        """
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        excluded = set(exclude)
        excluded.update(self.faults.failed_nodes)
        excluded.update(self._untrusted_proxies())
        return find_proxies_for_pair(
            self.system,
            src,
            dst,
            max_proxies=n,
            min_proxies=1,
            max_offset=self.max_offset if max_offset is None else max_offset,
            exclude=frozenset(excluded),
            avoid_links=frozenset(avoid_links),
            avoid_domains=frozenset(avoid_domains),
        )

    # -- hook overrides -----------------------------------------------------------

    def _search_proxies(self, pairs: tuple[tuple[int, int], ...]) -> ProxyPlan:
        """Algorithm 1's search, excluding cordoned nodes and iteratively
        re-searching around carriers with failed/too-degraded routes."""
        exclude: set[int] = set(self.faults.failed_nodes)
        exclude.update(self._untrusted_proxies())
        dropped: dict[tuple[int, int], list[int]] = {p: [] for p in pairs}
        for attempt in range(self.replan_rounds + 1):
            plan = find_proxies(
                self.system,
                pairs,
                max_proxies=self.max_proxies,
                min_proxies=self.min_proxies,
                max_offset=self.max_offset,
                exclude=frozenset(exclude),
            )
            any_dropped = False
            filtered: dict[tuple[int, int], ProxyAssignment] = {}
            for pair, asg in plan.assignments.items():
                keep = [
                    i
                    for i in range(asg.k)
                    if self._carrier_fraction(asg, i) >= self.min_path_fraction
                ]
                if len(keep) < asg.k:
                    bad = [asg.proxies[i] for i in range(asg.k) if i not in keep]
                    dropped[pair].extend(bad)
                    exclude.update(bad)
                    any_dropped = True
                filtered[pair] = replace(
                    asg,
                    proxies=tuple(asg.proxies[i] for i in keep),
                    phase1=tuple(asg.phase1[i] for i in keep),
                    phase2=tuple(asg.phase2[i] for i in keep),
                )
            if not any_dropped or attempt == self.replan_rounds:
                break
        self._dropped = {p: tuple(v) for p, v in dropped.items()}
        return ProxyPlan(assignments=filtered, min_proxies=self.min_proxies)

    def _decide(self, spec: TransferSpec, asg: ProxyAssignment) -> ResilientTransfer:
        """Eq. 4–5 against effective rates (exact fall-through when the
        pair's routes are pristine, so fault-free plans are identical)."""
        direct_links = self.system.compute_path(spec.src, spec.dst).links
        direct_frac = self.path_fraction(direct_links)
        fracs = tuple(self._carrier_fraction(asg, i) for i in range(asg.k))
        pair = (spec.src, spec.dst)
        pristine = direct_frac >= 1.0 and all(f >= 1.0 for f in fracs)
        if pristine:
            base = super()._decide(spec, asg)
            return ResilientTransfer(
                spec=base.spec,
                strategy=base.strategy,
                assignment=base.assignment,
                predicted_time=base.predicted_time,
                predicted_speedup=base.predicted_speedup,
                weights=None,
                dropped_proxies=self.dropped_proxies(pair),
                path_factors=fracs,
                effective_direct_rate=self.model.stream_rate,
            )

        eff_direct = self._path_rate(direct_links)
        rates = tuple(
            min(
                self._path_rate(asg.phase1[i].links),
                self._path_rate(asg.phase2[i].links),
            )
            for i in range(asg.k)
        )
        agg_rate = sum(rates)
        if eff_direct <= 0.0 and agg_rate <= 0.0:
            raise ConfigError(
                f"transfer {pair}: the direct path and every candidate proxy "
                f"path cross failed links; no usable route exists"
            )
        p = self.system.params
        direct_t = (
            self.model.direct_time(spec.nbytes, path_rate=eff_direct)
            if eff_direct > 0.0
            else float("inf")
        )
        # Eq. 2 with a rate-proportional split: both phases move all
        # nbytes at the aggregate rate, so t' = 2 o_msg + o_fwd + 2 d / Σr.
        proxy_t = (
            2 * p.o_msg + p.o_fwd + 2 * spec.nbytes / agg_rate
            if agg_rate > 0.0
            else float("inf")
        )
        # Below min_proxies the k/2 law cannot win on a healthy machine,
        # but a *dead* direct path makes any surviving carrier worth it.
        enough = asg.k >= self.min_proxies or (eff_direct <= 0.0 and asg.k >= 1)
        if enough and spec.nbytes >= asg.k and proxy_t < direct_t:
            equal = all(r == rates[0] for r in rates)
            return ResilientTransfer(
                spec=spec,
                strategy="proxy",
                assignment=asg,
                predicted_time=proxy_t,
                predicted_speedup=direct_t / proxy_t if proxy_t > 0 else 1.0,
                weights=None if equal else rates,
                dropped_proxies=self.dropped_proxies(pair),
                path_factors=fracs,
                effective_direct_rate=eff_direct,
            )
        if eff_direct <= 0.0:
            raise ConfigError(
                f"transfer {pair}: direct path crosses a failed link and no "
                f"usable proxy path exists"
            )
        return ResilientTransfer(
            spec=spec,
            strategy="direct",
            assignment=asg,
            predicted_time=direct_t,
            predicted_speedup=1.0,
            weights=None,
            dropped_proxies=self.dropped_proxies(pair),
            path_factors=fracs,
            effective_direct_rate=eff_direct,
        )
