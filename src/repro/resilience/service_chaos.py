"""Live-service chaos campaigns (``repro chaos --service``).

Where :mod:`repro.resilience.chaos` drives the *executor* through fault
grids, this module chaos-tests the **whole service stack**: it boots a
real :class:`~repro.service.service.ScenarioService`, drives it with the
PR 6 load generator (open loop — overload is offered, not negotiated),
and injects three kinds of trouble from one seeded schedule:

* **worker crashes** (``inject="crash"``) — the watchdog must restart
  the worker and eventually quarantine the poison request;
* **worker hangs** (``inject="hang"``) — the watchdog's hang timeout
  must hard-kill and fail the request;
* **link-fault traces** (``fault_seed`` on transfer requests) — the
  resilient executor must retry outstanding ledger extents, batched;
* **silent corruption** (``sdc_seed`` on transfer requests) — a seeded
  non-fail-stop :class:`~repro.machine.faults.SDCModel` corrupts
  payloads in flight; integrity verification must detect every corrupt
  arrival, credit nothing for it, and either deliver over clean paths
  or land a deterministic ``corrupt-data`` quarantine record;
* **overload bursts** — a step-profile window at ``overload_factor``
  times the base arrival rate exercises shedding and the degradation
  ladder.

While the campaign runs, a sampler records goodput / shed-rate /
degrade-tier trajectories from the service gauges.  Afterwards a
**drain** phase re-drives every request that did not land a
deterministic terminal record (shed or client-rejected under overload)
with backpressure submits until it does.  The final per-request records
are *deterministic*: completed payloads are pure functions of the
request params, and the only failures are the deterministically
injected ones (``poison:``/``hang:``).  They are journaled to a WAL as
they land, so a campaign SIGKILLed at any point can be rerun with
``resume=True`` and its results file is **byte-identical** to an
uninterrupted run's.

Machine-verified invariants (schema ``chaos-service/1``):

``all-terminal``
    every scheduled request reached a client-visible terminal state in
    the live phase (completed/failed/shed/rejected — nothing lost);
``all-resolved``
    after the drain, every request has a deterministic terminal record
    (completed payload or injected failure);
``exactly-once``
    no request's payload was credited twice (at most one completed
    record per request id across all retry attempts), and every
    completed checksum verifies;
``ledger-conservation``
    fault-traced transfer payloads conserve bytes
    (``delivered + residue == total``);
``no-corrupt-acked``
    no final payload acknowledged a single corrupted byte
    (``corrupted_acknowledged_bytes == 0`` everywhere);
``metrics-monotone``
    no ``service.*``/``resilience.*`` counter ran backwards.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, replace as dc_replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.obs.metrics import counter_violations, get_registry
from repro.service.journal import Journal, load_journal
from repro.service.request import (
    COMPLETED,
    FAILED,
    ScenarioRequest,
    canonical_json,
    payload_checksum,
)
from repro.service.service import ScenarioService, ServiceConfig
from repro.util.atomicio import atomic_write_json
from repro.util.log import get_logger
from repro.util.validation import ConfigError

log = get_logger(__name__)

#: Results-file schema tag.
SERVICE_CHAOS_FORMAT = "chaos-service/1"

_MiB = 1 << 20

#: Error marker of each injection kind: the only failure a scheduled
#: injection may deterministically land as.
_INJECT_ERROR_MARKER = {"crash": "poison:", "hang": "hang:"}


@dataclass(frozen=True)
class ServiceCampaignConfig:
    """One live-service chaos campaign, fully seeded.

    ``rate`` is the base offered load; a window covering
    ``overload_frac`` of the horizon runs at ``overload_factor`` times
    that.  ``fault_frac`` of the transfer requests carry a seeded
    ``fault_seed`` link-fault trace; ``sdc_frac`` carry a seeded
    ``sdc_seed`` silent-corruption model; ``crash_frac``/``hang_frac``
    of all requests are replaced with worker crash/hang injections.
    """

    n_requests: int = 200
    seed: int = 2014
    name: str = "chaos-service"
    workers: int = 2
    queue_cap: int = 32
    admission: str = "adaptive"
    max_attempts: int = 2
    hang_timeout_s: float = 1.5
    rate: float = 60.0
    overload_factor: float = 8.0
    overload_frac: float = 0.25
    nnodes: int = 32
    nbytes: int = _MiB
    fault_frac: float = 0.10
    sdc_frac: float = 0.05
    crash_frac: float = 0.02
    hang_frac: float = 0.01
    fault_events: int = 3
    sample_dt_s: float = 0.2

    def __post_init__(self):
        if self.n_requests < 1:
            raise ConfigError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.rate <= 0:
            raise ConfigError(f"rate must be > 0, got {self.rate}")
        if self.overload_factor < 1:
            raise ConfigError(
                f"overload_factor must be >= 1, got {self.overload_factor}"
            )
        if not 0 <= self.overload_frac < 1:
            raise ConfigError(
                f"overload_frac must be in [0, 1), got {self.overload_frac}"
            )
        for frac_name in ("fault_frac", "sdc_frac", "crash_frac", "hang_frac"):
            v = getattr(self, frac_name)
            if not 0 <= v <= 1:
                raise ConfigError(f"{frac_name} must be in [0, 1], got {v}")
        if self.hang_timeout_s <= 0:
            raise ConfigError(
                f"hang_timeout_s must be > 0, got {self.hang_timeout_s}"
            )

    def to_dict(self) -> dict:
        """JSON-able config (part of the campaign identity)."""
        return {
            "n_requests": self.n_requests,
            "seed": self.seed,
            "name": self.name,
            "workers": self.workers,
            "queue_cap": self.queue_cap,
            "admission": self.admission,
            "max_attempts": self.max_attempts,
            "hang_timeout_s": self.hang_timeout_s,
            "rate": self.rate,
            "overload_factor": self.overload_factor,
            "overload_frac": self.overload_frac,
            "nnodes": self.nnodes,
            "nbytes": self.nbytes,
            "fault_frac": self.fault_frac,
            "sdc_frac": self.sdc_frac,
            "crash_frac": self.crash_frac,
            "hang_frac": self.hang_frac,
            "fault_events": self.fault_events,
        }


def build_campaign_schedule(config: ServiceCampaignConfig):
    """The campaign's deterministic request schedule.

    A Poisson arrival stream over a step profile (base rate → overload
    burst → base rate) is generated for ~1.25x the target count and
    trimmed to exactly ``n_requests``, then the injection pass rewrites
    a seeded subset of requests into crashes, hangs, fault-traced
    transfers, and silent-corruption transfers.  Same config →
    byte-identical schedule.
    """
    from repro.loadgen.arrivals import Schedule, build_schedule, make_profile
    from repro.loadgen.mix import get_mix

    c = config
    mean_rate = c.rate * (1 - c.overload_frac) + c.rate * c.overload_factor * (
        c.overload_frac
    )
    # Oversize the horizon so the seeded Poisson draw can't come up short.
    duration_s = 1.25 * c.n_requests / mean_rate
    if c.overload_frac > 0 and c.overload_factor > 1:
        pre = (1 - c.overload_frac) / 2 * duration_s
        burst = c.overload_frac * duration_s
        profile = make_profile(
            "step",
            rate=c.rate,
            duration_s=duration_s,
            steps=(
                (pre, c.rate),
                (burst, c.rate * c.overload_factor),
                (duration_s - pre - burst, c.rate),
            ),
        )
    else:
        profile = make_profile("constant", rate=c.rate, duration_s=duration_s)
    schedule = build_schedule(
        process="poisson",
        profile=profile,
        mix=get_mix("transfer"),
        seed=c.seed,
        run_id=c.name,
        params_override={"nnodes": c.nnodes, "nbytes": c.nbytes},
    )
    if len(schedule.items) < c.n_requests:
        raise ConfigError(
            f"seeded schedule produced {len(schedule.items)} arrivals "
            f"< n_requests {c.n_requests}; raise rate or lower n_requests"
        )
    items = list(schedule.items[: c.n_requests])
    for i, item in enumerate(items):
        rng = np.random.default_rng([c.seed, 7, i])
        u = float(rng.random())
        req = item.request
        if u < c.crash_frac:
            req = ScenarioRequest(
                id=req.id, kind="spin", params={"duration_s": 0.005},
                inject="crash",
            )
        elif u < c.crash_frac + c.hang_frac:
            # No deadline: the watchdog's hang timeout is the backstop
            # under test (its failure record is deterministic).
            req = ScenarioRequest(id=req.id, kind="spin", inject="hang")
        elif float(rng.random()) < c.fault_frac:
            req = dc_replace(
                req,
                params={
                    **req.params,
                    "fault_seed": int(rng.integers(0, 2**31)),
                    "fault_events": c.fault_events,
                },
            )
        elif float(rng.random()) < c.sdc_frac:
            # Silent corruption: the seeded SDCModel never alters the
            # simulated flow — only end-to-end verification can see it.
            req = dc_replace(
                req,
                params={
                    **req.params,
                    "sdc_seed": int(rng.integers(0, 2**31)),
                    "sdc_flip_links": 8,
                    "sdc_corrupt_proxies": 2,
                    "sdc_rate": 0.7,
                    "sdc_stale_rate": 0.1,
                },
            )
        items[i] = dc_replace(item, request=req)
    return Schedule(
        items=tuple(items),
        profile=schedule.profile,
        process=schedule.process,
        mix=schedule.mix,
        seed=schedule.seed,
    )


def campaign_identity(config: ServiceCampaignConfig, schedule) -> str:
    """sha256 identity tying the journal to config + offered load."""
    doc = {"config": config.to_dict(), "schedule": schedule.checksum()}
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


def _base_id(rid: str) -> str:
    """Strip the client-retry (``-rK``) / drain (``-dK``) suffix."""
    for marker in ("-r", "-d"):
        head, sep, tail = rid.rpartition(marker)
        if sep and tail.isdigit():
            return head
    return rid


def _trusted(record, inject=None, *, sdc=False) -> bool:
    """Is a replayed journal record a deterministic terminal record?

    Completed records must checksum-verify and be *canonical* — not
    produced under the degradation ladder (a ``degraded`` payload is a
    legitimate client response under overload, but not a pure function
    of the request params, so the campaign re-derives the canonical
    record in the drain).  Failed records are trusted only when the
    *schedule* injected that failure (``inject`` is the scheduled
    request's injection) and the error carries the matching marker: a
    genuine request killed by the hang watchdog on a slow machine says
    ``hang:`` too, but its canonical record is a completion — it must
    re-run.  For corruption-seeded requests (``sdc``), a
    ``corrupt-data`` quarantine failure is also canonical: the service
    only raises it when the ladder did not cap planning, so it is a
    deterministic function of the request params.  Shed records are
    retriable by construction and never trusted.
    """
    status = record.get("status")
    if status == COMPLETED:
        payload = record.get("payload")
        return (
            payload is not None
            and not payload.get("degraded")
            and record.get("checksum") == payload_checksum(payload)
        )
    if status == FAILED:
        error = record.get("error") or ""
        if sdc and "corrupt-data:" in error:
            return True
        marker = _INJECT_ERROR_MARKER.get(inject)
        return marker is not None and error.startswith(marker)
    return False


class _Sampler(threading.Thread):
    """Samples service gauges into trajectory arrays while live."""

    def __init__(self, svc: ScenarioService, dt_s: float, completed_count):
        super().__init__(daemon=True)
        self._svc = svc
        self._dt = dt_s
        self._completed_count = completed_count
        self._halt = threading.Event()
        self.t: list[float] = []
        self.inflight: list[int] = []
        self.queue_depth: list[int] = []
        self.degrade_tier: list[int] = []
        self.shed_rate: list[float] = []
        self.completed: list[int] = []

    def run(self) -> None:
        reg = get_registry()
        t0 = time.monotonic()
        while not self._halt.is_set():
            gauges = reg.snapshot()["gauges"]
            stats = self._svc.stats()
            self.t.append(time.monotonic() - t0)
            self.inflight.append(int(stats.get("inflight", 0)))
            self.queue_depth.append(int(stats.get("queue_depth", 0)))
            self.degrade_tier.append(int(stats.get("degrade_tier", 0)))
            self.shed_rate.append(float(gauges.get("service.shed_rate", 0.0)))
            self.completed.append(int(self._completed_count()))
            self._halt.wait(self._dt)

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)

    def to_dict(self) -> dict:
        return {
            "t_s": self.t,
            "inflight": self.inflight,
            "queue_depth": self.queue_depth,
            "degrade_tier": self.degrade_tier,
            "shed_rate": self.shed_rate,
            "completed": self.completed,
        }


def run_service_campaign(
    config: "ServiceCampaignConfig | None" = None,
    *,
    out_path: "Path | str",
    journal_path: "Path | str | None" = None,
    resume: bool = False,
    progress: "Callable[[str], None] | None" = None,
) -> dict:
    """Run (or resume) a live-service chaos campaign; returns a summary.

    Writes the deterministic per-request results document to
    ``out_path`` (schema ``chaos-service/1``, atomic) and journals
    every terminal record to ``journal_path`` (default:
    ``<out>.journal``) as it lands.  The returned summary additionally
    carries the non-deterministic live measurements — goodput,
    shed counts, gauge trajectories, wall time — for
    ``benchmarks/record.py`` to fold into ``BENCH_resilience.json``.
    """
    from repro.loadgen.runner import InProcessTransport, LoadConfig, run_schedule

    config = config or ServiceCampaignConfig()
    out_path = Path(out_path)
    journal_path = (
        Path(journal_path)
        if journal_path is not None
        else out_path.with_name(out_path.name + ".journal")
    )
    say = progress or (lambda _msg: None)

    schedule = build_campaign_schedule(config)
    sha = campaign_identity(config, schedule)
    # The failure-trust model needs to know what each request *should*
    # do: a "hang:" record is deterministic only for a scheduled hang.
    inject_by_base = {
        _base_id(item.request.id): item.request.inject
        for item in schedule.items
    }
    sdc_by_base = {
        _base_id(item.request.id): item.request.params.get("sdc_seed") is not None
        for item in schedule.items
    }

    done: "dict[str, dict]" = {}
    if resume and journal_path.exists():
        journal_sha, records = load_journal(journal_path)
        if journal_sha != sha:
            raise ConfigError(
                f"journal {journal_path} belongs to a different campaign "
                f"({journal_sha[:12]}... != {sha[:12]}...); rerun without --resume"
            )
        for rid, record in records.items():
            base = _base_id(rid)
            if (
                base in inject_by_base
                and base not in done
                and _trusted(
                    record,
                    inject_by_base[base],
                    sdc=sdc_by_base.get(base, False),
                )
            ):
                done[base] = dict(record, id=base)
        journal = Journal.open_for_append(journal_path, sha)
    else:
        journal = Journal.create(journal_path, sha)

    todo = [
        item for item in schedule.items
        if _base_id(item.request.id) not in done
    ]
    say(
        f"chaos-service campaign {config.name!r}: "
        f"{len(schedule.items)} requests, {len(done)} journaled, "
        f"{len(todo)} to run"
    )

    reg = get_registry()
    counters_before = dict(reg.snapshot()["counters"])
    journal_lock = threading.Lock()
    live_records: "list[dict]" = []
    record_by_id: "dict[str, dict]" = {}
    record_landed = threading.Condition(journal_lock)
    completed_n = [0]

    def on_result(result) -> None:
        record = result.record()
        with record_landed:
            journal.append(record)
            live_records.append(record)
            record_by_id[record["id"]] = record
            if record["status"] == COMPLETED:
                completed_n[0] += 1
            record_landed.notify_all()

    def await_record(rid: str, timeout_s: float = 30.0) -> dict:
        # on_result fires *after* the per-request done event, so a
        # result() return does not imply the journal append happened
        # yet — wait for the callback explicitly.
        deadline = time.monotonic() + timeout_s
        with record_landed:
            while rid not in record_by_id:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"result {rid} never reached the journal sink"
                    )
                record_landed.wait(remaining)
            return record_by_id[rid]

    svc_config = ServiceConfig(
        workers=config.workers,
        queue_cap=config.queue_cap,
        admission=config.admission,
        max_attempts=config.max_attempts,
        hang_timeout_s=config.hang_timeout_s,
        kill_grace_s=0.1,
    )
    load_cfg = LoadConfig(
        rate=config.rate,
        duration_s=max(schedule.duration_s, 1e-3),
        seed=config.seed,
        mix="transfer",
        mode="open",
    )

    invariant_failures: "list[str]" = []
    report = None
    wall_t0 = time.perf_counter()
    try:
        with ScenarioService(svc_config, on_result=on_result) as svc:
            sampler = _Sampler(
                svc, config.sample_dt_s, lambda: completed_n[0]
            )
            sampler.start()
            try:
                if todo:
                    from repro.loadgen.arrivals import Schedule

                    sub = Schedule(
                        items=tuple(todo),
                        profile=schedule.profile,
                        process=schedule.process,
                        mix=schedule.mix,
                        seed=schedule.seed,
                    )
                    report = run_schedule(sub, InProcessTransport(svc), load_cfg)
            finally:
                sampler.stop()

            # -- drain: re-drive everything without a deterministic
            #    terminal record (overload sheds / client rejections).
            # Settle first: every *admitted* request must have reached
            # the journal sink, or the drain could re-run a request
            # whose completion is still in flight (a real duplicate).
            svc.wait_all(timeout=240.0)
            settle_deadline = time.monotonic() + 30.0
            while time.monotonic() < settle_deadline:
                with record_landed:
                    landed = len(record_by_id)
                if landed >= int(svc.stats().get("admitted", 0)):
                    break
                time.sleep(0.01)
            finals: "dict[str, dict]" = dict(done)
            with journal_lock:
                snapshot = list(live_records)
            for record in snapshot:
                base = _base_id(record["id"])
                if base not in finals and _trusted(
                    record,
                    inject_by_base.get(base),
                    sdc=sdc_by_base.get(base, False),
                ):
                    finals[base] = dict(record, id=base)
            pending = [
                item for item in schedule.items
                if _base_id(item.request.id) not in finals
            ]
            drain_round = 0
            while pending and drain_round < 20:
                drain_round += 1
                say(
                    f"drain round {drain_round}: {len(pending)} request(s) "
                    "without a deterministic record"
                )
                # The drain wants canonical results: wait for the
                # degradation ladder to step back to the direct tier
                # and the breakers (tripped by injected worker crashes)
                # to close before re-driving, or degraded plans and
                # admission sheds would just bounce for more rounds.
                recover_deadline = time.monotonic() + 30.0
                while time.monotonic() < recover_deadline:
                    stats = svc.stats()
                    if (
                        int(stats.get("degrade_tier", 0)) == 0
                        and stats.get("planner_breaker") == "closed"
                        and stats.get("simulator_breaker") == "closed"
                    ):
                        break
                    time.sleep(0.05)
                # Re-drive in worker-sized chunks: flooding the queue
                # here would re-escalate the ladder and the round's own
                # results would come back degraded (= untrusted).
                chunk = max(1, config.workers)
                for lo in range(0, len(pending), chunk):
                    batch = []
                    for item in pending[lo : lo + chunk]:
                        req = dc_replace(
                            item.request,
                            id=f"{item.request.id}-d{drain_round}",
                        )
                        svc.submit(req, block=True, timeout=120.0)
                        batch.append(req)
                    for req in batch:
                        svc.result(req.id, timeout=240.0)
                        record = await_record(req.id)
                        base = _base_id(req.id)
                        if _trusted(
                            record,
                            inject_by_base.get(base),
                            sdc=sdc_by_base.get(base, False),
                        ):
                            finals[base] = dict(record, id=base)
                pending = [
                    item for item in schedule.items
                    if _base_id(item.request.id) not in finals
                ]
            if pending:
                invariant_failures.append(
                    f"all-resolved: {len(pending)} request(s) never landed "
                    f"a deterministic record, e.g. "
                    f"{pending[0].request.id}"
                )
    finally:
        journal.close()
    wall_s = time.perf_counter() - wall_t0
    counters_after = dict(reg.snapshot()["counters"])

    # -- invariants ------------------------------------------------------
    invariants: "dict[str, bool]" = {}

    def check(name: str, ok: bool, detail: str = "") -> None:
        invariants[name] = bool(ok)
        if not ok:
            invariant_failures.append(f"{name}: {detail}" if detail else name)

    live_outcomes = report.outcomes if report is not None else []
    check(
        "all-terminal",
        len(live_outcomes) == len(todo),
        f"{len(live_outcomes)} outcomes for {len(todo)} driven requests",
    )

    check(
        "all-resolved",
        not any(f.startswith("all-resolved") for f in invariant_failures)
        and len(finals) == len(schedule.items),
        f"{len(finals)}/{len(schedule.items)} resolved",
    )

    # Exactly-once ledger credit, three layers: no service request id
    # was journaled twice (per-id credit is the service's guarantee —
    # client retries and drain re-drives use fresh ids on purpose); no
    # logical request collected more than one *canonical* completion;
    # and every completed checksum verifies.
    canonical_per_base: "dict[str, int]" = {}
    seen_ids: "dict[str, int]" = {}
    checksum_bad: "list[str]" = []
    with journal_lock:
        all_records = list(live_records)
    for record in all_records:
        seen_ids[record["id"]] = seen_ids.get(record["id"], 0) + 1
        if record["status"] == COMPLETED:
            payload = record.get("payload") or {}
            if record.get("checksum") != payload_checksum(record.get("payload")):
                checksum_bad.append(record["id"])
            if not payload.get("degraded"):
                base = _base_id(record["id"])
                canonical_per_base[base] = canonical_per_base.get(base, 0) + 1
    dupe_ids = sorted(i for i, n in seen_ids.items() if n > 1)
    dupes = sorted(b for b, n in canonical_per_base.items() if n > 1)
    check(
        "exactly-once",
        not dupes and not dupe_ids and not checksum_bad,
        f"duplicate canonical completions {dupes[:5]}, "
        f"duplicate journal ids {dupe_ids[:5]}, "
        f"bad checksums {checksum_bad[:5]}",
    )

    unconserved = []
    for base, record in finals.items():
        payload = record.get("payload") or {}
        if payload.get("faulted"):
            if (
                payload.get("delivered_bytes", 0)
                + payload.get("residue_bytes", 0)
                != payload.get("total_bytes", 0)
            ):
                unconserved.append(base)
    check(
        "ledger-conservation",
        not unconserved,
        f"bytes not conserved for {unconserved[:5]}",
    )

    # The tentpole invariant: no payload anywhere — live, drained, or
    # replayed from a journal — ever acknowledged a corrupted byte.
    corrupt_acked = [
        base
        for base, record in finals.items()
        if (record.get("payload") or {}).get("corrupted_acknowledged_bytes", 0)
    ]
    check(
        "no-corrupt-acked",
        not corrupt_acked,
        f"corrupted bytes acknowledged for {corrupt_acked[:5]}",
    )

    bad = counter_violations(counters_before, counters_after)
    check("metrics-monotone", not bad, f"counters went backwards: {bad}")

    # -- deterministic results document ----------------------------------
    records_sorted = [finals[b] for b in sorted(finals)]
    counts = {COMPLETED: 0, FAILED: 0}
    for record in records_sorted:
        counts[record["status"]] = counts.get(record["status"], 0) + 1
    atomic_write_json(
        out_path,
        {
            "format": SERVICE_CHAOS_FORMAT,
            "name": config.name,
            "campaign_sha": sha,
            "counts": counts,
            "records": records_sorted,
        },
    )

    n_injected = sum(
        1 for item in schedule.items if item.request.inject is not None
    )
    n_faulted = sum(
        1
        for item in schedule.items
        if item.request.params.get("fault_seed") is not None
    )
    n_sdc = sum(1 for v in sdc_by_base.values() if v)
    n_corrupt_quarantined = sum(
        1
        for record in finals.values()
        if record["status"] == FAILED
        and "corrupt-data:" in (record.get("error") or "")
    )
    live_statuses: "dict[str, int]" = {}
    for o in live_outcomes:
        live_statuses[o.status] = live_statuses.get(o.status, 0) + 1
    live_window = (
        max((o.finished_at or 0.0) for o in live_outcomes)
        if live_outcomes
        else 0.0
    )
    goodput_rps = (
        live_statuses.get(COMPLETED, 0) / live_window if live_window > 0 else 0.0
    )
    summary = {
        "schema": SERVICE_CHAOS_FORMAT,
        "config": config.to_dict(),
        "campaign_sha": sha,
        "n_requests": len(schedule.items),
        "n_injected_crash_hang": n_injected,
        "n_fault_traced": n_faulted,
        "n_sdc_seeded": n_sdc,
        "n_corrupt_quarantined": n_corrupt_quarantined,
        "resumed": len(done),
        "driven": len(todo),
        "live_statuses": live_statuses,
        "goodput_rps": goodput_rps,
        "shed_events": live_statuses.get("shed", 0)
        + live_statuses.get("rejected", 0),
        "counts": counts,
        "invariants": invariants,
        "failures": invariant_failures,
        "passed": not invariant_failures,
        "trajectories": sampler.to_dict(),
        "wall_s": wall_s,
        "out": str(out_path),
        "journal": str(journal_path),
    }
    say(
        f"chaos-service: {counts.get(COMPLETED, 0)} completed, "
        f"{counts.get(FAILED, 0)} failed (injected), "
        f"{n_corrupt_quarantined} corrupt-data quarantined, "
        f"{summary['shed_events']} live shed/rejected, "
        f"goodput {goodput_rps:.1f} req/s, "
        f"invariants {'PASS' if summary['passed'] else 'FAIL'}"
    )
    return summary
