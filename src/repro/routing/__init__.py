"""Deterministic (dimension-ordered) BG/Q routing.

BG/Q routes each packet dimension by dimension.  Deterministic routing
orders the dimensions *longest to shortest* by remaining hop count
(``zone 0``-style, with fixed tie-breaks in zones 2/3); dynamic routing
("zone routing") allows programmable orders.  The paper's algorithms rely
on the deterministic case: because the path of a message is known a
priori from the torus shape, source and destination coordinates, proxies
can be placed so concurrent transfers share no links.

This package computes those deterministic paths as sequences of directed
link ids (see :mod:`repro.torus.links`), models the four zone ids, and
provides overlap analysis between paths.
"""

from repro.routing.order import (
    dims_longest_to_shortest,
    dims_by_index,
    routing_dim_order,
)
from repro.routing.zones import ZoneId, zone_dim_order, select_zone, flexibility
from repro.routing.deterministic import route, route_coords, DimOrderRouter
from repro.routing.paths import (
    Path,
    shared_links,
    paths_overlap,
    count_link_loads,
    max_link_load,
)

__all__ = [
    "dims_longest_to_shortest",
    "dims_by_index",
    "routing_dim_order",
    "ZoneId",
    "zone_dim_order",
    "select_zone",
    "flexibility",
    "route",
    "route_coords",
    "DimOrderRouter",
    "Path",
    "shared_links",
    "paths_overlap",
    "count_link_loads",
    "max_link_load",
]
