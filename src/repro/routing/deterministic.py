"""Deterministic dimension-ordered route construction.

Given a dimension traversal order (from :mod:`repro.routing.order` or
:mod:`repro.routing.zones`), a message moves all required hops in the
first dimension, then all hops in the second, and so on; within a
dimension it always takes the shorter way around the ring (positive
direction on ties, see :func:`repro.torus.coords.wrap_displacement`).

:class:`DimOrderRouter` adds a per-(src, dst) route cache — experiments
route the same pairs thousands of times across message-size sweeps.
"""

from __future__ import annotations

from typing import Sequence

from repro.routing.order import routing_dim_order
from repro.routing.paths import Path
from repro.torus.coords import wrap_displacement
from repro.torus.topology import TorusTopology
from repro.util.validation import ConfigError


def route_coords(
    topology: TorusTopology,
    src: int,
    dst: int,
    order: "Sequence[int] | None" = None,
) -> list[tuple[int, int, int]]:
    """The hop list from ``src`` to ``dst`` as ``(node, dim, sign)`` triples.

    ``order`` overrides the default longest-to-shortest dimension order;
    it must contain every dimension that needs traversal (extra
    dimensions with zero hops are permitted and skipped).
    """
    src_c = topology.coord(src)
    dst_c = topology.coord(dst)
    if order is None:
        order = routing_dim_order(src_c, dst_c, topology.shape)
    else:
        needed = {d for d, (s, t) in enumerate(zip(src_c, dst_c)) if s != t}
        missing = needed - set(order)
        if missing:
            raise ConfigError(
                f"dimension order {tuple(order)} omits required dimensions {sorted(missing)}"
            )

    hops: list[tuple[int, int, int]] = []
    cur = list(src_c)
    for dim in order:
        n, sign = wrap_displacement(cur[dim], dst_c[dim], topology.shape[dim])
        for _ in range(n):
            node = topology.node(tuple(cur))
            hops.append((node, dim, sign))
            cur[dim] = (cur[dim] + sign) % topology.shape[dim]
    assert tuple(cur) == dst_c, "routing did not terminate at the destination"
    return hops


def route(
    topology: TorusTopology,
    src: int,
    dst: int,
    order: "Sequence[int] | None" = None,
) -> Path:
    """Deterministic path from ``src`` to ``dst`` as a :class:`Path`."""
    hops = route_coords(topology, src, dst, order)
    links: list[int] = []
    nodes: list[int] = [src]
    for node, dim, sign in hops:
        link_id, nxt = topology.link(node, dim, sign)
        links.append(link_id)
        nodes.append(nxt)
    return Path(src=src, dst=dst, links=tuple(links), nodes=tuple(nodes))


class DimOrderRouter:
    """Cached deterministic router over one topology.

    The default router used throughout the library: longest-to-shortest
    dimension order with fixed tie-breaks (the zone-2 style deterministic
    behaviour the paper's placement heuristics assume).
    """

    def __init__(self, topology: TorusTopology):
        self.topology = topology
        self._cache: dict[tuple[int, int], Path] = {}

    def path(self, src: int, dst: int) -> Path:
        """Deterministic path between two nodes (cached)."""
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is None:
            cached = route(self.topology, src, dst)
            cached.links_arr  # warm the hop→link-id array while it's hot
            self._cache[key] = cached
        return cached

    def paths(self, pairs: Sequence[tuple[int, int]]) -> list[Path]:
        """Paths for a batch of (src, dst) pairs.

        Cache hits resolve in one pass over the batch; only the misses
        (deduplicated — sweeps repeat pairs heavily) are routed.
        """
        cache = self._cache
        out: list["Path | None"] = [cache.get((s, d)) for s, d in pairs]
        for i, p in enumerate(out):
            if p is None:
                out[i] = self.path(*pairs[i])
        return out

    def cache_size(self) -> int:
        """Number of cached routes (for tests and diagnostics)."""
        return len(self._cache)
