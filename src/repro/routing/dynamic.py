"""Dynamic (zone 0/1) routing as a flow-level model.

BG/Q's dynamic routing is per-packet: zone 0 picks randomly among the
longest remaining dimensions, zone 1 among all remaining dimensions, so
one message's packets spray over many dimension-ordered paths.  The
fluid-level approximation here splits a message into ``nsplits``
subflows, each routed with an independently sampled zone-conformant
dimension order, each capped at ``stream_cap / nsplits`` — dynamic
routing *spreads load over links* but cannot push a single message
stream past the per-stream protocol ceiling (the reception-side
serialisation the paper leverages proxies to escape; see §II's contrast
with adaptive-routing work).
"""

from __future__ import annotations

from repro.routing.deterministic import route
from repro.routing.paths import Path
from repro.routing.zones import ZoneId, zone_dim_order
from repro.torus.topology import TorusTopology
from repro.util.rng import make_rng
from repro.util.validation import ConfigError


class DynamicRouter:
    """Samples zone-conformant paths for messages."""

    def __init__(
        self,
        topology: TorusTopology,
        zone: ZoneId = ZoneId.DYNAMIC_UNRESTRICTED,
        seed=None,
    ):
        self.topology = topology
        self.zone = ZoneId(zone)
        if self.zone not in (ZoneId.DYNAMIC_LONGEST_FIRST, ZoneId.DYNAMIC_UNRESTRICTED):
            raise ConfigError(
                f"zone {self.zone} is deterministic; use DimOrderRouter instead"
            )
        self.rng = make_rng(seed)

    def sample_path(self, src: int, dst: int) -> Path:
        """One zone-conformant path draw for a message."""
        order = zone_dim_order(
            self.zone,
            self.topology.coord(src),
            self.topology.coord(dst),
            self.topology.shape,
            rng=self.rng,
        )
        return route(self.topology, src, dst, order=order)

    def sample_spray(self, src: int, dst: int, nsplits: int) -> list[Path]:
        """``nsplits`` independent path draws (the packet-spray model)."""
        if nsplits < 1:
            raise ConfigError(f"nsplits must be >= 1, got {nsplits}")
        return [self.sample_path(src, dst) for _ in range(nsplits)]
