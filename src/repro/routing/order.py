"""Dimension-order computation for dimension-ordered routing.

Deterministic BG/Q routing traverses dimensions *longest to shortest* by
the hop distance the message must cover in each dimension.  Dimensions
needing zero hops are skipped.  Ties (equal hop counts) are broken by
ascending dimension index — a fixed, documented rule standing in for the
hardware's static tie-break, preserving the property the paper needs:
the path is fully determined by (shape, src, dst).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.torus.coords import hop_distance


def dims_by_index(hops: Sequence[int]) -> tuple[int, ...]:
    """Dimensions with nonzero hops, in plain ascending-index order."""
    return tuple(d for d, h in enumerate(hops) if h > 0)


def dims_longest_to_shortest(
    hops: Sequence[int],
    rng: "np.random.Generator | None" = None,
) -> tuple[int, ...]:
    """Dimensions with nonzero hops, longest hop count first.

    Ties are broken by ascending dimension index, or randomly when ``rng``
    is given (zone 0 allows random choice among equal-length dimensions).
    """
    active = [d for d, h in enumerate(hops) if h > 0]
    if rng is None:
        return tuple(sorted(active, key=lambda d: (-hops[d], d)))
    jitter = rng.random(len(hops))
    return tuple(sorted(active, key=lambda d: (-hops[d], jitter[d])))


def routing_dim_order(
    src_coord: Sequence[int],
    dst_coord: Sequence[int],
    shape: Sequence[int],
    rng: "np.random.Generator | None" = None,
) -> tuple[int, ...]:
    """The deterministic dimension traversal order from ``src`` to ``dst``."""
    hops = hop_distance(src_coord, dst_coord, shape)
    return dims_longest_to_shortest(hops, rng=rng)
