"""Path objects and overlap analysis.

A :class:`Path` is the full deterministic trajectory of one message:
the ordered directed links it occupies.  The paper's proxy-placement
heuristic is, at bottom, a search for sets of paths with empty pairwise
link intersections; the helpers here make that analysis explicit and
testable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Path:
    """A deterministic route through the torus.

    Attributes:
        src: source node index.
        dst: destination node index.
        links: directed link ids in traversal order (empty if src == dst).
        nodes: node indices visited, starting at ``src`` and ending at
            ``dst`` (length ``len(links) + 1``).
    """

    src: int
    dst: int
    links: tuple[int, ...]
    nodes: tuple[int, ...] = field(default=())

    def __post_init__(self):
        if self.nodes:
            if self.nodes[0] != self.src or self.nodes[-1] != self.dst:
                raise ValueError("path nodes must start at src and end at dst")
            if len(self.nodes) != len(self.links) + 1:
                raise ValueError("path must have len(links) + 1 nodes")

    @property
    def nhops(self) -> int:
        """Number of link traversals."""
        return len(self.links)

    @cached_property
    def links_arr(self) -> np.ndarray:
        """``links`` as an ``int64`` array, computed once per path.

        Cached routes are looked up thousands of times per sweep; the
        simulator layers consume this array form directly instead of
        re-iterating the per-hop tuple.
        """
        return np.asarray(self.links, dtype=np.int64)

    def link_set(self) -> frozenset[int]:
        """The links as a set (order-insensitive)."""
        return frozenset(self.links)


def shared_links(a: Path, b: Path) -> frozenset[int]:
    """Directed links used by both paths."""
    return a.link_set() & b.link_set()


def paths_overlap(a: Path, b: Path) -> bool:
    """True when the two paths contend for at least one directed link."""
    return bool(shared_links(a, b))


def count_link_loads(paths: Iterable[Path]) -> Counter:
    """How many paths traverse each directed link."""
    loads: Counter = Counter()
    for p in paths:
        loads.update(p.links)
    return loads


def max_link_load(paths: Sequence[Path]) -> int:
    """Maximum number of paths sharing any one directed link (0 if none)."""
    loads = count_link_loads(paths)
    return max(loads.values()) if loads else 0
