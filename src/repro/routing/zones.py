"""BG/Q routing-zone semantics.

The BG/Q messaging stack (PAMI) picks one of four *zone ids* per message:

* **zone 0** — longest-to-shortest dimension order, but dimensions with
  equal remaining hop counts may be chosen in random order;
* **zone 1** — unrestricted: dimensions traversed in a random order;
* **zone 2 / zone 3** — fully deterministic: a fixed order given the
  message, so the path is known before the message is routed.

The real selection of zone id from (torus shape, hop distance, message
size) is an experiment-derived table hard-coded in IBM's low-level
libraries; :func:`select_zone` implements a documented heuristic with the
same monotone structure (large messages on flexible routes get dynamic
zones; small messages and inflexible routes get deterministic ones).
Users can force a zone, mirroring the ``PAMI_ROUTING`` environment
variable.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.torus.coords import hop_distance
from repro.routing.order import dims_longest_to_shortest, dims_by_index
from repro.util.units import KiB


class ZoneId(enum.IntEnum):
    """The four BG/Q routing zones."""

    DYNAMIC_LONGEST_FIRST = 0
    DYNAMIC_UNRESTRICTED = 1
    DETERMINISTIC_LONGEST_FIRST = 2
    DETERMINISTIC_DIM_ORDER = 3


def flexibility(
    src_coord: Sequence[int],
    dst_coord: Sequence[int],
    shape: Sequence[int],
) -> float:
    """Routing-flexibility metric of a (src, dst) pair.

    Defined here as the mean, over dimensions that must be traversed, of
    ``hops_d / size_d`` — the fraction of each ring the message crosses.
    Long traversals through large dimensions leave more freedom for
    dynamic routing (more intermediate orderings make progress), which is
    the qualitative property of the BG/Q metric.
    """
    hops = hop_distance(src_coord, dst_coord, shape)
    active = [(h, s) for h, s in zip(hops, shape) if h > 0]
    if not active:
        return 0.0
    return float(np.mean([h / s for h, s in active]))


def select_zone(
    src_coord: Sequence[int],
    dst_coord: Sequence[int],
    shape: Sequence[int],
    msg_bytes: int,
    *,
    flex_threshold: float = 0.25,
    size_threshold: int = 64 * KiB,
) -> ZoneId:
    """Pick a zone id from flexibility and message size (heuristic).

    Large messages over flexible routes benefit from dynamic routing
    (zones 0/1); small messages, where per-packet ordering overheads
    dominate, and inflexible routes use the deterministic zones (2/3).
    """
    flex = flexibility(src_coord, dst_coord, shape)
    if msg_bytes >= size_threshold and flex >= flex_threshold:
        return ZoneId.DYNAMIC_UNRESTRICTED if flex >= 2 * flex_threshold else ZoneId.DYNAMIC_LONGEST_FIRST
    if flex >= flex_threshold:
        return ZoneId.DETERMINISTIC_LONGEST_FIRST
    return ZoneId.DETERMINISTIC_DIM_ORDER


def zone_dim_order(
    zone: ZoneId,
    src_coord: Sequence[int],
    dst_coord: Sequence[int],
    shape: Sequence[int],
    rng: "np.random.Generator | None" = None,
) -> tuple[int, ...]:
    """Dimension traversal order under a given zone.

    Zones 0 and 1 require an ``rng`` for their random components; without
    one they degrade to their deterministic counterparts (useful for
    reproducible analysis).
    """
    hops = hop_distance(src_coord, dst_coord, shape)
    zone = ZoneId(zone)
    if zone == ZoneId.DYNAMIC_LONGEST_FIRST:
        return dims_longest_to_shortest(hops, rng=rng)
    if zone == ZoneId.DYNAMIC_UNRESTRICTED:
        active = list(dims_by_index(hops))
        if rng is not None:
            rng.shuffle(active)
        return tuple(active)
    if zone == ZoneId.DETERMINISTIC_LONGEST_FIRST:
        return dims_longest_to_shortest(hops, rng=None)
    return dims_by_index(hops)
