"""Overload-safe scenario-execution service.

Long-lived serving (``repro serve``), resumable batch campaigns
(``repro batch``), admission control and load shedding, per-request
deadlines with cooperative cancellation, circuit breakers with a
degraded direct-path fallback, and a crash-safe write-ahead journal.

See ``docs/SERVICE.md`` for the operational guide.
"""

from repro.service.batch import (
    CAMPAIGN_FORMAT,
    RESULTS_FORMAT,
    campaign_sha,
    load_campaign,
    make_demo_campaign,
    parse_campaign,
    run_batch,
)
from repro.service.adaptive import AdaptiveLimiter
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.degrade import (
    TIER_DIRECT,
    TIER_FULL,
    TIER_NAMES,
    TIER_REDUCED,
    TIER_SHED,
    DegradationLadder,
    tier_name,
)
from repro.service.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadShedError,
    PoisonRequestError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    UnknownRequestError,
)
from repro.service.journal import Journal, load_journal
from repro.service.request import (
    COMPLETED,
    FAILED,
    INJECT_KINDS,
    SCENARIO_KINDS,
    SHED,
    TERMINAL_STATUSES,
    ScenarioRequest,
    ScenarioResult,
    canonical_json,
    payload_checksum,
)
from repro.service.scenarios import StageError, execute_request
from repro.service.service import ScenarioService, ServiceConfig

__all__ = [
    "CAMPAIGN_FORMAT",
    "CLOSED",
    "COMPLETED",
    "FAILED",
    "HALF_OPEN",
    "INJECT_KINDS",
    "OPEN",
    "RESULTS_FORMAT",
    "SCENARIO_KINDS",
    "SHED",
    "TERMINAL_STATUSES",
    "TIER_DIRECT",
    "TIER_FULL",
    "TIER_NAMES",
    "TIER_REDUCED",
    "TIER_SHED",
    "AdaptiveLimiter",
    "CircuitBreaker",
    "CircuitOpenError",
    "DegradationLadder",
    "OverloadShedError",
    "DeadlineExceededError",
    "Journal",
    "PoisonRequestError",
    "QueueFullError",
    "ScenarioRequest",
    "ScenarioResult",
    "ScenarioService",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "StageError",
    "UnknownRequestError",
    "campaign_sha",
    "canonical_json",
    "execute_request",
    "load_campaign",
    "load_journal",
    "make_demo_campaign",
    "parse_campaign",
    "payload_checksum",
    "run_batch",
    "tier_name",
]
