"""Adaptive concurrency limiting for the scenario service.

PR 5's admission bound was a static constant (``queue_cap``): under
sustained overload the queue fills to its cap, every queued request
soaks up wall-clock waiting, and work is dispatched with so little
remaining deadline that workers burn time on runs that can only fail.
Under light load the same constant over-admits nothing — the bound is
simply irrelevant — so no single constant is right at both ends.

:class:`AdaptiveLimiter` replaces the constant with a control loop in
the **AIMD** (additive-increase / multiplicative-decrease) family,
keyed on observed request latency rather than loss:

* every completed request reports its end-to-end latency (admission →
  terminal) and its bare *service* time (dispatch → terminal);
* the limiter keeps an EWMA of the uncontended service time and derives
  a latency target ``rtt_tolerance ×`` that EWMA (or an explicit
  ``latency_target_s``) — the queueing delay the operator is willing
  to buy with concurrency;
* a completion under the target raises the limit by ``increase /
  limit`` (≈ +1 per limit's worth of completions, the additive ramp);
* a completion over the target — or a deadline miss, which is latency's
  terminal form — multiplies the limit by ``decrease_factor``, at most
  once per ``cooldown_s`` so one burst of stale samples cannot collapse
  the window to the floor.

The limit converges to the worker pool's real capacity: at the fixed
point, admitted work queues just long enough to keep every worker busy
without pushing latency past the target.  The service applies the limit
at admission — ``pending + in-flight >= limit`` sheds with the typed,
retriable :class:`~repro.service.errors.OverloadShedError` — so
overload is turned away in microseconds instead of being queued into
certain deadline death.

The current limit is exported as the ``service.admission_limit`` gauge;
decreases count on ``service.limiter.decreases``.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.obs.metrics import get_registry
from repro.util.validation import ConfigError


class AdaptiveLimiter:
    """AIMD-on-latency concurrency limiter.

    Args:
        min_limit: floor of the limit (never starve the pool; typically
            the worker count).
        max_limit: ceiling of the limit (typically ``queue_cap +
            workers`` — adaptive admission never admits *more* than the
            static bound would).
        initial: starting limit (defaults to ``min_limit``).
        latency_target_s: explicit latency target; ``None`` derives it
            from the observed service-time EWMA.
        rtt_tolerance: target = ``rtt_tolerance × service-time EWMA``
            when the target is derived (2.0 ≈ "one queued request per
            worker is fine, two is not").
        increase: additive-increase numerator (+``increase/limit`` per
            good completion).
        decrease_factor: multiplicative-decrease factor on a bad sample.
        cooldown_s: minimum wall-clock spacing between decreases, so a
            burst of stale samples counts once.
        ewma_alpha: smoothing of the service-time EWMA.
        clock: monotonic time source (overridable for tests).

    Thread-safe; the service's submit path and supervisor thread call
    concurrently.
    """

    def __init__(
        self,
        *,
        min_limit: int = 1,
        max_limit: int = 64,
        initial: "float | None" = None,
        latency_target_s: "float | None" = None,
        rtt_tolerance: float = 2.0,
        increase: float = 1.0,
        decrease_factor: float = 0.7,
        cooldown_s: float = 0.1,
        ewma_alpha: float = 0.2,
        clock: Callable[[], float] = None,  # type: ignore[assignment]
    ):
        if min_limit < 1:
            raise ConfigError(f"min_limit must be >= 1, got {min_limit}")
        if max_limit < min_limit:
            raise ConfigError(
                f"max_limit must be >= min_limit ({min_limit}), got {max_limit}"
            )
        if latency_target_s is not None and latency_target_s <= 0:
            raise ConfigError(
                f"latency_target_s must be > 0, got {latency_target_s}"
            )
        if rtt_tolerance < 1.0:
            raise ConfigError(f"rtt_tolerance must be >= 1, got {rtt_tolerance}")
        if increase <= 0:
            raise ConfigError(f"increase must be > 0, got {increase}")
        if not 0 < decrease_factor < 1:
            raise ConfigError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}"
            )
        if not 0 < ewma_alpha <= 1:
            raise ConfigError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if cooldown_s < 0:
            raise ConfigError(f"cooldown_s must be >= 0, got {cooldown_s}")
        if clock is None:
            import time

            clock = time.monotonic
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.latency_target_s = latency_target_s
        self.rtt_tolerance = rtt_tolerance
        self.increase = increase
        self.decrease_factor = decrease_factor
        self.cooldown_s = cooldown_s
        self.ewma_alpha = ewma_alpha
        self._clock = clock
        self._lock = threading.Lock()
        self._limit = float(initial if initial is not None else min_limit)
        self._limit = min(max(self._limit, min_limit), max_limit)
        self._service_ewma: "float | None" = None
        self._last_decrease = -float("inf")
        self._publish()

    def _publish(self) -> None:
        get_registry().gauge("service.admission_limit").set(self._limit)

    @property
    def limit(self) -> int:
        """Current admission limit (whole requests)."""
        with self._lock:
            return int(self._limit)

    @property
    def service_time_ewma(self) -> "float | None":
        """Observed service-time EWMA [s] (``None`` before any sample)."""
        with self._lock:
            return self._service_ewma

    def target_latency_s(self) -> "float | None":
        """The latency target in force (``None`` until one is learnable)."""
        with self._lock:
            return self._target_locked()

    def _target_locked(self) -> "float | None":
        if self.latency_target_s is not None:
            return self.latency_target_s
        if self._service_ewma is None:
            return None
        return self.rtt_tolerance * self._service_ewma

    def would_admit(self, outstanding: int) -> bool:
        """Does ``outstanding`` (pending + in-flight) fit under the limit?"""
        with self._lock:
            return outstanding < int(self._limit)

    # -- feedback ------------------------------------------------------------

    def on_completion(self, latency_s: float, service_s: "float | None") -> None:
        """A request completed: ``latency_s`` is admission → terminal,
        ``service_s`` dispatch → terminal (feeds the uncontended-RTT
        estimate)."""
        with self._lock:
            if service_s is not None and service_s >= 0:
                if self._service_ewma is None:
                    self._service_ewma = float(service_s)
                else:
                    a = self.ewma_alpha
                    self._service_ewma = (1 - a) * self._service_ewma + a * service_s
            target = self._target_locked()
            if target is None or latency_s <= target:
                self._limit = min(
                    self.max_limit, self._limit + self.increase / max(self._limit, 1.0)
                )
            else:
                self._decrease_locked()
            self._publish()

    def on_overload(self) -> None:
        """A latency-terminal outcome (deadline missed in queue or
        mid-run): treat as an over-target sample."""
        with self._lock:
            self._decrease_locked()
            self._publish()

    def _decrease_locked(self) -> None:
        now = self._clock()
        if now - self._last_decrease < self.cooldown_s:
            return
        self._last_decrease = now
        self._limit = max(self.min_limit, self._limit * self.decrease_factor)
        get_registry().counter("service.limiter.decreases").inc()
