"""Resumable batch campaigns (``repro batch``).

A campaign file is a JSON document::

    {
      "campaign": "campaign/1",
      "name": "nightly-sweep",
      "defaults": {"deadline_s": 30.0},
      "scenarios": [
        {"id": "p2p-64", "kind": "p2p", "params": {"nnodes": 64}},
        ...
      ]
    }

:func:`run_batch` executes every scenario through a
:class:`ScenarioService`, journaling each terminal result to a
write-ahead journal (:mod:`repro.service.journal`) as it lands, and
finally writes a ``campaign-results/1`` document — results sorted by
id, canonical formatting, atomic temp+rename write.

Because scenario payloads are deterministic and the journal is fsynced
record-by-record, a campaign SIGKILLed at any point can be rerun with
``resume=True``: intact journal records are trusted (after checksum
re-verification), only the remainder re-runs, and the final results
file is **byte-identical** to an uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.obs.metrics import get_registry
from repro.service.journal import Journal, load_journal
from repro.service.request import (
    COMPLETED,
    TERMINAL_STATUSES,
    ScenarioRequest,
    ScenarioResult,
    canonical_json,
    payload_checksum,
)
from repro.service.service import ScenarioService, ServiceConfig
from repro.util.atomicio import atomic_write_json
from repro.util.log import get_logger
from repro.util.validation import ConfigError

log = get_logger(__name__)

#: Campaign / results format tags.
CAMPAIGN_FORMAT = "campaign/1"
RESULTS_FORMAT = "campaign-results/1"


def campaign_sha(doc: Mapping[str, Any]) -> str:
    """Identity of a campaign document: sha256 of its canonical JSON."""
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


def load_campaign(path: "Path | str") -> "tuple[dict, list[ScenarioRequest], str]":
    """Load and validate a campaign file → ``(doc, requests, sha)``."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigError(f"campaign file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"campaign file {path} is not valid JSON: {exc}") from exc
    return parse_campaign(doc, source=str(path))


def parse_campaign(
    doc: Any, *, source: str = "<campaign>"
) -> "tuple[dict, list[ScenarioRequest], str]":
    """Validate a campaign document; return (doc, requests, campaign_sha).

    Defaults (e.g. ``deadline_s``) are merged into scenario entries that
    do not set their own; duplicate scenario ids are rejected.
    """
    if not isinstance(doc, dict):
        raise ConfigError(f"{source}: campaign must be a JSON object")
    if doc.get("campaign") != CAMPAIGN_FORMAT:
        raise ConfigError(
            f"{source}: expected \"campaign\": \"{CAMPAIGN_FORMAT}\", "
            f"got {doc.get('campaign')!r}"
        )
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ConfigError(f"{source}: campaign needs a non-empty scenarios list")
    defaults = doc.get("defaults", {})
    if not isinstance(defaults, Mapping):
        raise ConfigError(f"{source}: defaults must be a JSON object")
    default_deadline = defaults.get("deadline_s")
    requests: "list[ScenarioRequest]" = []
    seen: "set[str]" = set()
    for i, entry in enumerate(scenarios):
        if isinstance(entry, Mapping) and "deadline_s" not in entry and (
            default_deadline is not None
        ):
            entry = dict(entry, deadline_s=default_deadline)
        try:
            req = ScenarioRequest.from_dict(entry)
        except ConfigError as exc:
            raise ConfigError(f"{source}: scenario #{i}: {exc}") from exc
        if req.id in seen:
            raise ConfigError(f"{source}: duplicate scenario id {req.id!r}")
        seen.add(req.id)
        requests.append(req)
    return doc, requests, campaign_sha(doc)


def make_demo_campaign(
    n: int = 12,
    *,
    nnodes: int = 32,
    deadline_s: "float | None" = None,
    name: str = "demo",
) -> dict:
    """A small deterministic mixed-kind campaign (CLI demo and tests)."""
    if n < 1:
        raise ConfigError(f"campaign size must be >= 1, got {n}")
    kinds = ("p2p", "group", "fanin", "spin")
    scenarios = []
    for i in range(n):
        kind = kinds[i % len(kinds)]
        entry: dict = {"id": f"{name}-{i:04d}", "kind": kind}
        if kind == "spin":
            entry["params"] = {"duration_s": 0.002 * (1 + i % 3)}
        else:
            entry["params"] = {"nnodes": nnodes, "nbytes": (1 + i % 4) << 20}
        scenarios.append(entry)
    doc: dict = {"campaign": CAMPAIGN_FORMAT, "name": name, "scenarios": scenarios}
    if deadline_s is not None:
        doc["defaults"] = {"deadline_s": deadline_s}
    return doc


class _JournalSink:
    """Thread-safe journal appender used as the service's on_result."""

    def __init__(self, journal: Journal):
        self._journal = journal
        self._lock = threading.Lock()

    def __call__(self, result) -> None:
        with self._lock:
            self._journal.append(result.record())


def _verified(record: Mapping[str, Any]) -> bool:
    """Is a replayed journal record internally consistent?"""
    if record.get("status") not in TERMINAL_STATUSES:
        return False
    if record.get("status") == COMPLETED:
        payload = record.get("payload")
        return (
            payload is not None
            and record.get("checksum") == payload_checksum(payload)
        )
    return True


def _batchable(req: ScenarioRequest) -> "str | None":
    """Can this request take the batched-simulate fast path?

    Exact-mode transfer kinds with no deadline qualify — including ones
    that schedule a fault trace (``fault_seed``): their payloads are
    byte-identical batched or serial, and there is no wall-clock budget
    the batch could blow for a neighbour.  Everything else keeps the
    full service treatment — admission, breakers, cancellation.

    Returns ``None`` when the request qualifies; a reason code when a
    transfer kind must fall back to the serial path (``"deadline-set"``,
    ``"non-exact"``, or ``"faults-scheduled"`` — a fault trace combined
    with a per-request proxy cap, which the resilient planner does not
    take); and ``"not-a-transfer"`` for kinds that were never fast-path
    candidates (io, chaos, spin).
    """
    if req.kind not in ("p2p", "group", "fanin"):
        return "not-a-transfer"
    if req.deadline_s is not None:
        return "deadline-set"
    if float(req.params.get("batch_tol", 0.0) or 0.0) != 0.0:
        return "non-exact"
    if (
        req.params.get("fault_seed") is not None
        and req.params.get("max_proxies") is not None
    ):
        return "faults-scheduled"
    return None


def run_batch(
    campaign_path: "Path | str",
    out_path: "Path | str",
    *,
    journal_path: "Path | str | None" = None,
    resume: bool = False,
    config: "ServiceConfig | None" = None,
    progress: "Callable[[str], None] | None" = None,
    batched: bool = True,
) -> dict:
    """Run (or resume) a campaign; returns a summary dict.

    The journal defaults to ``<out>.journal`` next to the results file.
    Without ``resume``, any existing journal is truncated and the whole
    campaign runs; with it, intact journaled results are reused.

    With ``batched`` (the default), deadline-free exact-mode transfer
    scenarios are simulated together through
    :func:`repro.service.scenarios.run_transfer_kinds_batched` — one
    block-diagonal :class:`~repro.network.batchsim.BatchFlowSim` pass
    per machine size — instead of one service request each; payloads
    (and hence journal records and the results file) are byte-identical
    to the serial path's.  Fault-traced scenarios (``fault_seed``) stay
    batched through the resilient executor's wave batching.  Any
    scenario that cannot batch — and any batched-stage failure — falls
    back to the service, and the downgrade is surfaced: the
    ``service.batch.fast_path_fallback`` counter (plus a per-reason
    ``...fallback.<reason>`` counter) and a one-line log warning.
    """
    out_path = Path(out_path)
    doc, requests, sha = load_campaign(campaign_path)
    journal_path = (
        Path(journal_path)
        if journal_path is not None
        else out_path.with_name(out_path.name + ".journal")
    )
    done: "dict[str, dict]" = {}
    if resume and journal_path.exists():
        journal_sha, records = load_journal(journal_path)
        if journal_sha != sha:
            raise ConfigError(
                f"journal {journal_path} belongs to a different campaign "
                f"({journal_sha[:12]}... != {sha[:12]}...); rerun without --resume"
            )
        wanted = {r.id for r in requests}
        for rid, record in records.items():
            if rid in wanted and _verified(record):
                done[rid] = record
            else:
                get_registry().counter("service.journal.dropped").inc()
        journal = Journal.open_for_append(journal_path, sha)
    else:
        journal = Journal.create(journal_path, sha)
    todo = [r for r in requests if r.id not in done]
    if progress is not None:
        progress(
            f"campaign {doc.get('name', '?')!r}: {len(requests)} scenarios, "
            f"{len(done)} journaled, {len(todo)} to run"
        )
    merged: "dict[str, dict]" = dict(done)
    try:
        fast: "list[ScenarioRequest]" = []
        if batched:
            reasons: "dict[str, int]" = {}
            for r in todo:
                why = _batchable(r)
                if why is None:
                    fast.append(r)
                elif why != "not-a-transfer":
                    reasons[why] = reasons.get(why, 0) + 1
            if reasons:
                for why, k in sorted(reasons.items()):
                    get_registry().counter(
                        "service.batch.fast_path_fallback"
                    ).inc(k)
                    get_registry().counter(
                        f"service.batch.fast_path_fallback.{why}"
                    ).inc(k)
                log.warning(
                    "batched fast path: %d scenario(s) fall back to serial (%s)",
                    sum(reasons.values()),
                    ", ".join(f"{why}: {k}" for why, k in sorted(reasons.items())),
                )
        if fast:
            from repro.service.scenarios import run_transfer_kinds_batched

            sink = _JournalSink(journal)
            try:
                payloads = run_transfer_kinds_batched(
                    [(r.kind, r.params) for r in fast]
                )
            except Exception as exc:
                # Any failure (bad params, planner error) sends the whole
                # group down the serial path, which reports it per request.
                get_registry().counter("service.batch.fast_path_fallback").inc(
                    len(fast)
                )
                get_registry().counter(
                    "service.batch.fast_path_fallback.error"
                ).inc(len(fast))
                log.warning(
                    "batched fast path failed (%s: %s); "
                    "%d scenario(s) fall back to serial",
                    type(exc).__name__, exc, len(fast),
                )
                fast = []
            else:
                get_registry().counter("service.batch.fast_path").inc(len(fast))
                for req, payload in zip(fast, payloads):
                    result = ScenarioResult(
                        id=req.id, kind=req.kind, status=COMPLETED,
                        payload=payload,
                    )
                    sink(result)
                    merged[req.id] = result.record()
        serial = [r for r in todo if r.id not in merged]
        if serial:
            with ScenarioService(config, on_result=_JournalSink(journal)) as svc:
                for req in serial:
                    svc.submit(req, block=True)
                for req in serial:
                    merged[req.id] = svc.result(req.id).record()
    finally:
        journal.close()
    results = [merged[r.id] for r in sorted(requests, key=lambda r: r.id)]
    counts = {status: 0 for status in TERMINAL_STATUSES}
    for record in results:
        counts[record["status"]] += 1
    out_doc = {
        "format": RESULTS_FORMAT,
        "name": doc.get("name"),
        "campaign_sha": sha,
        "counts": counts,
        "results": results,
    }
    atomic_write_json(out_path, out_doc)
    summary = {
        "total": len(requests),
        "resumed": len(done),
        "ran": len(todo),
        "counts": counts,
        "out": str(out_path),
        "journal": str(journal_path),
        "campaign_sha": sha,
    }
    if progress is not None:
        progress(
            f"wrote {out_path} ({counts[COMPLETED]}/{len(requests)} completed)"
        )
    return summary
