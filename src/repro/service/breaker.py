"""Circuit breakers for the service's planner and simulator stages.

The state machine is the classic closed → open → half-open cycle, and
the half-open step deliberately reuses the **probation idiom** from
:mod:`repro.resilience.health`: a link believed down re-enters service
through a limited probing share after ``reprobe_interval`` elapses, and
a breaker believed broken re-enters service through a limited number of
probe requests after ``recovery_s`` elapses.  Success closes it;
failure re-opens it and restarts the clock.

State is exported to :mod:`repro.obs.metrics` as a gauge
(``service.breaker.<name>.state``: 0 closed, 1 half-open, 2 open) plus
transition counters, so dashboards can see a stage browning out.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs.metrics import get_registry
from repro.util.validation import ConfigError

#: Breaker states (values chosen so the exported gauge orders severity).
CLOSED = "closed"
HALF_OPEN = "half_open"
OPEN = "open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Failure-counting breaker around one service stage.

    Args:
        name: stage name (metrics are ``service.breaker.<name>.*``).
        failure_threshold: consecutive failures that trip the breaker.
        recovery_s: seconds the breaker stays open before probation
            (half-open) admits probe traffic.
        half_open_probes: concurrent probes allowed while half-open.
        clock: monotonic time source (overridable for tests).

    Thread-safe: the service's dispatcher and collector threads call
    :meth:`allow` / :meth:`record_success` / :meth:`record_failure`
    concurrently.
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        recovery_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_s <= 0:
            raise ConfigError(f"recovery_s must be > 0, got {recovery_s}")
        if half_open_probes < 1:
            raise ConfigError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive, while closed
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._publish(CLOSED)

    # -- state ---------------------------------------------------------------

    def _publish(self, state: str) -> None:
        get_registry().gauge(f"service.breaker.{self.name}.state").set(
            _STATE_GAUGE[state]
        )

    def _transition(self, state: str) -> None:
        """Caller holds the lock."""
        if state == self._state:
            return
        get_registry().counter(
            f"service.breaker.{self.name}.to_{state}"
        ).inc()
        self._state = state
        self._publish(state)
        if state == OPEN:
            self._opened_at = self._clock()
            self._probes_inflight = 0
        elif state == CLOSED:
            self._failures = 0
            self._probes_inflight = 0

    def _maybe_half_open(self) -> None:
        """Open → half-open once the recovery interval has elapsed
        (the probation re-probe idiom).  Caller holds the lock."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_s
        ):
            self._transition(HALF_OPEN)

    @property
    def state(self) -> str:
        """Current state (``open`` lazily decays to ``half_open``)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    # -- flow control --------------------------------------------------------

    def allow(self) -> bool:
        """May a request enter this stage right now?

        Closed: always.  Open: never (fail fast / degrade).  Half-open:
        up to ``half_open_probes`` probes at a time; the probe's
        :meth:`record_success` / :meth:`record_failure` decides whether
        the breaker closes or re-opens.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probes_inflight < self.half_open_probes:
                self._probes_inflight += 1
                return True
            return False

    def release(self) -> None:
        """Return a half-open probe slot without a verdict (the probing
        request was abandoned: worker crash, deadline kill, or the
        dispatcher degraded after reserving the slot).  No-op unless a
        probe is actually outstanding."""
        with self._lock:
            if self._probes_inflight > 0:
                self._probes_inflight -= 1

    def record_success(self) -> None:
        """The stage succeeded: close (and reset the failure count)."""
        with self._lock:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """The stage failed: count toward the trip threshold, or —
        when probing half-open — re-open immediately."""
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                self._transition(OPEN)
                return
            if self._state == OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._transition(OPEN)
