"""Pressure-driven degradation ladder for the scenario service.

PR 5's degraded mode was binary: planner breaker open → direct path,
otherwise full multipath planning.  Under sustained pressure that is
the wrong shape twice over — the service jumps straight from its most
expensive answer to its cheapest, and it only jumps *after* the planner
has already been failing.  The ladder replaces the binary with four
ordered tiers of planning effort, walked by a smoothed pressure signal
*before* anything breaks:

====  ===========  ====================================================
tier  name         behaviour
====  ===========  ====================================================
0     ``full``     full multipath proxy search (normal service)
1     ``reduced``  proxy search capped at ``reduced_k`` paths — most of
                   the bandwidth for a fraction of the planning cost
2     ``direct``   single deterministic path, no proxy search (PR 5's
                   degraded mode)
3     ``shed``     new admissions are turned away with the retriable
                   :class:`~repro.service.errors.OverloadShedError`
====  ===========  ====================================================

The pressure signal is queue occupancy — ``(pending + in-flight) /
admission limit`` — smoothed with an EWMA so one burst does not bounce
the tier.  Transitions use **hysteresis**: each tier is entered at
``enter[tier]`` and only left once pressure falls below ``enter[tier] -
hysteresis`` *and* the tier has been held for ``min_dwell_s``
(escalation is immediate — overload punishes hesitation; de-escalation
is damped — flapping between plan shapes thrashes the planner cache and
the metrics alike).

Breaker state still matters, but as an *override*: a planner breaker
that is open forces at least tier 2 for the affected dispatch without
moving the ladder's own pressure state.

The current tier is exported as the ``service.degrade_tier`` gauge and
each upward entry counts on ``service.degrade.enter_<name>``.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.obs.metrics import get_registry
from repro.util.validation import ConfigError

#: Ladder tiers, mildest first.
TIER_FULL = 0
TIER_REDUCED = 1
TIER_DIRECT = 2
TIER_SHED = 3

TIER_NAMES = ("full", "reduced", "direct", "shed")


def tier_name(tier: int) -> str:
    """Human/metrics name of a ladder tier."""
    return TIER_NAMES[tier]


class DegradationLadder:
    """Hysteretic pressure → planning-effort ladder.

    Args:
        enter: pressure thresholds entering tiers 1..3 (strictly
            increasing, each in (0, ~1.5]; occupancy can exceed 1.0
            transiently while in-flight work drains).
        hysteresis: pressure drop below a tier's enter threshold
            required before leaving it.
        min_dwell_s: minimum time spent in a tier before de-escalating.
        ewma_alpha: smoothing of the pressure EWMA.
        reduced_k: proxy-count cap applied at tier 1.
        clock: monotonic time source (overridable for tests).

    Thread-safe: the supervisor feeds :meth:`observe`, the submit path
    reads :meth:`tier`.
    """

    def __init__(
        self,
        *,
        enter: "tuple[float, float, float]" = (0.60, 0.85, 0.98),
        hysteresis: float = 0.15,
        min_dwell_s: float = 0.25,
        ewma_alpha: float = 0.3,
        reduced_k: int = 2,
        clock: Callable[[], float] = None,  # type: ignore[assignment]
    ):
        if len(enter) != 3 or any(e2 <= e1 for e1, e2 in zip(enter, enter[1:])):
            raise ConfigError(
                f"enter must be 3 strictly increasing thresholds, got {enter}"
            )
        if enter[0] <= 0:
            raise ConfigError(f"enter thresholds must be > 0, got {enter}")
        if not 0 < hysteresis < enter[0]:
            raise ConfigError(
                f"hysteresis must be in (0, {enter[0]}), got {hysteresis}"
            )
        if min_dwell_s < 0:
            raise ConfigError(f"min_dwell_s must be >= 0, got {min_dwell_s}")
        if not 0 < ewma_alpha <= 1:
            raise ConfigError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if reduced_k < 1:
            raise ConfigError(f"reduced_k must be >= 1, got {reduced_k}")
        if clock is None:
            import time

            clock = time.monotonic
        self.enter = tuple(float(e) for e in enter)
        self.hysteresis = hysteresis
        self.min_dwell_s = min_dwell_s
        self.ewma_alpha = ewma_alpha
        self.reduced_k = reduced_k
        self._clock = clock
        self._lock = threading.Lock()
        self._pressure = 0.0
        self._tier = TIER_FULL
        self._entered_at = self._clock()
        get_registry().gauge("service.degrade_tier").set(TIER_FULL)

    @property
    def pressure(self) -> float:
        """Current smoothed pressure (queue-occupancy EWMA)."""
        with self._lock:
            return self._pressure

    @property
    def tier(self) -> int:
        """Current ladder tier (0..3)."""
        with self._lock:
            return self._tier

    def observe(self, occupancy: float) -> int:
        """Feed one occupancy sample; returns the (possibly new) tier.

        Escalation is immediate (to however many tiers the smoothed
        pressure has climbed past); de-escalation steps down one tier at
        a time, and only after ``min_dwell_s`` in the current tier with
        pressure below its hysteresis exit.
        """
        if occupancy < 0:
            raise ConfigError(f"occupancy must be >= 0, got {occupancy}")
        with self._lock:
            a = self.ewma_alpha
            self._pressure = (1 - a) * self._pressure + a * float(occupancy)
            now = self._clock()
            target = TIER_FULL
            for t, threshold in enumerate(self.enter, start=1):
                if self._pressure >= threshold:
                    target = t
            if target > self._tier:
                self._set_tier_locked(target, now)
            elif self._tier > TIER_FULL:
                exit_below = self.enter[self._tier - 1] - self.hysteresis
                if (
                    self._pressure < exit_below
                    and now - self._entered_at >= self.min_dwell_s
                ):
                    self._set_tier_locked(self._tier - 1, now)
            return self._tier

    def _set_tier_locked(self, tier: int, now: float) -> None:
        if tier > self._tier:
            get_registry().counter(
                f"service.degrade.enter_{tier_name(tier)}"
            ).inc()
        self._tier = tier
        self._entered_at = now
        get_registry().gauge("service.degrade_tier").set(tier)
