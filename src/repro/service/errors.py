"""Typed errors of the scenario-execution service.

Overload handling is only useful if callers can *distinguish* outcomes:
a saturated queue (``retriable = True`` — back off and resubmit) is not
a poison request (``retriable = False`` — resubmitting reproduces the
crash).  Every service error carries that flag, and the short
machine-readable ``code`` is what terminal :class:`ScenarioResult`
records and journal entries store, so outcomes stay stable across
resumes.
"""

from __future__ import annotations

from repro.util.validation import ReproError


class ServiceError(ReproError):
    """Base class for scenario-service errors.

    ``retriable`` tells callers whether resubmitting the same request
    later can succeed; ``code`` is a stable machine-readable cause.
    """

    retriable = False
    code = "service-error"


class QueueFullError(ServiceError):
    """Admission control rejected the request: the bounded queue is at
    capacity.  Retriable — the fast rejection *is* the load shedding;
    the caller backs off instead of the service queueing unboundedly."""

    retriable = True
    code = "queue-full"


class OverloadShedError(QueueFullError):
    """Admission control rejected the request before it could queue:
    the adaptive concurrency limiter is at its limit, or the
    degradation ladder reached its shed tier.  Subclasses
    :class:`QueueFullError` so callers that already back off on
    queue-full handle it unchanged, while the ``code`` tells operators
    *which* mechanism turned the request away."""

    retriable = True
    code = "overload-shed"


class ServiceClosedError(ServiceError):
    """The service is shutting down and no longer admits requests."""

    retriable = False
    code = "service-closed"


class CircuitOpenError(ServiceError):
    """A stage's circuit breaker is open: recent requests kept failing
    there, so new ones are rejected fast until a half-open probe
    succeeds.  Retriable after the breaker's recovery interval."""

    retriable = True
    code = "circuit-open"


class DeadlineExceededError(ServiceError):
    """The request's deadline passed (in queue, or mid-run via the
    cooperative cancellation hook, or by watchdog hard-kill)."""

    retriable = True
    code = "deadline"


class PoisonRequestError(ServiceError):
    """The request crashed its worker ``max_attempts`` times and is
    quarantined — resubmitting it verbatim would crash again."""

    retriable = False
    code = "poison"


class CorruptDataError(ServiceError):
    """The request's transfer kept failing end-to-end integrity
    verification: its seeded silent-corruption model poisons every
    usable path, so the corruption is a *deterministic* function of the
    request params and resubmitting verbatim reproduces it.  The
    service maps this to the same quarantine accounting as a poison
    crash (``service.poison_quarantined``) — nothing corrupt was ever
    acknowledged; the request simply has no clean answer."""

    retriable = False
    code = "corrupt-data"


class UnknownRequestError(ServiceError):
    """A result was asked for a request id the service never admitted."""

    retriable = False
    code = "unknown-request"
