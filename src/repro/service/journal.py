"""Crash-safe write-ahead journal for batch campaigns.

The journal is an append-only JSONL file.  Line one is a header binding
the journal to one campaign document (by sha256 of its canonical JSON);
every following line is one terminal result record wrapped with its own
checksum::

    {"journal": "repro-batch/1", "campaign_sha": "<sha256>"}
    {"record": {...}, "sha": "<sha256 of canonical record>"}
    ...

Each append is flushed **and fsynced** before the service moves on, so
after a SIGKILL the journal contains every result that was reported as
terminal, plus at most one torn tail line.  The loader tolerates exactly
that: a tail that fails to parse is discarded (the scenario simply
re-runs on resume), and any record whose checksum does not match is
dropped the same way — re-running is always safe because scenario
payloads are deterministic.

``repro batch --resume`` replays the journal, skips every intact
terminal record, and re-runs only the remainder — converging on a
results file byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import get_registry
from repro.util.checksum import canonical_json, payload_checksum
from repro.util.validation import ConfigError

#: Journal format tag (header line).
JOURNAL_FORMAT = "repro-batch/1"


def _record_sha(record: Mapping) -> str:
    return payload_checksum(record)


class JournalMismatchError(ConfigError):
    """The journal on disk belongs to a different campaign document."""


class Journal:
    """Append-side handle; use :meth:`open` / :meth:`create`."""

    def __init__(self, path: Path, campaign_sha: str, fh):
        self.path = Path(path)
        self.campaign_sha = campaign_sha
        self._fh = fh

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: "Path | str", campaign_sha: str) -> "Journal":
        """Start a fresh journal (truncates any existing one)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(path, "w", encoding="utf-8")
        header = {"journal": JOURNAL_FORMAT, "campaign_sha": campaign_sha}
        fh.write(canonical_json(header) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        return cls(path, campaign_sha, fh)

    @classmethod
    def open_for_append(cls, path: "Path | str", campaign_sha: str) -> "Journal":
        """Reopen an existing journal to continue a resumed campaign.

        Raises :class:`JournalMismatchError` if the journal was written
        for a different campaign document — resuming someone else's
        journal would silently mix results.
        """
        path = Path(path)
        existing_sha, _ = load_journal(path)
        if existing_sha != campaign_sha:
            raise JournalMismatchError(
                f"journal {path} belongs to campaign {existing_sha[:12]}..., "
                f"not {campaign_sha[:12]}...; refusing to resume"
            )
        fh = open(path, "a", encoding="utf-8")
        return cls(path, campaign_sha, fh)

    # -- appending -----------------------------------------------------------

    def append(self, record: Mapping) -> None:
        """Durably journal one terminal result record."""
        line = canonical_json({"record": dict(record), "sha": _record_sha(record)})
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        get_registry().counter("service.journal.appended").inc()

    def close(self) -> None:
        """Close the underlying file; further appends are an error."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def load_journal(path: "Path | str") -> "tuple[str, dict[str, dict]]":
    """Replay a journal: ``(campaign_sha, {request_id: record})``.

    Tolerates a torn tail (stops there) and drops checksum-mismatched
    records; both are counted in ``service.journal.dropped``.
    """
    path = Path(path)
    registry = get_registry()
    with open(path, encoding="utf-8") as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"journal {path} has an unreadable header") from exc
        if not isinstance(header, dict) or header.get("journal") != JOURNAL_FORMAT:
            raise ConfigError(
                f"journal {path} is not a {JOURNAL_FORMAT} journal"
            )
        campaign_sha = str(header.get("campaign_sha", ""))
        records: "dict[str, dict]" = {}
        for line in fh:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail from a crash mid-append: everything before it
                # is intact (appends are fsynced in order), so stop here.
                registry.counter("service.journal.dropped").inc()
                break
            record = entry.get("record") if isinstance(entry, dict) else None
            if not isinstance(record, dict) or entry.get("sha") != _record_sha(record):
                registry.counter("service.journal.dropped").inc()
                continue
            rid = record.get("id")
            if isinstance(rid, str) and rid:
                records[rid] = record
    return campaign_sha, records
