"""Request/result model of the scenario service.

A :class:`ScenarioRequest` names a scenario *kind* plus its parameters;
a :class:`ScenarioResult` is the request's single **terminal** record —
every admitted request ends in exactly one of :data:`TERMINAL_STATUSES`:

* ``completed`` — the scenario ran and produced a payload;
* ``shed``      — never attempted: admission rejected it (queue full,
  circuit open) or its deadline expired while still queued.  Retriable.
* ``failed``    — attempted and lost: scenario error, mid-run deadline,
  or poison quarantine after repeated worker crashes.

Payloads are **deterministic** JSON documents (no wall-clock fields), so
the same seeded campaign yields byte-identical results across runs and
resumes; :func:`payload_checksum` is the sha256 of the canonical JSON
form, journaled by :mod:`repro.service.journal` and re-verified on
``repro batch --resume``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.util.checksum import canonical_json, payload_checksum
from repro.util.validation import ConfigError

#: Every admitted request ends in exactly one of these.
COMPLETED = "completed"
SHED = "shed"
FAILED = "failed"
TERMINAL_STATUSES = (COMPLETED, SHED, FAILED)

#: Scenario kinds the service executes (see repro.service.scenarios).
SCENARIO_KINDS = ("p2p", "group", "fanin", "io", "chaos", "spin")

#: Fault-injection hooks for tests and soak campaigns, handled by the
#: worker *before* the scenario runs: ``crash`` hard-exits the worker
#: process (exercises the watchdog's restart + poison quarantine),
#: ``hang`` spins forever ignoring cooperative cancellation (exercises
#: the watchdog's deadline hard-kill).
INJECT_KINDS = ("crash", "hang")


@dataclass(frozen=True)
class ScenarioRequest:
    """One scenario-execution request.

    Args:
        id: caller-chosen unique id (journal/result key).
        kind: one of :data:`SCENARIO_KINDS`.
        params: kind-specific parameters (JSON-able).
        deadline_s: wall-clock budget from *admission*; ``None`` uses
            the service default (which may also be ``None`` = no
            deadline).
        inject: optional fault injection (:data:`INJECT_KINDS`).
    """

    id: str
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    deadline_s: "float | None" = None
    inject: "str | None" = None

    def __post_init__(self):
        if not isinstance(self.id, str) or not self.id:
            raise ConfigError(f"request id must be a non-empty string, got {self.id!r}")
        if self.kind not in SCENARIO_KINDS:
            raise ConfigError(
                f"unknown scenario kind {self.kind!r}; known: {SCENARIO_KINDS}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.inject is not None and self.inject not in INJECT_KINDS:
            raise ConfigError(
                f"unknown inject {self.inject!r}; known: {INJECT_KINDS}"
            )

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ScenarioRequest":
        """Build a request from a JSON document (``repro serve`` lines,
        campaign scenario entries)."""
        if not isinstance(doc, Mapping):
            raise ConfigError(f"request must be a JSON object, got {type(doc).__name__}")
        unknown = set(doc) - {"id", "kind", "params", "deadline_s", "inject"}
        if unknown:
            raise ConfigError(f"unknown request fields: {sorted(unknown)}")
        params = doc.get("params", {})
        if not isinstance(params, Mapping):
            raise ConfigError("request params must be a JSON object")
        return cls(
            id=doc.get("id", ""),
            kind=doc.get("kind", ""),
            params=dict(params),
            deadline_s=doc.get("deadline_s"),
            inject=doc.get("inject"),
        )

    def to_dict(self) -> dict:
        """Serialise back to the wire/journal dict form (inverse of from_dict)."""
        doc: dict = {"id": self.id, "kind": self.kind, "params": dict(self.params)}
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.inject is not None:
            doc["inject"] = self.inject
        return doc


@dataclass
class ScenarioResult:
    """The terminal record of one request.

    ``payload``/``checksum`` are set for ``completed`` results;
    ``error`` carries ``"<code>: <message>"`` otherwise, with ``code``
    from :mod:`repro.service.errors` (or the exception type name).
    ``attempts``/``worker``/``stage_s``/``degraded``/``tier`` are
    execution telemetry and deliberately excluded from :meth:`record` —
    the journaled record must be identical across resumes.

    ``tier`` is the degradation-ladder tier the request executed at
    (:data:`repro.service.degrade.TIER_NAMES` index); ``degraded`` stays
    the PR 5 boolean view of it (``tier >= 2``).
    """

    id: str
    kind: str
    status: str
    payload: "dict | None" = None
    checksum: "str | None" = None
    error: "str | None" = None
    attempts: int = 1
    worker: "int | None" = None
    degraded: bool = False
    tier: int = 0
    stage_s: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.status not in TERMINAL_STATUSES:
            raise ConfigError(
                f"status must be one of {TERMINAL_STATUSES}, got {self.status!r}"
            )
        if self.status == COMPLETED and self.checksum is None and self.payload is not None:
            self.checksum = payload_checksum(self.payload)

    def record(self) -> dict:
        """The deterministic, journal/results-file form of this result."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "payload": self.payload,
            "checksum": self.checksum,
            "error": self.error,
        }

    @classmethod
    def from_record(cls, rec: Mapping[str, Any]) -> "ScenarioResult":
        """Rehydrate a terminal result from a journal record."""
        return cls(
            id=str(rec["id"]),
            kind=str(rec.get("kind", "")),
            status=str(rec["status"]),
            payload=rec.get("payload"),
            checksum=rec.get("checksum"),
            error=rec.get("error"),
        )
