"""Scenario runners the service's workers execute.

Each kind maps to a deterministic, JSON-able payload — no wall-clock
fields ever land in a payload, so a seeded campaign's results are
byte-identical across runs and resumes (the property ``repro batch
--resume`` is verified against).

Transfer kinds split into the two guarded stages the circuit breakers
watch:

* **plan** — the multipath proxy search (:class:`TransferPlanner`);
* **simulate** — the fluid-simulator execution of the planned flows.

When the planner's breaker is open, or the remaining deadline is below
the planning-cost estimate, the runner serves the **degraded-mode
fallback**: a direct single-path plan (``mode="direct"``), skipping the
proxy search entirely — slower data movement, but an answer within the
deadline instead of a rejection.  A failure raises :class:`StageError`
naming the stage, which the service feeds back into the right breaker.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Mapping

from repro.core.multipath import TransferSpec, run_transfer
from repro.core.planner import TransferPlanner
from repro.obs.trace import get_tracer
from repro.util.cancel import check_cancelled, current_scope
from repro.util.validation import ConfigError, ReproError, SimulationCancelled

#: Fields a transfer payload records per (src, dst) pair.
_MiB = 1 << 20


class StageError(ReproError):
    """A scenario stage failed; ``stage`` is ``"plan"`` or ``"simulate"``.

    Wraps the original error so the service can route the failure into
    the matching circuit breaker while callers still see the cause.
    """

    def __init__(self, stage: str, cause: BaseException):
        super().__init__(f"{stage} stage failed: {type(cause).__name__}: {cause}")
        self.stage = stage
        self.cause = cause


@functools.lru_cache(maxsize=8)
def _system(nnodes: "int | None" = None, ncores: "int | None" = None):
    from repro.machine import mira_system

    return mira_system(nnodes=nnodes, ncores=ncores)


def _far_node(n: int) -> int:
    """An off-axis far destination (same shape the chaos harness uses)."""
    return (n // 2 + n // 8 + 1) % n


def _transfer_specs(kind: str, params: Mapping[str, Any], system) -> list[TransferSpec]:
    nbytes = int(params.get("nbytes", _MiB))
    n = system.nnodes
    if kind == "p2p":
        src = int(params.get("src", 0))
        dst = int(params.get("dst", _far_node(n)))
        return [TransferSpec(src=src, dst=dst, nbytes=nbytes)]
    from repro.resilience.chaos import geometry_specs

    return geometry_specs(system, kind, nbytes)


def _mode_used_payload(mode_used: Mapping[tuple, str]) -> dict:
    return {f"{s}->{d}": m for (s, d), m in sorted(mode_used.items())}


def _fault_trace(params: Mapping[str, Any], system):
    """Build the request's seeded :class:`FaultTrace`, or ``None``.

    A transfer request opts into fault injection with ``fault_seed``
    (plus optional ``fault_events`` / ``fault_hard_fraction``); the
    trace is a pure function of those params and the machine size, so
    payloads stay byte-identical across runs and resumes.
    """
    seed = params.get("fault_seed")
    if seed is None:
        return None
    from repro.machine.faults import random_fault_trace

    return random_fault_trace(
        system.topology,
        int(params.get("fault_events", 3)),
        hard_fraction=float(params.get("fault_hard_fraction", 0.5)),
        seed=int(seed),
    )


def _sdc_model(params: Mapping[str, Any], system):
    """Build the request's seeded :class:`SDCModel`, or ``None``.

    A transfer request opts into silent-corruption injection with
    ``sdc_seed`` (plus optional ``sdc_flip_links`` /
    ``sdc_corrupt_proxies`` / ``sdc_rate`` / ``sdc_stale_rate``); the
    model is a pure function of those params and the machine size, so
    payloads stay byte-identical across runs, resumes and the batched
    path.
    """
    seed = params.get("sdc_seed")
    if seed is None:
        return None
    from repro.machine.faults import random_sdc_model

    return random_sdc_model(
        system.topology,
        int(params.get("sdc_flip_links", 2)),
        flip_rate=float(params.get("sdc_rate", 0.5)),
        ncorrupt_proxies=int(params.get("sdc_corrupt_proxies", 1)),
        corrupt_rate=float(params.get("sdc_rate", 0.5)),
        stale_rate=float(params.get("sdc_stale_rate", 0.0)),
        seed=int(seed),
    )


def _faulted_payload(
    kind: str, system, out, *, degraded: bool = False, sdc: bool = False
) -> dict:
    """Payload for a fault-traced transfer (serial and batched alike).

    ``sdc`` adds the integrity-verification fields — only for requests
    that opted into corruption injection, so pre-existing fault-traced
    payloads stay byte-identical.
    """
    r = out.resilience
    payload = {
        "kind": kind,
        "nnodes": system.nnodes,
        "total_bytes": out.total_bytes,
        "makespan_s": out.makespan,
        "throughput_Bps": out.throughput,
        "mode_used": _mode_used_payload(out.mode_used),
        "degraded": degraded,
        "faulted": True,
        "delivered_bytes": r.delivered_bytes,
        "residue_bytes": r.residue_bytes,
        "rounds": r.telemetry.rounds,
        "retries": r.telemetry.retries,
        "complete": r.complete,
    }
    if sdc:
        payload.update(
            corrupt_extents_detected=r.telemetry.corrupt_extents_detected,
            corrupt_bytes_redriven=r.telemetry.corrupt_bytes_redriven,
            stale_drops=r.telemetry.stale_drops,
            corrupted_acknowledged_bytes=r.corrupted_acknowledged_bytes,
        )
    return payload


def _effective_max_proxies(
    params: Mapping[str, Any], max_proxies_cap: "int | None"
) -> "int | None":
    """The request's own proxy-count bound, clipped by the ladder's
    reduced-k cap when one is in force."""
    own = params.get("max_proxies")
    if max_proxies_cap is None:
        return own
    if own is None:
        return max_proxies_cap
    return min(int(own), max_proxies_cap)


def _ladder_capped(
    params: Mapping[str, Any], max_proxies_cap: "int | None"
) -> bool:
    """Did the ladder's reduced-k cap actually tighten this request's
    planning?  Payloads produced under a binding cap are marked
    ``degraded`` — they are not the request's canonical result, which
    matters to consumers that need payloads to be pure functions of the
    request params (chaos-campaign replay, journal resume)."""
    if max_proxies_cap is None:
        return False
    own = params.get("max_proxies")
    return own is None or int(max_proxies_cap) < int(own)


def _run_transfer_kind(
    kind: str,
    params: Mapping[str, Any],
    *,
    degraded: bool,
    stage_s: dict,
    max_proxies_cap: "int | None" = None,
) -> dict:
    system = _system(nnodes=int(params.get("nnodes", 64)))
    specs = _transfer_specs(kind, params, system)
    tracer = get_tracer()
    trace = _fault_trace(params, system)
    sdc = _sdc_model(params, system)
    if trace is not None or sdc is not None:
        # Fault-traced / corruption-injected transfers run through the
        # resilient executor, which does its own (fault-aware) planning
        # — the plan stage and the degraded direct-path shortcut don't
        # apply.  A per-request proxy cap needs a custom planner, which
        # only the serial driver takes (the batched fast path surfaces
        # these as the ``faults-scheduled`` fallback reason).
        from repro.core.multipath import TransferOutcome, run_transfer_many
        from repro.resilience.executor import TransferAbortedError
        from repro.resilience.ledger import IntegrityError
        from repro.service.errors import CorruptDataError

        mp = _effective_max_proxies(params, max_proxies_cap)
        check_cancelled()
        t0 = time.perf_counter()
        try:
            with tracer.span(
                "service.simulate", cat="service", kind=kind, faulted=True
            ):
                if mp is not None:
                    from repro.resilience import run_resilient_transfer
                    from repro.resilience.planner import ResilientPlanner

                    r = run_resilient_transfer(
                        system, specs, trace=trace, sdc=sdc,
                        planner=ResilientPlanner(system, max_proxies=mp),
                    )
                    out = TransferOutcome(
                        makespan=r.makespan, total_bytes=r.total_bytes,
                        mode_used=r.mode_used, result=r.result, resilience=r,
                    )
                else:
                    out = run_transfer_many(
                        system, [specs], traces=[trace], sdc=[sdc]
                    )[0]
        except SimulationCancelled:
            raise
        except TransferAbortedError as exc:
            tele = getattr(exc, "telemetry", None)
            if (
                sdc is not None
                and tele is not None
                and tele.corrupt_extents_detected
                and not _ladder_capped(params, max_proxies_cap)
            ):
                # Persistent corruption: every attempted path kept
                # failing end-to-end verification.  Deterministic for
                # these params — the service quarantines like poison.
                raise CorruptDataError(
                    f"corrupt-data: {tele.corrupt_extents_detected} corrupt "
                    f"extent arrivals across {tele.rounds} rounds; no clean "
                    f"path delivered — quarantined"
                ) from exc
            raise StageError("simulate", exc) from exc
        except IntegrityError as exc:
            raise CorruptDataError(f"corrupt-data: {exc}") from exc
        except Exception as exc:
            raise StageError("simulate", exc) from exc
        finally:
            stage_s["simulate_s"] = time.perf_counter() - t0
        return _faulted_payload(
            kind, system, out,
            degraded=_ladder_capped(params, max_proxies_cap),
            sdc=sdc is not None,
        )
    assignments = None
    if not degraded:
        t0 = time.perf_counter()
        try:
            with tracer.span("service.plan", cat="service", kind=kind):
                planner = TransferPlanner(
                    system,
                    max_proxies=_effective_max_proxies(params, max_proxies_cap),
                )
                assignments = planner.find_plan(
                    [(s.src, s.dst) for s in specs]
                ).assignments
        except SimulationCancelled:
            raise
        except Exception as exc:
            raise StageError("plan", exc) from exc
        finally:
            stage_s["plan_s"] = time.perf_counter() - t0
    check_cancelled()
    t0 = time.perf_counter()
    try:
        with tracer.span("service.simulate", cat="service", kind=kind):
            out = run_transfer(
                system,
                specs,
                mode="direct" if degraded else "auto",
                assignments=assignments,
                batch_tol=float(params.get("batch_tol", 0.0)),
            )
    except SimulationCancelled:
        raise
    except Exception as exc:
        raise StageError("simulate", exc) from exc
    finally:
        stage_s["simulate_s"] = time.perf_counter() - t0
    return {
        "kind": kind,
        "nnodes": system.nnodes,
        "total_bytes": out.total_bytes,
        "makespan_s": out.makespan,
        "throughput_Bps": out.throughput,
        "mode_used": _mode_used_payload(out.mode_used),
        "degraded": degraded or _ladder_capped(params, max_proxies_cap),
    }


def run_transfer_kinds_batched(
    items: "list[tuple[str, Mapping[str, Any]]]",
) -> list[dict]:
    """Execute many transfer-kind scenarios in one batched simulate pass.

    ``items`` are ``(kind, params)`` pairs as a worker would receive
    them; the returned payload dicts are byte-identical to what
    :func:`_run_transfer_kind` produces un-degraded (planning runs per
    scenario through the same :class:`TransferPlanner`; only the
    simulate stage is batched, through
    :func:`repro.core.multipath.run_transfer_many`).  Fault-traced
    scenarios (``fault_seed``) stay batched too: each system's faulted
    group runs through the resilience executor's wave batching, which
    retries only a faulted scenario's outstanding ledger extents while
    the rest of the batch proceeds.  Exact mode only — a scenario
    requesting ``batch_tol != 0`` is rejected, and so is a fault trace
    combined with ``max_proxies`` (the resilient planner plans its own
    proxies); callers filter those to the serial path.
    """
    from repro.core.multipath import run_transfer_many

    prepared = []  # (system, specs, assignments, kind, params, trace, sdc)
    for kind, params in items:
        if kind not in ("p2p", "group", "fanin"):
            raise ConfigError(f"kind {kind!r} is not a transfer scenario")
        if float(params.get("batch_tol", 0.0)) != 0.0:
            raise ConfigError("batched transfer execution is exact-mode only")
        system = _system(nnodes=int(params.get("nnodes", 64)))
        specs = _transfer_specs(kind, params, system)
        trace = _fault_trace(params, system)
        sdc = _sdc_model(params, system)
        assignments = None
        if trace is None and sdc is None:
            planner = TransferPlanner(
                system, max_proxies=params.get("max_proxies")
            )
            assignments = planner.find_plan(
                [(s.src, s.dst) for s in specs]
            ).assignments
        elif params.get("max_proxies") is not None:
            raise ConfigError(
                "fault-traced scenarios plan their own proxies; "
                "max_proxies is serial-path only"
            )
        prepared.append((system, specs, assignments, kind, params, trace, sdc))

    # One batched pass per distinct system (scenarios may differ in
    # nnodes), fault-free and fault-traced groups separately — the
    # latter through the resilient executor's wave batching.
    payloads: "list[dict | None]" = [None] * len(items)
    by_system: "dict[tuple[int, bool], list[int]]" = {}
    for i, (system, _, _, _, _, trace, sdc) in enumerate(prepared):
        by_system.setdefault(
            (id(system), trace is not None or sdc is not None), []
        ).append(i)
    for (_, faulted), idxs in by_system.items():
        system = prepared[idxs[0]][0]
        if faulted:
            outs = run_transfer_many(
                system,
                [prepared[i][1] for i in idxs],
                traces=[prepared[i][5] for i in idxs],
                sdc=[prepared[i][6] for i in idxs],
            )
            for i, out in zip(idxs, outs):
                payloads[i] = _faulted_payload(
                    prepared[i][3], system, out,
                    sdc=prepared[i][6] is not None,
                )
            continue
        outs = run_transfer_many(
            system,
            [prepared[i][1] for i in idxs],
            mode="auto",
            assignments=[prepared[i][2] for i in idxs],
        )
        for i, out in zip(idxs, outs):
            payloads[i] = {
                "kind": prepared[i][3],
                "nnodes": system.nnodes,
                "total_bytes": out.total_bytes,
                "makespan_s": out.makespan,
                "throughput_Bps": out.throughput,
                "mode_used": _mode_used_payload(out.mode_used),
                "degraded": False,
            }
    return payloads  # type: ignore[return-value]  # every slot filled above


def _run_io(params: Mapping[str, Any], *, degraded: bool, stage_s: dict) -> dict:
    from repro.core import run_io_movement
    from repro.torus.mapping import RankMapping
    from repro.torus.partition import CORES_PER_NODE
    from repro.workloads import hacc_io_sizes, pareto_pattern, uniform_pattern

    system = _system(ncores=int(params.get("ncores", 1024)))
    mapping = RankMapping(system.topology, ranks_per_node=CORES_PER_NODE)
    pattern = str(params.get("pattern", "1"))
    seed = int(params.get("seed", 2014))
    if pattern == "1":
        sizes = uniform_pattern(mapping.nranks, seed=seed)
    elif pattern == "2":
        sizes = pareto_pattern(mapping.nranks, seed=seed)
    elif pattern == "hacc":
        sizes = hacc_io_sizes(mapping.nranks)
    else:
        raise ConfigError(f"unknown io pattern {pattern!r}; use 1, 2 or hacc")
    # Degraded mode: skip the topology-aware aggregation planning and
    # serve the baseline collective path.
    method = "collective" if degraded else str(params.get("method", "topology_aware"))
    t0 = time.perf_counter()
    try:
        with get_tracer().span("service.simulate", cat="service", kind="io"):
            out = run_io_movement(
                system, sizes, method=method, mapping=mapping,
                batch_tol=float(params.get("batch_tol", 0.05)),
                fair_tol=float(params.get("fair_tol", 0.02)),
            )
    except SimulationCancelled:
        raise
    except Exception as exc:
        raise StageError("simulate", exc) from exc
    finally:
        stage_s["simulate_s"] = time.perf_counter() - t0
    return {
        "kind": "io",
        "ncores": int(params.get("ncores", 1024)),
        "pattern": pattern,
        "method": method,
        "total_bytes": float(sizes.sum()),
        "makespan_s": out.makespan,
        "throughput_Bps": out.throughput,
        "active_ions": out.active_ions,
        "ion_imbalance": out.ion_imbalance,
        "degraded": degraded,
    }


def _run_chaos(params: Mapping[str, Any], *, stage_s: dict) -> dict:
    from repro.resilience.chaos import CampaignConfig, run_campaign

    config = CampaignConfig(
        nnodes=int(params.get("nnodes", 128)),
        nbytes=int(params.get("nbytes", 8 * _MiB)),
        seeds=tuple(params.get("seeds", (0,))),
        scenarios=tuple(params.get("scenarios", ("hard-down",))),
        geometries=tuple(params.get("geometries", ("p2p",))),
        max_retries=int(params.get("max_retries", 3)),
        budget_s=float(params.get("budget_s", 0.5)),
    )
    t0 = time.perf_counter()
    try:
        with get_tracer().span("service.simulate", cat="service", kind="chaos"):
            report = run_campaign(config)
    except SimulationCancelled:
        raise
    except Exception as exc:
        raise StageError("simulate", exc) from exc
    finally:
        stage_s["simulate_s"] = time.perf_counter() - t0
    # Wall time is nondeterministic; payloads must be byte-stable.
    report.pop("wall_time_s", None)
    return {"kind": "chaos", "report": report}


def _run_spin(params: Mapping[str, Any], *, stage_s: dict) -> dict:
    """A cooperative busy-wait: spins for ``duration_s`` wall seconds,
    checking the ambient cancel scope each tick.  Used by soak tests
    and demo campaigns to apply deadline pressure deterministically."""
    duration_s = float(params.get("duration_s", 0.01))
    if duration_s < 0:
        raise ConfigError(f"duration_s must be >= 0, got {duration_s}")
    t0 = time.perf_counter()
    try:
        while time.perf_counter() - t0 < duration_s:
            check_cancelled()
            time.sleep(min(0.002, duration_s / 10 + 1e-6))
    finally:
        stage_s["simulate_s"] = time.perf_counter() - t0
    return {"kind": "spin", "duration_s": duration_s, "spun": True}


def execute_request(
    kind: str,
    params: Mapping[str, Any],
    *,
    degraded: bool = False,
    plan_cost_est_s: float = 0.0,
    plan_cost_safety: float = 2.0,
    max_proxies_cap: "int | None" = None,
) -> tuple[dict, dict, bool]:
    """Run one scenario; returns ``(payload, stage_s, degraded_used)``.

    ``degraded`` is the dispatcher's verdict (planner breaker open or
    degradation ladder at its direct tier); ``max_proxies_cap`` is the
    ladder's reduced-k cap on the proxy search (tier 1).  Additionally,
    when the remaining deadline is below ``plan_cost_safety *
    plan_cost_est_s``, the runner degrades on its own — spending the
    whole budget planning would guarantee a miss.
    """
    stage_s: dict = {}
    scope = current_scope()
    if not degraded and scope is not None and plan_cost_est_s > 0:
        remaining = scope.remaining()
        if remaining is not None and remaining < plan_cost_safety * plan_cost_est_s:
            degraded = True
    check_cancelled()
    if kind in ("p2p", "group", "fanin"):
        payload = _run_transfer_kind(
            kind, params, degraded=degraded, stage_s=stage_s,
            max_proxies_cap=max_proxies_cap,
        )
    elif kind == "io":
        payload = _run_io(params, degraded=degraded, stage_s=stage_s)
    elif kind == "chaos":
        degraded = False  # no planner stage to skip
        payload = _run_chaos(params, stage_s=stage_s)
    elif kind == "spin":
        degraded = False
        payload = _run_spin(params, stage_s=stage_s)
    else:
        raise ConfigError(f"unknown scenario kind {kind!r}")
    return payload, stage_s, degraded
