"""The overload-safe scenario-execution service.

A :class:`ScenarioService` owns a small pool of **spawned** worker
processes and a bounded admission queue, and guarantees that every
admitted request reaches exactly one terminal state (``completed`` /
``shed`` / ``failed``) no matter what the scenario does — crash, hang,
deadline blow-through, or planner meltdown.

Architecture (all supervision in **one** parent thread, so the
bookkeeping has no cross-thread races to reason about):

* ``submit`` (caller thread) — admission control.  Rejects fast with a
  typed, ``retriable`` error when the bounded queue is full
  (:class:`QueueFullError` — that rejection *is* the load shedding) or
  the simulator's circuit breaker is open (:class:`CircuitOpenError`).
  ``block=True`` turns rejection into backpressure for batch drivers.
* supervisor thread — drains per-worker result queues, detects crashed
  workers (restart; re-queue the victim request until
  ``max_attempts``, then quarantine it as **poison**), hard-kills
  workers that blow past their deadline or hang limit, and dispatches
  queued requests to free workers (shedding any whose deadline already
  expired while queued).
* workers — see :mod:`repro.service.worker`.  One request in flight
  per worker over private queues, so a killed worker can never corrupt
  a queue another worker is using, and the parent always knows which
  request died with it.

Two circuit breakers (:mod:`repro.service.breaker`) watch the planner
and simulator stages.  A tripped planner breaker — or a remaining
deadline smaller than ``plan_cost_safety ×`` the observed planning-cost
EWMA — flips the dispatch to **degraded mode**: direct single-path
transfers with no proxy search, trading bandwidth for an answer inside
the deadline.  A tripped simulator breaker sheds at admission.

Everything observable is exported through :mod:`repro.obs.metrics`
(``service.queue_depth``, ``service.shed.*``, ``service.deadline_misses``,
``service.worker_restarts``, ``service.poison_quarantined``, breaker
states) and spans (``service.admit`` / ``service.dispatch``).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.service.breaker import OPEN, CircuitBreaker
from repro.service.errors import (
    CircuitOpenError,
    QueueFullError,
    ServiceClosedError,
    UnknownRequestError,
)
from repro.service.request import (
    COMPLETED,
    FAILED,
    SHED,
    ScenarioRequest,
    ScenarioResult,
)
from repro.service.worker import worker_main
from repro.util.validation import ConfigError

#: Scenario kinds with a separate planner stage (degraded mode applies).
_PLANNED_KINDS = ("p2p", "group", "fanin")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the scenario service.

    Args:
        workers: worker-process pool size.
        queue_cap: bounded admission queue depth; beyond it,
            ``submit`` sheds (or blocks, for batch backpressure).
        default_deadline_s: deadline applied to requests that do not
            carry their own (``None`` = no default deadline).
        max_attempts: worker crashes tolerated per request before it is
            quarantined as poison.
        hang_timeout_s: hard-kill limit for requests with *no*
            deadline (``None`` disables; a deadline always wins).
        kill_grace_s: slack past the deadline before the watchdog
            hard-kills, giving cooperative cancellation first refusal.
        breaker_failure_threshold / breaker_recovery_s: see
            :class:`repro.service.breaker.CircuitBreaker`.
        plan_cost_safety: degrade when remaining deadline is below
            ``plan_cost_safety ×`` the planning-cost EWMA.
        poll_interval_s: supervisor wake-up period.
    """

    workers: int = 2
    queue_cap: int = 32
    default_deadline_s: "float | None" = None
    max_attempts: int = 3
    hang_timeout_s: "float | None" = 60.0
    kill_grace_s: float = 0.25
    breaker_failure_threshold: int = 3
    breaker_recovery_s: float = 1.0
    plan_cost_safety: float = 2.0
    poll_interval_s: float = 0.005

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.queue_cap < 1:
            raise ConfigError(f"queue_cap must be >= 1, got {self.queue_cap}")
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        if self.kill_grace_s < 0:
            raise ConfigError(f"kill_grace_s must be >= 0, got {self.kill_grace_s}")


@dataclass
class _Tracked:
    """Parent-side lifecycle record of one admitted request."""

    req: ScenarioRequest
    deadline_at: "float | None"  # absolute monotonic, None = no deadline
    attempts: int = 0
    done: threading.Event = field(default_factory=threading.Event)


class _Worker:
    """One worker slot: process + its private dispatch/result queues."""

    __slots__ = ("wid", "proc", "req_q", "res_q", "busy", "dispatched_at", "degraded")

    def __init__(self, wid: int, ctx):
        self.wid = wid
        self.req_q = ctx.Queue()
        self.res_q = ctx.Queue()
        self.proc = ctx.Process(
            target=worker_main,
            args=(wid, self.req_q, self.res_q),
            name=f"repro-worker-{wid}",
            daemon=True,
        )
        self.proc.start()
        self.busy: "Optional[_Tracked]" = None
        self.dispatched_at = 0.0
        self.degraded = False

    def discard_queues(self) -> None:
        """Detach queue feeder threads so parent exit never blocks on a
        queue whose consumer was hard-killed."""
        for q in (self.req_q, self.res_q):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass


class ScenarioService:
    """Overload-safe scenario executor.  See the module docstring.

    Use as a context manager; ``__exit__`` drains and shuts down::

        with ScenarioService(ServiceConfig(workers=4)) as svc:
            svc.submit(ScenarioRequest(id="a", kind="p2p"))
            result = svc.result("a", timeout=30)
    """

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        *,
        on_result: "Callable[[ScenarioResult], None] | None" = None,
    ):
        self.config = config or ServiceConfig()
        self._on_result = on_result
        self._ctx = mp.get_context("spawn")
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)  # queue_cap backpressure
        self._pending: "deque[_Tracked]" = deque()
        self._tracked: "dict[str, _Tracked]" = {}
        self._results: "dict[str, ScenarioResult]" = {}
        self._plan_cost_est: "dict[str, float]" = {}
        self._closing = False
        self._stop = False
        self.planner_breaker = CircuitBreaker(
            "planner",
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_s=self.config.breaker_recovery_s,
        )
        self.simulator_breaker = CircuitBreaker(
            "simulator",
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_s=self.config.breaker_recovery_s,
        )
        self._workers = [_Worker(i, self._ctx) for i in range(self.config.workers)]
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-service-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        req: ScenarioRequest,
        *,
        block: bool = False,
        timeout: "float | None" = None,
    ) -> str:
        """Admit one request; returns its id.

        Raises:
            ServiceClosedError: the service is shutting down.
            QueueFullError: bounded queue at capacity (``block=False``);
                retriable — back off and resubmit.
            CircuitOpenError: the simulator breaker is open; retriable
                after its recovery interval.
            ConfigError: duplicate request id.
        """
        with get_tracer().span("service.admit", cat="service", kind=req.kind):
            if not self.simulator_breaker.allow():
                get_registry().counter("service.shed.circuit_open").inc()
                raise CircuitOpenError(
                    f"simulator circuit open; request {req.id!r} shed (retriable)"
                )
            with self._space:
                if self._closing:
                    raise ServiceClosedError("service is closed to new requests")
                if req.id in self._tracked:
                    raise ConfigError(f"duplicate request id {req.id!r}")
                if len(self._pending) >= self.config.queue_cap:
                    if not block:
                        get_registry().counter("service.shed.queue_full").inc()
                        raise QueueFullError(
                            f"queue full ({self.config.queue_cap}); request "
                            f"{req.id!r} shed (retriable)"
                        )
                    deadline = None if timeout is None else time.monotonic() + timeout
                    while len(self._pending) >= self.config.queue_cap:
                        if self._closing:
                            raise ServiceClosedError(
                                "service closed while waiting for queue space"
                            )
                        remaining = (
                            None if deadline is None else deadline - time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            get_registry().counter("service.shed.queue_full").inc()
                            raise QueueFullError(
                                f"queue still full after {timeout:.3g}s; request "
                                f"{req.id!r} shed (retriable)"
                            )
                        self._space.wait(timeout=remaining)
                deadline_s = (
                    req.deadline_s
                    if req.deadline_s is not None
                    else self.config.default_deadline_s
                )
                t = _Tracked(
                    req=req,
                    deadline_at=(
                        None if deadline_s is None else time.monotonic() + deadline_s
                    ),
                )
                self._tracked[req.id] = t
                self._pending.append(t)
                get_registry().counter("service.admitted").inc()
                self._set_depth_locked()
        return req.id

    def result(self, request_id: str, timeout: "float | None" = None) -> ScenarioResult:
        """Block until ``request_id`` is terminal and return its result.

        Raises :class:`UnknownRequestError` for ids never admitted and
        ``TimeoutError`` if the wait expires.
        """
        with self._lock:
            t = self._tracked.get(request_id)
        if t is None:
            raise UnknownRequestError(f"no such request: {request_id!r}")
        if not t.done.wait(timeout=timeout):
            raise TimeoutError(f"request {request_id!r} not terminal after {timeout}s")
        with self._lock:
            return self._results[request_id]

    def wait_all(self, timeout: "float | None" = None) -> bool:
        """Wait until every admitted request is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            tracked = list(self._tracked.values())
        for t in tracked:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            if not t.done.wait(timeout=remaining):
                return False
        return True

    def stats(self) -> dict:
        """Snapshot of service health (also exported as metrics)."""
        with self._lock:
            statuses = [r.status for r in self._results.values()]
            return {
                "queue_depth": len(self._pending),
                "inflight": sum(1 for w in self._workers if w.busy is not None),
                "admitted": len(self._tracked),
                "completed": statuses.count(COMPLETED),
                "failed": statuses.count(FAILED),
                "shed": statuses.count(SHED),
                "planner_breaker": self.planner_breaker.state,
                "simulator_breaker": self.simulator_breaker.state,
                "plan_cost_est_s": dict(self._plan_cost_est),
            }

    # -- shutdown ------------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: "float | None" = 60.0) -> None:
        """Stop admitting; optionally drain, then stop the pool.

        With ``drain=False``, still-queued requests are shed terminally
        (``service-closed``) and in-flight ones are hard-killed to a
        ``failed`` terminal state — nothing is left dangling.
        """
        with self._space:
            if self._stop:
                return
            self._closing = True
            if not drain:
                while self._pending:
                    t = self._pending.popleft()
                    self.simulator_breaker.release()
                    self._finish_locked(
                        t, SHED, error="service-closed: shut down before dispatch"
                    )
                self._set_depth_locked()
            self._space.notify_all()
        if drain:
            self.wait_all(timeout=timeout)
        with self._lock:
            for w in self._workers:
                t = w.busy
                if t is not None and not drain:
                    self._hard_kill_locked(
                        w, FAILED, "service-closed: hard-killed at shutdown"
                    )
            self._stop = True
        self._supervisor.join(timeout=10.0)
        for w in self._workers:
            try:
                w.req_q.put_nowait(None)
            except (OSError, ValueError):
                pass
        for w in self._workers:
            w.proc.join(timeout=2.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=2.0)
            w.discard_queues()

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- supervisor ----------------------------------------------------------

    def _supervise(self) -> None:
        while True:
            with self._lock:
                if self._stop:
                    return
            try:
                self._drain_results()
                self._check_workers()
                self._dispatch()
            except Exception:  # pragma: no cover - supervisor must survive
                get_registry().counter("service.supervisor_errors").inc()
            time.sleep(self.config.poll_interval_s)

    def _set_depth_locked(self) -> None:
        get_registry().gauge("service.queue_depth").set(len(self._pending))

    def _finish_locked(
        self,
        t: _Tracked,
        status: str,
        *,
        payload: "dict | None" = None,
        error: "str | None" = None,
        worker: "int | None" = None,
        degraded: bool = False,
        stage_s: "dict | None" = None,
    ) -> None:
        """Record the single terminal state of a request.  Idempotent:
        late results from a restarted worker are ignored."""
        if t.done.is_set():
            return
        res = ScenarioResult(
            id=t.req.id,
            kind=t.req.kind,
            status=status,
            payload=payload,
            error=error,
            attempts=max(t.attempts, 1),
            worker=worker,
            degraded=degraded,
            stage_s=stage_s or {},
        )
        self._results[t.req.id] = res
        get_registry().counter(f"service.terminal.{status}").inc()
        t.done.set()
        if self._on_result is not None:
            try:
                self._on_result(res)
            except Exception:  # pragma: no cover - observer must not kill us
                get_registry().counter("service.on_result_errors").inc()

    def _drain_results(self) -> None:
        for w in self._workers:
            while True:
                try:
                    msg = w.res_q.get_nowait()
                except Exception:
                    break
                with self._lock:
                    t = w.busy
                    if t is None or t.req.id != msg.get("id"):
                        continue  # stale result from before a restart
                    w.busy = None
                    self._record_outcome(t, msg)

    def _record_outcome(self, t: _Tracked, msg: dict) -> None:
        """Apply a worker's verdict: terminal state + breaker updates.
        Caller holds the lock."""
        status = msg.get("status")
        error = msg.get("error")
        failed_stage = msg.get("failed_stage")
        stage_s = msg.get("stage_s") or {}
        degraded = bool(msg.get("degraded"))
        planned = t.req.kind in _PLANNED_KINDS and not degraded
        if status == COMPLETED:
            if planned:
                self.planner_breaker.record_success()
                plan_s = stage_s.get("plan_s")
                if plan_s is not None:
                    prev = self._plan_cost_est.get(t.req.kind, plan_s)
                    self._plan_cost_est[t.req.kind] = 0.7 * prev + 0.3 * plan_s
            if "simulate_s" in stage_s:
                self.simulator_breaker.record_success()
            self._finish_locked(
                t,
                COMPLETED,
                payload=msg.get("payload"),
                worker=msg.get("worker"),
                degraded=degraded,
                stage_s=stage_s,
            )
            return
        if error and error.startswith("deadline:"):
            get_registry().counter("service.deadline_misses").inc()
        if failed_stage == "plan":
            self.planner_breaker.record_failure()
        elif failed_stage == "simulate":
            self.simulator_breaker.record_failure()
        # Return any half-open probe slots the verdict above did not
        # settle, so an abandoned probe can never wedge a breaker.
        if planned and failed_stage != "plan":
            self.planner_breaker.release()
        if failed_stage != "simulate":
            self.simulator_breaker.release()
        self._finish_locked(
            t,
            FAILED,
            error=error or "worker reported failure",
            worker=msg.get("worker"),
            degraded=degraded,
            stage_s=stage_s,
        )

    def _check_workers(self) -> None:
        now = time.monotonic()
        for i, w in enumerate(self._workers):
            if not w.proc.is_alive():
                self._on_worker_crash(i, w)
                continue
            with self._lock:
                t = w.busy
                if t is None:
                    continue
                over_deadline = (
                    t.deadline_at is not None
                    and now > t.deadline_at + self.config.kill_grace_s
                )
                hung = (
                    t.deadline_at is None
                    and self.config.hang_timeout_s is not None
                    and now - w.dispatched_at > self.config.hang_timeout_s
                )
            if over_deadline:
                get_registry().counter("service.deadline_misses").inc()
                self._restart_worker(
                    i, w, FAILED,
                    "deadline: exceeded; worker hard-killed by watchdog",
                )
            elif hung:
                self._restart_worker(
                    i, w, FAILED,
                    f"hang: no result after {self.config.hang_timeout_s:.3g}s; "
                    "worker hard-killed by watchdog",
                )

    def _on_worker_crash(self, i: int, w: _Worker) -> None:
        """A worker died on its own (e.g. ``os._exit`` mid-request):
        requeue the victim for another attempt, or quarantine it."""
        with self._lock:
            t = w.busy
            w.busy = None
            if t is not None and not t.done.is_set():
                if t.req.kind in _PLANNED_KINDS and not w.degraded:
                    self.planner_breaker.release()
                self.simulator_breaker.release()
                if t.attempts >= self.config.max_attempts:
                    get_registry().counter("service.poison_quarantined").inc()
                    self._finish_locked(
                        t,
                        FAILED,
                        error=(
                            f"poison: worker crashed {t.attempts} times running "
                            "this request; quarantined"
                        ),
                        worker=w.wid,
                    )
                else:
                    self._pending.appendleft(t)
                    self._set_depth_locked()
        self._replace_worker(i, w)

    def _hard_kill_locked(self, w: _Worker, status: str, error: str) -> None:
        """Kill a worker's process and finish its request.  Caller holds
        the lock; the slot is NOT replaced (shutdown path)."""
        t = w.busy
        w.busy = None
        if t is not None:
            self._finish_locked(t, status, error=error, worker=w.wid)
        w.proc.kill()

    def _restart_worker(self, i: int, w: _Worker, status: str, error: str) -> None:
        with self._lock:
            t = w.busy
            w.busy = None
            if t is not None:
                if t.req.kind in _PLANNED_KINDS and not w.degraded:
                    self.planner_breaker.release()
                self.simulator_breaker.release()
                self._finish_locked(t, status, error=error, worker=w.wid)
        w.proc.kill()
        self._replace_worker(i, w)

    def _replace_worker(self, i: int, w: _Worker) -> None:
        w.proc.join(timeout=5.0)
        w.discard_queues()
        get_registry().counter("service.worker_restarts").inc()
        self._workers[i] = _Worker(w.wid, self._ctx)

    def _dispatch(self) -> None:
        now = time.monotonic()
        for w in self._workers:
            if not w.proc.is_alive():
                continue  # replaced on the next _check_workers pass
            with self._space:
                if w.busy is not None or not self._pending:
                    continue
                t = self._pending.popleft()
                self._set_depth_locked()
                self._space.notify()
                if t.deadline_at is not None and now >= t.deadline_at:
                    get_registry().counter("service.shed.deadline").inc()
                    get_registry().counter("service.deadline_misses").inc()
                    self.simulator_breaker.release()
                    self._finish_locked(
                        t, SHED,
                        error="deadline: expired while queued, never dispatched",
                    )
                    continue
                degraded = False
                if t.req.kind in _PLANNED_KINDS:
                    est = self._plan_cost_est.get(t.req.kind, 0.0)
                    remaining = (
                        None if t.deadline_at is None else t.deadline_at - now
                    )
                    if not self.planner_breaker.allow():
                        degraded = True
                    elif (
                        remaining is not None
                        and est > 0
                        and remaining < self.config.plan_cost_safety * est
                    ):
                        degraded = True
                        self.planner_breaker.release()
                    if degraded:
                        get_registry().counter("service.degraded").inc()
                t.attempts += 1
                w.busy = t
                w.dispatched_at = now
                w.degraded = degraded
                msg = {
                    "req": t.req.to_dict(),
                    "degraded": degraded,
                    "remaining_s": (
                        None if t.deadline_at is None else max(0.001, t.deadline_at - now)
                    ),
                    "plan_cost_est_s": self._plan_cost_est.get(t.req.kind, 0.0),
                }
            with get_tracer().span(
                "service.dispatch", cat="service", kind=t.req.kind, worker=w.wid
            ):
                w.req_q.put(msg)
