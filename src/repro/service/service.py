"""The overload-safe scenario-execution service.

A :class:`ScenarioService` owns a small pool of **spawned** worker
processes and a bounded admission queue, and guarantees that every
admitted request reaches exactly one terminal state (``completed`` /
``shed`` / ``failed``) no matter what the scenario does — crash, hang,
deadline blow-through, or planner meltdown.

Architecture (all supervision in **one** parent thread, so the
bookkeeping has no cross-thread races to reason about):

* ``submit`` (caller thread) — admission control.  Rejects fast with a
  typed, ``retriable`` error when the bounded queue is full
  (:class:`QueueFullError` — that rejection *is* the load shedding) or
  the simulator's circuit breaker is open (:class:`CircuitOpenError`).
  ``block=True`` turns rejection into backpressure for batch drivers.
* supervisor thread — drains per-worker result queues, detects crashed
  workers (restart; re-queue the victim request until
  ``max_attempts``, then quarantine it as **poison**), hard-kills
  workers that blow past their deadline or hang limit, and dispatches
  queued requests to free workers (shedding any whose deadline already
  expired while queued).
* workers — see :mod:`repro.service.worker`.  One request in flight
  per worker over private queues, so a killed worker can never corrupt
  a queue another worker is using, and the parent always knows which
  request died with it.

Two circuit breakers (:mod:`repro.service.breaker`) watch the planner
and simulator stages.  A tripped planner breaker — or a remaining
deadline smaller than ``plan_cost_safety ×`` the observed planning-cost
EWMA — flips the dispatch to **degraded mode**: direct single-path
transfers with no proxy search, trading bandwidth for an answer inside
the deadline.  A tripped simulator breaker sheds at admission.

With ``admission="adaptive"`` two further control loops engage (see
:mod:`repro.service.adaptive` and :mod:`repro.service.degrade`):

* an **AIMD concurrency limiter** replaces the static queue bound at
  admission — ``pending + in-flight`` beyond the learned limit sheds
  with the retriable :class:`OverloadShedError` — and converges to the
  worker pool's actual capacity from observed latencies;
* a **degradation ladder** walks planning effort down under queue
  pressure (full multipath → reduced-k proxy search → direct path →
  shed at admission) with hysteresis, instead of PR 5's binary
  breaker-open degrade.  Breaker state remains an override: an open
  planner breaker forces at least the direct tier for that dispatch.

``admission="static"`` keeps the PR 5 behaviour exactly.

Everything observable is exported through :mod:`repro.obs.metrics`
(``service.queue_depth``, ``service.inflight``,
``service.admission_limit``, ``service.degrade_tier``,
``service.shed_rate``, ``service.shed.*``, ``service.deadline_misses``,
``service.worker_restarts``, ``service.poison_quarantined``, breaker
states) and spans (``service.admit`` / ``service.dispatch``).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.service.adaptive import AdaptiveLimiter
from repro.service.breaker import OPEN, CircuitBreaker
from repro.service.degrade import (
    TIER_DIRECT,
    TIER_FULL,
    TIER_REDUCED,
    TIER_SHED,
    DegradationLadder,
)
from repro.service.errors import (
    CircuitOpenError,
    OverloadShedError,
    QueueFullError,
    ServiceClosedError,
    UnknownRequestError,
)
from repro.service.request import (
    COMPLETED,
    FAILED,
    SHED,
    ScenarioRequest,
    ScenarioResult,
)
from repro.service.worker import worker_main
from repro.util.validation import ConfigError

#: Scenario kinds with a separate planner stage (degraded mode applies).
_PLANNED_KINDS = ("p2p", "group", "fanin")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the scenario service.

    Args:
        workers: worker-process pool size.
        queue_cap: bounded admission queue depth; beyond it,
            ``submit`` sheds (or blocks, for batch backpressure).
        default_deadline_s: deadline applied to requests that do not
            carry their own (``None`` = no default deadline).
        max_attempts: worker crashes tolerated per request before it is
            quarantined as poison.
        hang_timeout_s: hard-kill limit for requests with *no*
            deadline (``None`` disables; a deadline always wins).
        kill_grace_s: slack past the deadline before the watchdog
            hard-kills, giving cooperative cancellation first refusal.
        breaker_failure_threshold / breaker_recovery_s: see
            :class:`repro.service.breaker.CircuitBreaker`.
        plan_cost_safety: degrade when remaining deadline is below
            ``plan_cost_safety ×`` the planning-cost EWMA.
        poll_interval_s: supervisor wake-up period.
        admission: ``"static"`` (PR 5 behaviour: the bounded queue is
            the only admission bound) or ``"adaptive"`` (AIMD
            concurrency limiter + pressure degradation ladder; the
            bounded queue remains as a hard memory cap).
        latency_target_s: adaptive-mode latency target; ``None``
            derives it from the observed service-time EWMA (see
            :class:`repro.service.adaptive.AdaptiveLimiter`).
        ladder_reduced_k: proxy-count cap at the ladder's reduced tier.
    """

    workers: int = 2
    queue_cap: int = 32
    default_deadline_s: "float | None" = None
    max_attempts: int = 3
    hang_timeout_s: "float | None" = 60.0
    kill_grace_s: float = 0.25
    breaker_failure_threshold: int = 3
    breaker_recovery_s: float = 1.0
    plan_cost_safety: float = 2.0
    poll_interval_s: float = 0.005
    admission: str = "static"
    latency_target_s: "float | None" = None
    ladder_reduced_k: int = 2

    def __post_init__(self):
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.queue_cap < 1:
            raise ConfigError(f"queue_cap must be >= 1, got {self.queue_cap}")
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        if self.kill_grace_s < 0:
            raise ConfigError(f"kill_grace_s must be >= 0, got {self.kill_grace_s}")
        if self.admission not in ("static", "adaptive"):
            raise ConfigError(
                f"admission must be 'static' or 'adaptive', got {self.admission!r}"
            )
        if self.latency_target_s is not None and self.latency_target_s <= 0:
            raise ConfigError(
                f"latency_target_s must be > 0, got {self.latency_target_s}"
            )
        if self.ladder_reduced_k < 1:
            raise ConfigError(
                f"ladder_reduced_k must be >= 1, got {self.ladder_reduced_k}"
            )


@dataclass
class _Tracked:
    """Parent-side lifecycle record of one admitted request."""

    req: ScenarioRequest
    deadline_at: "float | None"  # absolute monotonic, None = no deadline
    admitted_at: float = 0.0
    dispatched_at: "float | None" = None  # last dispatch (None = never ran)
    attempts: int = 0
    done: threading.Event = field(default_factory=threading.Event)


class _Worker:
    """One worker slot: process + its private dispatch/result queues."""

    __slots__ = (
        "wid", "proc", "req_q", "res_q", "busy", "dispatched_at", "degraded", "tier"
    )

    def __init__(self, wid: int, ctx):
        self.wid = wid
        self.req_q = ctx.Queue()
        self.res_q = ctx.Queue()
        self.proc = ctx.Process(
            target=worker_main,
            args=(wid, self.req_q, self.res_q),
            name=f"repro-worker-{wid}",
            daemon=True,
        )
        self.proc.start()
        self.busy: "Optional[_Tracked]" = None
        self.dispatched_at = 0.0
        self.degraded = False
        self.tier = TIER_FULL

    def discard_queues(self) -> None:
        """Detach queue feeder threads so parent exit never blocks on a
        queue whose consumer was hard-killed."""
        for q in (self.req_q, self.res_q):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass


class ScenarioService:
    """Overload-safe scenario executor.  See the module docstring.

    Use as a context manager; ``__exit__`` drains and shuts down::

        with ScenarioService(ServiceConfig(workers=4)) as svc:
            svc.submit(ScenarioRequest(id="a", kind="p2p"))
            result = svc.result("a", timeout=30)
    """

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        *,
        on_result: "Callable[[ScenarioResult], None] | None" = None,
    ):
        self.config = config or ServiceConfig()
        self._on_result = on_result
        self._ctx = mp.get_context("spawn")
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)  # queue_cap backpressure
        self._pending: "deque[_Tracked]" = deque()
        self._tracked: "dict[str, _Tracked]" = {}
        self._results: "dict[str, ScenarioResult]" = {}
        self._plan_cost_est: "dict[str, float]" = {}
        self._closing = False
        self._stop = False
        self._shed_times: "deque[float]" = deque()  # sliding shed-rate window
        self.limiter: "AdaptiveLimiter | None" = None
        self.ladder: "DegradationLadder | None" = None
        if self.config.admission == "adaptive":
            self.limiter = AdaptiveLimiter(
                min_limit=self.config.workers,
                max_limit=self.config.queue_cap + self.config.workers,
                initial=2 * self.config.workers,
                latency_target_s=self.config.latency_target_s,
            )
            self.ladder = DegradationLadder(
                reduced_k=self.config.ladder_reduced_k
            )
        self.planner_breaker = CircuitBreaker(
            "planner",
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_s=self.config.breaker_recovery_s,
        )
        self.simulator_breaker = CircuitBreaker(
            "simulator",
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_s=self.config.breaker_recovery_s,
        )
        self._workers = [_Worker(i, self._ctx) for i in range(self.config.workers)]
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-service-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        req: ScenarioRequest,
        *,
        block: bool = False,
        timeout: "float | None" = None,
    ) -> str:
        """Admit one request; returns its id.

        Raises:
            ServiceClosedError: the service is shutting down.
            QueueFullError: bounded queue at capacity (``block=False``);
                retriable — back off and resubmit.
            OverloadShedError: adaptive admission turned the request
                away (concurrency limit reached, or the degradation
                ladder is at its shed tier); retriable.
            CircuitOpenError: the simulator breaker is open; retriable
                after its recovery interval.
            ConfigError: duplicate request id.
        """
        with get_tracer().span("service.admit", cat="service", kind=req.kind):
            if not self.simulator_breaker.allow():
                get_registry().counter("service.shed.circuit_open").inc()
                self._shed_times.append(time.monotonic())
                raise CircuitOpenError(
                    f"simulator circuit open; request {req.id!r} shed (retriable)"
                )
            with self._space:
                if self._closing:
                    raise ServiceClosedError("service is closed to new requests")
                if req.id in self._tracked:
                    raise ConfigError(f"duplicate request id {req.id!r}")
                blocked = self._admission_block_locked(req)
                if blocked is not None:
                    if not block:
                        self._raise_shed_locked(req, blocked)
                    deadline = None if timeout is None else time.monotonic() + timeout
                    while blocked is not None:
                        if self._closing:
                            raise ServiceClosedError(
                                "service closed while waiting for queue space"
                            )
                        remaining = (
                            None if deadline is None else deadline - time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            self._raise_shed_locked(req, blocked, timeout=timeout)
                        # Adaptive admission loosens on the supervisor
                        # tick (ladder de-escalation, limiter growth),
                        # not only on notified queue/terminal events —
                        # bound the wait by the tick period so a
                        # blocked submitter re-checks instead of
                        # sleeping forever on a notify that never comes.
                        wait_s = self.config.poll_interval_s
                        if remaining is not None:
                            wait_s = min(wait_s, remaining)
                        self._space.wait(timeout=wait_s)
                        blocked = self._admission_block_locked(req)
                now = time.monotonic()
                deadline_s = (
                    req.deadline_s
                    if req.deadline_s is not None
                    else self.config.default_deadline_s
                )
                t = _Tracked(
                    req=req,
                    deadline_at=(None if deadline_s is None else now + deadline_s),
                    admitted_at=now,
                )
                self._tracked[req.id] = t
                self._pending.append(t)
                get_registry().counter("service.admitted").inc()
                self._set_depth_locked()
        return req.id

    def _inflight_locked(self) -> int:
        return sum(1 for w in self._workers if w.busy is not None)

    def _admission_block_locked(self, req: ScenarioRequest):
        """Why admission is blocked right now, or ``None`` if admissible.

        Returns ``(exc_class, counter_name, reason)``.  Checked mildest
        bound last: the bounded queue stays a hard memory cap even in
        adaptive mode, but the adaptive limit normally bites first.
        """
        if self.ladder is not None and self.ladder.tier >= TIER_SHED:
            return (
                OverloadShedError,
                "service.shed.ladder",
                "degradation ladder at shed tier",
            )
        if self.limiter is not None:
            outstanding = len(self._pending) + self._inflight_locked()
            if not self.limiter.would_admit(outstanding):
                return (
                    OverloadShedError,
                    "service.shed.adaptive",
                    f"adaptive concurrency limit {self.limiter.limit} reached",
                )
        if len(self._pending) >= self.config.queue_cap:
            return (
                QueueFullError,
                "service.shed.queue_full",
                f"queue full ({self.config.queue_cap})",
            )
        return None

    def _raise_shed_locked(
        self, req: ScenarioRequest, blocked, *, timeout: "float | None" = None
    ) -> None:
        exc_cls, counter_name, reason = blocked
        get_registry().counter(counter_name).inc()
        self._shed_times.append(time.monotonic())
        waited = "" if timeout is None else f" after {timeout:.3g}s"
        raise exc_cls(f"{reason}{waited}; request {req.id!r} shed (retriable)")

    def result(self, request_id: str, timeout: "float | None" = None) -> ScenarioResult:
        """Block until ``request_id`` is terminal and return its result.

        Raises :class:`UnknownRequestError` for ids never admitted and
        ``TimeoutError`` if the wait expires.
        """
        with self._lock:
            t = self._tracked.get(request_id)
        if t is None:
            raise UnknownRequestError(f"no such request: {request_id!r}")
        if not t.done.wait(timeout=timeout):
            raise TimeoutError(f"request {request_id!r} not terminal after {timeout}s")
        with self._lock:
            return self._results[request_id]

    def wait_all(self, timeout: "float | None" = None) -> bool:
        """Wait until every admitted request is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            tracked = list(self._tracked.values())
        for t in tracked:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            if not t.done.wait(timeout=remaining):
                return False
        return True

    def stats(self) -> dict:
        """Snapshot of service health (also exported as metrics)."""
        with self._lock:
            statuses = [r.status for r in self._results.values()]
            out = {
                "queue_depth": len(self._pending),
                "inflight": self._inflight_locked(),
                "admitted": len(self._tracked),
                "completed": statuses.count(COMPLETED),
                "failed": statuses.count(FAILED),
                "shed": statuses.count(SHED),
                "planner_breaker": self.planner_breaker.state,
                "simulator_breaker": self.simulator_breaker.state,
                "plan_cost_est_s": dict(self._plan_cost_est),
                "admission": self.config.admission,
            }
            if self.limiter is not None:
                out["admission_limit"] = self.limiter.limit
                out["service_time_ewma_s"] = self.limiter.service_time_ewma
            if self.ladder is not None:
                out["degrade_tier"] = self.ladder.tier
                out["pressure"] = self.ladder.pressure
            return out

    # -- shutdown ------------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: "float | None" = 60.0) -> None:
        """Stop admitting; optionally drain, then stop the pool.

        With ``drain=False``, still-queued requests are shed terminally
        (``service-closed``) and in-flight ones are hard-killed to a
        ``failed`` terminal state — nothing is left dangling.
        """
        with self._space:
            if self._stop:
                return
            self._closing = True
            if not drain:
                while self._pending:
                    t = self._pending.popleft()
                    self.simulator_breaker.release()
                    self._finish_locked(
                        t, SHED, error="service-closed: shut down before dispatch"
                    )
                self._set_depth_locked()
            self._space.notify_all()
        if drain:
            self.wait_all(timeout=timeout)
        with self._lock:
            for w in self._workers:
                t = w.busy
                if t is not None and not drain:
                    self._hard_kill_locked(
                        w, FAILED, "service-closed: hard-killed at shutdown"
                    )
            self._stop = True
        self._supervisor.join(timeout=10.0)
        for w in self._workers:
            try:
                w.req_q.put_nowait(None)
            except (OSError, ValueError):
                pass
        for w in self._workers:
            w.proc.join(timeout=2.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=2.0)
            w.discard_queues()

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- supervisor ----------------------------------------------------------

    def _supervise(self) -> None:
        while True:
            with self._lock:
                if self._stop:
                    return
            try:
                self._drain_results()
                self._check_workers()
                self._dispatch()
                self._observe_pressure()
            except Exception:  # pragma: no cover - supervisor must survive
                get_registry().counter("service.supervisor_errors").inc()
            time.sleep(self.config.poll_interval_s)

    #: Sliding window of the exported shed-rate gauge [s].
    _SHED_RATE_WINDOW_S = 5.0

    def _observe_pressure(self) -> None:
        """One supervisor-tick heartbeat of the overload-control loops:
        feed the degradation ladder its occupancy sample and refresh the
        load-visibility gauges (in-flight, shed rate)."""
        reg = get_registry()
        with self._lock:
            inflight = self._inflight_locked()
            outstanding = len(self._pending) + inflight
            if self.limiter is not None:
                capacity = max(self.limiter.limit, 1)
            else:
                capacity = self.config.queue_cap + self.config.workers
        reg.gauge("service.inflight").set(inflight)
        if self.ladder is not None:
            tier_before = self.ladder.tier
            self.ladder.observe(outstanding / capacity)
            if self.ladder.tier < tier_before:
                # De-escalation happens here, not on a queue event:
                # wake blocked submitters promptly rather than leaving
                # them to their bounded-wait re-check.
                with self._space:
                    self._space.notify_all()
        now = time.monotonic()
        while self._shed_times and now - self._shed_times[0] > self._SHED_RATE_WINDOW_S:
            self._shed_times.popleft()
        reg.gauge("service.shed_rate").set(
            len(self._shed_times) / self._SHED_RATE_WINDOW_S
        )

    def _set_depth_locked(self) -> None:
        get_registry().gauge("service.queue_depth").set(len(self._pending))

    def _finish_locked(
        self,
        t: _Tracked,
        status: str,
        *,
        payload: "dict | None" = None,
        error: "str | None" = None,
        worker: "int | None" = None,
        degraded: bool = False,
        tier: int = 0,
        stage_s: "dict | None" = None,
    ) -> None:
        """Record the single terminal state of a request.  Idempotent:
        late results from a restarted worker are ignored."""
        if t.done.is_set():
            return
        now = time.monotonic()
        if self.limiter is not None and not self._closing:
            if status == COMPLETED:
                service_s = (
                    None if t.dispatched_at is None else now - t.dispatched_at
                )
                self.limiter.on_completion(now - t.admitted_at, service_s)
            elif error is not None and error.startswith("deadline:"):
                # A deadline miss is latency's terminal form: the
                # admission window was too wide for the pool.
                self.limiter.on_overload()
        if status == SHED:
            self._shed_times.append(now)
        res = ScenarioResult(
            id=t.req.id,
            kind=t.req.kind,
            status=status,
            payload=payload,
            error=error,
            attempts=max(t.attempts, 1),
            worker=worker,
            degraded=degraded,
            tier=tier,
            stage_s=stage_s or {},
        )
        self._results[t.req.id] = res
        get_registry().counter(f"service.terminal.{status}").inc()
        t.done.set()
        # Terminal states free adaptive-admission headroom, not just
        # queue slots — wake any blocked submitters either way.
        self._space.notify_all()
        if self._on_result is not None:
            try:
                self._on_result(res)
            except Exception:  # pragma: no cover - observer must not kill us
                get_registry().counter("service.on_result_errors").inc()

    def _drain_results(self) -> None:
        for w in self._workers:
            while True:
                try:
                    msg = w.res_q.get_nowait()
                except Exception:
                    break
                with self._lock:
                    t = w.busy
                    if t is None or t.req.id != msg.get("id"):
                        continue  # stale result from before a restart
                    w.busy = None
                    self._record_outcome(t, msg)

    def _record_outcome(self, t: _Tracked, msg: dict) -> None:
        """Apply a worker's verdict: terminal state + breaker updates.
        Caller holds the lock."""
        status = msg.get("status")
        error = msg.get("error")
        failed_stage = msg.get("failed_stage")
        stage_s = msg.get("stage_s") or {}
        degraded = bool(msg.get("degraded"))
        planned = t.req.kind in _PLANNED_KINDS and not degraded
        if status == COMPLETED:
            if planned:
                self.planner_breaker.record_success()
                plan_s = stage_s.get("plan_s")
                if plan_s is not None:
                    prev = self._plan_cost_est.get(t.req.kind, plan_s)
                    self._plan_cost_est[t.req.kind] = 0.7 * prev + 0.3 * plan_s
            if "simulate_s" in stage_s:
                self.simulator_breaker.record_success()
            self._finish_locked(
                t,
                COMPLETED,
                payload=msg.get("payload"),
                worker=msg.get("worker"),
                degraded=degraded,
                tier=int(msg.get("tier", 2 if degraded else 0)),
                stage_s=stage_s,
            )
            return
        if error and error.startswith("deadline:"):
            get_registry().counter("service.deadline_misses").inc()
        if error and "corrupt-data:" in error:
            # Persistent silent corruption is a property of the request
            # (its seeded SDC model poisons every usable path), so it
            # joins the poison-crash quarantine accounting: resubmitting
            # verbatim reproduces it.  Breakers stay untouched — the
            # simulator itself is healthy.
            get_registry().counter("service.poison_quarantined").inc()
        if failed_stage == "plan":
            self.planner_breaker.record_failure()
        elif failed_stage == "simulate":
            self.simulator_breaker.record_failure()
        # Return any half-open probe slots the verdict above did not
        # settle, so an abandoned probe can never wedge a breaker.
        if planned and failed_stage != "plan":
            self.planner_breaker.release()
        if failed_stage != "simulate":
            self.simulator_breaker.release()
        self._finish_locked(
            t,
            FAILED,
            error=error or "worker reported failure",
            worker=msg.get("worker"),
            degraded=degraded,
            tier=int(msg.get("tier", 2 if degraded else 0)),
            stage_s=stage_s,
        )

    def _check_workers(self) -> None:
        now = time.monotonic()
        for i, w in enumerate(self._workers):
            if not w.proc.is_alive():
                self._on_worker_crash(i, w)
                continue
            with self._lock:
                t = w.busy
                if t is None:
                    continue
                over_deadline = (
                    t.deadline_at is not None
                    and now > t.deadline_at + self.config.kill_grace_s
                )
                hung = (
                    t.deadline_at is None
                    and self.config.hang_timeout_s is not None
                    and now - w.dispatched_at > self.config.hang_timeout_s
                )
            if over_deadline:
                get_registry().counter("service.deadline_misses").inc()
                self._restart_worker(
                    i, w, FAILED,
                    "deadline: exceeded; worker hard-killed by watchdog",
                )
            elif hung:
                self._restart_worker(
                    i, w, FAILED,
                    f"hang: no result after {self.config.hang_timeout_s:.3g}s; "
                    "worker hard-killed by watchdog",
                )

    def _on_worker_crash(self, i: int, w: _Worker) -> None:
        """A worker died on its own (e.g. ``os._exit`` mid-request):
        requeue the victim for another attempt, or quarantine it."""
        with self._lock:
            t = w.busy
            w.busy = None
            if t is not None and not t.done.is_set():
                if t.req.kind in _PLANNED_KINDS and not w.degraded:
                    self.planner_breaker.release()
                self.simulator_breaker.release()
                if t.attempts >= self.config.max_attempts:
                    get_registry().counter("service.poison_quarantined").inc()
                    self._finish_locked(
                        t,
                        FAILED,
                        error=(
                            f"poison: worker crashed {t.attempts} times running "
                            "this request; quarantined"
                        ),
                        worker=w.wid,
                    )
                else:
                    self._pending.appendleft(t)
                    self._set_depth_locked()
        self._replace_worker(i, w)

    def _hard_kill_locked(self, w: _Worker, status: str, error: str) -> None:
        """Kill a worker's process and finish its request.  Caller holds
        the lock; the slot is NOT replaced (shutdown path)."""
        t = w.busy
        w.busy = None
        if t is not None:
            self._finish_locked(t, status, error=error, worker=w.wid)
        w.proc.kill()

    def _restart_worker(self, i: int, w: _Worker, status: str, error: str) -> None:
        with self._lock:
            t = w.busy
            w.busy = None
            if t is not None:
                if t.req.kind in _PLANNED_KINDS and not w.degraded:
                    self.planner_breaker.release()
                self.simulator_breaker.release()
                self._finish_locked(t, status, error=error, worker=w.wid)
        w.proc.kill()
        self._replace_worker(i, w)

    def _replace_worker(self, i: int, w: _Worker) -> None:
        w.proc.join(timeout=5.0)
        w.discard_queues()
        get_registry().counter("service.worker_restarts").inc()
        self._workers[i] = _Worker(w.wid, self._ctx)

    def _dispatch(self) -> None:
        now = time.monotonic()
        for w in self._workers:
            if not w.proc.is_alive():
                continue  # replaced on the next _check_workers pass
            with self._space:
                if w.busy is not None or not self._pending:
                    continue
                t = self._pending.popleft()
                self._set_depth_locked()
                self._space.notify()
                if t.deadline_at is not None and now >= t.deadline_at:
                    get_registry().counter("service.shed.deadline").inc()
                    get_registry().counter("service.deadline_misses").inc()
                    self.simulator_breaker.release()
                    self._finish_locked(
                        t, SHED,
                        error="deadline: expired while queued, never dispatched",
                    )
                    continue
                # Degradation tier: the ladder's pressure verdict first
                # (shed never applies here — an admitted request is
                # served, at most at the direct tier), then the PR 5
                # overrides: an open planner breaker or a deadline too
                # small for the planning-cost EWMA force direct.
                tier = TIER_FULL
                if self.ladder is not None and (
                    t.req.kind in _PLANNED_KINDS or t.req.kind == "io"
                ):
                    tier = min(self.ladder.tier, TIER_DIRECT)
                if t.req.kind in _PLANNED_KINDS:
                    est = self._plan_cost_est.get(t.req.kind, 0.0)
                    remaining = (
                        None if t.deadline_at is None else t.deadline_at - now
                    )
                    if tier < TIER_DIRECT:
                        if not self.planner_breaker.allow():
                            tier = TIER_DIRECT
                        elif (
                            remaining is not None
                            and est > 0
                            and remaining < self.config.plan_cost_safety * est
                        ):
                            tier = TIER_DIRECT
                            self.planner_breaker.release()
                elif tier == TIER_REDUCED:
                    tier = TIER_FULL  # io has no proxy search to cap
                degraded = tier >= TIER_DIRECT
                if degraded:
                    get_registry().counter("service.degraded").inc()
                elif tier == TIER_REDUCED:
                    get_registry().counter("service.reduced_k").inc()
                t.attempts += 1
                t.dispatched_at = now
                w.busy = t
                w.dispatched_at = now
                w.degraded = degraded
                w.tier = tier
                msg = {
                    "req": t.req.to_dict(),
                    "degraded": degraded,
                    "tier": tier,
                    "max_proxies_cap": (
                        self.ladder.reduced_k
                        if self.ladder is not None and tier == TIER_REDUCED
                        else None
                    ),
                    "remaining_s": (
                        None if t.deadline_at is None else max(0.001, t.deadline_at - now)
                    ),
                    "plan_cost_est_s": self._plan_cost_est.get(t.req.kind, 0.0),
                }
            with get_tracer().span(
                "service.dispatch", cat="service", kind=t.req.kind, worker=w.wid
            ):
                w.req_q.put(msg)
