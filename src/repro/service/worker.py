"""Worker-process entrypoint of the scenario service.

Workers are spawned (never forked — the parent runs dispatcher /
collector / watchdog threads, and forking a multi-threaded parent can
clone a held lock into the child) and loop over a private depth-1
dispatch queue: one message in flight per worker, so the parent always
knows exactly which request dies with a crashed worker.

The protocol is plain picklable dicts:

* dispatch ``{"req": <ScenarioRequest dict>, "degraded": bool,
  "tier": int, "max_proxies_cap": int | None,
  "remaining_s": float | None, "plan_cost_est_s": float}``;
  ``None`` is the shutdown sentinel.
* result ``{"id", "worker", "status", "payload", "error", "stage_s",
  "failed_stage", "degraded", "tier"}`` — ``status`` is ``completed``
  or ``failed``; shed/poison verdicts are the *parent's* to make.

``tier`` is the degradation-ladder tier the dispatcher chose
(:mod:`repro.service.degrade`): tier 1 caps the proxy search at
``max_proxies_cap`` paths, tier >= 2 sets ``degraded`` (direct path).
The worker echoes the tier back, promoted to at least 2 when the
scenario degraded itself on deadline pressure mid-run.

Fault injection (``inject`` on the request) happens here, before the
scenario runs: ``crash`` hard-exits the process (``os._exit``) so the
watchdog's restart + poison-quarantine path is exercised for real, and
``hang`` sleeps forever ignoring cooperative cancellation so the
watchdog's deadline hard-kill path is.
"""

from __future__ import annotations

import os
import queue
import time

from repro.service.scenarios import StageError, execute_request
from repro.util.cancel import cancel_scope
from repro.util.validation import ReproError, SimulationCancelled

#: Exit code of an injected crash (distinguishable from interpreter
#: faults in the watchdog's restart log).
CRASH_EXIT_CODE = 23


def _run_one(worker_id: int, msg: dict) -> dict:
    req = msg["req"]
    rid = req["id"]
    inject = req.get("inject")
    if inject == "crash":
        os._exit(CRASH_EXIT_CODE)
    if inject == "hang":
        while True:  # ignores cancellation by design; watchdog kills us
            time.sleep(0.05)
    tier = int(msg.get("tier", 0))
    out: dict = {
        "id": rid,
        "worker": worker_id,
        "status": "failed",
        "payload": None,
        "error": None,
        "stage_s": {},
        "failed_stage": None,
        "degraded": bool(msg.get("degraded", False)),
        "tier": tier,
    }
    try:
        with cancel_scope(deadline_s=msg.get("remaining_s")):
            payload, stage_s, degraded = execute_request(
                req["kind"],
                req.get("params", {}),
                degraded=bool(msg.get("degraded", False)),
                plan_cost_est_s=float(msg.get("plan_cost_est_s", 0.0)),
                max_proxies_cap=msg.get("max_proxies_cap"),
            )
        out.update(status="completed", payload=payload, stage_s=stage_s,
                   degraded=degraded, tier=max(tier, 2) if degraded else tier)
    except SimulationCancelled as exc:
        out.update(error=f"deadline: {exc}", failed_stage=None)
    except StageError as exc:
        out.update(error=f"{exc.stage}-error: {exc.cause}", failed_stage=exc.stage,
                   stage_s=getattr(exc, "stage_s", out["stage_s"]))
    except ReproError as exc:
        out.update(error=f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # pragma: no cover - defensive
        out.update(error=f"{type(exc).__name__}: {exc}")
    return out


def worker_main(worker_id: int, req_q, res_q) -> None:
    """Loop: take one dispatch, run it, report one result.  Exits on the
    ``None`` sentinel — or when orphaned (the parent was SIGKILLed and
    will never send one; without this check a killed ``repro batch``
    would leave workers blocked on their queues forever).  Top-level so
    it pickles under spawn."""
    parent = os.getppid()
    while True:
        try:
            msg = req_q.get(timeout=1.0)
        except queue.Empty:
            if os.getppid() != parent:
                return
            continue
        if msg is None:
            return
        res_q.put(_run_one(worker_id, msg))
