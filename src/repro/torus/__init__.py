"""5-D (generally k-D) torus topology model of the Blue Gene/Q interconnect.

The BG/Q network is a 5-D torus whose dimensions are conventionally named
``A B C D E``; each compute node has 10 torus links (one per direction per
dimension) at 2 GB/s raw, ~1.8 GB/s available to user payload, plus an
11th I/O link on bridge nodes (modelled in :mod:`repro.machine`).

This package provides pure topology: coordinates and wrap arithmetic
(:mod:`repro.torus.coords`), directed-link identifiers
(:mod:`repro.torus.links`), the node/link graph
(:mod:`repro.torus.topology`), MPI rank-to-node mappings
(:mod:`repro.torus.mapping`), and the catalogue of Mira partition shapes
used in the paper (:mod:`repro.torus.partition`).
"""

from repro.torus.coords import (
    Coord,
    Shape,
    coord_to_index,
    index_to_coord,
    wrap_displacement,
    hop_distance,
    torus_distance,
    neighbor_coord,
    all_coords,
)
from repro.torus.links import (
    DIR_MINUS,
    DIR_PLUS,
    torus_link_id,
    torus_link_count,
    link_id_parts,
    describe_link,
)
from repro.torus.topology import TorusTopology
from repro.torus.mapping import RankMapping, DEFAULT_MAP_ORDER
from repro.torus.partition import (
    MIRA_PARTITION_SHAPES,
    partition_shape,
    nodes_for_cores,
    CORES_PER_NODE,
)
from repro.torus.submachine import Submachine, SubmachineAllocator

__all__ = [
    "Coord",
    "Shape",
    "coord_to_index",
    "index_to_coord",
    "wrap_displacement",
    "hop_distance",
    "torus_distance",
    "neighbor_coord",
    "all_coords",
    "DIR_MINUS",
    "DIR_PLUS",
    "torus_link_id",
    "torus_link_count",
    "link_id_parts",
    "describe_link",
    "TorusTopology",
    "RankMapping",
    "DEFAULT_MAP_ORDER",
    "MIRA_PARTITION_SHAPES",
    "partition_shape",
    "nodes_for_cores",
    "CORES_PER_NODE",
    "Submachine",
    "SubmachineAllocator",
]
