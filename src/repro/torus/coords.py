"""Torus coordinate arithmetic.

Coordinates are plain tuples of ints, one entry per torus dimension
(``(a, b, c, d, e)`` on BG/Q).  Node *indices* are the row-major
linearisation of coordinates: the first dimension varies slowest, the
last fastest — matching the natural ``ABCDE`` enumeration order of BG/Q
partitions.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.util.validation import ConfigError

Coord = tuple[int, ...]
Shape = tuple[int, ...]


def _check_shape(shape: Sequence[int]) -> Shape:
    shape = tuple(int(s) for s in shape)
    if not shape:
        raise ConfigError("torus shape must have at least one dimension")
    for s in shape:
        if s < 1:
            raise ConfigError(f"torus dimension sizes must be >= 1, got {shape}")
    return shape


def _check_coord(coord: Sequence[int], shape: Shape) -> Coord:
    coord = tuple(int(c) for c in coord)
    if len(coord) != len(shape):
        raise ConfigError(
            f"coordinate {coord} has {len(coord)} dims, shape {shape} has {len(shape)}"
        )
    for c, s in zip(coord, shape):
        if not 0 <= c < s:
            raise ConfigError(f"coordinate {coord} out of bounds for shape {shape}")
    return coord


def coord_to_index(coord: Sequence[int], shape: Sequence[int]) -> int:
    """Linearise ``coord`` row-major (first dim slowest) into a node index."""
    shape = _check_shape(shape)
    coord = _check_coord(coord, shape)
    idx = 0
    for c, s in zip(coord, shape):
        idx = idx * s + c
    return idx


def index_to_coord(index: int, shape: Sequence[int]) -> Coord:
    """Inverse of :func:`coord_to_index`."""
    shape = _check_shape(shape)
    n = 1
    for s in shape:
        n *= s
    if not 0 <= index < n:
        raise ConfigError(f"node index {index} out of range for shape {shape}")
    coord = []
    for s in reversed(shape):
        coord.append(index % s)
        index //= s
    return tuple(reversed(coord))


def wrap_displacement(src: int, dst: int, size: int) -> tuple[int, int]:
    """Shortest signed displacement from ``src`` to ``dst`` on a ring.

    Returns ``(hops, sign)`` where ``hops >= 0`` and ``sign`` is ``+1`` or
    ``-1`` (``+1`` when no movement is needed).  When the two directions
    tie (displacement exactly half the ring), the *positive* direction is
    chosen — a fixed tie-break mirroring the determinism of BG/Q
    dimension-ordered routing (the hardware breaks the tie by a static
    per-dimension rule; any fixed rule preserves determinism, which is
    what proxy placement relies on).
    """
    if size <= 0:
        raise ConfigError(f"ring size must be positive, got {size}")
    fwd = (dst - src) % size
    bwd = (src - dst) % size
    if fwd == 0:
        return 0, +1
    if fwd <= bwd:
        return fwd, +1
    return bwd, -1


def hop_distance(c1: Sequence[int], c2: Sequence[int], shape: Sequence[int]) -> tuple[int, ...]:
    """Per-dimension shortest hop counts between two coordinates."""
    shape = _check_shape(shape)
    c1 = _check_coord(c1, shape)
    c2 = _check_coord(c2, shape)
    return tuple(wrap_displacement(a, b, s)[0] for a, b, s in zip(c1, c2, shape))


def torus_distance(c1: Sequence[int], c2: Sequence[int], shape: Sequence[int]) -> int:
    """Total (Manhattan-on-torus) hop distance between two coordinates."""
    return sum(hop_distance(c1, c2, shape))


def neighbor_coord(coord: Sequence[int], dim: int, sign: int, shape: Sequence[int]) -> Coord:
    """Coordinate one hop from ``coord`` along ``dim`` in direction ``sign``."""
    shape = _check_shape(shape)
    coord = _check_coord(coord, shape)
    if not 0 <= dim < len(shape):
        raise ConfigError(f"dimension {dim} out of range for shape {shape}")
    if sign not in (+1, -1):
        raise ConfigError(f"sign must be +1 or -1, got {sign}")
    out = list(coord)
    out[dim] = (out[dim] + sign) % shape[dim]
    return tuple(out)


def all_coords(shape: Sequence[int]) -> Iterator[Coord]:
    """Iterate all coordinates of ``shape`` in node-index order."""
    shape = _check_shape(shape)
    n = 1
    for s in shape:
        n *= s
    for i in range(n):
        yield index_to_coord(i, shape)
