"""Directed-link identifiers for the torus.

Every node owns ``2 * ndims`` outgoing directed torus links (one per
direction per dimension).  A directed link is identified by the integer

    ``link_id = node * (2 * ndims) + dim * 2 + (1 if sign > 0 else 0)``

which packs ``(node, dim, sign)`` densely into ``[0, 2 * ndims * nnodes)``.
I/O (11th) links live in a separate id space appended after all torus
links; they are allocated by :class:`repro.machine.system.BGQSystem`.
"""

from __future__ import annotations

DIR_MINUS = -1
DIR_PLUS = +1


def torus_link_count(nnodes: int, ndims: int) -> int:
    """Total number of directed torus links."""
    return nnodes * 2 * ndims


def torus_link_id(node: int, dim: int, sign: int, ndims: int) -> int:
    """Pack ``(node, dim, sign)`` into a dense directed-link id."""
    return node * (2 * ndims) + dim * 2 + (1 if sign > 0 else 0)


def link_id_parts(link_id: int, ndims: int) -> tuple[int, int, int]:
    """Unpack a torus link id into ``(node, dim, sign)``."""
    node, rest = divmod(link_id, 2 * ndims)
    dim, bit = divmod(rest, 2)
    return node, dim, (DIR_PLUS if bit else DIR_MINUS)


def describe_link(link_id: int, ndims: int, dim_names: str = "ABCDEFGH") -> str:
    """Human-readable form, e.g. ``"n17:+B"``."""
    node, dim, sign = link_id_parts(link_id, ndims)
    name = dim_names[dim] if dim < len(dim_names) else str(dim)
    return f"n{node}:{'+' if sign > 0 else '-'}{name}"
