"""MPI rank-to-node mappings (BG/Q ``--mapping`` orders).

On BG/Q, ranks are laid onto the partition by a permutation string such as
``ABCDET``: the rightmost letter varies fastest as the rank increases.
``T`` is the within-node (hardware thread / core) dimension.  The default
``ABCDET`` therefore packs consecutive ranks onto the same node first,
then walks the torus E, D, C, B, A — which is why contiguous rank ranges
correspond to contiguous sub-boxes of the torus, the property the paper's
"contiguous regions" assumption rests on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.torus.topology import TorusTopology
from repro.util.validation import ConfigError

DEFAULT_MAP_ORDER = "ABCDET"


class RankMapping:
    """Maps MPI ranks to torus nodes.

    Args:
        topology: the torus the job runs on.
        ranks_per_node: ranks placed per node (16 on Mira when running one
            rank per core-group as in the paper's experiments; the paper's
            core counts are ``16 * nnodes``).
        order: BG/Q mapping permutation, e.g. ``"ABCDET"``.  Must contain
            ``T`` exactly once and each torus dimension letter exactly
            once; defaults to the in-order permutation with T fastest
            (``ABCDET`` on a 5-D torus).
    """

    def __init__(
        self,
        topology: TorusTopology,
        ranks_per_node: int = 1,
        order: "str | None" = None,
    ):
        if ranks_per_node < 1:
            raise ConfigError(f"ranks_per_node must be >= 1, got {ranks_per_node}")
        self.topology = topology
        self.ranks_per_node = int(ranks_per_node)
        if order is None:
            # The dimension-count-appropriate analogue of ABCDET.
            order = "ABCDEFGH"[: topology.ndims] + "T"
        self.order = order.upper()
        self._axes = self._parse_order(self.order)
        self.nranks = topology.nnodes * self.ranks_per_node
        self._rank_to_node = self._build_table()
        self._node_to_ranks = self._invert()

    def _parse_order(self, order: str) -> list[int]:
        """Translate an order string to axis indices; T is axis ``ndims``."""
        ndims = self.topology.ndims
        letters = [c for c in order]
        expected = set("ABCDEFGH"[:ndims]) | {"T"}
        if set(letters) != expected or len(letters) != ndims + 1:
            raise ConfigError(
                f"mapping order {order!r} must be a permutation of "
                f"{''.join(sorted(expected))}"
            )
        axes = []
        for c in letters:
            axes.append(ndims if c == "T" else "ABCDEFGH".index(c))
        return axes

    def _build_table(self) -> np.ndarray:
        ndims = self.topology.ndims
        sizes = list(self.topology.shape) + [self.ranks_per_node]
        # Enumerate rank coordinates in the permuted order: last letter fastest.
        perm_sizes = [sizes[a] for a in self._axes]
        perm_coords = np.unravel_index(np.arange(self.nranks), perm_sizes)
        axis_coord = [None] * (ndims + 1)
        for a, col in zip(self._axes, perm_coords):
            axis_coord[a] = col
        # Row-major linearisation of the torus coordinate (T axis dropped).
        table = np.zeros(self.nranks, dtype=np.int64)
        for d in range(ndims):
            table = table * self.topology.shape[d] + axis_coord[d]
        return table

    def _invert(self) -> np.ndarray:
        order = np.argsort(self._rank_to_node, kind="stable")
        grouped_nodes = self._rank_to_node[order].reshape(
            self.topology.nnodes, self.ranks_per_node
        )
        expected = np.repeat(
            np.arange(self.topology.nnodes), self.ranks_per_node
        ).reshape(grouped_nodes.shape)
        if not np.array_equal(grouped_nodes, expected):
            raise ConfigError("mapping did not place ranks_per_node ranks on every node")
        return order.reshape(self.topology.nnodes, self.ranks_per_node)

    # -- queries -------------------------------------------------------------------

    def node_of_rank(self, rank: int) -> int:
        """Torus node hosting ``rank``."""
        if not 0 <= rank < self.nranks:
            raise ConfigError(f"rank {rank} out of range (nranks={self.nranks})")
        return int(self._rank_to_node[rank])

    def ranks_on_node(self, node: int) -> list[int]:
        """All ranks hosted by ``node`` (ascending)."""
        return sorted(int(r) for r in self._node_to_ranks[node])

    def nodes_of_ranks(self, ranks: Sequence[int]) -> np.ndarray:
        """Vectorised node lookup."""
        return self._rank_to_node[np.asarray(ranks, dtype=np.int64)]

    def rank_table(self) -> np.ndarray:
        """Copy of the full rank→node table."""
        return self._rank_to_node.copy()
