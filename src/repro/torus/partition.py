"""Mira partition shape catalogue.

The paper quotes specific torus shapes for its experiments (``2x2x4x4x2``
at 128 nodes, ``4x4x4x4x2`` at 512, ``4x4x4x16x2`` at 2048).  Mira
allocates non-overlapping rectangular sub-tori per job; this module
records the standard shape per node count so experiments can say
"2,048 cores" and get the same torus the paper measured on.

Mira has 16 application cores per node; the paper's x-axes are in cores,
so 2,048 cores ≡ 128 nodes, …, 131,072 cores ≡ 8,192 nodes.
"""

from __future__ import annotations

from repro.torus.coords import Shape, index_to_coord
from repro.torus.links import link_id_parts, torus_link_count
from repro.util.validation import ConfigError

CORES_PER_NODE = 16

#: A Blue Gene/Q *midplane* is a 4x4x4x4x2 block of nodes — the unit of
#: service actions (a midplane drains as one when its bulk power module
#: or clock card fails), which makes it the natural correlated-failure
#: domain for replacement planning.
MIDPLANE_SHAPE: Shape = (4, 4, 4, 4, 2)

#: Standard Mira partition torus dimensions by node count.  128/512/2048
#: are quoted verbatim in the paper; the others follow Mira's doubling
#: sequence (each step doubles one dimension, E is always 2).
MIRA_PARTITION_SHAPES: dict[int, Shape] = {
    32: (2, 2, 2, 2, 2),
    64: (2, 2, 4, 2, 2),
    128: (2, 2, 4, 4, 2),       # paper, Fig. 5
    256: (4, 2, 4, 4, 2),
    512: (4, 4, 4, 4, 2),       # paper, Fig. 7
    1024: (4, 4, 4, 8, 2),
    2048: (4, 4, 4, 16, 2),     # paper, Fig. 6
    4096: (4, 4, 8, 16, 2),
    8192: (4, 4, 16, 16, 2),
    16384: (4, 8, 16, 16, 2),
    32768: (8, 8, 16, 16, 2),
    49152: (8, 12, 16, 16, 2),  # full Mira
}


def partition_shape(nnodes: int) -> Shape:
    """Torus shape of the standard Mira partition with ``nnodes`` nodes."""
    try:
        return MIRA_PARTITION_SHAPES[int(nnodes)]
    except KeyError:
        raise ConfigError(
            f"no standard Mira partition with {nnodes} nodes; "
            f"known sizes: {sorted(MIRA_PARTITION_SHAPES)}"
        ) from None


def nodes_for_cores(ncores: int) -> int:
    """Node count for a core count (16 cores/node on Mira)."""
    if ncores % CORES_PER_NODE:
        raise ConfigError(f"core count {ncores} is not a multiple of {CORES_PER_NODE}")
    return ncores // CORES_PER_NODE


# -- midplane failure domains -------------------------------------------------


def _domain_blocks(shape: Shape) -> tuple[int, ...]:
    """Per-dimension midplane block extents for a partition ``shape``.

    A dimension shorter than the midplane extent is one block; partitions
    beyond five dimensions (test tori) treat the extra dimensions as a
    single block each, so small shapes collapse to one domain.
    """
    return tuple(
        min(s, MIDPLANE_SHAPE[d]) if d < len(MIDPLANE_SHAPE) else s
        for d, s in enumerate(shape)
    )


def n_failure_domains(shape: Shape) -> int:
    """Number of midplane failure domains a partition spans."""
    n = 1
    for s, b in zip(shape, _domain_blocks(shape)):
        n *= -(-s // b)  # ceil
    return n


def node_failure_domain(node: int, shape: Shape) -> int:
    """Midplane failure-domain index of ``node`` within ``shape``.

    Domains are the row-major linearisation of the per-dimension block
    coordinates — stable across calls, so domain ids are comparable
    within one partition shape.
    """
    coord = index_to_coord(node, shape)
    blocks = _domain_blocks(shape)
    idx = 0
    for c, s, b in zip(coord, shape, blocks):
        idx = idx * (-(-s // b)) + c // b
    return idx


def link_failure_domains(link_id: int, shape: Shape) -> frozenset[int]:
    """Failure domains a directed torus link touches (both endpoints).

    A link crossing a midplane boundary belongs to both domains — it goes
    down when *either* midplane drains.  Non-torus links (I/O links live
    in an id space past the torus links) map to no domain.
    """
    ndims = len(shape)
    nnodes = 1
    for s in shape:
        nnodes *= s
    if not 0 <= link_id < torus_link_count(nnodes, ndims):
        return frozenset()
    node, dim, sign = link_id_parts(link_id, ndims)
    coord = list(index_to_coord(node, shape))
    coord[dim] = (coord[dim] + sign) % shape[dim]
    other = 0
    for c, s in zip(coord, shape):
        other = other * s + c
    return frozenset(
        (node_failure_domain(node, shape), node_failure_domain(other, shape))
    )
