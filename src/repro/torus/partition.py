"""Mira partition shape catalogue.

The paper quotes specific torus shapes for its experiments (``2x2x4x4x2``
at 128 nodes, ``4x4x4x4x2`` at 512, ``4x4x4x16x2`` at 2048).  Mira
allocates non-overlapping rectangular sub-tori per job; this module
records the standard shape per node count so experiments can say
"2,048 cores" and get the same torus the paper measured on.

Mira has 16 application cores per node; the paper's x-axes are in cores,
so 2,048 cores ≡ 128 nodes, …, 131,072 cores ≡ 8,192 nodes.
"""

from __future__ import annotations

from repro.torus.coords import Shape
from repro.util.validation import ConfigError

CORES_PER_NODE = 16

#: Standard Mira partition torus dimensions by node count.  128/512/2048
#: are quoted verbatim in the paper; the others follow Mira's doubling
#: sequence (each step doubles one dimension, E is always 2).
MIRA_PARTITION_SHAPES: dict[int, Shape] = {
    32: (2, 2, 2, 2, 2),
    64: (2, 2, 4, 2, 2),
    128: (2, 2, 4, 4, 2),       # paper, Fig. 5
    256: (4, 2, 4, 4, 2),
    512: (4, 4, 4, 4, 2),       # paper, Fig. 7
    1024: (4, 4, 4, 8, 2),
    2048: (4, 4, 4, 16, 2),     # paper, Fig. 6
    4096: (4, 4, 8, 16, 2),
    8192: (4, 4, 16, 16, 2),
    16384: (4, 8, 16, 16, 2),
    32768: (8, 8, 16, 16, 2),
    49152: (8, 12, 16, 16, 2),  # full Mira
}


def partition_shape(nnodes: int) -> Shape:
    """Torus shape of the standard Mira partition with ``nnodes`` nodes."""
    try:
        return MIRA_PARTITION_SHAPES[int(nnodes)]
    except KeyError:
        raise ConfigError(
            f"no standard Mira partition with {nnodes} nodes; "
            f"known sizes: {sorted(MIRA_PARTITION_SHAPES)}"
        ) from None


def nodes_for_cores(ncores: int) -> int:
    """Node count for a core count (16 cores/node on Mira)."""
    if ncores % CORES_PER_NODE:
        raise ConfigError(f"core count {ncores} is not a multiple of {CORES_PER_NODE}")
    return ncores // CORES_PER_NODE
