"""Submachine allocation — carving rectangular sub-tori out of a machine.

Paper §III: "The machine can be partitioned into non-overlapping
rectangular submachines for certain applications upon request.  These
submachines do not interfere with each other except for I/O nodes and
the corresponding storage system."

:class:`SubmachineAllocator` manages exactly that: it tiles a parent
torus into axis-aligned boxes, hands out non-overlapping allocations by
requested node count (choosing a box shape that evenly divides the
parent), and releases them.  An allocation's box is electrically
isolated on BG/Q — its wrap links are its own — so each allocation maps
to an independent :class:`~repro.torus.topology.TorusTopology` of the
box shape, on which a full :class:`~repro.machine.system.BGQSystem` can
be built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.torus.coords import Shape
from repro.torus.topology import TorusTopology
from repro.util.validation import ConfigError


@dataclass(frozen=True)
class Submachine:
    """One allocated rectangular submachine.

    Attributes:
        alloc_id: allocator-assigned handle.
        corner: lowest-coordinate corner in the parent torus.
        shape: per-dimension extent of the box.
        parent_nodes: the parent-machine node indices covered, in the
            box's own row-major order (index ``i`` of the submachine's
            private topology is ``parent_nodes[i]``).
    """

    alloc_id: int
    corner: tuple[int, ...]
    shape: Shape
    parent_nodes: tuple[int, ...]

    @property
    def nnodes(self) -> int:
        """Node count of the allocation."""
        return len(self.parent_nodes)

    def topology(self) -> TorusTopology:
        """The allocation's private (electrically isolated) torus."""
        return TorusTopology(self.shape)


def _box_shape(parent: Shape, nnodes: int) -> Shape:
    """A box shape of ``nnodes`` whose extents divide the parent's.

    Filled from the last (fastest) dimension first, taking the largest
    divisor-of-both that fits — the same slab-first strategy real BG/Q
    block shapes follow (E first, then D, C, B, A).
    """
    remaining = nnodes
    shape = [1] * len(parent)
    for d in range(len(parent) - 1, -1, -1):
        best = 1
        for ext in range(1, parent[d] + 1):
            if parent[d] % ext == 0 and remaining % ext == 0:
                best = ext
        shape[d] = best
        remaining //= best
        if remaining == 1:
            break
    if remaining != 1:
        raise ConfigError(
            f"cannot carve {nnodes} nodes as a divisor-aligned box of {parent}"
        )
    return tuple(shape)


class SubmachineAllocator:
    """Tracks non-overlapping box allocations on one parent torus."""

    def __init__(self, parent: "TorusTopology | Sequence[int]"):
        self.parent = (
            parent if isinstance(parent, TorusTopology) else TorusTopology(parent)
        )
        self._occupied = np.zeros(self.parent.nnodes, dtype=bool)
        self._allocs: dict[int, Submachine] = {}
        self._next_id = 0

    @property
    def free_nodes(self) -> int:
        """Nodes not covered by any live allocation."""
        return int((~self._occupied).sum())

    def allocations(self) -> list[Submachine]:
        """Live allocations."""
        return list(self._allocs.values())

    def allocate(self, nnodes: int) -> Submachine:
        """Allocate a ``nnodes``-node box; raises when none fits.

        Scans candidate corners on the box-shape grid (allocations are
        grid-aligned, so feasibility never depends on allocation order
        for equal-size requests).
        """
        if nnodes < 1:
            raise ConfigError(f"nnodes must be >= 1, got {nnodes}")
        if nnodes > self.parent.nnodes:
            raise ConfigError(
                f"request of {nnodes} exceeds machine size {self.parent.nnodes}"
            )
        shape = _box_shape(self.parent.shape, nnodes)
        steps = [
            range(0, self.parent.shape[d], shape[d])
            for d in range(self.parent.ndims)
        ]
        for corner in np.stack(
            np.meshgrid(*steps, indexing="ij"), axis=-1
        ).reshape(-1, self.parent.ndims):
            nodes = self.parent.sub_box_nodes(tuple(int(c) for c in corner), shape)
            idx = np.asarray(nodes)
            if not self._occupied[idx].any():
                self._occupied[idx] = True
                sub = Submachine(
                    alloc_id=self._next_id,
                    corner=tuple(int(c) for c in corner),
                    shape=shape,
                    parent_nodes=tuple(int(n) for n in nodes),
                )
                self._allocs[self._next_id] = sub
                self._next_id += 1
                return sub
        raise ConfigError(
            f"no free {('x'.join(map(str, shape)))} box left for {nnodes} nodes"
        )

    def release(self, sub: "Submachine | int") -> None:
        """Return an allocation's nodes to the free pool."""
        alloc_id = sub.alloc_id if isinstance(sub, Submachine) else int(sub)
        try:
            alloc = self._allocs.pop(alloc_id)
        except KeyError:
            raise ConfigError(f"unknown allocation id {alloc_id}") from None
        self._occupied[np.asarray(alloc.parent_nodes)] = False
