"""The torus node/link graph.

:class:`TorusTopology` is a value object shared by the routing layer, the
network simulators and the machine model.  It caches coordinate tables as
NumPy arrays so bulk queries (all coordinates of a node list, distances
between node vectors) are vectorised.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.torus import coords as C
from repro.torus import links as L
from repro.util.validation import ConfigError

DIM_NAMES = "ABCDEFGH"


class TorusTopology:
    """A k-dimensional torus of compute nodes.

    Args:
        shape: per-dimension sizes, e.g. ``(2, 2, 4, 4, 2)`` for the
            128-node Mira partition used in the paper's Figure 5.

    Node indices linearise coordinates row-major (dimension ``A``
    slowest).  Directed torus links use the id scheme of
    :mod:`repro.torus.links`.
    """

    def __init__(self, shape: Sequence[int]):
        self.shape: C.Shape = tuple(int(s) for s in shape)
        if not self.shape:
            raise ConfigError("torus shape must be non-empty")
        for s in self.shape:
            if s < 1:
                raise ConfigError(f"invalid torus shape {self.shape}")
        self.ndims: int = len(self.shape)
        self.nnodes: int = int(np.prod(self.shape))
        self.nlinks: int = L.torus_link_count(self.nnodes, self.ndims)

    # -- identity / representation -------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(s) for s in self.shape)
        return f"TorusTopology({dims}, nodes={self.nnodes})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TorusTopology) and other.shape == self.shape

    def __hash__(self) -> int:
        return hash(self.shape)

    def dim_name(self, dim: int) -> str:
        """Letter name of a dimension (``A``..``E`` on BG/Q)."""
        return DIM_NAMES[dim] if dim < len(DIM_NAMES) else str(dim)

    # -- coordinate tables ---------------------------------------------------------

    @cached_property
    def _coord_table(self) -> np.ndarray:
        """``(nnodes, ndims)`` int array: row i is the coordinate of node i."""
        idx = np.arange(self.nnodes)
        table = np.empty((self.nnodes, self.ndims), dtype=np.int64)
        for d in range(self.ndims - 1, -1, -1):
            table[:, d] = idx % self.shape[d]
            idx = idx // self.shape[d]
        return table

    def coord(self, node: int) -> C.Coord:
        """Coordinate of a node index."""
        if not 0 <= node < self.nnodes:
            raise ConfigError(f"node {node} out of range (nnodes={self.nnodes})")
        return tuple(int(x) for x in self._coord_table[node])

    def node(self, coord: Sequence[int]) -> int:
        """Node index of a coordinate."""
        return C.coord_to_index(coord, self.shape)

    def coords_of(self, nodes: Iterable[int]) -> np.ndarray:
        """Vectorised coordinates of many nodes, shape ``(len(nodes), ndims)``."""
        nodes = np.asarray(list(nodes), dtype=np.int64)
        return self._coord_table[nodes]

    # -- adjacency -----------------------------------------------------------------

    def neighbor(self, node: int, dim: int, sign: int) -> int:
        """The node one hop away along ``dim`` in direction ``sign``."""
        c = C.neighbor_coord(self.coord(node), dim, sign, self.shape)
        return self.node(c)

    def neighbors(self, node: int) -> list[int]:
        """All (up to ``2*ndims``) distinct torus neighbours of ``node``."""
        out: list[int] = []
        seen = {node}
        for dim in range(self.ndims):
            for sign in (L.DIR_PLUS, L.DIR_MINUS):
                nb = self.neighbor(node, dim, sign)
                if nb not in seen:
                    out.append(nb)
                    seen.add(nb)
        return out

    def link(self, node: int, dim: int, sign: int) -> tuple[int, int]:
        """Directed link leaving ``node`` along ``(dim, sign)``.

        Returns ``(link_id, dest_node)``.
        """
        if not 0 <= dim < self.ndims:
            raise ConfigError(f"dimension {dim} out of range")
        if sign not in (L.DIR_PLUS, L.DIR_MINUS):
            raise ConfigError(f"sign must be +1/-1, got {sign}")
        return L.torus_link_id(node, dim, sign, self.ndims), self.neighbor(node, dim, sign)

    def link_source(self, link_id: int) -> int:
        """Source node of a directed torus link."""
        node, _, _ = L.link_id_parts(link_id, self.ndims)
        return node

    def link_dest(self, link_id: int) -> int:
        """Destination node of a directed torus link."""
        node, dim, sign = L.link_id_parts(link_id, self.ndims)
        return self.neighbor(node, dim, sign)

    def describe_link(self, link_id: int) -> str:
        """Readable link label, e.g. ``"n3:+C"``."""
        return L.describe_link(link_id, self.ndims, DIM_NAMES)

    # -- distances -----------------------------------------------------------------

    def hop_distance(self, a: int, b: int) -> tuple[int, ...]:
        """Per-dimension shortest hop counts between two nodes."""
        return C.hop_distance(self.coord(a), self.coord(b), self.shape)

    def distance(self, a: int, b: int) -> int:
        """Total torus hop distance between two nodes."""
        return C.torus_distance(self.coord(a), self.coord(b), self.shape)

    def diameter(self) -> int:
        """Maximum shortest-path distance on this torus."""
        return sum(s // 2 for s in self.shape)

    # -- convenience ---------------------------------------------------------------

    def all_nodes(self) -> range:
        """All node indices."""
        return range(self.nnodes)

    def sub_box_nodes(self, lo: Sequence[int], size: Sequence[int]) -> list[int]:
        """Nodes of an axis-aligned (wrapping) box.

        ``lo`` is the lowest corner, ``size`` the per-dimension extent.
        Used to place the contiguous application regions (physics modules)
        of the paper's coupling experiments.
        """
        lo = tuple(int(x) for x in lo)
        size = tuple(int(x) for x in size)
        if len(lo) != self.ndims or len(size) != self.ndims:
            raise ConfigError("box lo/size must match torus dimensionality")
        for s, ext in zip(self.shape, size):
            if not 1 <= ext <= s:
                raise ConfigError(f"box size {size} invalid for shape {self.shape}")
        nodes: list[int] = []
        idx = [0] * self.ndims
        total = int(np.prod(size))
        for _ in range(total):
            coord = tuple((lo[d] + idx[d]) % self.shape[d] for d in range(self.ndims))
            nodes.append(self.node(coord))
            for d in range(self.ndims - 1, -1, -1):
                idx[d] += 1
                if idx[d] < size[d]:
                    break
                idx[d] = 0
        return nodes
