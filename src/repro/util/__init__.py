"""Small shared utilities: units, validation, RNG, logging.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    KB,
    MB,
    GB,
    format_bytes,
    format_rate,
    format_time,
    parse_size,
    gbps,
)
from repro.util.validation import (
    ReproError,
    ConfigError,
    SimulationError,
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.log import get_logger

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_rate",
    "format_time",
    "parse_size",
    "gbps",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "make_rng",
    "spawn_rngs",
    "get_logger",
]
