"""Crash-safe file writes: temp file + fsync + atomic rename.

A process killed mid-write (SIGKILL, OOM, power loss) must never leave a
torn results file: readers either see the *complete old* content or the
*complete new* content, nothing in between.  The recipe is the standard
one — write to a temp file in the same directory, ``fsync`` it, then
``os.replace`` over the destination (atomic on POSIX within one
filesystem), and finally ``fsync`` the directory so the rename itself is
durable.

Used by the campaign journal and results writer
(:mod:`repro.service.journal`, :mod:`repro.service.batch`), the
benchmark recorder (``benchmarks/record.py``) and the CLI's JSON report
writers (chaos campaigns, traces, metrics snapshots).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator


def fsync_dir(path: "str | os.PathLike") -> None:
    """Flush a directory entry table to disk (no-op where unsupported)."""
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_write(
    path: "str | os.PathLike",
    *,
    mode: str = "w",
    encoding: "str | None" = "utf-8",
    durable: bool = True,
) -> Iterator[Any]:
    """Context manager yielding a temp file that replaces ``path`` on success.

    On a clean exit the temp file is fsynced (when ``durable``) and
    atomically renamed over ``path``; on *any* exception — including the
    process dying inside the block — the destination keeps its previous
    content and the temp file is removed (or left as ``.<name>.<rand>.tmp``
    debris after a hard kill, never as a torn destination).
    """
    path = Path(path)
    if encoding is not None and "b" in mode:
        encoding = None
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            yield fh
            fh.flush()
            if durable:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_dir(path.parent or ".")
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise


def atomic_write_text(
    path: "str | os.PathLike", text: str, *, durable: bool = True
) -> None:
    """Atomically replace ``path`` with ``text`` (see :func:`atomic_write`)."""
    with atomic_write(path, durable=durable) as fh:
        fh.write(text)


def atomic_write_json(
    path: "str | os.PathLike",
    doc: Any,
    *,
    indent: "int | None" = 2,
    sort_keys: bool = True,
    durable: bool = True,
) -> None:
    """Atomically replace ``path`` with ``doc`` serialized as JSON + newline."""
    atomic_write_text(
        path, json.dumps(doc, indent=indent, sort_keys=sort_keys) + "\n",
        durable=durable,
    )
