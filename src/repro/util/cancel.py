"""Cooperative cancellation and deadlines.

The scenario service (:mod:`repro.service`) runs simulations under
wall-clock deadlines; a stuck or oversized run must be cut off
*mid-simulation* rather than hanging a worker until a watchdog kills the
whole process.  This module provides the plumbing:

* :class:`CancelScope` — a cancellation token with an optional relative
  wall-clock deadline.  :meth:`CancelScope.check` raises
  :class:`~repro.util.validation.SimulationCancelled` once the scope was
  cancelled or its deadline passed; until then it is a cheap no-op.
* :func:`cancel_scope` — a context manager installing a scope as the
  *ambient* scope (a :class:`contextvars.ContextVar`), so deep layers —
  most importantly :meth:`repro.network.flowsim.FlowSim.run`, which
  polls the ambient scope every ``cancel_every`` events — honour the
  deadline without a ``cancel`` argument threaded through every call.

The ambient-scope pattern mirrors :func:`repro.obs.trace.get_tracer`:
the disabled path (no scope installed) costs one context-var read per
run, not per event.  Checks never mutate simulator state, so a scope
that is installed but never fires leaves results byte-identical
(enforced by ``tests/test_flowsim_cancel.py``).
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Callable, Iterator

from repro.util.validation import ConfigError, SimulationCancelled

Clock = Callable[[], float]


class CancelScope:
    """A cooperative cancellation token with an optional deadline.

    Args:
        deadline_s: relative wall-clock budget in seconds, measured from
            scope construction; ``None`` means no deadline (the scope
            fires only on an explicit :meth:`cancel`).
        clock: monotonic time source (overridable for tests).
    """

    __slots__ = ("_clock", "_t0", "deadline_s", "_reason")

    def __init__(
        self,
        *,
        deadline_s: "float | None" = None,
        clock: Clock = time.monotonic,
    ):
        if deadline_s is not None and deadline_s < 0:
            raise ConfigError(f"deadline_s must be >= 0, got {deadline_s}")
        self._clock = clock
        self._t0 = clock()
        self.deadline_s = deadline_s
        self._reason: "str | None" = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; the next :meth:`check` raises."""
        if self._reason is None:
            self._reason = str(reason)

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called (deadline not counted)."""
        return self._reason is not None

    def elapsed(self) -> float:
        """Wall-clock seconds since the scope was created."""
        return self._clock() - self._t0

    def remaining(self) -> "float | None":
        """Seconds left before the deadline (``None`` = no deadline)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - self.elapsed()

    def expired(self) -> bool:
        """True once the deadline has passed."""
        rem = self.remaining()
        return rem is not None and rem <= 0.0

    def check(self) -> None:
        """Raise :class:`SimulationCancelled` if cancelled or expired."""
        if self._reason is not None:
            raise SimulationCancelled(
                f"cancelled: {self._reason}", reason=self._reason
            )
        if self.expired():
            raise SimulationCancelled(
                f"deadline of {self.deadline_s:.6g}s exceeded "
                f"(elapsed {self.elapsed():.6g}s)",
                reason="deadline",
            )


#: Ambient scope; ``None`` means cancellation is disabled (the default).
_CURRENT: "contextvars.ContextVar[CancelScope | None]" = contextvars.ContextVar(
    "repro_cancel_scope", default=None
)


def current_scope() -> "CancelScope | None":
    """The ambient :class:`CancelScope`, or ``None`` when not installed."""
    return _CURRENT.get()


def check_cancelled() -> None:
    """Check the ambient scope (no-op when none is installed).

    Long-running *non-simulator* loops (e.g. a service worker's spin
    scenario, campaign drivers) call this at natural yield points.
    """
    scope = _CURRENT.get()
    if scope is not None:
        scope.check()


@contextlib.contextmanager
def cancel_scope(
    deadline_s: "float | None" = None,
    *,
    clock: Clock = time.monotonic,
) -> Iterator[CancelScope]:
    """Install a :class:`CancelScope` as the ambient scope.

    Scopes nest: the innermost wins for the duration of the ``with``
    block, and the previous scope is restored on exit.
    """
    scope = CancelScope(deadline_s=deadline_s, clock=clock)
    token = _CURRENT.set(scope)
    try:
        yield scope
    finally:
        _CURRENT.reset(token)
