"""Unified checksum and deterministic-hash helpers.

Three subsystems independently grew checksum code — the resilience
ledger's CRC-32 extent checksums (:mod:`repro.resilience.ledger`), the
service's sha256 payload checksums (:mod:`repro.service.request`), and
the batch journal's per-record checksums (:mod:`repro.service.journal`).
They all live here now; the original modules re-export these names so
existing imports keep working.

The module also provides :func:`stable_unit` — a deterministic uniform
draw in ``[0, 1)`` keyed on arbitrary labels.  The silent-data-corruption
fault family (:class:`repro.machine.faults.SDCModel`) uses it so that
every corruption decision is a **pure function** of its identifying
labels (seed, transfer, extent, round, carrier) rather than of mutable
RNG state: serial and batched executions of the same campaign then make
byte-identical corruption decisions regardless of evaluation order.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from typing import Any

__all__ = [
    "canonical_json",
    "payload_checksum",
    "extent_checksum",
    "crc32_hex",
    "stable_unit",
]


def canonical_json(doc: Any) -> str:
    """Canonical JSON form: sorted keys, compact separators."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: Any) -> str:
    """sha256 hex digest of a payload's canonical JSON form."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def extent_checksum(key: "tuple[int, int]", offset: int, length: int) -> int:
    """CRC-32 of the deterministic pseudo-payload of one extent.

    The simulation moves no real bytes, so the "payload" of byte ``i``
    of transfer ``(src, dst)`` is defined as a pure function of
    ``(src, dst, i)``; hashing the extent's parameters is then
    equivalent to hashing its payload, and an extent re-derived
    anywhere (source, proxy, destination) checksums identically.
    """
    src, dst = key
    blob = f"{src}:{dst}:{offset}:{length}".encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


def crc32_hex(blob: bytes) -> str:
    """CRC-32 of raw bytes as 8 hex digits (journal-friendly form)."""
    return f"{zlib.crc32(blob) & 0xFFFFFFFF:08x}"


def stable_unit(*labels: Any) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed on ``labels``.

    The draw is sha256 of the ``:``-joined label reprs, so it depends
    only on the labels — not on call order, process, platform, or any
    RNG state.  Distinct label tuples give independent-looking draws;
    identical tuples always give the identical draw.
    """
    blob = ":".join(str(l) for l in labels).encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)
