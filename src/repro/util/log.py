"""Library logging setup.

``repro`` never configures the root logger; it logs under the ``repro.*``
hierarchy and leaves handlers to the application (standard library-package
etiquette).  ``get_logger`` is a thin convenience wrapper so modules write
``log = get_logger(__name__)``.

The CLI and the benchmark suite *are* applications, so they opt in via
:func:`setup_cli_logging`: plain ``%(message)s`` lines to stdout at a
chosen level, which is how ``repro --log-level`` makes runs quiet or
verbose on demand.
"""

from __future__ import annotations

import logging
import sys

#: Attribute tagging handlers owned by :func:`setup_cli_logging`, so
#: repeated calls replace rather than stack them.
_CLI_TAG = "_repro_cli_handler"

LEVELS = ("debug", "info", "warning", "error")


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def setup_cli_logging(level: "str | int" = "info", stream=None) -> logging.Logger:
    """Configure the ``repro`` hierarchy for command-line use.

    Installs one plain-message handler on the ``repro`` logger writing
    to ``stream`` (default: the *current* ``sys.stdout``) and sets the
    level.  Idempotent: previous handlers installed by this function are
    replaced, so each CLI invocation rebinds to the live stdout.
    """
    if isinstance(level, str):
        resolved = getattr(logging, level.upper(), None)
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}; use one of {LEVELS}")
        level = resolved
    root = logging.getLogger("repro")
    for h in list(root.handlers):
        if getattr(h, _CLI_TAG, False):
            root.removeHandler(h)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _CLI_TAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    # The CLI owns its output; don't duplicate through the root logger.
    root.propagate = False
    return root
